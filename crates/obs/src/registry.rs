//! Counter registry with dense-index handles.
//!
//! Names are resolved to slots once at registration time; the hot path
//! is an array add through a copyable [`CounterId`] — no hashing, no
//! string comparisons. Snapshots enumerate counters in registration
//! order, so any report built from one is deterministic by
//! construction.

/// Dense handle to a registered counter.
///
/// Obtained from [`Registry::counter`]; indexes straight into the
/// registry's value array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// A named-counter registry.
///
/// # Examples
///
/// ```
/// use rb_obs::Registry;
///
/// let mut reg = Registry::new();
/// let hits = reg.counter("cache.hits");
/// let misses = reg.counter("cache.misses");
/// reg.add(hits, 3);
/// reg.add(misses, 1);
/// reg.add(hits, 2);
/// assert_eq!(reg.get(hits), 5);
/// assert_eq!(reg.snapshot(), vec![("cache.hits", 5), ("cache.misses", 1)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    names: Vec<&'static str>,
    values: Vec<u64>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers `name` (or finds it, if already registered) and
    /// returns its dense handle.
    ///
    /// Registration does a linear name scan — call it once at setup,
    /// not per event; increments through the returned handle are O(1).
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            return CounterId(i as u32);
        }
        self.names.push(name);
        self.values.push(0);
        CounterId((self.names.len() - 1) as u32)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.values[id.0 as usize] += n;
    }

    /// Sets a counter to an absolute value (for end-of-run snapshots
    /// assembled from layer stat deltas).
    #[inline]
    pub fn set(&mut self, id: CounterId, value: u64) {
        self.values[id.0 as usize] = value;
    }

    /// Current value of a counter.
    #[inline]
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id.0 as usize]
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All counters in registration order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.names
            .iter()
            .copied()
            .zip(self.values.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn re_registering_returns_same_slot() {
        let mut reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("y");
        let a2 = reg.counter("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let mut reg = Registry::new();
        let ids: Vec<_> = ["z", "a", "m"].iter().map(|n| reg.counter(n)).collect();
        for (i, id) in ids.iter().enumerate() {
            reg.add(*id, (i + 1) as u64);
        }
        assert_eq!(reg.snapshot(), vec![("z", 1), ("a", 2), ("m", 3)]);
    }

    #[test]
    fn set_overwrites() {
        let mut reg = Registry::new();
        let c = reg.counter("c");
        reg.add(c, 10);
        reg.set(c, 3);
        assert_eq!(reg.get(c), 3);
        assert!(!reg.is_empty());
    }
}
