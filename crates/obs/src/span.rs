//! Virtual-time span tracing in Chrome trace-event format.
//!
//! Each sampled op becomes a `B`/`E` span pair on the track
//! `(pid = process, tid = core)`, with nested child spans for its
//! `cpu`, `queue` (device queue wait), and `device` phases. Timestamps
//! are sim-clock nanoseconds rendered as microseconds with three
//! decimals, so the JSON is a pure function of the run — byte-identical
//! across hosts, `--jobs` levels, and repetitions.
//!
//! The output loads directly in Perfetto / `chrome://tracing`.

use crate::TraceConfig;
use rb_simcore::time::Nanos;

/// One Chrome trace event (`ph: "B"` or `ph: "E"`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name: the op label, or a phase name (`cpu`/`queue`/`device`).
    pub name: String,
    /// True for a `B` (begin) event, false for `E` (end).
    pub begin: bool,
    /// Track process id (the simulated process / worker).
    pub pid: u32,
    /// Track thread id (the core that served the op's think time).
    pub tid: u32,
    /// Event instant on the sim clock.
    pub ts: Nanos,
    /// For op `B` events: time spent waiting before issue
    /// (arrive → issue), attached as `args.wait_us`.
    pub wait: Option<Nanos>,
}

/// A finished span trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTrace {
    /// Events in completion order (per-track time order).
    pub events: Vec<TraceEvent>,
    /// Ops inspected (before sampling).
    pub seen: u64,
    /// Ops actually recorded.
    pub sampled: u64,
}

/// Records op lifecycle spans with deterministic sampling.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    sample_every: u64,
    seen: u64,
    sampled: u64,
    events: Vec<TraceEvent>,
}

impl SpanRecorder {
    /// A recorder sampling every `config.sample_every`-th op.
    pub fn new(config: &TraceConfig) -> Self {
        SpanRecorder {
            sample_every: config.sample_every.max(1),
            seen: 0,
            sampled: 0,
            events: Vec::new(),
        }
    }

    /// Records one completed op lifecycle (subject to sampling).
    ///
    /// Instants must satisfy `arrived ≤ issued ≤ cpu_end ≤ device_start
    /// ≤ completed`; zero-length phases are elided. Ops must arrive in
    /// completion order, which on any single `(pid, tid)` track is also
    /// time order — that is what makes the B/E nesting monotone.
    #[allow(clippy::too_many_arguments)]
    pub fn record_op(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        arrived: Nanos,
        issued: Nanos,
        cpu_end: Nanos,
        device_start: Nanos,
        completed: Nanos,
    ) {
        let take = self.seen.is_multiple_of(self.sample_every);
        self.seen += 1;
        if !take {
            return;
        }
        self.sampled += 1;
        self.events.push(TraceEvent {
            name: name.to_string(),
            begin: true,
            pid,
            tid,
            ts: issued,
            wait: Some(issued.saturating_sub(arrived)),
        });
        let mut phase = |label: &str, from: Nanos, to: Nanos| {
            if to > from {
                self.events.push(TraceEvent {
                    name: label.to_string(),
                    begin: true,
                    pid,
                    tid,
                    ts: from,
                    wait: None,
                });
                self.events.push(TraceEvent {
                    name: label.to_string(),
                    begin: false,
                    pid,
                    tid,
                    ts: to,
                    wait: None,
                });
            }
        };
        phase("cpu", issued, cpu_end);
        phase("queue", cpu_end, device_start);
        phase("device", device_start, completed);
        self.events.push(TraceEvent {
            name: name.to_string(),
            begin: false,
            pid,
            tid,
            ts: completed,
            wait: None,
        });
    }

    /// Records one completed op as a flat span with no phase children
    /// (the serial engine, which has no contention to decompose).
    pub fn record_flat(&mut self, pid: u32, tid: u32, name: &str, start: Nanos, end: Nanos) {
        let take = self.seen.is_multiple_of(self.sample_every);
        self.seen += 1;
        if !take {
            return;
        }
        self.sampled += 1;
        self.events.push(TraceEvent {
            name: name.to_string(),
            begin: true,
            pid,
            tid,
            ts: start,
            wait: Some(Nanos::ZERO),
        });
        self.events.push(TraceEvent {
            name: name.to_string(),
            begin: false,
            pid,
            tid,
            ts: end,
            wait: None,
        });
    }

    /// Finishes recording.
    pub fn finish(self) -> SpanTrace {
        SpanTrace {
            events: self.events,
            seen: self.seen,
            sampled: self.sampled,
        }
    }
}

/// Renders nanoseconds as Chrome's microsecond timestamps with three
/// decimals (`12345 ns` → `"12.345"`), avoiding float formatting so
/// the output is bit-stable.
fn micros_str(ns: Nanos) -> String {
    let n = ns.as_nanos();
    format!("{}.{:03}", n / 1_000, n % 1_000)
}

fn escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

impl SpanTrace {
    /// Serializes to Chrome trace-event JSON (object form, one event
    /// per line).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
                escape(&e.name),
                if e.begin { "B" } else { "E" },
                e.pid,
                e.tid,
                micros_str(e.ts),
            ));
            if let Some(wait) = e.wait {
                out.push_str(&format!(",\"args\":{{\"wait_us\":{}}}", micros_str(wait)));
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Checks that every `(pid, tid)` track has monotone timestamps and
    /// properly nested B/E pairs; returns the total span count.
    ///
    /// This is the same invariant the CI smoke job validates on the
    /// emitted JSON.
    pub fn validate_nesting(&self) -> Result<usize, String> {
        use std::collections::HashMap;
        let mut stacks: HashMap<(u32, u32), Vec<&str>> = HashMap::new();
        let mut last_ts: HashMap<(u32, u32), Nanos> = HashMap::new();
        let mut spans = 0usize;
        for e in &self.events {
            let track = (e.pid, e.tid);
            let prev = last_ts.entry(track).or_insert(Nanos::ZERO);
            if e.ts < *prev {
                return Err(format!(
                    "track {track:?}: timestamp went backwards ({} < {})",
                    e.ts.as_nanos(),
                    prev.as_nanos()
                ));
            }
            *prev = e.ts;
            let stack = stacks.entry(track).or_default();
            if e.begin {
                stack.push(&e.name);
            } else {
                match stack.pop() {
                    Some(open) if open == e.name => spans += 1,
                    Some(open) => {
                        return Err(format!(
                            "track {track:?}: E \"{}\" closes B \"{open}\"",
                            e.name
                        ))
                    }
                    None => return Err(format!("track {track:?}: E \"{}\" with no B", e.name)),
                }
            }
        }
        for (track, stack) in &stacks {
            if !stack.is_empty() {
                return Err(format!("track {track:?}: unclosed spans {stack:?}"));
            }
        }
        Ok(spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    #[test]
    fn records_nested_phases() {
        let mut rec = SpanRecorder::new(&TraceConfig::default());
        rec.record_op(1, 0, "read", us(0), us(10), us(12), us(15), us(40));
        let trace = rec.finish();
        // op B, cpu B/E, queue B/E, device B/E, op E.
        assert_eq!(trace.events.len(), 8);
        assert_eq!(trace.events[0].wait, Some(us(10)));
        assert_eq!(trace.validate_nesting().unwrap(), 4);
    }

    #[test]
    fn zero_phases_are_elided() {
        let mut rec = SpanRecorder::new(&TraceConfig::default());
        // Pure-cpu op: no queue, no device child.
        rec.record_op(0, 0, "stat", us(5), us(5), us(9), us(9), us(9));
        let trace = rec.finish();
        let names: Vec<&str> = trace.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["stat", "cpu", "cpu", "stat"]);
        assert_eq!(trace.validate_nesting().unwrap(), 2);
    }

    #[test]
    fn flat_spans_have_no_children() {
        let mut rec = SpanRecorder::new(&TraceConfig::default());
        rec.record_flat(0, 0, "read", us(5), us(9));
        rec.record_flat(0, 0, "write", us(9), us(12));
        let trace = rec.finish();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.validate_nesting().unwrap(), 2);
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let mut rec = SpanRecorder::new(&TraceConfig { sample_every: 3 });
        for i in 0..9u64 {
            let t = us(10 * i);
            rec.record_op(0, 0, "op", t, t, t, t, t + us(1));
        }
        let trace = rec.finish();
        assert_eq!(trace.seen, 9);
        assert_eq!(trace.sampled, 3);
    }

    #[test]
    fn chrome_json_shape() {
        let mut rec = SpanRecorder::new(&TraceConfig::default());
        rec.record_op(2, 1, "write", us(0), us(1), us(2), us(2), us(3));
        let json = rec.finish().to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"args\":{\"wait_us\":1.000}"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn validation_catches_misnesting() {
        let trace = SpanTrace {
            events: vec![
                TraceEvent {
                    name: "a".into(),
                    begin: true,
                    pid: 0,
                    tid: 0,
                    ts: us(1),
                    wait: None,
                },
                TraceEvent {
                    name: "b".into(),
                    begin: false,
                    pid: 0,
                    tid: 0,
                    ts: us(2),
                    wait: None,
                },
            ],
            seen: 1,
            sampled: 1,
        };
        assert!(trace.validate_nesting().is_err());
    }
}
