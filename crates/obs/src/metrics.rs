//! End-of-run metrics snapshots and the explain-your-number report.
//!
//! The layer simulators keep cheap always-on counters
//! ([`CacheStats`], [`StackStats`], [`DeviceStats`]); the engine
//! captures them before and after a run and hands the deltas here.
//! [`MetricsSnapshot`] adds the scheduler-side latency decomposition
//! (think / cpu / core wait / device queue wait / device service, an
//! exact integer partition of total latency) and a windowed gauge
//! timeline, and knows how to render it all as a per-layer breakdown.

use crate::registry::Registry;
use rb_simcache::page::CacheStats;
use rb_simcore::time::Nanos;
use rb_simdisk::device::DeviceStats;
use rb_simfs::stack::StackStats;
use rb_stats::timeseries::GaugeSeries;

/// Field-wise delta of two [`CacheStats`] captures.
pub fn cache_delta(before: &CacheStats, after: &CacheStats) -> CacheStats {
    CacheStats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        insertions: after.insertions - before.insertions,
        evicted_clean: after.evicted_clean - before.evicted_clean,
        evicted_dirty: after.evicted_dirty - before.evicted_dirty,
        prefetched: after.prefetched - before.prefetched,
        prefetch_hits: after.prefetch_hits - before.prefetch_hits,
        writeback_flushed: after.writeback_flushed - before.writeback_flushed,
    }
}

/// Field-wise delta of two [`StackStats`] captures.
pub fn stack_delta(before: &StackStats, after: &StackStats) -> StackStats {
    StackStats {
        reads: after.reads - before.reads,
        writes: after.writes - before.writes,
        meta_ops: after.meta_ops - before.meta_ops,
        fsyncs: after.fsyncs - before.fsyncs,
        allocations: after.allocations - before.allocations,
        journal_commits: after.journal_commits - before.journal_commits,
    }
}

/// Delta of the scalar fields of two [`DeviceStats`] captures (the
/// latency histogram is deliberately dropped — the run's own histogram
/// already covers distribution shape).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskDelta {
    /// Read requests completed during the run.
    pub reads: u64,
    /// Write requests completed during the run.
    pub writes: u64,
    /// Blocks transferred by reads.
    pub blocks_read: u64,
    /// Blocks transferred by writes.
    pub blocks_written: u64,
    /// Device service time consumed.
    pub busy: Nanos,
    /// Requests that moved the head.
    pub seeks: u64,
    /// Cylinders traversed, summed over seeking requests.
    pub seek_distance: u64,
}

impl DiskDelta {
    /// Delta between two captures.
    pub fn between(before: &DeviceStats, after: &DeviceStats) -> DiskDelta {
        DiskDelta {
            reads: after.reads - before.reads,
            writes: after.writes - before.writes,
            blocks_read: after.blocks_read - before.blocks_read,
            blocks_written: after.blocks_written - before.blocks_written,
            busy: after.busy - before.busy,
            seeks: after.seeks - before.seeks,
            seek_distance: after.seek_distance - before.seek_distance,
        }
    }
}

/// Fault-injection and retry counters for one run, present only when a
/// fault plan was armed — metrics-off and healthy snapshots carry
/// `None` and stay byte-identical. Plain integers so rb-obs stays
/// dependency-free; the engine translates from its fault layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDelta {
    /// Device errors injected (transient + sticky).
    pub injected_errors: u64,
    /// Distinct blocks gone sticky-bad.
    pub bad_blocks: u64,
    /// Requests delayed by a stall window.
    pub stall_hits: u64,
    /// Allocations rejected by the ENOSPC gate.
    pub enospc_rejections: u64,
    /// Injected errors absorbed by background writeback.
    pub absorbed_errors: u64,
    /// Degraded-mode device time, in microseconds.
    pub degraded_us: u64,
    /// Retry attempts the engine issued.
    pub retries: u64,
    /// Ops abandoned after exhausting the retry policy.
    pub gave_up: u64,
}

/// Scheduler-side accounting for one run.
///
/// The five duration fields are an exact integer partition of
/// `latency`: for every completed op,
/// `latency = core_wait + think + cpu + queue_wait + device`
/// by construction of the discrete-event pumps, so the totals sum
/// exactly too. All zeros (except `completed`/`latency`) for the
/// serial engine, which has no contention to decompose.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedMetrics {
    /// Simulated processes (workers for open-loop runs).
    pub processes: u32,
    /// Cores in the [`rb_simcore::events::CoreSet`].
    pub cores: u32,
    /// Ops that completed inside the measured duration.
    pub completed: u64,
    /// Total time ops waited for a free core.
    pub core_wait: Nanos,
    /// Total on-core think time.
    pub think: Nanos,
    /// Total stack CPU time.
    pub cpu: Nanos,
    /// Total time spent queued behind the shared device.
    pub queue_wait: Nanos,
    /// Total device service time inside op latency.
    pub device: Nanos,
    /// Total op latency (arrive → done).
    pub latency: Nanos,
    /// Busy time per core (token occupancy), indexed by core id.
    pub core_busy: Vec<Nanos>,
}

impl SchedMetrics {
    /// True when the run produced a contention decomposition (the
    /// scheduled engines); false for the serial loop.
    pub fn decomposed(&self) -> bool {
        !(self.core_wait.is_zero()
            && self.think.is_zero()
            && self.cpu.is_zero()
            && self.queue_wait.is_zero()
            && self.device.is_zero())
    }

    /// Sum of the five decomposition parts; equals `latency` exactly
    /// when [`SchedMetrics::decomposed`].
    pub fn parts_total(&self) -> Nanos {
        self.core_wait + self.think + self.cpu + self.queue_wait + self.device
    }

    /// Queue-wait share of total latency in `[0, 1]`.
    pub fn queue_wait_share(&self) -> f64 {
        if self.latency.is_zero() {
            0.0
        } else {
            self.queue_wait.as_secs_f64() / self.latency.as_secs_f64()
        }
    }
}

/// The flight recorder's end-of-run snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Measured run duration (virtual time).
    pub duration: Nanos,
    /// Active cache eviction policy, when the target exposes one.
    pub policy: Option<&'static str>,
    /// Page-cache counter deltas, when the target exposes them.
    pub cache: Option<CacheStats>,
    /// Storage-stack counter deltas, when the target exposes them.
    pub fs: Option<StackStats>,
    /// Device counter deltas, when the target exposes them.
    pub disk: Option<DiskDelta>,
    /// Fault-injection and retry counters, when a fault plan was armed.
    pub faults: Option<FaultDelta>,
    /// Scheduler accounting and latency decomposition.
    pub sched: SchedMetrics,
    /// Windowed gauge timeline (hit ratio, device busy fraction).
    pub timeline: GaugeSeries,
}

impl MetricsSnapshot {
    /// Cache hit ratio over the run, if cache stats were captured and
    /// any lookup happened.
    pub fn hit_ratio(&self) -> Option<f64> {
        let c = self.cache.as_ref()?;
        if c.hits + c.misses == 0 {
            None
        } else {
            Some(c.hit_ratio())
        }
    }

    /// Fraction of the run the device spent busy, if disk stats were
    /// captured.
    pub fn device_busy_frac(&self) -> Option<f64> {
        let d = self.disk.as_ref()?;
        if self.duration.is_zero() {
            None
        } else {
            Some(d.busy.as_secs_f64() / self.duration.as_secs_f64())
        }
    }

    /// Per-core utilization (busy / duration), indexed by core id.
    pub fn utilization(&self) -> Vec<f64> {
        let dur = self.duration.as_secs_f64();
        self.sched
            .core_busy
            .iter()
            .map(|b| {
                if dur > 0.0 {
                    b.as_secs_f64() / dur
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Flattens every captured counter into a [`Registry`] snapshot:
    /// `(name, value)` pairs in a fixed registration order. This is the
    /// deterministic flat form used by the `--metrics` sweep columns
    /// and the determinism tests.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut reg = Registry::new();
        if let Some(c) = &self.cache {
            for (name, v) in [
                ("cache.hits", c.hits),
                ("cache.misses", c.misses),
                ("cache.insertions", c.insertions),
                ("cache.evicted_clean", c.evicted_clean),
                ("cache.evicted_dirty", c.evicted_dirty),
                ("cache.prefetched", c.prefetched),
                ("cache.prefetch_hits", c.prefetch_hits),
                ("cache.writeback_flushed", c.writeback_flushed),
            ] {
                let id = reg.counter(name);
                reg.set(id, v);
            }
        }
        if let Some(d) = &self.disk {
            for (name, v) in [
                ("disk.reads", d.reads),
                ("disk.writes", d.writes),
                ("disk.blocks_read", d.blocks_read),
                ("disk.blocks_written", d.blocks_written),
                ("disk.busy_us", d.busy.as_micros()),
                ("disk.seeks", d.seeks),
                ("disk.seek_distance", d.seek_distance),
            ] {
                let id = reg.counter(name);
                reg.set(id, v);
            }
        }
        if let Some(f) = &self.fs {
            for (name, v) in [
                ("fs.reads", f.reads),
                ("fs.writes", f.writes),
                ("fs.meta_ops", f.meta_ops),
                ("fs.fsyncs", f.fsyncs),
                ("fs.allocations", f.allocations),
                ("fs.journal_commits", f.journal_commits),
            ] {
                let id = reg.counter(name);
                reg.set(id, v);
            }
        }
        if let Some(f) = &self.faults {
            for (name, v) in [
                ("faults.injected_errors", f.injected_errors),
                ("faults.bad_blocks", f.bad_blocks),
                ("faults.stall_hits", f.stall_hits),
                ("faults.enospc_rejections", f.enospc_rejections),
                ("faults.absorbed_errors", f.absorbed_errors),
                ("faults.degraded_us", f.degraded_us),
                ("faults.retries", f.retries),
                ("faults.gave_up", f.gave_up),
            ] {
                let id = reg.counter(name);
                reg.set(id, v);
            }
        }
        let s = &self.sched;
        for (name, v) in [
            ("sched.completed", s.completed),
            ("sched.core_wait_us", s.core_wait.as_micros()),
            ("sched.think_us", s.think.as_micros()),
            ("sched.cpu_us", s.cpu.as_micros()),
            ("sched.queue_wait_us", s.queue_wait.as_micros()),
            ("sched.device_us", s.device.as_micros()),
            ("sched.latency_us", s.latency.as_micros()),
        ] {
            let id = reg.counter(name);
            reg.set(id, v);
        }
        reg.snapshot()
    }

    /// Renders the explain-your-number report: per-layer breakdown plus
    /// the latency decomposition, with an explicit consistency check
    /// line showing the parts summing back to the recorded total.
    pub fn render_explain(&self) -> String {
        let mut out = String::new();
        let secs = |n: Nanos| format!("{:.3} s", n.as_secs_f64());
        let pct = |x: f64| format!("{:.1}%", x * 100.0);
        out.push_str(&format!(
            "run: {} virtual, {} process(es) x {} core(s), {} ops completed\n",
            secs(self.duration),
            self.sched.processes.max(1),
            self.sched.cores.max(1),
            self.sched.completed,
        ));
        if let Some(c) = &self.cache {
            let lookups = c.hits + c.misses;
            out.push_str(&format!(
                "\ncache ({}):\n  {} hits / {} lookups -> hit ratio {}\n",
                self.policy.unwrap_or("?"),
                c.hits,
                lookups,
                pct(self.hit_ratio().unwrap_or(0.0)),
            ));
            out.push_str(&format!(
                "  {} insertions, {} evicted clean + {} dirty, {} writeback flushed\n",
                c.insertions, c.evicted_clean, c.evicted_dirty, c.writeback_flushed,
            ));
            if c.prefetched > 0 {
                out.push_str(&format!(
                    "  readahead: {} prefetched, {} later read ({} useful)\n",
                    c.prefetched,
                    c.prefetch_hits,
                    pct(c.prefetch_hits as f64 / c.prefetched as f64),
                ));
            }
        }
        if let Some(d) = &self.disk {
            out.push_str(&format!(
                "\ndisk:\n  busy {} -> {} of run\n  {} reads ({} blocks), {} writes ({} blocks)\n",
                secs(d.busy),
                pct(self.device_busy_frac().unwrap_or(0.0)),
                d.reads,
                d.blocks_read,
                d.writes,
                d.blocks_written,
            ));
            if d.seeks > 0 {
                out.push_str(&format!(
                    "  {} seeks, mean distance {:.1} cylinders\n",
                    d.seeks,
                    d.seek_distance as f64 / d.seeks as f64,
                ));
            }
        }
        if let Some(f) = &self.fs {
            out.push_str(&format!(
                "\nfs:\n  {} data reads, {} data writes, {} metadata ops\n  \
                 {} fsyncs, {} allocations, {} journal commits\n",
                f.reads, f.writes, f.meta_ops, f.fsyncs, f.allocations, f.journal_commits,
            ));
        }
        let s = &self.sched;
        if s.decomposed() {
            out.push_str(&format!(
                "\nlatency decomposition (sums over {} ops):\n",
                s.completed
            ));
            let share = |n: Nanos| {
                if s.latency.is_zero() {
                    0.0
                } else {
                    n.as_secs_f64() / s.latency.as_secs_f64()
                }
            };
            for (label, n) in [
                ("core wait", s.core_wait),
                ("think", s.think),
                ("cpu", s.cpu),
                ("queue wait", s.queue_wait),
                ("device", s.device),
            ] {
                out.push_str(&format!(
                    "  {:<11} {:>14}  ({:>5})\n",
                    label,
                    secs(n),
                    pct(share(n))
                ));
            }
            let total = s.parts_total();
            out.push_str(&format!(
                "  {:<11} {:>14}  ({:>5})  [recorded total {}: {}]\n",
                "sum",
                secs(total),
                pct(share(total)),
                secs(s.latency),
                if total == s.latency {
                    "exact match"
                } else {
                    "MISMATCH"
                },
            ));
            if !s.core_busy.is_empty() {
                let util = self.utilization();
                out.push_str("\ncore utilization (token occupancy):\n");
                for (i, u) in util.iter().enumerate() {
                    out.push_str(&format!("  core {i}: {}\n", pct(*u)));
                }
            }
        } else {
            out.push_str(
                "\nlatency decomposition: n/a (serial engine — no contention to decompose)\n",
            );
        }
        if !self.timeline.points().is_empty() {
            out.push_str(&format!(
                "\ntimeline: {} samples of {:?}\n",
                self.timeline.points().len(),
                self.timeline.names(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            duration: Nanos::from_secs(10),
            policy: Some("lru"),
            cache: Some(CacheStats {
                hits: 75,
                misses: 25,
                insertions: 25,
                evicted_clean: 3,
                evicted_dirty: 1,
                prefetched: 10,
                prefetch_hits: 8,
                writeback_flushed: 4,
            }),
            fs: Some(StackStats {
                reads: 80,
                writes: 20,
                meta_ops: 7,
                fsyncs: 2,
                allocations: 3,
                journal_commits: 5,
            }),
            disk: Some(DiskDelta {
                reads: 25,
                writes: 5,
                blocks_read: 100,
                blocks_written: 20,
                busy: Nanos::from_secs(2),
                seeks: 12,
                seek_distance: 600,
            }),
            faults: None,
            sched: SchedMetrics {
                processes: 4,
                cores: 2,
                completed: 100,
                core_wait: Nanos::from_millis(100),
                think: Nanos::from_millis(200),
                cpu: Nanos::from_millis(300),
                queue_wait: Nanos::from_millis(150),
                device: Nanos::from_millis(250),
                latency: Nanos::from_millis(1000),
                core_busy: vec![Nanos::from_secs(3), Nanos::from_secs(1)],
            },
            timeline: GaugeSeries::new(Nanos::from_secs(1), &["hit_ratio"]),
        }
    }

    #[test]
    fn derived_fractions() {
        let m = sample_snapshot();
        assert!((m.hit_ratio().unwrap() - 0.75).abs() < 1e-12);
        assert!((m.device_busy_frac().unwrap() - 0.2).abs() < 1e-12);
        assert!((m.sched.queue_wait_share() - 0.15).abs() < 1e-12);
        let util = m.utilization();
        assert!((util[0] - 0.3).abs() < 1e-12);
        assert!((util[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn decomposition_is_exact_partition() {
        let m = sample_snapshot();
        assert!(m.sched.decomposed());
        assert_eq!(m.sched.parts_total(), m.sched.latency);
        let report = m.render_explain();
        assert!(report.contains("exact match"), "{report}");
        assert!(report.contains("hit ratio 75.0%"), "{report}");
        assert!(report.contains("20.0% of run"), "{report}");
    }

    #[test]
    fn counters_are_flat_and_ordered() {
        let m = sample_snapshot();
        let flat = m.counters();
        assert_eq!(flat[0], ("cache.hits", 75));
        let names: Vec<&str> = flat.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"disk.seeks"));
        assert!(names.contains(&"fs.journal_commits"));
        assert!(names.contains(&"sched.queue_wait_us"));
        // Healthy snapshots expose no fault counters at all.
        assert!(!names.iter().any(|n| n.starts_with("faults.")));
        // Deterministic order: two snapshots agree.
        assert_eq!(flat, sample_snapshot().counters());
    }

    #[test]
    fn fault_counters_appear_only_when_armed() {
        let mut m = sample_snapshot();
        m.faults = Some(FaultDelta {
            injected_errors: 9,
            bad_blocks: 2,
            stall_hits: 4,
            enospc_rejections: 1,
            absorbed_errors: 3,
            degraded_us: 1500,
            retries: 12,
            gave_up: 5,
        });
        let flat = m.counters();
        let get = |name: &str| {
            flat.iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("faults.injected_errors"), 9);
        assert_eq!(get("faults.degraded_us"), 1500);
        assert_eq!(get("faults.retries"), 12);
        assert_eq!(get("faults.gave_up"), 5);
        // The section slots between fs.* and sched.* deterministically.
        let names: Vec<&str> = flat.iter().map(|(n, _)| *n).collect();
        let fi = names.iter().position(|n| *n == "faults.injected_errors");
        let si = names.iter().position(|n| *n == "sched.completed");
        assert!(fi < si);
    }

    #[test]
    fn serial_runs_have_no_decomposition() {
        let mut m = sample_snapshot();
        m.sched = SchedMetrics {
            processes: 1,
            cores: 1,
            completed: 10,
            latency: Nanos::from_millis(5),
            ..SchedMetrics::default()
        };
        assert!(!m.sched.decomposed());
        assert!(m.render_explain().contains("serial engine"));
    }

    #[test]
    fn deltas_subtract_fieldwise() {
        let before = CacheStats {
            hits: 10,
            misses: 5,
            ..CacheStats::default()
        };
        let after = CacheStats {
            hits: 30,
            misses: 9,
            writeback_flushed: 2,
            ..CacheStats::default()
        };
        let d = cache_delta(&before, &after);
        assert_eq!((d.hits, d.misses, d.writeback_flushed), (20, 4, 2));

        let dev_after = DeviceStats {
            reads: 7,
            seeks: 3,
            busy: Nanos::from_millis(4),
            ..DeviceStats::default()
        };
        let dd = DiskDelta::between(&DeviceStats::default(), &dev_after);
        assert_eq!((dd.reads, dd.seeks), (7, 3));
        assert_eq!(dd.busy, Nanos::from_millis(4));

        let sd = stack_delta(
            &StackStats::default(),
            &StackStats {
                reads: 1,
                writes: 2,
                meta_ops: 3,
                fsyncs: 4,
                allocations: 5,
                journal_commits: 6,
            },
        );
        assert_eq!(sd.allocations, 5);
        assert_eq!(sd.journal_commits, 6);
    }
}
