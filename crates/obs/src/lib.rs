//! # rb-obs — the flight recorder
//!
//! The source paper's core complaint is that file-system benchmarks
//! report a number without explaining *why* it is that number. This
//! crate is the instrumentation layer that answers the "why": a
//! deterministic, zero-cost-when-off recorder wired through every
//! simulated layer (scheduler → workload → cache → fs → disk).
//!
//! Three facilities:
//!
//! - [`registry`] — a counter registry with dense-index handles (the
//!   same slot style as the engine's per-op latency slots): names are
//!   resolved to indices once, increments are a bounds-checked array
//!   add, and snapshots enumerate in registration order so output is
//!   deterministic.
//! - [`span`] — virtual-time span tracing of op lifecycles
//!   (arrive → issue → cpu → device → done), emitted as Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing`.
//!   Timestamps come from the sim clock, so traces are byte-identical
//!   across hosts and `--jobs` levels.
//! - [`metrics`] — an end-of-run [`metrics::MetricsSnapshot`]
//!   assembled from per-layer stat deltas plus a windowed gauge
//!   timeline, with an `explain` renderer that decomposes a figure
//!   into hit ratio, device busy %, and queue-wait share.
//!
//! Everything is opt-in via [`ObsConfig`]; the disabled path is a
//! handful of branch checks, proven ≤2% by the `obs-overhead`
//! perfgate scenario and byte-identical by the golden-output tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod span;

pub use metrics::{DiskDelta, FaultDelta, MetricsSnapshot, SchedMetrics};
pub use registry::{CounterId, Registry};
pub use span::{SpanRecorder, SpanTrace, TraceEvent};

/// Observability switches for one engine run.
///
/// The default is everything off, which must be byte-identical to a
/// build without the flight recorder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsConfig {
    /// Collect a [`metrics::MetricsSnapshot`] (layer counters, latency
    /// decomposition, gauge timeline) into `Recording.metrics`.
    pub metrics: bool,
    /// Record op lifecycle spans into `Recording.trace`.
    pub trace: Option<TraceConfig>,
}

impl ObsConfig {
    /// True when any recorder is switched on.
    pub fn enabled(&self) -> bool {
        self.metrics || self.trace.is_some()
    }
}

/// Span-tracing knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Record every Nth completed op (1 = every op). Sampling counts
    /// completions in virtual-time order, so the sampled subset is as
    /// deterministic as the full trace.
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { sample_every: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_off() {
        let cfg = ObsConfig::default();
        assert!(!cfg.metrics);
        assert!(cfg.trace.is_none());
        assert!(!cfg.enabled());
        assert!(ObsConfig {
            metrics: true,
            trace: None
        }
        .enabled());
        assert_eq!(TraceConfig::default().sample_every, 1);
    }
}
