//! The replay driver: executes a [`Trace`] against a [`Target`] under a
//! [`Timing`] policy, with dependency-aware multi-stream interleaving.
//!
//! ## Ordering model
//!
//! A v2 trace carries several streams (threads). Replay preserves:
//!
//! * **program order** — entries of one stream execute in trace order;
//! * **per-path happens-before** — two operations addressing the same
//!   path never reorder relative to the trace, even across streams.
//!   (File handles are looked up by path, so per-path order subsumes
//!   per-fd order.)
//! * **namespace happens-before** — a `create`/`mkdir` never overtakes
//!   an earlier operation on its parent directory (the `mkdir` that
//!   made the parent must land first, whichever stream issued it).
//!
//! Everything else — the interleaving of *independent* streams — is
//! deliberately unspecified by the trace, and the driver resolves it
//! with a seeded merge: whenever several streams are runnable, the
//! choice is drawn from a deterministic RNG derived from
//! [`ReplayConfig::seed`]. Like the campaign sharder, the schedule is a
//! pure function of (trace, config), so results are byte-identical on
//! any machine at any parallelism, while different seeds explore
//! different legal interleavings.
//!
//! ## Timing
//!
//! Under [`Timing::Faithful`] and [`Timing::Scaled`] an operation is
//! not issued before its (possibly scaled) recorded arrival time, and
//! the target's background tick fires on the same 5 s cadence the
//! workload engine uses, so writeback behaves as it would under the
//! original load. On a time-parameterized target, a timed
//! *multi-stream* trace runs through the overlapped discrete-event
//! engine ([`replay_with`] dispatches automatically): each recorded
//! stream issues in program order at `max(due time, predecessor
//! completion, happens-before completions)` while media phases
//! serialize on the shared device — the streams genuinely proceed in
//! parallel instead of taking turns through one serialized clock.
//! Timed single-stream traces (and untimed targets) keep the
//! serialized path, waiting via [`Target::advance`]. Under
//! [`Timing::Afap`] no waiting, no overlap and no extra ticks happen:
//! a single-stream afap replay is byte-identical to the pre-v2 replay
//! loop, and multi-stream afap keeps the seeded serialized merge.

use crate::model::{Trace, TraceOp};
use crate::target::Target;
use crate::timing::Timing;
use rb_simcore::error::SimResult;
use rb_simcore::events::{DeviceQueue, EventQueue};
use rb_simcore::fnv::FnvHashMap;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use rb_simfs::intern::PathId;
use rb_simfs::stack::{Fd, OpCost};
use rb_stats::histogram::Log2Histogram;

/// Background-tick cadence during timed replay (the workload engine's
/// flusher cadence).
const TICK_EVERY: Nanos = Nanos::from_secs(5);

/// How a replay run is executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// When operations are issued.
    pub timing: Timing,
    /// Seed for the deterministic merge of independent streams.
    pub seed: u64,
}

impl Default for ReplayConfig {
    /// As fast as possible, seed 0 — the classic replay.
    fn default() -> Self {
        ReplayConfig {
            timing: Timing::Afap,
            seed: 0,
        }
    }
}

/// The first operation that failed during a replay.
#[derive(Debug, Clone)]
pub struct ReplayError {
    /// Index of the entry in the trace.
    pub index: usize,
    /// The operation, rendered as its trace line.
    pub op: String,
    /// The underlying error.
    pub message: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op #{} `{}`: {}", self.index, self.op, self.message)
    }
}

/// Result of replaying a trace.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Operations executed successfully.
    pub ops: u64,
    /// Operations that failed.
    pub errors: u64,
    /// Total virtual/wall time consumed.
    pub duration: Nanos,
    /// Latency histogram over all operations.
    pub histogram: Log2Histogram,
    /// The first failing operation, when any failed.
    pub first_error: Option<ReplayError>,
}

impl ReplayResult {
    /// Mean throughput over the replay.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

/// The driver's handle table: path → open fd, keyed by pre-resolved
/// [`PathId`] when the target provides one (one integer probe per data
/// op) and by path string otherwise.
#[derive(Default)]
struct FdTable {
    by_id: FnvHashMap<PathId, Fd>,
    by_path: FnvHashMap<String, Fd>,
}

impl FdTable {
    fn get(&self, id: Option<PathId>, path: &str) -> Option<Fd> {
        match id {
            Some(i) => self.by_id.get(&i).copied(),
            None => self.by_path.get(path).copied(),
        }
    }

    fn insert(&mut self, id: Option<PathId>, path: &str, fd: Fd) {
        match id {
            Some(i) => {
                self.by_id.insert(i, fd);
            }
            None => {
                self.by_path.insert(path.to_string(), fd);
            }
        }
    }

    fn remove(&mut self, id: Option<PathId>, path: &str) -> Option<Fd> {
        match id {
            Some(i) => self.by_id.remove(&i),
            None => self.by_path.remove(path),
        }
    }
}

/// Executes one operation against the target, resolving handles by path
/// (opening on demand if the trace omitted the `open`). `id` is the
/// entry's pre-resolved path, when the target resolves paths.
fn apply_op(
    target: &mut dyn Target,
    fds: &mut FdTable,
    op: &TraceOp,
    id: Option<PathId>,
) -> SimResult<()> {
    let ensure_open = |target: &mut dyn Target, fds: &mut FdTable, path: &str| -> SimResult<Fd> {
        if let Some(fd) = fds.get(id, path) {
            return Ok(fd);
        }
        let fd = match id {
            Some(i) => target.open_id(i, path)?,
            None => target.open(path)?,
        };
        fds.insert(id, path, fd);
        Ok(fd)
    };
    match op {
        TraceOp::Create(p) => {
            match id {
                Some(i) => target.create_id(i, p)?,
                None => target.create(p)?,
            };
        }
        TraceOp::Mkdir(p) => {
            match id {
                Some(i) => target.mkdir_id(i, p)?,
                None => target.mkdir(p)?,
            };
        }
        TraceOp::Open(p) => {
            ensure_open(target, fds, p)?;
        }
        TraceOp::Close(p) => {
            if let Some(fd) = fds.remove(id, p) {
                target.close(fd)?;
            }
        }
        TraceOp::Read { path, offset, len } => {
            let fd = ensure_open(target, fds, path)?;
            target.read(fd, Bytes::new(*offset), Bytes::new(*len))?;
        }
        TraceOp::Write { path, offset, len } => {
            let fd = ensure_open(target, fds, path)?;
            target.write(fd, Bytes::new(*offset), Bytes::new(*len))?;
        }
        TraceOp::SetSize { path, size } => {
            let fd = ensure_open(target, fds, path)?;
            target.set_size(fd, Bytes::new(*size))?;
        }
        TraceOp::Fsync(p) => {
            let fd = ensure_open(target, fds, p)?;
            target.fsync(fd)?;
        }
        TraceOp::Stat(p) => {
            match id {
                Some(i) => target.stat_id(i, p)?,
                None => target.stat(p)?,
            };
        }
        TraceOp::Unlink(p) => {
            if let Some(fd) = fds.remove(id, p) {
                let _ = target.close(fd);
            }
            match id {
                Some(i) => target.unlink_id(i, p)?,
                None => target.unlink(p)?,
            };
        }
    }
    Ok(())
}

/// Cross-stream happens-before edges: entry `i` depends on the latest
/// earlier entry on the same path from a *different* stream
/// (same-stream predecessors are covered by program order, and
/// transitivity covers longer chains). Namespace ops additionally
/// depend on the latest earlier op on their parent directory, so
/// `create /d/f` never overtakes the `mkdir /d` that makes it
/// possible. Every edge points to an earlier trace index, which is
/// what makes both the serialized merge and the overlapped engine
/// deadlock-free.
fn dep_edges(trace: &Trace) -> Vec<[Option<usize>; 2]> {
    fn parent(path: &str) -> Option<&str> {
        match path.rfind('/') {
            Some(0) | None => None,
            Some(k) => Some(&path[..k]),
        }
    }
    let entries = &trace.entries;
    let mut last_on_path: FnvHashMap<&str, usize> = FnvHashMap::default();
    let mut dep: Vec<[Option<usize>; 2]> = vec![[None; 2]; entries.len()];
    for (i, e) in entries.iter().enumerate() {
        let path = e.op.path();
        if let Some(&j) = last_on_path.get(path) {
            if entries[j].stream != e.stream {
                dep[i][0] = Some(j);
            }
        }
        if matches!(e.op, TraceOp::Create(_) | TraceOp::Mkdir(_)) {
            if let Some(&j) = parent(path).and_then(|p| last_on_path.get(p)) {
                if entries[j].stream != e.stream {
                    dep[i][1] = Some(j);
                }
            }
        }
        last_on_path.insert(path, i);
    }
    dep
}

/// Pre-resolves every distinct path once (pure bookkeeping on the
/// target, free of simulation side effects), so per-op dispatch is an
/// id probe instead of a string hash + split.
fn resolve_paths(target: &mut dyn Target, trace: &Trace) -> Vec<Option<PathId>> {
    let mut seen: FnvHashMap<&str, Option<PathId>> = FnvHashMap::default();
    trace
        .entries
        .iter()
        .map(|e| {
            let path = e.op.path();
            *seen
                .entry(path)
                .or_insert_with(|| target.prepare_path(path))
        })
        .collect()
}

/// The deterministic serialized replay schedule: trace-entry indices in
/// execution order, a pure function of (trace, timing, seed).
///
/// Exposed for tests and analysis; [`replay_with`] consumes it on the
/// serialized path (afap, single-stream, or untimed targets). The
/// schedule preserves per-stream program order and per-path trace
/// order, and resolves the remaining freedom with the seeded merge
/// described in the [module docs](self).
pub fn schedule(trace: &Trace, timing: Timing, seed: u64) -> Vec<usize> {
    let entries = &trace.entries;
    let n = entries.len();
    // Streams, preserving trace order within each.
    let ids = trace.stream_ids();
    let stream_index: FnvHashMap<u32, usize> =
        ids.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
    for (i, e) in entries.iter().enumerate() {
        queues[stream_index[&e.stream]].push(i);
    }
    let dep = dep_edges(trace);

    let mut rng = Rng::new(seed).fork("replay-merge");
    let mut cursor = vec![0usize; queues.len()];
    let mut done = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut eligible: Vec<usize> = Vec::with_capacity(queues.len());
    while order.len() < n {
        eligible.clear();
        for (s, q) in queues.iter().enumerate() {
            if let Some(&i) = q.get(cursor[s]) {
                if dep[i].iter().all(|d| d.is_none_or(|j| done[j])) {
                    eligible.push(i);
                }
            }
        }
        // Always nonempty: the unexecuted entry with the smallest trace
        // index is its stream's head and its dependency (earlier in the
        // trace) is done.
        let chosen = if eligible.len() == 1 {
            eligible[0]
        } else {
            match timing.due(Nanos::ZERO) {
                // Afap: pure seeded choice among runnable streams.
                None => eligible[rng.below(eligible.len() as u64) as usize],
                // Timed: earliest due operation fires first; ties are
                // broken by the same seeded draw.
                Some(_) => {
                    let due_of = |i: usize| timing.due(entries[i].at).unwrap_or(Nanos::ZERO);
                    let min_due = eligible.iter().map(|&i| due_of(i)).min().unwrap();
                    let tied: Vec<usize> = eligible
                        .iter()
                        .copied()
                        .filter(|&i| due_of(i) == min_due)
                        .collect();
                    if tied.len() == 1 {
                        tied[0]
                    } else {
                        tied[rng.below(tied.len() as u64) as usize]
                    }
                }
            }
        };
        let s = stream_index[&entries[chosen].stream];
        cursor[s] += 1;
        done[chosen] = true;
        order.push(chosen);
    }
    order
}

/// Replays a trace under a timing policy and merge seed.
///
/// File handles are managed by path: `open` lines open, data ops look up
/// the handle (opening on demand if the trace omitted it). Individual
/// operation failures are counted, not fatal, so traces captured on one
/// system remain usable on another with a slightly different namespace;
/// the first failure is reported in [`ReplayResult::first_error`] so
/// callers can surface it.
///
/// Under [`Timing::Faithful`] and [`Timing::Scaled`], a multi-stream
/// trace on a time-parameterized target runs through the overlapped
/// discrete-event engine: independent streams genuinely proceed in
/// parallel, contending for the shared device, instead of being
/// serialized through one merged order. As-fast-as-possible replay and
/// single-stream traces keep the classic serialized path byte-for-byte.
pub fn replay_with(target: &mut dyn Target, trace: &Trace, config: &ReplayConfig) -> ReplayResult {
    if !matches!(config.timing, Timing::Afap)
        && trace.stream_ids().len() > 1
        && target.supports_timed()
    {
        return replay_overlapped(target, trace, config);
    }
    let order = schedule(trace, config.timing, config.seed);
    let path_ids = resolve_paths(target, trace);
    let mut fds = FdTable::default();
    let mut ops = 0u64;
    let mut errors = 0u64;
    let mut histogram = Log2Histogram::new();
    let mut first_error = None;
    let start = target.now();
    let mut next_tick = start + TICK_EVERY;

    for &i in &order {
        let entry = &trace.entries[i];
        if let Some(due) = config.timing.due(entry.at) {
            // Walk the clock to the arrival time, firing the flusher on
            // its cadence along the way (afap takes neither branch, so
            // the legacy fast path is untouched).
            let due_abs = start + due;
            while next_tick <= due_abs {
                let gap = next_tick - target.now();
                if !gap.is_zero() {
                    target.advance(gap);
                }
                target.background_tick();
                next_tick += TICK_EVERY;
            }
            let now = target.now();
            if now < due_abs {
                target.advance(due_abs - now);
            }
        }
        let before = target.now();
        match apply_op(target, &mut fds, &entry.op, path_ids[i]) {
            Ok(()) => {
                ops += 1;
                histogram.record(target.now() - before);
            }
            Err(e) => {
                errors += 1;
                if first_error.is_none() {
                    first_error = Some(ReplayError {
                        index: i,
                        op: entry.op.to_line(),
                        message: e.to_string(),
                    });
                }
            }
        }
    }
    ReplayResult {
        ops,
        errors,
        duration: target.now() - start,
        histogram,
        first_error,
    }
}

/// Executes one operation at instant `issue` through the target's
/// time-parameterized interface, returning its decomposed cost. State
/// effects (handle table, namespace, cache) match [`apply_op`]; only
/// the clock discipline differs.
fn apply_op_timed(
    target: &mut dyn Target,
    fds: &mut FdTable,
    op: &TraceOp,
    id: Option<PathId>,
    issue: Nanos,
) -> SimResult<OpCost> {
    let ensure_open = |target: &mut dyn Target,
                       fds: &mut FdTable,
                       path: &str,
                       at: Nanos|
     -> SimResult<(Fd, OpCost)> {
        if let Some(fd) = fds.get(id, path) {
            return Ok((fd, OpCost::default()));
        }
        let (fd, cost) = target.open_at(id, path, at)?;
        fds.insert(id, path, fd);
        Ok((fd, cost))
    };
    match op {
        TraceOp::Create(p) => target.create_at(id, p, issue),
        TraceOp::Mkdir(p) => target.mkdir_at(id, p, issue),
        TraceOp::Open(p) => ensure_open(target, fds, p, issue).map(|(_, c)| c),
        TraceOp::Close(p) => {
            if let Some(fd) = fds.remove(id, p) {
                target.close(fd)?;
            }
            Ok(OpCost::default())
        }
        TraceOp::Read { path, offset, len } => {
            let (fd, open_cost) = ensure_open(target, fds, path, issue)?;
            let c = target.read_at(
                fd,
                Bytes::new(*offset),
                Bytes::new(*len),
                issue + open_cost.total(),
            )?;
            Ok(OpCost {
                cpu: open_cost.cpu + c.cpu,
                device: open_cost.device + c.device,
            })
        }
        TraceOp::Write { path, offset, len } => {
            let (fd, open_cost) = ensure_open(target, fds, path, issue)?;
            let c = target.write_at(
                fd,
                Bytes::new(*offset),
                Bytes::new(*len),
                issue + open_cost.total(),
            )?;
            Ok(OpCost {
                cpu: open_cost.cpu + c.cpu,
                device: open_cost.device + c.device,
            })
        }
        TraceOp::SetSize { path, size } => {
            let (fd, open_cost) = ensure_open(target, fds, path, issue)?;
            let c = target.set_size_at(fd, Bytes::new(*size), issue + open_cost.total())?;
            Ok(OpCost {
                cpu: open_cost.cpu + c.cpu,
                device: open_cost.device + c.device,
            })
        }
        TraceOp::Fsync(p) => {
            let (fd, open_cost) = ensure_open(target, fds, p, issue)?;
            let c = target.fsync_at(fd, issue + open_cost.total())?;
            Ok(OpCost {
                cpu: open_cost.cpu + c.cpu,
                device: open_cost.device + c.device,
            })
        }
        TraceOp::Stat(p) => target.stat_at(id, p, issue),
        TraceOp::Unlink(p) => {
            if let Some(fd) = fds.remove(id, p) {
                let _ = target.close(fd);
            }
            target.unlink_at(id, p, issue)
        }
    }
}

/// What the overlapped replay engine pops from its event queue.
#[derive(Debug, Clone, Copy)]
enum ReplayEvent {
    /// Re-evaluate stream `s`'s head entry for issue.
    TryIssue(usize),
    /// Background-flusher tick.
    Tick,
}

/// Timed multi-stream replay with genuine overlap: each trace stream is
/// a scheduler process issuing its entries in program order at
/// `max(recorded due time, predecessor completion, dependency
/// completions)`, with media phases serializing on the shared device
/// and the flusher ticking on its cadence. The happens-before edges are
/// the same ones the serialized merge respects, so the replay is
/// faithful to the trace's ordering semantics — it just stops
/// pretending the streams took turns.
fn replay_overlapped(
    target: &mut dyn Target,
    trace: &Trace,
    config: &ReplayConfig,
) -> ReplayResult {
    let entries = &trace.entries;
    let n = entries.len();
    let ids = trace.stream_ids();
    let stream_index: FnvHashMap<u32, usize> =
        ids.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
    for (i, e) in entries.iter().enumerate() {
        queues[stream_index[&e.stream]].push(i);
    }
    let dep = dep_edges(trace);
    let path_ids = resolve_paths(target, trace);
    let mut fds = FdTable::default();

    let start = target.now();
    let due_abs = |i: usize| start + config.timing.due(entries[i].at).unwrap_or(Nanos::ZERO);
    let mut done = vec![false; n];
    let mut completion = vec![Nanos::ZERO; n];
    let mut stream_last = vec![start; queues.len()];
    let mut cursor = vec![0usize; queues.len()];
    // The shared-device token from rb-simcore: the same serialization
    // primitive the workload scheduler uses.
    let mut device = DeviceQueue::idle_from(start);
    let mut remaining = n;
    let mut ops = 0u64;
    let mut errors = 0u64;
    let mut histogram = Log2Histogram::new();
    let mut first_error = None;
    let mut finished = start;

    let mut queue: EventQueue<ReplayEvent> = EventQueue::new();
    for (s, q) in queues.iter().enumerate() {
        if let Some(&i) = q.first() {
            queue.schedule(due_abs(i), ReplayEvent::TryIssue(s));
        }
    }
    queue.schedule(start + TICK_EVERY, ReplayEvent::Tick);

    while let Some((now, event)) = queue.pop() {
        match event {
            ReplayEvent::Tick => {
                if remaining == 0 {
                    continue; // drained: stop rescheduling
                }
                let begin = device.next_free().max(now);
                let spent = target.tick_at(begin);
                if !spent.is_zero() {
                    device.serve(begin, spent);
                }
                queue.schedule(now + TICK_EVERY, ReplayEvent::Tick);
            }
            ReplayEvent::TryIssue(s) => {
                let Some(&i) = queues[s].get(cursor[s]) else {
                    continue; // stream already drained
                };
                // Blocked on an unexecuted dependency: a broadcast at
                // that dependency's completion will retrigger us.
                if dep[i].iter().any(|d| d.is_some_and(|j| !done[j])) {
                    continue;
                }
                let mut ready = due_abs(i).max(stream_last[s]);
                for d in dep[i].iter().flatten() {
                    ready = ready.max(completion[*d]);
                }
                if ready > now {
                    queue.schedule(ready, ReplayEvent::TryIssue(s));
                    continue;
                }
                let completed =
                    match apply_op_timed(target, &mut fds, &entries[i].op, path_ids[i], now) {
                        Ok(cost) => {
                            ops += 1;
                            let after_cpu = now + cost.cpu;
                            let completed = if cost.device.is_zero() {
                                after_cpu
                            } else {
                                device.serve(after_cpu, cost.device)
                            };
                            histogram.record(completed - now);
                            completed
                        }
                        Err(e) => {
                            errors += 1;
                            if first_error.is_none() {
                                first_error = Some(ReplayError {
                                    index: i,
                                    op: entries[i].op.to_line(),
                                    message: e.to_string(),
                                });
                            }
                            now
                        }
                    };
                done[i] = true;
                completion[i] = completed;
                stream_last[s] = completed;
                cursor[s] += 1;
                remaining -= 1;
                finished = finished.max(completed);
                // Wake this stream for its next entry, and every other
                // stream whose head might have been waiting on `i`.
                if let Some(&j) = queues[s].get(cursor[s]) {
                    queue.schedule(completed.max(due_abs(j)), ReplayEvent::TryIssue(s));
                }
                for t in 0..queues.len() {
                    if t != s && queues[t].get(cursor[t]).is_some() {
                        queue.schedule(completed, ReplayEvent::TryIssue(t));
                    }
                }
            }
        }
    }
    // The timed ops never moved the target clock; walk it forward so
    // callers see a consistent timeline.
    target.advance(finished - target.now());
    ReplayResult {
        ops,
        errors,
        duration: finished - start,
        histogram,
        first_error,
    }
}

/// Replays a trace as fast as possible with seed 0 — the classic
/// replay, byte-identical to the pre-v2 driver on v1 traces.
pub fn replay(target: &mut dyn Target, trace: &Trace) -> ReplayResult {
    replay_with(target, trace, &ReplayConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{TraceEntry, TraceVersion};
    use crate::testutil::MemTarget;

    /// Two streams touching disjoint paths plus one shared path, with
    /// timestamps.
    fn crossed_trace() -> Trace {
        Trace::from_text(
            "# rocketbench-trace v2\n\
             0 0 create /shared\n\
             0 1000000 open /shared\n\
             0 2000000 write /shared 0 4096\n\
             1 2500000 create /b\n\
             1 3000000 write /b 0 4096\n\
             1 3500000 write /shared 4096 4096\n\
             0 4000000 read /shared 0 4096\n\
             1 5000000 read /b 0 4096\n\
             0 6000000 close /shared\n\
             1 7000000 unlink /b\n",
        )
        .unwrap()
    }

    fn path_order(trace: &Trace, order: &[usize], path: &str) -> Vec<usize> {
        order
            .iter()
            .copied()
            .filter(|&i| trace.entries[i].op.path() == path)
            .collect()
    }

    #[test]
    fn single_stream_schedule_is_trace_order_at_any_seed() {
        let trace = Trace::from_ops(crate::model::tests::all_variants());
        for seed in 0..16 {
            for timing in [
                Timing::Afap,
                Timing::Faithful,
                Timing::Scaled { factor: 4.0 },
            ] {
                let order = schedule(&trace, timing, seed);
                assert_eq!(order, (0..trace.len()).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn same_path_ops_never_reorder_at_any_seed() {
        let trace = crossed_trace();
        let expected = path_order(&trace, &(0..trace.len()).collect::<Vec<_>>(), "/shared");
        for seed in 0..64 {
            for timing in [
                Timing::Afap,
                Timing::Faithful,
                Timing::Scaled { factor: 10.0 },
            ] {
                let order = schedule(&trace, timing, seed);
                assert_eq!(
                    path_order(&trace, &order, "/shared"),
                    expected,
                    "seed {seed} timing {timing} reordered /shared"
                );
                // Program order within each stream is preserved too.
                for stream in trace.stream_ids() {
                    let mine: Vec<usize> = order
                        .iter()
                        .copied()
                        .filter(|&i| trace.entries[i].stream == stream)
                        .collect();
                    let mut sorted = mine.clone();
                    sorted.sort_unstable();
                    assert_eq!(mine, sorted, "stream {stream} out of program order");
                }
            }
        }
    }

    #[test]
    fn creates_never_overtake_parent_mkdir() {
        let trace = Trace::from_text(
            "# rocketbench-trace v2\n\
             0 0 mkdir /d\n\
             1 100 create /d/f\n\
             1 200 write /d/f 0 4096\n\
             0 300 create /d/g\n",
        )
        .unwrap();
        for seed in 0..64 {
            let order = schedule(&trace, Timing::Afap, seed);
            let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
            assert!(pos(0) < pos(1), "seed {seed}: create /d/f before mkdir /d");
            assert!(pos(0) < pos(3), "seed {seed}: create /d/g before mkdir /d");
        }
        // And the replay actually succeeds on an empty target.
        let mut target = MemTarget::new();
        let r = replay_with(
            &mut target,
            &trace,
            &ReplayConfig {
                timing: Timing::Afap,
                seed: 11,
            },
        );
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn schedule_is_seed_deterministic_and_seed_sensitive() {
        let trace = crossed_trace();
        let a = schedule(&trace, Timing::Afap, 7);
        let b = schedule(&trace, Timing::Afap, 7);
        assert_eq!(a, b);
        // Some seed yields a different (still legal) interleave.
        let mut saw_different = false;
        for seed in 0..32 {
            if schedule(&trace, Timing::Afap, seed) != a {
                saw_different = true;
                break;
            }
        }
        assert!(saw_different, "merge ignored the seed");
    }

    #[test]
    fn afap_replay_matches_legacy_op_for_op() {
        // The executed op sequence for a single-stream trace is exactly
        // the trace, and the clock only moves by op latencies.
        let trace = Trace::from_text(
            "mkdir /t\ncreate /t/a\nopen /t/a\nsetsize /t/a 65536\n\
             write /t/a 0 4096\nread /t/a 0 4096\nfsync /t/a\nclose /t/a\nunlink /t/a\n",
        )
        .unwrap();
        let mut target = MemTarget::new();
        let result = replay(&mut target, &trace);
        assert_eq!(result.errors, 0);
        assert_eq!(result.ops, trace.len() as u64);
        assert!(result.first_error.is_none());
        let verbs: Vec<String> = target.log.iter().map(|(v, _)| v.clone()).collect();
        let expected: Vec<String> = trace.ops().map(|o| o.verb().to_string()).collect();
        assert_eq!(verbs, expected);
        // Afap: duration is just the sum of op latencies (one tick per
        // op in MemTarget), no recorded-gap waiting, no flusher ticks.
        assert_eq!(result.duration, MemTarget::OP_LATENCY * trace.len() as u64);
        assert_eq!(target.ticks, 0);
    }

    #[test]
    fn faithful_replay_honours_recorded_gaps() {
        let trace = crossed_trace();
        let span = trace.span();
        let mut target = MemTarget::new();
        let result = replay_with(
            &mut target,
            &trace,
            &ReplayConfig {
                timing: Timing::Faithful,
                seed: 3,
            },
        );
        assert_eq!(result.errors, 0);
        // The last op arrives at `span`; replay cannot finish earlier.
        assert!(
            result.duration >= span,
            "duration {} < recorded span {}",
            result.duration,
            span
        );
        // And afap is strictly faster than faithful on the same trace.
        let mut fast = MemTarget::new();
        let afap = replay_with(&mut fast, &trace, &ReplayConfig::default());
        assert!(afap.duration < result.duration);
    }

    #[test]
    fn scaled_replay_compresses_the_timeline() {
        let trace = crossed_trace();
        let factor = 10.0;
        let mut target = MemTarget::new();
        let scaled = replay_with(
            &mut target,
            &trace,
            &ReplayConfig {
                timing: Timing::Scaled { factor },
                seed: 3,
            },
        );
        let mut target = MemTarget::new();
        let faithful = replay_with(
            &mut target,
            &trace,
            &ReplayConfig {
                timing: Timing::Faithful,
                seed: 3,
            },
        );
        assert!(scaled.duration < faithful.duration);
        assert!(scaled.duration >= trace.span().mul_f64(1.0 / factor));
    }

    #[test]
    fn timed_replay_fires_background_ticks() {
        let mut trace = Trace {
            version: TraceVersion::V2,
            entries: vec![
                TraceEntry {
                    at: Nanos::ZERO,
                    stream: 0,
                    op: TraceOp::Create("/a".into()),
                },
                TraceEntry {
                    at: Nanos::from_secs(12),
                    stream: 0,
                    op: TraceOp::Stat("/a".into()),
                },
            ],
        };
        trace.normalize_version();
        let mut target = MemTarget::new();
        let result = replay_with(
            &mut target,
            &trace,
            &ReplayConfig {
                timing: Timing::Faithful,
                seed: 0,
            },
        );
        assert_eq!(result.errors, 0);
        // 12 s gap crosses the 5 s flusher cadence twice.
        assert_eq!(target.ticks, 2);
    }

    #[test]
    fn errors_are_counted_and_first_is_reported() {
        let trace =
            Trace::from_text("stat /missing\nread /also-missing 0 4096\ncreate /ok\n").unwrap();
        let mut target = MemTarget::new();
        let r = replay(&mut target, &trace);
        assert_eq!(r.errors, 2);
        assert_eq!(r.ops, 1);
        let first = r.first_error.expect("first error captured");
        assert_eq!(first.index, 0);
        assert_eq!(first.op, "stat /missing");
        assert!(first.to_string().contains("stat /missing"));
    }

    #[test]
    fn multi_stream_replay_is_deterministic_per_seed() {
        let trace = crossed_trace();
        let run = |seed: u64| {
            let mut t = MemTarget::new();
            let r = replay_with(
                &mut t,
                &trace,
                &ReplayConfig {
                    timing: Timing::Afap,
                    seed,
                },
            );
            (r.ops, r.errors, r.duration, t.log)
        };
        assert_eq!(run(5), run(5));
        assert_eq!(run(6), run(6));
    }
}
