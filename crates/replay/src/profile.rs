//! Trace characterization: what a trace *is*, before you replay it.
//!
//! The paper's complaint about trace-based evaluation is that papers
//! replay traces nobody can inspect. [`characterize`] turns a trace
//! into the numbers a reader needs to judge it — operation mix,
//! read/write ratio, working-set size, sequentiality, inter-arrival
//! distribution — and [`TraceProfile::render`] prints them in a stable
//! text form that CI can diff against a committed snapshot to catch
//! format or semantics drift.

use crate::model::{Trace, TraceOp, TraceVersion};
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use rb_stats::histogram::Log2Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary statistics of one trace.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// Format version of the source trace.
    pub version: TraceVersion,
    /// Total entries.
    pub entries: u64,
    /// Distinct stream (thread) ids.
    pub streams: u64,
    /// Recorded span (largest relative timestamp; zero for v1).
    pub span: Nanos,
    /// Operation counts per verb, sorted by verb.
    pub op_counts: Vec<(String, u64)>,
    /// Read operations.
    pub reads: u64,
    /// Write operations.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: Bytes,
    /// Bytes written.
    pub write_bytes: Bytes,
    /// Distinct paths referenced.
    pub unique_paths: u64,
    /// Working-set estimate: per path, the largest extent addressed
    /// (offset + length of data ops, or the largest `setsize`), summed
    /// over all paths.
    pub working_set: Bytes,
    /// Fraction of data operations (reads + writes) continuing exactly
    /// where the previous data operation on the same path ended. The
    /// first access to a path counts as sequential iff it starts at
    /// offset zero.
    pub sequentiality: f64,
    /// Inter-arrival times between consecutive entries (v2 only; empty
    /// for v1, which records no timing).
    pub interarrival: Log2Histogram,
}

impl TraceProfile {
    /// Read:write operation ratio, when any writes exist.
    pub fn read_write_ratio(&self) -> Option<f64> {
        if self.writes == 0 {
            None
        } else {
            Some(self.reads as f64 / self.writes as f64)
        }
    }

    /// Renders the profile as stable, diff-friendly text.
    ///
    /// Every line is a deterministic function of the trace (sorted
    /// maps, fixed float precision), which is what lets CI keep a
    /// golden copy under version control and `diff` against it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace profile ({})", self.version.label());
        let _ = writeln!(
            out,
            "  ops:           {} over {} stream(s), span {}ns",
            self.entries,
            self.streams,
            self.span.as_nanos()
        );
        let mix: Vec<String> = self
            .op_counts
            .iter()
            .map(|(verb, n)| {
                format!(
                    "{verb} {n} ({:.1}%)",
                    *n as f64 / self.entries.max(1) as f64 * 100.0
                )
            })
            .collect();
        let _ = writeln!(out, "  op mix:        {}", mix.join(", "));
        let _ = writeln!(
            out,
            "  read/write:    ops {}/{}{} bytes {}/{}",
            self.reads,
            self.writes,
            match self.read_write_ratio() {
                Some(r) => format!(" (ratio {r:.2}),"),
                None => ",".into(),
            },
            self.read_bytes.as_u64(),
            self.write_bytes.as_u64()
        );
        let _ = writeln!(
            out,
            "  working set:   {} bytes over {} path(s)",
            self.working_set.as_u64(),
            self.unique_paths
        );
        let _ = writeln!(out, "  sequentiality: {:.3}", self.sequentiality);
        if self.interarrival.is_empty() {
            let _ = writeln!(out, "  inter-arrival: (no timing recorded)");
        } else {
            let buckets: Vec<String> = (0..64)
                .filter(|&k| self.interarrival.count(k) > 0)
                .map(|k| format!("2^{k}ns:{}", self.interarrival.count(k)))
                .collect();
            let _ = writeln!(out, "  inter-arrival: {}", buckets.join(" "));
        }
        out
    }
}

/// Computes a trace's [`TraceProfile`].
pub fn characterize(trace: &Trace) -> TraceProfile {
    let mut op_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut read_bytes = 0u64;
    let mut write_bytes = 0u64;
    // Per path: (largest extent seen, end of the last data op).
    let mut per_path: BTreeMap<&str, (u64, Option<u64>)> = BTreeMap::new();
    let mut data_ops = 0u64;
    let mut sequential = 0u64;
    let mut interarrival = Log2Histogram::new();
    let mut prev_at: Option<Nanos> = None;

    for e in &trace.entries {
        *op_counts.entry(e.op.verb()).or_insert(0) += 1;
        let slot = per_path.entry(e.op.path()).or_insert((0, None));
        match &e.op {
            TraceOp::Read { offset, len, .. } | TraceOp::Write { offset, len, .. } => {
                let end = offset.saturating_add(*len);
                slot.0 = slot.0.max(end);
                data_ops += 1;
                let continues = match slot.1 {
                    Some(prev_end) => *offset == prev_end,
                    None => *offset == 0,
                };
                if continues {
                    sequential += 1;
                }
                slot.1 = Some(end);
                if matches!(e.op, TraceOp::Read { .. }) {
                    reads += 1;
                    read_bytes = read_bytes.saturating_add(*len);
                } else {
                    writes += 1;
                    write_bytes = write_bytes.saturating_add(*len);
                }
            }
            TraceOp::SetSize { size, .. } => {
                slot.0 = slot.0.max(*size);
            }
            _ => {}
        }
        if trace.version == TraceVersion::V2 {
            if let Some(prev) = prev_at {
                interarrival.record(e.at.saturating_sub(prev));
            }
            prev_at = Some(e.at);
        }
    }

    TraceProfile {
        version: trace.version,
        entries: trace.len() as u64,
        streams: trace.stream_ids().len() as u64,
        span: trace.span(),
        op_counts: op_counts
            .into_iter()
            .map(|(v, n)| (v.to_string(), n))
            .collect(),
        reads,
        writes,
        read_bytes: Bytes::new(read_bytes),
        write_bytes: Bytes::new(write_bytes),
        unique_paths: per_path.len() as u64,
        working_set: Bytes::new(per_path.values().map(|(extent, _)| extent).sum()),
        sequentiality: if data_ops == 0 {
            0.0
        } else {
            sequential as f64 / data_ops as f64
        },
        interarrival,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_text(
            "# rocketbench-trace v2\n\
             0 0 mkdir /d\n\
             0 1000 create /d/a\n\
             0 2000 open /d/a\n\
             0 3000 write /d/a 0 8192\n\
             0 4000 write /d/a 8192 8192\n\
             1 4500 create /d/b\n\
             1 5000 setsize /d/b 65536\n\
             0 6000 read /d/a 0 4096\n\
             1 8000 read /d/b 32768 4096\n\
             0 9000 close /d/a\n",
        )
        .unwrap()
    }

    #[test]
    fn counts_and_mix() {
        let p = characterize(&sample());
        assert_eq!(p.entries, 10);
        assert_eq!(p.streams, 2);
        assert_eq!(p.span, Nanos::from_nanos(9000));
        assert_eq!(p.reads, 2);
        assert_eq!(p.writes, 2);
        assert_eq!(p.read_bytes, Bytes::new(8192));
        assert_eq!(p.write_bytes, Bytes::new(16384));
        assert_eq!(p.read_write_ratio(), Some(1.0));
        let creates = p.op_counts.iter().find(|(v, _)| v == "create").unwrap().1;
        assert_eq!(creates, 2);
    }

    #[test]
    fn working_set_is_per_path_max_extent() {
        let p = characterize(&sample());
        // /d/a: writes reach 16384; /d/b: setsize 65536 beats the read
        // extent 36864; /d itself contributes nothing.
        assert_eq!(p.working_set, Bytes::new(16384 + 65536));
        assert_eq!(p.unique_paths, 3); // /d, /d/a, /d/b
    }

    #[test]
    fn sequentiality_tracks_continuations() {
        let p = characterize(&sample());
        // write@0 (first, offset 0: seq), write@8192 (continues: seq),
        // read@0 on /d/a (last end 16384: not), read@32768 on /d/b
        // (first, nonzero offset: not) => 2/4.
        assert!((p.sequentiality - 0.5).abs() < 1e-12);
    }

    #[test]
    fn v1_has_no_interarrival() {
        let v1 = Trace::from_text("create /a\nstat /a\n").unwrap();
        let p = characterize(&v1);
        assert!(p.interarrival.is_empty());
        assert!(p.render().contains("no timing recorded"));
        assert_eq!(p.span, Nanos::ZERO);
    }

    #[test]
    fn render_is_stable() {
        let a = characterize(&sample()).render();
        let b = characterize(&sample()).render();
        assert_eq!(a, b);
        assert!(a.contains("trace profile (v2)"));
        assert!(a.contains("sequentiality: 0.500"));
        // Inter-arrival gaps were recorded (9 consecutive pairs).
        assert_eq!(characterize(&sample()).interarrival.total(), 9);
    }
}
