//! Recording proxy: wraps a [`Target`], passing operations through
//! while appending them to a [`Trace`].
//!
//! The recorder emits v2 traces: every operation is stamped with its
//! arrival time (the target clock when the operation was issued,
//! relative to when recording started) and the recorder's current
//! stream id. A harness driving several logical threads through one
//! recorder calls [`Recorder::set_stream`] at context switches so the
//! trace keeps the per-thread structure that dependency-aware replay
//! needs.

use crate::model::{Trace, TraceEntry, TraceOp, TraceVersion};
use crate::target::Target;
use rb_simcore::error::SimResult;
use rb_simcore::fnv::FnvHashMap;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use rb_simfs::stack::Fd;

/// A recording proxy: wraps a target, passing operations through while
/// appending them to a trace.
pub struct Recorder<'t, T: Target> {
    inner: &'t mut T,
    trace: Trace,
    paths: FnvHashMap<Fd, String>,
    start: Nanos,
    stream: u32,
}

impl<'t, T: Target> Recorder<'t, T> {
    /// Wraps a target; timestamps are relative to the target's clock at
    /// this moment.
    pub fn new(inner: &'t mut T) -> Self {
        let start = inner.now();
        Recorder {
            inner,
            trace: Trace {
                version: TraceVersion::V2,
                entries: Vec::new(),
            },
            paths: FnvHashMap::default(),
            start,
            stream: 0,
        }
    }

    /// Sets the stream (thread) id stamped on subsequent operations.
    pub fn set_stream(&mut self, stream: u32) {
        self.stream = stream;
    }

    /// The stream id currently being stamped.
    pub fn stream(&self) -> u32 {
        self.stream
    }

    /// Finishes recording, returning the (v2) trace.
    pub fn finish(self) -> Trace {
        self.trace
    }

    fn path_of(&self, fd: Fd) -> String {
        self.paths
            .get(&fd)
            .cloned()
            .unwrap_or_else(|| format!("<fd{fd}>"))
    }

    /// Arrival timestamp for an operation issued now.
    fn at(&self) -> Nanos {
        self.inner.now() - self.start
    }

    fn push(&mut self, at: Nanos, op: TraceOp) {
        self.trace.entries.push(TraceEntry {
            at,
            stream: self.stream,
            op,
        });
    }
}

impl<T: Target> Target for Recorder<'_, T> {
    fn name(&self) -> String {
        format!("record:{}", self.inner.name())
    }

    fn now(&self) -> Nanos {
        self.inner.now()
    }

    fn advance(&mut self, d: Nanos) {
        self.inner.advance(d);
    }

    fn create(&mut self, path: &str) -> SimResult<Nanos> {
        let at = self.at();
        let r = self.inner.create(path)?;
        self.push(at, TraceOp::Create(path.to_string()));
        Ok(r)
    }

    fn mkdir(&mut self, path: &str) -> SimResult<Nanos> {
        let at = self.at();
        let r = self.inner.mkdir(path)?;
        self.push(at, TraceOp::Mkdir(path.to_string()));
        Ok(r)
    }

    fn unlink(&mut self, path: &str) -> SimResult<Nanos> {
        let at = self.at();
        let r = self.inner.unlink(path)?;
        self.push(at, TraceOp::Unlink(path.to_string()));
        Ok(r)
    }

    fn stat(&mut self, path: &str) -> SimResult<Nanos> {
        let at = self.at();
        let r = self.inner.stat(path)?;
        self.push(at, TraceOp::Stat(path.to_string()));
        Ok(r)
    }

    fn open(&mut self, path: &str) -> SimResult<Fd> {
        let at = self.at();
        let fd = self.inner.open(path)?;
        self.paths.insert(fd, path.to_string());
        self.push(at, TraceOp::Open(path.to_string()));
        Ok(fd)
    }

    fn close(&mut self, fd: Fd) -> SimResult<()> {
        let at = self.at();
        let path = self.path_of(fd);
        self.inner.close(fd)?;
        self.paths.remove(&fd);
        self.push(at, TraceOp::Close(path));
        Ok(())
    }

    fn set_size(&mut self, fd: Fd, size: Bytes) -> SimResult<Nanos> {
        let at = self.at();
        let r = self.inner.set_size(fd, size)?;
        let op = TraceOp::SetSize {
            path: self.path_of(fd),
            size: size.as_u64(),
        };
        self.push(at, op);
        Ok(r)
    }

    fn read(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
        let at = self.at();
        let r = self.inner.read(fd, offset, len)?;
        let op = TraceOp::Read {
            path: self.path_of(fd),
            offset: offset.as_u64(),
            len: len.as_u64(),
        };
        self.push(at, op);
        Ok(r)
    }

    fn write(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
        let at = self.at();
        let r = self.inner.write(fd, offset, len)?;
        let op = TraceOp::Write {
            path: self.path_of(fd),
            offset: offset.as_u64(),
            len: len.as_u64(),
        };
        self.push(at, op);
        Ok(r)
    }

    fn fsync(&mut self, fd: Fd) -> SimResult<Nanos> {
        let at = self.at();
        let r = self.inner.fsync(fd)?;
        let op = TraceOp::Fsync(self.path_of(fd));
        self.push(at, op);
        Ok(r)
    }

    fn drop_caches(&mut self) -> bool {
        self.inner.drop_caches()
    }

    fn set_cache_capacity_pages(&mut self, pages: u64) {
        self.inner.set_cache_capacity_pages(pages);
    }

    fn cache_hit_ratio(&self) -> Option<f64> {
        self.inner.cache_hit_ratio()
    }

    fn cache_stats(&self) -> Option<rb_simcache::page::CacheStats> {
        self.inner.cache_stats()
    }

    fn background_tick(&mut self) {
        self.inner.background_tick();
    }
}
