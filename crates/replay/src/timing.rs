//! Timing policies: *when* replayed operations are issued.
//!
//! The replay-taxonomy literature (Kahanwal & Singh's survey of file
//! system performance evaluation techniques) distinguishes replay by
//! its timing discipline, because the discipline changes what is being
//! measured:
//!
//! | policy                | issues ops…                       | measures                            |
//! |-----------------------|-----------------------------------|-------------------------------------|
//! | [`Timing::Afap`]      | back to back, as fast as possible | peak service capacity               |
//! | [`Timing::Faithful`]  | at their recorded arrival times   | behaviour under the original load   |
//! | [`Timing::Scaled`]    | at recorded times ÷ `factor`      | what-if: the original load × factor |
//!
//! `Afap` reproduces the pre-v2 replay behaviour byte for byte; the
//! timed policies honour recorded inter-arrival gaps through the
//! target's clock ([`Target::advance`](crate::Target::advance)), so on
//! the simulated stack they are deterministic and free, and on a real
//! target they sleep real time.

use rb_simcore::time::Nanos;

/// When to issue each replayed operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Timing {
    /// As fast as possible: ignore recorded timestamps entirely (the
    /// classic, and previously only, behaviour).
    Afap,
    /// Honour recorded inter-arrival gaps: an operation is not issued
    /// before its recorded arrival time (relative to replay start).
    Faithful,
    /// Temporal scaling: recorded arrival times are divided by
    /// `factor`, so `factor > 1` accelerates the workload (`scaled=10`
    /// replays at ten times the recorded rate) and `factor < 1` slows
    /// it down.
    Scaled {
        /// Speed multiplier applied to the recorded timeline.
        factor: f64,
    },
}

impl Timing {
    /// Parses a CLI spelling: `afap`, `faithful`, or `scaled=N` (N a
    /// positive factor, e.g. `scaled=10` or `scaled=0.5`).
    pub fn parse(s: &str) -> Result<Timing, String> {
        let s = s.trim();
        match s {
            "afap" => Ok(Timing::Afap),
            "faithful" => Ok(Timing::Faithful),
            _ => match s.strip_prefix("scaled=") {
                Some(digits) => {
                    let factor = digits
                        .parse::<f64>()
                        .map_err(|e| format!("bad timing {s:?}: {e}"))?;
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(format!(
                            "bad timing {s:?}: factor must be a positive finite number"
                        ));
                    }
                    Ok(Timing::Scaled { factor })
                }
                None => Err(format!(
                    "unknown timing {s:?}; use afap, faithful or scaled=N"
                )),
            },
        }
    }

    /// Canonical label (`afap` / `faithful` / `scaled=N`); parses back
    /// via [`Timing::parse`].
    pub fn label(&self) -> String {
        match self {
            Timing::Afap => "afap".into(),
            Timing::Faithful => "faithful".into(),
            Timing::Scaled { factor } => format!("scaled={factor}"),
        }
    }

    /// The replay-relative instant an operation recorded at `at` is due,
    /// or `None` when the policy ignores timestamps.
    pub fn due(&self, at: Nanos) -> Option<Nanos> {
        match *self {
            Timing::Afap => None,
            Timing::Faithful => Some(at),
            Timing::Scaled { factor } => Some(at.mul_f64(1.0 / factor)),
        }
    }
}

impl std::fmt::Display for Timing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_label_roundtrip() {
        for spec in ["afap", "faithful", "scaled=10", "scaled=0.5"] {
            let t = Timing::parse(spec).unwrap();
            assert_eq!(t.label(), spec);
            assert_eq!(Timing::parse(&t.label()).unwrap(), t);
        }
        assert!(Timing::parse("warp").is_err());
        assert!(Timing::parse("scaled=0").is_err());
        assert!(Timing::parse("scaled=-2").is_err());
        assert!(Timing::parse("scaled=inf").is_err());
        assert!(Timing::parse("scaled=x").is_err());
    }

    #[test]
    fn due_times_follow_the_policy() {
        let at = Nanos::from_micros(100);
        assert_eq!(Timing::Afap.due(at), None);
        assert_eq!(Timing::Faithful.due(at), Some(at));
        assert_eq!(
            Timing::Scaled { factor: 10.0 }.due(at),
            Some(Nanos::from_micros(10))
        );
        assert_eq!(
            Timing::Scaled { factor: 0.5 }.due(at),
            Some(Nanos::from_micros(200))
        );
    }
}
