//! Trace transformations: one captured trace, many scenarios.
//!
//! FBench's argument (Zhu et al.) is that *transformable* workload
//! descriptions are what make "what-if" exploration possible: a trace
//! that can only be replayed verbatim answers one question. This module
//! provides the composable transformations:
//!
//! * [`Transform::KeepOps`] — filter by operation kind;
//! * [`Transform::KeepPrefix`] — filter by path prefix;
//! * [`Transform::Remap`] — move a namespace prefix;
//! * [`Transform::Scale`] — spatial scaling: clone every stream onto a
//!   disjoint namespace, multiplying the offered load;
//! * [`merge`] — combine traces into one multi-stream trace.
//!
//! (Temporal scaling is a *replay* concern, not a trace rewrite: see
//! [`Timing::Scaled`](crate::Timing::Scaled).)
//!
//! All transformations preserve timestamps and per-stream program
//! order, and promote the result to v2 whenever it carries information
//! v1 cannot represent.

use crate::model::{Trace, TraceEntry, TraceOp};
use rb_simcore::error::{SimError, SimResult};
use rb_simcore::time::Nanos;
use std::collections::HashMap;

/// One trace rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transform {
    /// Keep only operations whose verb is listed (e.g. `read`, `write`).
    KeepOps(Vec<String>),
    /// Keep only operations whose path starts with the prefix.
    KeepPrefix(String),
    /// Rewrite paths under `from` to live under `to` instead.
    Remap {
        /// Prefix to match.
        from: String,
        /// Replacement prefix.
        to: String,
    },
    /// Spatial scaling: emit `clones` copies of the trace, each on a
    /// disjoint namespace (`/cloneK/...`) with its own stream ids, so
    /// the result offers `clones ×` the original load to the target.
    Scale {
        /// Total number of copies (1 = identity).
        clones: u32,
    },
}

impl Transform {
    /// Applies this transformation to a trace.
    pub fn apply(&self, trace: &Trace) -> SimResult<Trace> {
        let mut out = match self {
            Transform::KeepOps(verbs) => {
                for v in verbs {
                    if !TraceOp::VERBS.contains(&v.as_str()) {
                        return Err(SimError::BadConfig(format!(
                            "unknown op kind {v:?}; known: {}",
                            TraceOp::VERBS.join(",")
                        )));
                    }
                }
                Trace {
                    version: trace.version,
                    entries: trace
                        .entries
                        .iter()
                        .filter(|e| verbs.iter().any(|v| v == e.op.verb()))
                        .cloned()
                        .collect(),
                }
            }
            Transform::KeepPrefix(prefix) => Trace {
                version: trace.version,
                entries: trace
                    .entries
                    .iter()
                    .filter(|e| e.op.path().starts_with(prefix.as_str()))
                    .cloned()
                    .collect(),
            },
            Transform::Remap { from, to } => {
                if from.is_empty() {
                    return Err(SimError::BadConfig("remap needs a non-empty prefix".into()));
                }
                Trace {
                    version: trace.version,
                    entries: trace
                        .entries
                        .iter()
                        .map(|e| {
                            let path = e.op.path();
                            let op = match path.strip_prefix(from.as_str()) {
                                Some(rest) => e.op.with_path(format!("{to}{rest}")),
                                None => e.op.clone(),
                            };
                            TraceEntry { op, ..e.clone() }
                        })
                        .collect(),
                }
            }
            Transform::Scale { clones } => {
                if *clones == 0 {
                    return Err(SimError::BadConfig("scale needs at least one clone".into()));
                }
                let ids = trace.stream_ids();
                let first = ids.first().copied().unwrap_or(0);
                let stride = ids.last().map(|&s| s + 1).unwrap_or(1);
                let mut entries =
                    Vec::with_capacity(trace.len() * *clones as usize + *clones as usize);
                // Each clone namespace needs its root directory before
                // any cloned op lands in it; the dependency graph then
                // orders every clone's creates behind its mkdir.
                for k in 1..*clones {
                    entries.push(TraceEntry {
                        at: trace.entries.first().map(|e| e.at).unwrap_or_default(),
                        stream: first + k * stride,
                        op: TraceOp::Mkdir(format!("/clone{k}")),
                    });
                }
                // Entry-major emission keeps each clone's program order
                // and, for timestamped traces, keeps the global order
                // sorted by arrival time.
                for e in &trace.entries {
                    for k in 0..*clones {
                        let op = if k == 0 {
                            e.op.clone()
                        } else {
                            e.op.with_path(format!("/clone{k}{}", e.op.path()))
                        };
                        entries.push(TraceEntry {
                            at: e.at,
                            stream: e.stream + k * stride,
                            op,
                        });
                    }
                }
                Trace {
                    version: trace.version,
                    entries,
                }
            }
        };
        out.normalize_version();
        Ok(out)
    }
}

/// Applies a pipeline of transformations left to right.
pub fn apply(trace: &Trace, transforms: &[Transform]) -> SimResult<Trace> {
    let mut t = trace.clone();
    for step in transforms {
        t = step.apply(&t)?;
    }
    Ok(t)
}

/// Merges traces into one multi-stream trace.
///
/// Each input keeps its internal order and timestamps but gets a
/// disjoint range of stream ids, so previously separate traces become
/// concurrent streams for the dependency-aware replayer. Entries are
/// interleaved by arrival time, and the result is v2 — stream identity
/// is now meaningful.
///
/// Trace order is the ground truth, timestamps are advisory: an input
/// whose timestamps run backwards within a stream still merges in its
/// own program order (entries sort by the running per-stream maximum
/// of `at`, which is monotone by construction; ties keep input order).
pub fn merge(traces: &[Trace]) -> Trace {
    let mut keyed: Vec<(Nanos, TraceEntry)> = Vec::new();
    let mut offset = 0u32;
    for t in traces {
        let top = t.stream_ids().last().copied().unwrap_or(0);
        let mut seen: HashMap<u32, Nanos> = HashMap::new();
        for e in &t.entries {
            let key = seen
                .entry(e.stream)
                .and_modify(|m| *m = (*m).max(e.at))
                .or_insert(e.at);
            keyed.push((
                *key,
                TraceEntry {
                    at: e.at,
                    stream: e.stream + offset,
                    op: e.op.clone(),
                },
            ));
        }
        offset += top + 1;
    }
    keyed.sort_by_key(|(key, _)| *key);
    let mut out = Trace {
        version: crate::model::TraceVersion::V2,
        entries: keyed.into_iter().map(|(_, e)| e).collect(),
    };
    out.normalize_version();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceVersion;
    use rb_simcore::time::Nanos;

    fn sample() -> Trace {
        Trace::from_text(
            "# rocketbench-trace v2\n\
             0 0 mkdir /mail\n\
             0 100 create /mail/a\n\
             0 200 write /mail/a 0 4096\n\
             0 300 read /mail/a 0 4096\n\
             0 400 stat /logs/x\n",
        )
        .unwrap()
    }

    #[test]
    fn keep_ops_filters_by_verb() {
        let t = Transform::KeepOps(vec!["read".into(), "write".into()])
            .apply(&sample())
            .unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.ops().all(|o| o.verb() == "read" || o.verb() == "write"));
        // Timestamps survive.
        assert_eq!(t.entries[0].at, Nanos::from_nanos(200));
        // Unknown verbs are a config error.
        assert!(Transform::KeepOps(vec!["explode".into()])
            .apply(&sample())
            .is_err());
    }

    #[test]
    fn keep_prefix_filters_by_namespace() {
        let t = Transform::KeepPrefix("/mail".into())
            .apply(&sample())
            .unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.ops().all(|o| o.path().starts_with("/mail")));
    }

    #[test]
    fn remap_moves_a_prefix() {
        let t = Transform::Remap {
            from: "/mail".into(),
            to: "/spool/mail".into(),
        }
        .apply(&sample())
        .unwrap();
        assert_eq!(t.entries[1].op.path(), "/spool/mail/a");
        // Paths outside the prefix are untouched.
        assert_eq!(t.entries[4].op.path(), "/logs/x");
        assert!(Transform::Remap {
            from: "".into(),
            to: "/x".into()
        }
        .apply(&sample())
        .is_err());
    }

    #[test]
    fn scale_clones_onto_disjoint_namespaces() {
        let t = Transform::Scale { clones: 3 }.apply(&sample()).unwrap();
        // 5 ops x 3 clones, plus a root mkdir per new clone.
        assert_eq!(t.len(), 17);
        assert_eq!(t.version, TraceVersion::V2);
        assert_eq!(t.stream_ids(), vec![0, 1, 2]);
        // Clone 0 is the original namespace; clones 1.. are prefixed
        // and rooted by their own mkdir.
        assert!(t.ops().any(|o| o.path() == "/mail/a"));
        assert!(t.ops().any(|o| o.path() == "/clone1/mail/a"));
        assert!(t.ops().any(|o| o.path() == "/clone2/mail/a"));
        assert!(t
            .ops()
            .any(|o| o.verb() == "mkdir" && o.path() == "/clone1"));
        assert!(t
            .ops()
            .any(|o| o.verb() == "mkdir" && o.path() == "/clone2"));
        // Identity scale is the identity.
        let id = Transform::Scale { clones: 1 }.apply(&sample()).unwrap();
        assert_eq!(id, sample());
        assert!(Transform::Scale { clones: 0 }.apply(&sample()).is_err());
    }

    #[test]
    fn scaled_v1_trace_becomes_v2() {
        let v1 = Trace::from_text("create /a\nstat /a\n").unwrap();
        let t = Transform::Scale { clones: 2 }.apply(&v1).unwrap();
        assert_eq!(t.version, TraceVersion::V2, "streams need v2 to serialize");
        assert!(t.to_text().unwrap().starts_with("# rocketbench-trace v2"));
    }

    #[test]
    fn merge_renumbers_streams_and_sorts_by_time() {
        let a = Trace::from_text("create /a\nstat /a\n").unwrap();
        let b =
            Trace::from_text("# rocketbench-trace v2\n0 50 create /b\n1 150 stat /b\n").unwrap();
        let m = merge(&[a, b]);
        assert_eq!(m.version, TraceVersion::V2);
        assert_eq!(m.len(), 4);
        // First input keeps stream 0; second is offset past it (0,1 -> 1,2).
        assert_eq!(m.stream_ids(), vec![0, 1, 2]);
        // Stable sort by time: the t=0 ops of input a come first.
        assert_eq!(m.entries[0].op.path(), "/a");
        assert_eq!(m.entries[2].op.path(), "/b");
        // Program order inside each original trace survives.
        let a_ops: Vec<&str> = m
            .entries
            .iter()
            .filter(|e| e.stream == 0)
            .map(|e| e.op.verb())
            .collect();
        assert_eq!(a_ops, vec!["create", "stat"]);
    }

    #[test]
    fn merge_never_reorders_a_stream_with_backward_timestamps() {
        // Trace order is ground truth; timestamps are advisory. An
        // input whose clock runs backwards must still merge in program
        // order, or the merged trace would replay the write before the
        // create exists.
        let weird =
            Trace::from_text("# rocketbench-trace v2\n0 100 create /a\n0 50 write /a 0 4096\n")
                .unwrap();
        let other = Trace::from_text("# rocketbench-trace v2\n0 75 stat /b\n").unwrap();
        let m = merge(&[weird, other]);
        let stream0: Vec<&str> = m
            .entries
            .iter()
            .filter(|e| e.stream == 0)
            .map(|e| e.op.verb())
            .collect();
        assert_eq!(stream0, vec!["create", "write"]);
        // The other input still interleaves by time (75 sorts between
        // the running-max keys 100 and 100... i.e. before both).
        assert_eq!(m.entries[0].op.verb(), "stat");
    }

    #[test]
    fn pipeline_composes_left_to_right() {
        let t = apply(
            &sample(),
            &[
                Transform::KeepPrefix("/mail".into()),
                Transform::Remap {
                    from: "/mail".into(),
                    to: "/m2".into(),
                },
                Transform::Scale { clones: 2 },
            ],
        )
        .unwrap();
        assert_eq!(t.len(), 9);
        assert!(t.ops().all(|o| o.path().starts_with("/m2")
            || o.path().starts_with("/clone1/m2")
            || o.path() == "/clone1"));
    }
}
