//! The system-under-test interface: what a recorder can observe and a
//! replayer can drive.
//!
//! [`Target`] is the contract between every workload driver in the
//! stack — the flowop engine, the trace [`Recorder`](crate::Recorder)
//! and the [replay driver](crate::replay_with) — and whatever is being
//! measured. `rb_core` provides the two canonical implementations: the
//! deterministic simulated storage stack (`SimTarget`) and a real host
//! directory (`RealFsTarget`). The trait lives here, in the replay
//! crate, because replay is the most demanding consumer: a trace is
//! only a portable artifact if *any* target can execute it.

use rb_simcore::error::{SimError, SimResult};
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use rb_simfs::intern::PathId;
use rb_simfs::stack::{Fd, OpCost};

/// The error every untimed target returns from the `*_at` family.
fn untimed() -> SimError {
    SimError::InvalidOperation("target cannot execute time-parameterized operations".into())
}

/// A system under test.
pub trait Target {
    /// Short name for reports, e.g. `"sim:ext2"`.
    fn name(&self) -> String;

    /// Monotonic time since target creation (virtual or wall).
    fn now(&self) -> Nanos;

    /// Passes time without doing I/O (per-op framework overhead, think
    /// time, recorded inter-arrival gaps). Real targets treat this as a
    /// no-op: their overhead is already real.
    fn advance(&mut self, d: Nanos);

    /// Creates a regular file.
    fn create(&mut self, path: &str) -> SimResult<Nanos>;

    /// Creates a directory.
    fn mkdir(&mut self, path: &str) -> SimResult<Nanos>;

    /// Removes a file.
    fn unlink(&mut self, path: &str) -> SimResult<Nanos>;

    /// Stats a path.
    fn stat(&mut self, path: &str) -> SimResult<Nanos>;

    /// Opens a file.
    fn open(&mut self, path: &str) -> SimResult<Fd>;

    /// Pre-resolves a path for repeated use, if the target caches path
    /// resolutions. Pure bookkeeping (no simulated cost, no namespace
    /// effect): drivers call it at workload-build or trace-load time so
    /// per-op path work drops to an index. Targets without a resolution
    /// cache return `None`, and drivers fall back to the string forms.
    fn prepare_path(&mut self, path: &str) -> Option<PathId> {
        let _ = path;
        None
    }

    /// [`Target::create`] for a path pre-resolved by
    /// [`Target::prepare_path`]. `path` is the same path, for targets
    /// that ignore ids. Implementations must behave identically to the
    /// string form.
    fn create_id(&mut self, id: PathId, path: &str) -> SimResult<Nanos> {
        let _ = id;
        self.create(path)
    }

    /// [`Target::mkdir`] for a pre-resolved path.
    fn mkdir_id(&mut self, id: PathId, path: &str) -> SimResult<Nanos> {
        let _ = id;
        self.mkdir(path)
    }

    /// [`Target::unlink`] for a pre-resolved path.
    fn unlink_id(&mut self, id: PathId, path: &str) -> SimResult<Nanos> {
        let _ = id;
        self.unlink(path)
    }

    /// [`Target::stat`] for a pre-resolved path.
    fn stat_id(&mut self, id: PathId, path: &str) -> SimResult<Nanos> {
        let _ = id;
        self.stat(path)
    }

    /// [`Target::open`] for a pre-resolved path.
    fn open_id(&mut self, id: PathId, path: &str) -> SimResult<Fd> {
        let _ = id;
        self.open(path)
    }

    /// Closes a handle.
    fn close(&mut self, fd: Fd) -> SimResult<()>;

    /// Sets a file's size (pre-allocation).
    fn set_size(&mut self, fd: Fd, size: Bytes) -> SimResult<Nanos>;

    /// Reads `len` bytes at `offset`; returns service latency.
    fn read(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos>;

    /// Writes `len` bytes at `offset`; returns service latency.
    fn write(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos>;

    /// Flushes a file to stable storage.
    fn fsync(&mut self, fd: Fd) -> SimResult<Nanos>;

    /// Empties the page cache if the target can; returns whether it did.
    fn drop_caches(&mut self) -> bool;

    /// Adjusts cache capacity in pages (memory-pressure modelling).
    /// Targets without a controllable cache ignore this.
    fn set_cache_capacity_pages(&mut self, _pages: u64) {}

    /// Cache hit ratio so far, if the target can report one.
    fn cache_hit_ratio(&self) -> Option<f64> {
        None
    }

    /// Cumulative cache statistics snapshot, if the target has a
    /// controllable cache. Used by the engine to compute per-phase hit
    /// ratios as deltas.
    fn cache_stats(&self) -> Option<rb_simcache::page::CacheStats> {
        None
    }

    /// Name of the cache eviction policy, if the target has one (for
    /// attribution in flight-recorder reports).
    fn cache_policy(&self) -> Option<&'static str> {
        None
    }

    /// Cumulative storage-stack counters, if the target is simulated.
    /// The flight recorder snapshots these before and after a run.
    fn stack_stats(&self) -> Option<rb_simfs::stack::StackStats> {
        None
    }

    /// Cumulative device counters, if the target is simulated.
    fn disk_stats(&self) -> Option<rb_simdisk::device::DeviceStats> {
        None
    }

    /// Background maintenance hook (the kernel flusher thread): called
    /// periodically by the engine and by timed replay. Real targets rely
    /// on the host kernel.
    fn background_tick(&mut self) {}

    // ------------------------------------------------------------------
    // Time-parameterized operations (the discrete-event interface).
    //
    // A multi-process driver cannot let the target advance its own
    // clock: N simulated processes contend for cores and the device, so
    // *when* an operation's cost lands is the scheduler's decision. The
    // `*_at` family executes an operation at an explicit `issue`
    // instant, mutates target state exactly as the untimed form would,
    // and returns the cost decomposed into CPU and device components
    // ([`OpCost`]) without touching the target clock. Only targets with
    // a virtual clock can support this; everything else keeps the
    // default "unsupported" behaviour and multi-process drivers must
    // check [`Target::supports_timed`] first.
    // ------------------------------------------------------------------

    /// Whether the `*_at` operations are implemented. Drivers must not
    /// call them when this is `false`.
    fn supports_timed(&self) -> bool {
        false
    }

    /// [`Target::create`] at instant `issue`, without moving the clock.
    /// `id` is the path pre-resolved by [`Target::prepare_path`], when
    /// the driver has one.
    fn create_at(&mut self, id: Option<PathId>, path: &str, issue: Nanos) -> SimResult<OpCost> {
        let _ = (id, path, issue);
        Err(untimed())
    }

    /// [`Target::mkdir`] at instant `issue`.
    fn mkdir_at(&mut self, id: Option<PathId>, path: &str, issue: Nanos) -> SimResult<OpCost> {
        let _ = (id, path, issue);
        Err(untimed())
    }

    /// [`Target::unlink`] at instant `issue`.
    fn unlink_at(&mut self, id: Option<PathId>, path: &str, issue: Nanos) -> SimResult<OpCost> {
        let _ = (id, path, issue);
        Err(untimed())
    }

    /// [`Target::stat`] at instant `issue`.
    fn stat_at(&mut self, id: Option<PathId>, path: &str, issue: Nanos) -> SimResult<OpCost> {
        let _ = (id, path, issue);
        Err(untimed())
    }

    /// [`Target::open`] at instant `issue`.
    fn open_at(&mut self, id: Option<PathId>, path: &str, issue: Nanos) -> SimResult<(Fd, OpCost)> {
        let _ = (id, path, issue);
        Err(untimed())
    }

    /// [`Target::set_size`] at instant `issue`.
    fn set_size_at(&mut self, fd: Fd, size: Bytes, issue: Nanos) -> SimResult<OpCost> {
        let _ = (fd, size, issue);
        Err(untimed())
    }

    /// [`Target::read`] at instant `issue`.
    fn read_at(&mut self, fd: Fd, offset: Bytes, len: Bytes, issue: Nanos) -> SimResult<OpCost> {
        let _ = (fd, offset, len, issue);
        Err(untimed())
    }

    /// [`Target::write`] at instant `issue`.
    fn write_at(&mut self, fd: Fd, offset: Bytes, len: Bytes, issue: Nanos) -> SimResult<OpCost> {
        let _ = (fd, offset, len, issue);
        Err(untimed())
    }

    /// [`Target::fsync`] at instant `issue`.
    fn fsync_at(&mut self, fd: Fd, issue: Nanos) -> SimResult<OpCost> {
        let _ = (fd, issue);
        Err(untimed())
    }

    /// [`Target::background_tick`] at instant `issue`: runs the flusher
    /// pass as of `issue` and returns the device time it consumed.
    fn tick_at(&mut self, issue: Nanos) -> Nanos {
        let _ = issue;
        Nanos::ZERO
    }

    // ------------------------------------------------------------------
    // Fault injection (the robustness interface).
    //
    // Only deterministic simulated targets can inject faults — a plan
    // is a pure function of (spec, forked RNG stream, virtual clock) and
    // makes no sense against a real host disk. Real targets keep the
    // default "unsupported" behaviour and drivers gate on the error.
    // ------------------------------------------------------------------

    /// Arms a deterministic fault plan on the target's device path.
    /// Targets that cannot inject faults return `InvalidOperation`.
    fn install_faults(&mut self, spec: rb_faults::FaultSpec, seed: u64) -> SimResult<()> {
        let _ = (spec, seed);
        Err(SimError::InvalidOperation(
            "target cannot inject deterministic faults".into(),
        ))
    }

    /// Cumulative fault-injection counters, if faults are armed.
    fn fault_stats(&self) -> Option<rb_faults::FaultStats> {
        None
    }

    /// Simulates a crash at instant `issue`: drops the page cache (dirty
    /// data is lost), replays the file system's recovery plan against
    /// the device, and reports what recovery cost and whether the
    /// metadata survived consistent.
    fn crash_recover(&mut self, issue: Nanos) -> SimResult<rb_faults::CrashReport> {
        let _ = issue;
        Err(SimError::InvalidOperation(
            "target cannot simulate a crash".into(),
        ))
    }

    /// Informs the target of the device-queue horizon chosen by an
    /// external scheduler: media requests issued after this call are
    /// serviced no earlier than `floor` (the instant the device actually
    /// frees up), so seek distances are evaluated at true service start
    /// rather than at issue. Targets without a device queue ignore it.
    fn set_device_floor(&mut self, _floor: Nanos) {}
}
