//! # rb-replay — the trace replay subsystem
//!
//! The paper's survey found trace-based evaluation the most popular
//! method (35 of the surveyed uses) and the least reproducible: traces
//! are unavailable, and when they are available they get replayed with
//! ad-hoc timing that changes what is being measured. This crate is the
//! systematic answer — the replay-trace taxonomy as a subsystem:
//!
//! * [`model`] — the portable trace formats: v1 (op stream) and v2
//!   (ops stamped with stream ids and relative arrival times), with a
//!   parser that reads both.
//! * [`record`] — the [`Recorder`] proxy: wrap any [`Target`], run any
//!   workload, get a v2 trace.
//! * [`timing`] — the [`Timing`] policies: `afap` (peak capacity),
//!   `faithful` (the recorded load), `scaled=N` (what-if temporal
//!   scaling).
//! * [`driver`] — dependency-aware multi-stream replay: per-stream
//!   program order and per-path happens-before are preserved, the
//!   remaining interleaving freedom is resolved by a seeded,
//!   deterministic merge.
//! * [`transform`] — filter / remap / merge / spatially scale traces,
//!   so one captured trace yields a family of scenarios.
//! * [`profile`] — trace characterization (op mix, working set,
//!   sequentiality, inter-arrival distribution) with a diff-stable
//!   renderer for golden-snapshot CI.
//! * [`target`] — the [`Target`] trait every driver in the stack is
//!   written against (re-exported by `rb_core` alongside its simulated
//!   and real-directory implementations).
//!
//! ```
//! use rb_replay::{replay_with, ReplayConfig, Timing, Trace};
//!
//! let trace = Trace::from_text(
//!     "# rocketbench-trace v2\n\
//!      0 0    create /a\n\
//!      0 1000 open   /a\n\
//!      1 1500 create /b\n\
//!      0 2000 write  /a 0 4096\n",
//! )
//! .unwrap();
//! assert_eq!(trace.stream_ids(), vec![0, 1]);
//! let cfg = ReplayConfig { timing: Timing::Faithful, seed: 7 };
//! // replay_with(&mut target, &trace, &cfg) drives any Target.
//! let _ = (trace, cfg);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod model;
pub mod profile;
pub mod record;
pub mod target;
pub mod timing;
pub mod transform;

pub use driver::{replay, replay_with, schedule, ReplayConfig, ReplayError, ReplayResult};
pub use model::{Trace, TraceEntry, TraceOp, TraceVersion};
pub use profile::{characterize, TraceProfile};
pub use record::Recorder;
pub use target::Target;
pub use timing::Timing;
pub use transform::{apply, merge, Transform};

/// A tiny in-memory [`Target`] for unit tests: constant-latency ops, an
/// op log, and a background-tick counter.
#[cfg(test)]
pub(crate) mod testutil {
    use crate::target::Target;
    use rb_simcore::error::{SimError, SimResult};
    use rb_simcore::time::Nanos;
    use rb_simcore::units::Bytes;
    use rb_simfs::stack::Fd;
    use std::collections::{HashMap, HashSet};

    pub struct MemTarget {
        pub now: Nanos,
        pub files: HashMap<String, u64>,
        pub dirs: HashSet<String>,
        pub open: HashMap<Fd, String>,
        pub next_fd: Fd,
        /// (verb, path) per executed operation.
        pub log: Vec<(String, String)>,
        pub ticks: u32,
    }

    impl MemTarget {
        pub const OP_LATENCY: Nanos = Nanos::from_micros(1);

        pub fn new() -> MemTarget {
            MemTarget {
                now: Nanos::ZERO,
                files: HashMap::new(),
                dirs: HashSet::new(),
                open: HashMap::new(),
                next_fd: 3,
                log: Vec::new(),
                ticks: 0,
            }
        }

        fn op(&mut self, verb: &str, path: &str) -> Nanos {
            self.now += Self::OP_LATENCY;
            self.log.push((verb.to_string(), path.to_string()));
            Self::OP_LATENCY
        }

        fn path_of(&self, fd: Fd) -> SimResult<String> {
            self.open
                .get(&fd)
                .cloned()
                .ok_or_else(|| SimError::InvalidOperation(format!("bad fd {fd}")))
        }
    }

    impl Target for MemTarget {
        fn name(&self) -> String {
            "mem".into()
        }

        fn now(&self) -> Nanos {
            self.now
        }

        fn advance(&mut self, d: Nanos) {
            self.now += d;
        }

        fn create(&mut self, path: &str) -> SimResult<Nanos> {
            self.files.insert(path.to_string(), 0);
            Ok(self.op("create", path))
        }

        fn mkdir(&mut self, path: &str) -> SimResult<Nanos> {
            self.dirs.insert(path.to_string());
            Ok(self.op("mkdir", path))
        }

        fn unlink(&mut self, path: &str) -> SimResult<Nanos> {
            self.files
                .remove(path)
                .ok_or_else(|| SimError::NotFound(path.into()))?;
            Ok(self.op("unlink", path))
        }

        fn stat(&mut self, path: &str) -> SimResult<Nanos> {
            if !self.files.contains_key(path) && !self.dirs.contains(path) {
                return Err(SimError::NotFound(path.into()));
            }
            Ok(self.op("stat", path))
        }

        fn open(&mut self, path: &str) -> SimResult<Fd> {
            if !self.files.contains_key(path) {
                return Err(SimError::NotFound(path.into()));
            }
            let fd = self.next_fd;
            self.next_fd += 1;
            self.open.insert(fd, path.to_string());
            self.op("open", path);
            Ok(fd)
        }

        fn close(&mut self, fd: Fd) -> SimResult<()> {
            let path = self.path_of(fd)?;
            self.open.remove(&fd);
            self.op("close", &path);
            Ok(())
        }

        fn set_size(&mut self, fd: Fd, size: Bytes) -> SimResult<Nanos> {
            let path = self.path_of(fd)?;
            *self.files.get_mut(&path).expect("open file exists") = size.as_u64();
            Ok(self.op("setsize", &path))
        }

        fn read(&mut self, fd: Fd, _offset: Bytes, _len: Bytes) -> SimResult<Nanos> {
            let path = self.path_of(fd)?;
            Ok(self.op("read", &path))
        }

        fn write(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
            let path = self.path_of(fd)?;
            let end = offset.as_u64() + len.as_u64();
            let size = self.files.get_mut(&path).expect("open file exists");
            *size = (*size).max(end);
            Ok(self.op("write", &path))
        }

        fn fsync(&mut self, fd: Fd) -> SimResult<Nanos> {
            let path = self.path_of(fd)?;
            Ok(self.op("fsync", &path))
        }

        fn drop_caches(&mut self) -> bool {
            false
        }

        fn background_tick(&mut self) {
            self.ticks += 1;
        }
    }
}
