//! The trace model: operations, entries and the portable text formats.
//!
//! The paper's survey found trace-based evaluation popular (35 of the
//! 2009–2010 uses) but nearly useless to the community because "almost
//! none of those traces are widely available". rocketbench therefore
//! treats traces as first-class, portable artifacts: any workload run
//! can be recorded, written to a plain-text format, shipped, and
//! replayed against any [`Target`](crate::Target).
//!
//! Two format versions exist, both one operation per line,
//! whitespace-separated:
//!
//! **v1** — the operation stream alone:
//!
//! ```text
//! # rocketbench-trace v1
//! create /set0/f000001
//! open   /set0/f000001
//! read   /set0/f000001 65536 8192
//! fsync  /set0/f000001
//! unlink /set0/f000001
//! ```
//!
//! **v2** — each operation prefixed by its stream (thread) id and its
//! arrival time in nanoseconds relative to trace start, which is what
//! makes timing-faithful and dependency-aware replay possible:
//!
//! ```text
//! # rocketbench-trace v2
//! 0 0     create /set0/f000001
//! 0 1200  open   /set0/f000001
//! 1 1350  read   /set1/f000007 65536 8192
//! 0 2100  fsync  /set0/f000001
//! ```
//!
//! The parser reads both; unknown `# rocketbench-trace vN` versions are
//! rejected with a clear error. CRLF line endings and a final line
//! without a trailing newline are accepted.

use rb_simcore::error::{SimError, SimResult};
use rb_simcore::time::Nanos;
use std::fmt::Write as _;

/// One traced operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// Create a file.
    Create(String),
    /// Create a directory.
    Mkdir(String),
    /// Open a file (subsequent ops address it by path).
    Open(String),
    /// Close a file.
    Close(String),
    /// Read `len` bytes at `offset`.
    Read {
        /// Path (must be opened).
        path: String,
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Write `len` bytes at `offset`.
    Write {
        /// Path (must be opened).
        path: String,
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Set a file's size.
    SetSize {
        /// Path (must be opened).
        path: String,
        /// New size in bytes.
        size: u64,
    },
    /// fsync a file.
    Fsync(String),
    /// stat a path.
    Stat(String),
    /// Unlink a file.
    Unlink(String),
}

impl TraceOp {
    /// Every verb the text formats know, in serialization order.
    pub const VERBS: [&'static str; 10] = [
        "create", "mkdir", "open", "close", "read", "write", "setsize", "fsync", "stat", "unlink",
    ];

    /// The path the operation addresses.
    pub fn path(&self) -> &str {
        match self {
            TraceOp::Create(p)
            | TraceOp::Mkdir(p)
            | TraceOp::Open(p)
            | TraceOp::Close(p)
            | TraceOp::Fsync(p)
            | TraceOp::Stat(p)
            | TraceOp::Unlink(p) => p,
            TraceOp::Read { path, .. }
            | TraceOp::Write { path, .. }
            | TraceOp::SetSize { path, .. } => path,
        }
    }

    /// The operation's format verb (`"read"`, `"fsync"`, …).
    pub fn verb(&self) -> &'static str {
        match self {
            TraceOp::Create(_) => "create",
            TraceOp::Mkdir(_) => "mkdir",
            TraceOp::Open(_) => "open",
            TraceOp::Close(_) => "close",
            TraceOp::Read { .. } => "read",
            TraceOp::Write { .. } => "write",
            TraceOp::SetSize { .. } => "setsize",
            TraceOp::Fsync(_) => "fsync",
            TraceOp::Stat(_) => "stat",
            TraceOp::Unlink(_) => "unlink",
        }
    }

    /// The same operation addressing a different path (used by the
    /// remap/scale transformations).
    pub fn with_path(&self, new: String) -> TraceOp {
        match self {
            TraceOp::Create(_) => TraceOp::Create(new),
            TraceOp::Mkdir(_) => TraceOp::Mkdir(new),
            TraceOp::Open(_) => TraceOp::Open(new),
            TraceOp::Close(_) => TraceOp::Close(new),
            TraceOp::Read { offset, len, .. } => TraceOp::Read {
                path: new,
                offset: *offset,
                len: *len,
            },
            TraceOp::Write { offset, len, .. } => TraceOp::Write {
                path: new,
                offset: *offset,
                len: *len,
            },
            TraceOp::SetSize { size, .. } => TraceOp::SetSize {
                path: new,
                size: *size,
            },
            TraceOp::Fsync(_) => TraceOp::Fsync(new),
            TraceOp::Stat(_) => TraceOp::Stat(new),
            TraceOp::Unlink(_) => TraceOp::Unlink(new),
        }
    }

    /// Renders the operation as one v1 text line (no newline).
    pub fn to_line(&self) -> String {
        match self {
            TraceOp::Create(p) => format!("create {p}"),
            TraceOp::Mkdir(p) => format!("mkdir {p}"),
            TraceOp::Open(p) => format!("open {p}"),
            TraceOp::Close(p) => format!("close {p}"),
            TraceOp::Read { path, offset, len } => format!("read {path} {offset} {len}"),
            TraceOp::Write { path, offset, len } => format!("write {path} {offset} {len}"),
            TraceOp::SetSize { path, size } => format!("setsize {path} {size}"),
            TraceOp::Fsync(p) => format!("fsync {p}"),
            TraceOp::Stat(p) => format!("stat {p}"),
            TraceOp::Unlink(p) => format!("unlink {p}"),
        }
    }
}

/// Text-format version of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraceVersion {
    /// The original op-stream-only format.
    #[default]
    V1,
    /// Ops stamped with stream id and relative arrival time.
    V2,
}

impl TraceVersion {
    /// The version's header line.
    pub fn header(self) -> &'static str {
        match self {
            TraceVersion::V1 => "# rocketbench-trace v1",
            TraceVersion::V2 => "# rocketbench-trace v2",
        }
    }

    /// Report label (`"v1"` / `"v2"`).
    pub fn label(self) -> &'static str {
        match self {
            TraceVersion::V1 => "v1",
            TraceVersion::V2 => "v2",
        }
    }
}

/// One trace entry: an operation plus its v2 metadata.
///
/// In a v1 trace the metadata is neutral (`at == 0`, `stream == 0`), so
/// every v1 trace is also a valid single-stream v2 trace with no timing
/// information — the upgrade path the format was designed around.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceEntry {
    /// Arrival time relative to trace start.
    pub at: Nanos,
    /// Stream (thread) id the operation was issued from.
    pub stream: u32,
    /// The operation.
    pub op: TraceOp,
}

impl TraceEntry {
    /// A v1-style entry: no timing, stream 0.
    pub fn bare(op: TraceOp) -> TraceEntry {
        TraceEntry {
            at: Nanos::ZERO,
            stream: 0,
            op,
        }
    }
}

/// A recorded trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Serialization version. Transformations that introduce multiple
    /// streams promote a trace to [`TraceVersion::V2`] automatically so
    /// no information is silently dropped on the way to disk.
    pub version: TraceVersion,
    /// Entries in trace order. Within one stream this order is program
    /// order; across streams it is the global happens-before order used
    /// by dependency-aware replay.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Builds a v1 trace from a bare operation stream.
    pub fn from_ops(ops: Vec<TraceOp>) -> Trace {
        Trace {
            version: TraceVersion::V1,
            entries: ops.into_iter().map(TraceEntry::bare).collect(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the trace holds no operations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The bare operations, in trace order.
    pub fn ops(&self) -> impl Iterator<Item = &TraceOp> {
        self.entries.iter().map(|e| &e.op)
    }

    /// Sorted list of distinct stream ids.
    pub fn stream_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.entries.iter().map(|e| e.stream).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The largest relative timestamp (the trace's recorded span).
    pub fn span(&self) -> Nanos {
        self.entries
            .iter()
            .map(|e| e.at)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// The same trace stamped as v2 (entries unchanged; a v1 trace
    /// becomes a single-stream v2 trace with zero timestamps).
    pub fn to_v2(mut self) -> Trace {
        self.version = TraceVersion::V2;
        self
    }

    /// Sets the version to v2 when any entry carries information the v1
    /// format cannot represent (a nonzero stream or timestamp); leaves
    /// it alone otherwise. Transformations call this so their output
    /// never serializes lossily.
    pub fn normalize_version(&mut self) {
        if self
            .entries
            .iter()
            .any(|e| e.stream != 0 || !e.at.is_zero())
        {
            self.version = TraceVersion::V2;
        }
    }

    fn check_paths(&self) -> SimResult<()> {
        for (i, e) in self.entries.iter().enumerate() {
            let path = e.op.path();
            if path.is_empty() || path.starts_with('#') || path.chars().any(|c| c.is_whitespace()) {
                return Err(SimError::BadConfig(format!(
                    "op {i}: path {path:?} cannot be represented in the \
                     whitespace-separated trace format"
                )));
            }
        }
        Ok(())
    }

    /// Serializes to the portable text format at the trace's own
    /// version: a v1 trace writes v1 (byte-identical to the original
    /// format), a v2 trace writes v2.
    ///
    /// The format is whitespace-separated, so paths containing
    /// whitespace (or empty paths, or `#`-prefixed paths that would
    /// read back as comments) cannot round-trip; serializing them is an
    /// error rather than a silently corrupted trace.
    pub fn to_text(&self) -> SimResult<String> {
        match self.version {
            TraceVersion::V1 => self.to_text_v1(),
            TraceVersion::V2 => self.to_text_v2(),
        }
    }

    /// Serializes as v1, dropping timestamps and stream ids.
    ///
    /// Lossy by design (the explicit downgrade path for consumers that
    /// only understand v1); multi-stream traces refuse, because
    /// flattening interleaved streams into one op list would fabricate
    /// a total order the trace never promised.
    pub fn to_text_v1(&self) -> SimResult<String> {
        self.check_paths()?;
        if self.stream_ids().len() > 1 {
            return Err(SimError::BadConfig(
                "multi-stream trace cannot serialize as v1; use v2 \
                 (to_text_v2) or filter to one stream first"
                    .into(),
            ));
        }
        let mut out = String::from(concat!("# rocketbench-trace v1", "\n"));
        for e in &self.entries {
            let _ = writeln!(out, "{}", e.op.to_line());
        }
        Ok(out)
    }

    /// Serializes as v2 (stream id and relative timestamp per line).
    pub fn to_text_v2(&self) -> SimResult<String> {
        self.check_paths()?;
        let mut out = String::from("# rocketbench-trace v2\n# columns: stream t_ns op args...\n");
        for e in &self.entries {
            let _ = writeln!(out, "{} {} {}", e.stream, e.at.as_nanos(), e.op.to_line());
        }
        Ok(out)
    }

    /// Parses the text format, v1 or v2.
    ///
    /// The `# rocketbench-trace vN` header selects the version (absent
    /// header means v1, for compatibility with hand-written traces);
    /// unknown versions are a clear error, not a generic parse failure.
    /// Unknown lines, missing fields and trailing junk are errors;
    /// comments and blank lines are skipped. CRLF line endings and a
    /// missing final newline are tolerated.
    pub fn from_text(text: &str) -> SimResult<Trace> {
        let mut version: Option<TraceVersion> = None;
        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            // `str::lines` splits on `\n`; trimming also strips the `\r`
            // a CRLF file leaves behind (and any stray indentation).
            let line = raw.trim();
            if let Some(rest) = line.strip_prefix("# rocketbench-trace") {
                let v = match rest.trim() {
                    "v1" => TraceVersion::V1,
                    "v2" => TraceVersion::V2,
                    other => {
                        return Err(SimError::BadConfig(format!(
                            "line {}: unsupported trace version {other:?} \
                             (this build reads v1 and v2)",
                            lineno + 1
                        )))
                    }
                };
                match version {
                    None => version = Some(v),
                    Some(prev) if prev == v => {}
                    Some(prev) => {
                        return Err(SimError::BadConfig(format!(
                            "line {}: conflicting version directives ({} then {})",
                            lineno + 1,
                            prev.label(),
                            v.label()
                        )))
                    }
                }
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (at, stream) = match version.unwrap_or(TraceVersion::V1) {
                TraceVersion::V1 => (Nanos::ZERO, 0u32),
                TraceVersion::V2 => {
                    let stream = parts
                        .next()
                        .ok_or_else(|| {
                            SimError::BadConfig(format!("line {}: missing stream id", lineno + 1))
                        })?
                        .parse::<u32>()
                        .map_err(|e| {
                            SimError::BadConfig(format!("line {}: bad stream id: {e}", lineno + 1))
                        })?;
                    let at = parts
                        .next()
                        .ok_or_else(|| {
                            SimError::BadConfig(format!("line {}: missing timestamp", lineno + 1))
                        })?
                        .parse::<u64>()
                        .map_err(|e| {
                            SimError::BadConfig(format!("line {}: bad timestamp: {e}", lineno + 1))
                        })?;
                    (Nanos::from_nanos(at), stream)
                }
            };
            let verb = parts.next().unwrap_or_default();
            let mut arg = |name: &str| -> SimResult<String> {
                parts.next().map(str::to_string).ok_or_else(|| {
                    SimError::BadConfig(format!("line {}: missing {name}", lineno + 1))
                })
            };
            let op = match verb {
                "create" => TraceOp::Create(arg("path")?),
                "mkdir" => TraceOp::Mkdir(arg("path")?),
                "open" => TraceOp::Open(arg("path")?),
                "close" => TraceOp::Close(arg("path")?),
                "read" | "write" => {
                    let path = arg("path")?;
                    let offset = arg("offset")?
                        .parse::<u64>()
                        .map_err(|e| SimError::BadConfig(format!("line {}: {e}", lineno + 1)))?;
                    let len = arg("len")?
                        .parse::<u64>()
                        .map_err(|e| SimError::BadConfig(format!("line {}: {e}", lineno + 1)))?;
                    if verb == "read" {
                        TraceOp::Read { path, offset, len }
                    } else {
                        TraceOp::Write { path, offset, len }
                    }
                }
                "setsize" => {
                    let path = arg("path")?;
                    let size = arg("size")?
                        .parse::<u64>()
                        .map_err(|e| SimError::BadConfig(format!("line {}: {e}", lineno + 1)))?;
                    TraceOp::SetSize { path, size }
                }
                "fsync" => TraceOp::Fsync(arg("path")?),
                "stat" => TraceOp::Stat(arg("path")?),
                "unlink" => TraceOp::Unlink(arg("path")?),
                other => {
                    return Err(SimError::BadConfig(format!(
                        "line {}: unknown op {other:?}",
                        lineno + 1
                    )))
                }
            };
            // A path with whitespace serializes into extra tokens; the
            // old parser silently ignored them, so such a trace parsed
            // into *different* operations than were recorded. Reject
            // trailing junk instead.
            if let Some(extra) = parts.next() {
                return Err(SimError::BadConfig(format!(
                    "line {}: trailing token {extra:?} after {verb}",
                    lineno + 1
                )));
            }
            entries.push(TraceEntry { at, stream, op });
        }
        Ok(Trace {
            version: version.unwrap_or(TraceVersion::V1),
            entries,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// One instance of every [`TraceOp`] variant.
    pub(crate) fn all_variants() -> Vec<TraceOp> {
        vec![
            TraceOp::Mkdir("/d".into()),
            TraceOp::Create("/d/f".into()),
            TraceOp::Open("/d/f".into()),
            TraceOp::SetSize {
                path: "/d/f".into(),
                size: 65536,
            },
            TraceOp::Read {
                path: "/d/f".into(),
                offset: 8192,
                len: 4096,
            },
            TraceOp::Write {
                path: "/d/f".into(),
                offset: 0,
                len: 4096,
            },
            TraceOp::Fsync("/d/f".into()),
            TraceOp::Stat("/d/f".into()),
            TraceOp::Close("/d/f".into()),
            TraceOp::Unlink("/d/f".into()),
        ]
    }

    #[test]
    fn v1_text_roundtrip() {
        let trace = Trace::from_ops(all_variants());
        let text = trace.to_text().unwrap();
        assert!(text.starts_with("# rocketbench-trace v1\n"));
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn v2_text_roundtrip() {
        let mut trace = Trace {
            version: TraceVersion::V2,
            entries: Vec::new(),
        };
        for (i, op) in all_variants().into_iter().enumerate() {
            trace.entries.push(TraceEntry {
                at: Nanos::from_micros(17 * i as u64),
                stream: (i % 3) as u32,
                op,
            });
        }
        let text = trace.to_text().unwrap();
        assert!(text.starts_with("# rocketbench-trace v2\n"));
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_text().unwrap(), text, "reserialize differs");
    }

    #[test]
    fn every_variant_roundtrips_individually() {
        // serialize -> parse -> serialize must be a fixed point for each
        // variant on its own (not just for the combined trace), in both
        // format versions.
        for op in all_variants() {
            let v1 = Trace::from_ops(vec![op.clone()]);
            let text = v1.to_text().unwrap();
            let parsed = Trace::from_text(&text).unwrap();
            assert_eq!(parsed, v1, "v1 asymmetry for {text:?}");
            assert_eq!(parsed.to_text().unwrap(), text, "v1 reserialize differs");

            let v2 = v1.clone().to_v2();
            let text = v2.to_text().unwrap();
            let parsed = Trace::from_text(&text).unwrap();
            assert_eq!(parsed, v2, "v2 asymmetry for {text:?}");
            assert_eq!(parsed.to_text().unwrap(), text, "v2 reserialize differs");
        }
    }

    #[test]
    fn v1_to_v2_promotion_is_stable() {
        // Promoting a v1 trace to v2 and shipping it through text must
        // preserve the op stream exactly, with neutral metadata.
        let v1 = Trace::from_ops(all_variants());
        let v2 = Trace::from_text(&v1.clone().to_v2().to_text().unwrap()).unwrap();
        assert_eq!(v2.version, TraceVersion::V2);
        let ops1: Vec<&TraceOp> = v1.ops().collect();
        let ops2: Vec<&TraceOp> = v2.ops().collect();
        assert_eq!(ops1, ops2);
        assert!(v2.entries.iter().all(|e| e.stream == 0 && e.at.is_zero()));
    }

    #[test]
    fn crlf_and_missing_final_newline_are_accepted() {
        let unix = "# rocketbench-trace v1\ncreate /a\nstat /a\n";
        let dos = "# rocketbench-trace v1\r\ncreate /a\r\nstat /a\r\n";
        let bare_tail = "# rocketbench-trace v1\ncreate /a\nstat /a";
        let reference = Trace::from_text(unix).unwrap();
        assert_eq!(Trace::from_text(dos).unwrap(), reference);
        assert_eq!(Trace::from_text(bare_tail).unwrap(), reference);
        // Same for v2 lines.
        let v2_dos = "# rocketbench-trace v2\r\n0 10 create /a\r\n1 20 stat /a";
        let t = Trace::from_text(v2_dos).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries[1].stream, 1);
        assert_eq!(t.entries[1].at, Nanos::from_nanos(20));
    }

    #[test]
    fn unknown_versions_are_a_clear_error() {
        let err = Trace::from_text("# rocketbench-trace v3\ncreate /a\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unsupported trace version"), "{msg}");
        assert!(msg.contains("v3"), "{msg}");
        // Conflicting directives are rejected too.
        assert!(
            Trace::from_text("# rocketbench-trace v1\n# rocketbench-trace v2\ncreate /a\n")
                .is_err()
        );
        // Repeating the same directive is harmless.
        assert!(
            Trace::from_text("# rocketbench-trace v1\n# rocketbench-trace v1\ncreate /a\n").is_ok()
        );
    }

    #[test]
    fn headerless_text_parses_as_v1() {
        let t = Trace::from_text("create /a\nstat /a\n").unwrap();
        assert_eq!(t.version, TraceVersion::V1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn whitespace_paths_are_rejected_at_serialization() {
        // A path with a space would serialize into extra tokens and
        // parse back as a *different* operation; to_text refuses.
        for bad in ["/a b", "", " ", "/x\ty", "/new\nline", "#comment"] {
            let trace = Trace::from_ops(vec![TraceOp::Create(bad.into())]);
            assert!(trace.to_text().is_err(), "v1 accepted path {bad:?}");
            let trace = trace.to_v2();
            assert!(trace.to_text().is_err(), "v2 accepted path {bad:?}");
        }
        // And the parser refuses the trailing tokens such a line would
        // contain, instead of silently dropping them.
        assert!(Trace::from_text("create /a b").is_err());
        assert!(Trace::from_text("read /x 0 4096 junk").is_err());
        assert!(Trace::from_text("unlink /x /y").is_err());
        assert!(Trace::from_text("# rocketbench-trace v2\n0 0 unlink /x /y").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::from_text("explode /x").is_err());
        assert!(Trace::from_text("read /x notanumber 12").is_err());
        assert!(Trace::from_text("read /x").is_err());
        // v2 metadata must be numeric and present.
        assert!(Trace::from_text("# rocketbench-trace v2\nx 0 create /a").is_err());
        assert!(Trace::from_text("# rocketbench-trace v2\n0 y create /a").is_err());
        assert!(Trace::from_text("# rocketbench-trace v2\n0 create /a").is_err());
        // Comments and blanks are fine.
        let t = Trace::from_text("# hi\n\n  \ncreate /a\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn multi_stream_refuses_v1_serialization() {
        let mut t = Trace::from_ops(vec![TraceOp::Create("/a".into())]);
        t.entries.push(TraceEntry {
            at: Nanos::ZERO,
            stream: 1,
            op: TraceOp::Stat("/a".into()),
        });
        assert!(t.to_text_v1().is_err());
        assert!(t.to_text_v2().is_ok());
        // normalize_version notices the second stream.
        t.normalize_version();
        assert_eq!(t.version, TraceVersion::V2);
    }

    #[test]
    fn span_and_streams() {
        let t = Trace::from_text(
            "# rocketbench-trace v2\n2 100 create /a\n0 50 stat /b\n2 400 stat /a\n",
        )
        .unwrap();
        assert_eq!(t.span(), Nanos::from_nanos(400));
        assert_eq!(t.stream_ids(), vec![0, 2]);
    }
}
