//! Property tests for the trace subsystem.
//!
//! Gated off (`autotests = false` in Cargo.toml) until the proptest
//! dependency is vendored, like the sibling sim crates; deterministic
//! many-seed versions of the same invariants run in the in-crate unit
//! tests meanwhile.

use proptest::prelude::*;
use rb_replay::{replay_with, schedule, ReplayConfig, Timing, Trace, TraceEntry, TraceOp};
use rb_simcore::time::Nanos;

/// Strategy: an arbitrary valid operation over a tiny path universe, so
/// generated traces actually collide on paths.
fn arb_op() -> impl Strategy<Value = TraceOp> {
    let path = prop_oneof![Just("/p/a"), Just("/p/b"), Just("/p/c")].prop_map(str::to_string);
    prop_oneof![
        path.clone().prop_map(TraceOp::Create),
        path.clone().prop_map(TraceOp::Open),
        path.clone().prop_map(TraceOp::Close),
        path.clone().prop_map(TraceOp::Fsync),
        path.clone().prop_map(TraceOp::Stat),
        path.clone().prop_map(TraceOp::Unlink),
        (path.clone(), 0u64..1 << 20, 1u64..65536)
            .prop_map(|(path, offset, len)| TraceOp::Read { path, offset, len }),
        (path.clone(), 0u64..1 << 20, 1u64..65536)
            .prop_map(|(path, offset, len)| TraceOp::Write { path, offset, len }),
        (path, 0u64..1 << 24).prop_map(|(path, size)| TraceOp::SetSize { path, size }),
    ]
}

/// Strategy: a v2 trace with up to three streams and monotone times.
fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((arb_op(), 0u32..3, 0u64..1 << 24), 1..60).prop_map(|raw| {
        let mut at = 0u64;
        let mut trace = Trace::default();
        for (op, stream, gap) in raw {
            at += gap;
            trace.entries.push(TraceEntry {
                at: Nanos::from_nanos(at),
                stream,
                op,
            });
        }
        trace.normalize_version();
        trace
    })
}

proptest! {
    /// v1 -> v2 round-trip stability: promoting any v1 trace to v2 and
    /// shipping it through text preserves the op stream exactly.
    #[test]
    fn v1_to_v2_roundtrip_is_stable(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let v1 = Trace::from_ops(ops);
        let text1 = v1.to_text().unwrap();
        let reparsed = Trace::from_text(&text1).unwrap();
        prop_assert_eq!(&reparsed, &v1);
        let v2 = Trace::from_text(&v1.clone().to_v2().to_text().unwrap()).unwrap();
        let ops1: Vec<&TraceOp> = v1.ops().collect();
        let ops2: Vec<&TraceOp> = v2.ops().collect();
        prop_assert_eq!(ops1, ops2);
        prop_assert!(v2.entries.iter().all(|e| e.stream == 0 && e.at.is_zero()));
    }

    /// Afap replay of a v2 trace is byte-identical to v1 replay of the
    /// same ops: the schedule (hence every executed op, in order) is the
    /// trace order for any single-stream trace at any seed.
    #[test]
    fn afap_v2_schedule_equals_v1_schedule(
        ops in proptest::collection::vec(arb_op(), 1..60),
        seed in 0u64..1000,
    ) {
        let v1 = Trace::from_ops(ops);
        let v2 = v1.clone().to_v2();
        let s1 = schedule(&v1, Timing::Afap, seed);
        let s2 = schedule(&v2, Timing::Afap, seed);
        prop_assert_eq!(&s1, &s2);
        prop_assert_eq!(s1, (0..v1.len()).collect::<Vec<_>>());
    }

    /// Dependency-aware replay never reorders same-path ops at any seed,
    /// under any timing policy, and keeps per-stream program order.
    #[test]
    fn same_path_order_is_invariant(trace in arb_trace(), seed in 0u64..1000) {
        for timing in [Timing::Afap, Timing::Faithful, Timing::Scaled { factor: 3.0 }] {
            let order = schedule(&trace, timing, seed);
            // A schedule is a permutation.
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..trace.len()).collect::<Vec<_>>());
            // Same-path subsequences appear in trace order.
            for path in ["/p/a", "/p/b", "/p/c"] {
                let scheduled: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|&i| trace.entries[i].op.path() == path)
                    .collect();
                let mut expected = scheduled.clone();
                expected.sort_unstable();
                prop_assert_eq!(scheduled, expected, "{} reordered", path);
            }
            // Per-stream program order survives the merge.
            for stream in trace.stream_ids() {
                let scheduled: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|&i| trace.entries[i].stream == stream)
                    .collect();
                let mut expected = scheduled.clone();
                expected.sort_unstable();
                prop_assert_eq!(scheduled, expected, "stream {} reordered", stream);
            }
        }
    }

    /// The schedule is a pure function of (trace, timing, seed) — and so
    /// is a full replay on a deterministic target.
    #[test]
    fn schedule_is_deterministic(trace in arb_trace(), seed in 0u64..1000) {
        prop_assert_eq!(
            schedule(&trace, Timing::Afap, seed),
            schedule(&trace, Timing::Afap, seed)
        );
        prop_assert_eq!(
            schedule(&trace, Timing::Faithful, seed),
            schedule(&trace, Timing::Faithful, seed)
        );
    }

    /// Replay never panics on arbitrary traces (missing files etc. are
    /// counted errors), and accounting adds up.
    #[test]
    fn replay_accounting_is_total(trace in arb_trace(), seed in 0u64..100) {
        use rb_replay::Target;
        // A minimal always-failing target: replay must absorb the
        // failures as counted errors rather than dying.
        struct NullTarget(Nanos);
        impl Target for NullTarget {
            fn name(&self) -> String { "null".into() }
            fn now(&self) -> Nanos { self.0 }
            fn advance(&mut self, d: Nanos) { self.0 += d; }
            fn create(&mut self, _: &str) -> rb_simcore::error::SimResult<Nanos> {
                Err(rb_simcore::error::SimError::NoSpace)
            }
            fn mkdir(&mut self, _: &str) -> rb_simcore::error::SimResult<Nanos> {
                Err(rb_simcore::error::SimError::NoSpace)
            }
            fn unlink(&mut self, _: &str) -> rb_simcore::error::SimResult<Nanos> {
                Err(rb_simcore::error::SimError::NoSpace)
            }
            fn stat(&mut self, _: &str) -> rb_simcore::error::SimResult<Nanos> {
                Err(rb_simcore::error::SimError::NoSpace)
            }
            fn open(&mut self, _: &str) -> rb_simcore::error::SimResult<rb_simfs::stack::Fd> {
                Err(rb_simcore::error::SimError::NoSpace)
            }
            fn close(&mut self, _: rb_simfs::stack::Fd) -> rb_simcore::error::SimResult<()> {
                Err(rb_simcore::error::SimError::NoSpace)
            }
            fn set_size(
                &mut self,
                _: rb_simfs::stack::Fd,
                _: rb_simcore::units::Bytes,
            ) -> rb_simcore::error::SimResult<Nanos> {
                Err(rb_simcore::error::SimError::NoSpace)
            }
            fn read(
                &mut self,
                _: rb_simfs::stack::Fd,
                _: rb_simcore::units::Bytes,
                _: rb_simcore::units::Bytes,
            ) -> rb_simcore::error::SimResult<Nanos> {
                Err(rb_simcore::error::SimError::NoSpace)
            }
            fn write(
                &mut self,
                _: rb_simfs::stack::Fd,
                _: rb_simcore::units::Bytes,
                _: rb_simcore::units::Bytes,
            ) -> rb_simcore::error::SimResult<Nanos> {
                Err(rb_simcore::error::SimError::NoSpace)
            }
            fn fsync(&mut self, _: rb_simfs::stack::Fd) -> rb_simcore::error::SimResult<Nanos> {
                Err(rb_simcore::error::SimError::NoSpace)
            }
            fn drop_caches(&mut self) -> bool { false }
        }
        let mut target = NullTarget(Nanos::ZERO);
        let result = replay_with(
            &mut target,
            &trace,
            &ReplayConfig { timing: Timing::Afap, seed },
        );
        prop_assert_eq!(result.ops + result.errors, trace.len() as u64);
        // Close of a never-opened path is a successful no-op; everything
        // else fails, so any error implies a first_error report.
        if result.errors > 0 {
            prop_assert!(result.first_error.is_some());
        }
    }
}
