//! # rb-faults — deterministic fault plans
//!
//! The paper's complaint is that benchmark conclusions hinge on
//! undisclosed dimensions; fault state is the dimension nobody
//! discloses at all. This crate makes degraded hardware a declared,
//! reproducible experiment axis: a [`FaultSpec`] plus a forked RNG
//! stream plus the virtual clock is a *pure function* deciding, for
//! every media request, whether it fails and how much extra latency it
//! pays. Same spec, same seed, same schedule — same faults, on any
//! machine, at any `--jobs`.
//!
//! The vocabulary:
//!
//! - [`FaultSpec`] — parsed, integer-encoded description of a fault
//!   plan (`slow-disk:4x,eio:1e-4,crash:10s`), hashable so campaign
//!   cell keys can carry it.
//! - [`FaultState`] — the live injector: forked RNG, sticky bad-block
//!   set, and [`FaultStats`] counters.
//! - [`FaultyDisk`] — a [`BlockDevice`] wrapper composing a fault
//!   state over any inner device.
//! - [`RetryPolicy`] — what the harness does when an op fails: nothing,
//!   bounded retries with deterministic virtual-time backoff, or
//!   fail-op-and-continue.
//! - [`OutcomeLedger`] — conservation accounting for a run:
//!   `attempted = succeeded + retried_ok + gave_up + dropped`.
//! - [`RecoveryPlan`] / [`CrashReport`] — what a file system does after
//!   a crash-at-instant (journal replay vs fsck scan) and the verdict.
//!
//! ## Example
//!
//! ```
//! use rb_faults::{FaultSpec, FaultState};
//! use rb_simcore::time::Nanos;
//! use rb_simdisk::prelude::IoRequest;
//!
//! let spec = FaultSpec::parse("slow-disk:4x,eio:0.5").unwrap();
//! assert_eq!(spec.label(), "slow-disk:4x,eio:0.5");
//! let mut state = FaultState::new(spec, 42);
//! // Degradation is a pure function of the clock and the base latency.
//! let slow = state.degrade(Nanos::ZERO, Nanos::from_millis(2));
//! assert_eq!(slow, Nanos::from_millis(8));
//! // Error injection is a deterministic draw per request.
//! let mut failures = 0;
//! for i in 0..100 {
//!     if state.check(&IoRequest::read(i, 1)).is_err() {
//!         failures += 1;
//!     }
//! }
//! assert!(failures > 20 && failures < 80);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rb_simcore::error::{SimError, SimResult};
use rb_simcore::fnv::FnvHashSet;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simcore::units::BlockNo;
use rb_simdisk::device::{BlockDevice, DeviceStats, IoRequest};
use std::fmt;

/// Parts-per-billion denominator for probability encoding.
const PPB: u64 = 1_000_000_000;

/// A declared fault plan, integer-encoded so it is `Eq + Hash` and can
/// key campaign cells the way [`Arrival`] keys the arrival axis.
///
/// Parsed from a comma-separated clause list and rendered back through
/// [`FaultSpec::label`]; `parse(label())` always round-trips. A
/// default-constructed spec is healthy (no clauses active) and is
/// rejected by the parser — use `Option<FaultSpec>` for "no faults".
///
/// [`Arrival`]: https://docs.rs/ (rb-core's arrival axis; same pattern)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Service-latency multiplier in centi-units (100 = healthy 1.00x).
    pub slow_centi: u32,
    /// Stall-window period in milliseconds (0 = no stall windows).
    pub stall_every_ms: u32,
    /// Stall-window duration in milliseconds.
    pub stall_dur_ms: u32,
    /// Transient I/O error probability per request, parts per billion.
    pub eio_ppb: u32,
    /// Sticky bad-block probability per request, parts per billion.
    /// Once a block goes bad, every later request starting at it fails.
    pub sticky_ppb: u32,
    /// ENOSPC gate: allocations failing once the file system is fuller
    /// than this percentage (0 = off).
    pub enospc_pct: u8,
    /// Crash instant, milliseconds into the measured run (0 = off).
    pub crash_ms: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            slow_centi: 100,
            stall_every_ms: 0,
            stall_dur_ms: 0,
            eio_ppb: 0,
            sticky_ppb: 0,
            enospc_pct: 0,
            crash_ms: 0,
        }
    }
}

/// Formats a ppb-encoded probability the way `f64` displays it
/// (`100_000 → "0.0001"`), which `parse` accepts back unchanged.
fn fmt_prob(ppb: u32) -> String {
    format!("{}", ppb as f64 / PPB as f64)
}

fn parse_prob(clause: &str, value: &str) -> Result<u32, String> {
    let p: f64 = value
        .parse()
        .map_err(|_| format!("{clause}: probability must be a number, got {value:?}"))?;
    if !(p > 0.0 && p <= 1.0) {
        return Err(format!(
            "{clause}: probability must be in (0, 1], got {value}"
        ));
    }
    Ok((p * PPB as f64).round() as u32)
}

fn parse_ms(clause: &str, value: &str) -> Result<u32, String> {
    let (digits, scale) = if let Some(v) = value.strip_suffix("ms") {
        (v, 1u64)
    } else if let Some(v) = value.strip_suffix('s') {
        (v, 1000)
    } else {
        return Err(format!(
            "{clause}: expected a duration like 500ms or 10s, got {value:?}"
        ));
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("{clause}: expected a duration like 500ms or 10s, got {value:?}"))?;
    let ms = n * scale;
    if ms == 0 || ms > u32::MAX as u64 {
        return Err(format!("{clause}: duration out of range: {value}"));
    }
    Ok(ms as u32)
}

impl FaultSpec {
    /// Parses a comma-separated fault clause list.
    ///
    /// Clauses: `slow-disk:4x` (also `1.5x`), `stall:500ms/50ms`
    /// (period/duration), `eio:1e-4`, `eio-sticky:1e-5`, `enospc:90%`,
    /// `crash:10s`. Errors are one-line human-readable strings; this
    /// never panics on malformed input.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            return Err("empty fault spec; use --faults none to disable".into());
        }
        let mut spec = FaultSpec::default();
        for raw in s.split(',') {
            let clause = raw.trim();
            let (name, value) = clause.split_once(':').ok_or_else(|| {
                format!("fault clause {clause:?} needs a value, like slow-disk:4x")
            })?;
            match name {
                "slow-disk" => {
                    let v = value.strip_suffix('x').ok_or_else(|| {
                        format!("slow-disk: expected a multiplier like 4x, got {value:?}")
                    })?;
                    let f: f64 = v.parse().map_err(|_| {
                        format!("slow-disk: expected a multiplier like 4x, got {value:?}")
                    })?;
                    if !(1.0..=1000.0).contains(&f) {
                        return Err(format!(
                            "slow-disk: multiplier must be in [1, 1000]x, got {value}"
                        ));
                    }
                    spec.slow_centi = (f * 100.0).round() as u32;
                }
                "stall" => {
                    let (every, dur) = value.split_once('/').ok_or_else(|| {
                        format!("stall: expected period/duration like 500ms/50ms, got {value:?}")
                    })?;
                    spec.stall_every_ms = parse_ms("stall", every)?;
                    spec.stall_dur_ms = parse_ms("stall", dur)?;
                    if spec.stall_dur_ms >= spec.stall_every_ms {
                        return Err(format!(
                            "stall: duration must be shorter than the period, got {value}"
                        ));
                    }
                }
                "eio" => spec.eio_ppb = parse_prob("eio", value)?,
                "eio-sticky" => spec.sticky_ppb = parse_prob("eio-sticky", value)?,
                "enospc" => {
                    let v = value.strip_suffix('%').unwrap_or(value);
                    let pct: u8 = v.parse().map_err(|_| {
                        format!("enospc: expected a percentage like 90%, got {value:?}")
                    })?;
                    if pct == 0 || pct > 100 {
                        return Err(format!(
                            "enospc: percentage must be in [1, 100], got {value}"
                        ));
                    }
                    spec.enospc_pct = pct;
                }
                "crash" => spec.crash_ms = parse_ms("crash", value)?,
                other => {
                    return Err(format!(
                        "unknown fault clause {other:?}; known: slow-disk, stall, eio, \
                         eio-sticky, enospc, crash"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Parses a `--faults` flag value, where `none` (or empty) means no
    /// fault plan at all.
    pub fn parse_flag(s: &str) -> Result<Option<FaultSpec>, String> {
        let s = s.trim();
        if s.is_empty() || s == "none" {
            Ok(None)
        } else {
            FaultSpec::parse(s).map(Some)
        }
    }

    /// Canonical clause list; `FaultSpec::parse(spec.label())` is
    /// identity. Used verbatim in campaign cell keys (`|faults=LABEL`).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.slow_centi != 100 {
            if self.slow_centi.is_multiple_of(100) {
                parts.push(format!("slow-disk:{}x", self.slow_centi / 100));
            } else {
                parts.push(format!("slow-disk:{}x", self.slow_centi as f64 / 100.0));
            }
        }
        if self.stall_every_ms > 0 {
            parts.push(format!(
                "stall:{}ms/{}ms",
                self.stall_every_ms, self.stall_dur_ms
            ));
        }
        if self.eio_ppb > 0 {
            parts.push(format!("eio:{}", fmt_prob(self.eio_ppb)));
        }
        if self.sticky_ppb > 0 {
            parts.push(format!("eio-sticky:{}", fmt_prob(self.sticky_ppb)));
        }
        if self.enospc_pct > 0 {
            parts.push(format!("enospc:{}%", self.enospc_pct));
        }
        if self.crash_ms > 0 {
            parts.push(format!("crash:{}ms", self.crash_ms));
        }
        parts.join(",")
    }

    /// True when any clause is active (a default spec is healthy).
    pub fn active(&self) -> bool {
        *self != FaultSpec::default()
    }

    /// True when any clause touches the device service path (so a
    /// [`FaultState`] must be installed on the storage stack).
    pub fn degrades_media(&self) -> bool {
        self.slow_centi != 100 || self.stall_every_ms > 0 || self.eio_ppb > 0 || self.sticky_ppb > 0
    }

    /// Crash instant relative to the start of the measured phase.
    pub fn crash_at(&self) -> Option<Nanos> {
        (self.crash_ms > 0).then(|| Nanos::from_millis(self.crash_ms as u64))
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.active() {
            f.write_str(&self.label())
        } else {
            f.write_str("none")
        }
    }
}

/// What the harness does when an op fails under faults.
///
/// Backoff between bounded retries is deterministic virtual time:
/// `100µs · 2^(attempt-1)`, capped at 10ms — see
/// [`RetryPolicy::backoff`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum RetryPolicy {
    /// Errors propagate to the engine's legacy error accounting
    /// (consecutive failures can abort the run). Today's behavior.
    #[default]
    None,
    /// Retry a failed op up to `retries` times with virtual-time
    /// backoff, then give up on it and continue the run.
    Bounded {
        /// Maximum retry attempts per op.
        retries: u32,
    },
    /// No retries: count the failed op as given up and continue; the
    /// run never aborts on fault-induced errors.
    Continue,
}

impl RetryPolicy {
    /// Parses `none`, `bounded:N` or `continue`; one-line errors,
    /// never panics.
    pub fn parse(s: &str) -> Result<RetryPolicy, String> {
        let s = s.trim();
        match s {
            "none" | "" => Ok(RetryPolicy::None),
            "continue" => Ok(RetryPolicy::Continue),
            _ => {
                let n = s
                    .strip_prefix("bounded:")
                    .ok_or_else(|| {
                        format!("unknown retry policy {s:?}; known: none, bounded:N, continue")
                    })?
                    .parse::<u32>()
                    .map_err(|_| format!("bounded: expected a retry count, got {s:?}"))?;
                if !(1..=100).contains(&n) {
                    return Err(format!("bounded: retry count must be in [1, 100], got {n}"));
                }
                Ok(RetryPolicy::Bounded { retries: n })
            }
        }
    }

    /// Canonical flag value; `parse(label())` is identity.
    pub fn label(&self) -> &'static str {
        match self {
            RetryPolicy::None => "none",
            RetryPolicy::Bounded { .. } => "bounded",
            RetryPolicy::Continue => "continue",
        }
    }

    /// Maximum retry attempts for a failed op.
    pub fn retries(&self) -> u32 {
        match self {
            RetryPolicy::Bounded { retries } => *retries,
            _ => 0,
        }
    }

    /// Deterministic virtual-time backoff before retry `attempt`
    /// (1-based): `100µs · 2^(attempt-1)`, capped at 10ms.
    pub fn backoff(attempt: u32) -> Nanos {
        let base = Nanos::from_micros(100);
        let cap = Nanos::from_millis(10);
        let scaled = base
            * 1u64
                .checked_shl(attempt.saturating_sub(1))
                .unwrap_or(u64::MAX);
        if scaled > cap || scaled < base {
            cap
        } else {
            scaled
        }
    }
}

impl fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryPolicy::Bounded { retries } => write!(f, "bounded:{retries}"),
            other => f.write_str(other.label()),
        }
    }
}

/// Counters kept by a [`FaultState`]: what was injected, and how much
/// extra virtual time degradation cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient I/O errors injected.
    pub transient_errors: u64,
    /// Requests failed on sticky bad blocks (including first touch).
    pub sticky_errors: u64,
    /// Distinct blocks that went bad.
    pub bad_blocks: u64,
    /// Requests delayed by a stall window.
    pub stall_hits: u64,
    /// Extra latency charged by the slow-disk multiplier.
    pub slow_extra: Nanos,
    /// Extra latency charged by stall windows.
    pub stall_extra: Nanos,
    /// Allocations rejected by the ENOSPC fill-fraction gate.
    pub enospc_rejections: u64,
    /// Injected errors absorbed by background paths (writeback), where
    /// real kernels also swallow them until fsync.
    pub absorbed_errors: u64,
}

impl FaultStats {
    /// Total injected device errors (transient + sticky).
    pub fn injected_errors(&self) -> u64 {
        self.transient_errors + self.sticky_errors
    }

    /// Total degraded-mode virtual time charged at the device.
    pub fn degraded(&self) -> Nanos {
        self.slow_extra + self.stall_extra
    }
}

/// The live fault injector: spec + forked RNG + sticky-block memory.
///
/// Decisions are pure functions of `(spec, RNG stream, virtual clock)`,
/// so two runs with the same seed and schedule inject identical faults.
#[derive(Debug, Clone)]
pub struct FaultState {
    spec: FaultSpec,
    rng: Rng,
    bad: FnvHashSet<BlockNo>,
    stats: FaultStats,
}

impl FaultState {
    /// Creates an injector for `spec`, forking a dedicated RNG stream
    /// from `seed` so fault draws never perturb workload draws.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultState {
            spec,
            rng: Rng::new(seed).fork("faults"),
            bad: FnvHashSet::default(),
            stats: FaultStats::default(),
        }
    }

    /// The spec this state was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Read-only view of injection counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Decides whether `req` fails: sticky bad block, then a transient
    /// draw, then a go-bad draw. Returns the injected error.
    pub fn check(&mut self, req: &IoRequest) -> SimResult<()> {
        if self.spec.sticky_ppb > 0 && self.bad.contains(&req.block) {
            self.stats.sticky_errors += 1;
            return Err(SimError::Io { block: req.block });
        }
        if self.spec.eio_ppb > 0 && self.rng.below(PPB) < self.spec.eio_ppb as u64 {
            self.stats.transient_errors += 1;
            return Err(SimError::Io { block: req.block });
        }
        if self.spec.sticky_ppb > 0 && self.rng.below(PPB) < self.spec.sticky_ppb as u64 {
            self.bad.insert(req.block);
            self.stats.bad_blocks += 1;
            self.stats.sticky_errors += 1;
            return Err(SimError::Io { block: req.block });
        }
        Ok(())
    }

    /// Like [`FaultState::check`], but absorbs an injected error the
    /// way real kernels swallow async-writeback errors until fsync:
    /// counts it and reports success.
    pub fn check_absorbing(&mut self, req: &IoRequest) {
        if self.check(req).is_err() {
            self.stats.absorbed_errors += 1;
        }
    }

    /// Applies latency degradation to a base service latency for a
    /// request presented at `now`: the slow-disk multiplier scales the
    /// base, and a request landing inside a stall window additionally
    /// waits for the window to end.
    pub fn degrade(&mut self, now: Nanos, base: Nanos) -> Nanos {
        let mut total = base;
        if self.spec.slow_centi > 100 {
            let extra = base * (self.spec.slow_centi - 100) as u64 / 100;
            self.stats.slow_extra += extra;
            total += extra;
        }
        if self.spec.stall_every_ms > 0 && self.spec.stall_dur_ms > 0 {
            let every = Nanos::from_millis(self.spec.stall_every_ms as u64).as_nanos();
            let dur = Nanos::from_millis(self.spec.stall_dur_ms as u64).as_nanos();
            let pos = now.as_nanos() % every;
            if pos < dur {
                let extra = Nanos::from_nanos(dur - pos);
                self.stats.stall_hits += 1;
                self.stats.stall_extra += extra;
                total += extra;
            }
        }
        total
    }

    /// ENOSPC gate: fails an allocation that would push the fill
    /// fraction past the spec's threshold. `used`/`capacity`/`growth`
    /// are in bytes; a spec without an `enospc` clause never fails.
    pub fn enospc_gate(&mut self, used: u64, capacity: u64, growth: u64) -> SimResult<()> {
        if self.spec.enospc_pct == 0 || capacity == 0 {
            return Ok(());
        }
        let limit = capacity as u128 * self.spec.enospc_pct as u128 / 100;
        if used as u128 + growth as u128 > limit {
            self.stats.enospc_rejections += 1;
            return Err(SimError::NoSpace);
        }
        Ok(())
    }
}

/// A [`BlockDevice`] wrapper injecting the faults of a [`FaultState`]
/// over any inner device.
///
/// The wrapper keeps its own [`DeviceStats`] recording *degraded*
/// latencies (the inner device's stats keep recording healthy service
/// times); mechanical counters (seeks) remain on the inner device.
#[derive(Debug)]
pub struct FaultyDisk<D: BlockDevice> {
    inner: D,
    state: FaultState,
    stats: DeviceStats,
}

impl<D: BlockDevice> FaultyDisk<D> {
    /// Wraps `inner` with the fault plan `spec`, forking the fault RNG
    /// stream from `seed`.
    pub fn new(inner: D, spec: FaultSpec, seed: u64) -> Self {
        FaultyDisk {
            inner,
            state: FaultState::new(spec, seed),
            stats: DeviceStats::default(),
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Injection counters.
    pub fn fault_stats(&self) -> &FaultStats {
        self.state.stats()
    }
}

impl<D: BlockDevice> BlockDevice for FaultyDisk<D> {
    fn service(&mut self, req: &IoRequest, now: Nanos) -> Nanos {
        let base = self.inner.service(req, now);
        let total = self.state.degrade(now, base);
        self.stats.record(req, total);
        total
    }

    fn service_checked(&mut self, req: &IoRequest, now: Nanos) -> SimResult<Nanos> {
        self.state.check(req)?;
        Ok(self.service(req, now))
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity_blocks()
    }

    fn block_size(&self) -> rb_simcore::units::Bytes {
        self.inner.block_size()
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn model_name(&self) -> &str {
        self.inner.model_name()
    }
}

/// How a file system recovers after a crash: the region it must scan
/// and the writes it replays. Journaling file systems scan a small log;
/// non-journaled ones pay a metadata-proportional fsck walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// First block of the scan region.
    pub scan_start: BlockNo,
    /// Blocks read during the scan.
    pub scan_blocks: u64,
    /// Blocks rewritten while replaying the log (0 for fsck).
    pub replay_writes: u64,
    /// `"journal-replay"` or `"fsck-scan"`.
    pub mechanism: &'static str,
}

/// The verdict of a crash-at-instant: when it hit, what recovery cost,
/// what was lost, and whether the metadata walk came back clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// Virtual instant the crash was injected.
    pub at: Nanos,
    /// Recovery mechanism (from the file system's [`RecoveryPlan`]).
    pub mechanism: &'static str,
    /// Device time spent scanning and replaying.
    pub recovery: Nanos,
    /// Dirty page-cache pages discarded by the crash.
    pub lost_dirty_pages: u64,
    /// Whether the post-recovery consistency walk passed.
    pub consistent: bool,
}

/// Conservation accounting for a run under faults:
/// `attempted = succeeded + retried_ok + gave_up + dropped`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutcomeLedger {
    /// Ops the workload attempted (open loop: offered, incl. drops).
    pub attempted: u64,
    /// Ops that succeeded first try.
    pub succeeded: u64,
    /// Ops that failed at least once but succeeded on a retry.
    pub retried_ok: u64,
    /// Ops abandoned after exhausting the retry policy.
    pub gave_up: u64,
    /// Open-loop arrivals shed before reaching the target.
    pub dropped: u64,
    /// Individual retry attempts issued.
    pub retries: u64,
    /// Degraded-mode virtual time: backoff waits plus crash recovery.
    pub degraded: Nanos,
    /// Crash verdict, when the plan included `crash:`.
    pub crash: Option<CrashReport>,
}

impl OutcomeLedger {
    /// The conservation identity every engine must preserve.
    pub fn balanced(&self) -> bool {
        self.attempted == self.succeeded + self.retried_ok + self.gave_up + self.dropped
    }

    /// Folds another run's ledger into this one (campaign aggregation
    /// across repeated runs); the first crash report wins.
    pub fn merge(&mut self, other: &OutcomeLedger) {
        self.attempted += other.attempted;
        self.succeeded += other.succeeded;
        self.retried_ok += other.retried_ok;
        self.gave_up += other.gave_up;
        self.dropped += other.dropped;
        self.retries += other.retries;
        self.degraded += other.degraded;
        if self.crash.is_none() {
            self.crash = other.crash;
        }
    }

    /// One-line human-readable summary, used by the CLI.
    pub fn render(&self) -> String {
        let mut line = format!(
            "ledger: attempted {} = ok {} + retried-ok {} + gave-up {} + dropped {} \
             ({} retries, degraded {})",
            self.attempted,
            self.succeeded,
            self.retried_ok,
            self.gave_up,
            self.dropped,
            self.retries,
            self.degraded,
        );
        if let Some(c) = &self.crash {
            line.push_str(&format!(
                "\ncrash at {}: {} recovered in {}, {} dirty pages lost, metadata {}",
                c.at,
                c.mechanism,
                c.recovery,
                c.lost_dirty_pages,
                if c.consistent {
                    "consistent"
                } else {
                    "INCONSISTENT"
                }
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_simcore::units::Bytes;
    use rb_simdisk::prelude::RamDisk;

    #[test]
    fn spec_parse_label_round_trips() {
        for s in [
            "slow-disk:4x",
            "slow-disk:1.5x",
            "stall:500ms/50ms",
            "eio:0.0001",
            "eio-sticky:0.00001",
            "enospc:90%",
            "crash:10000ms",
            "slow-disk:4x,stall:500ms/50ms,eio:0.0001,eio-sticky:0.00001,enospc:90%,crash:10000ms",
        ] {
            let spec = FaultSpec::parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec.label(), s, "canonical label for {s}");
            assert_eq!(FaultSpec::parse(&spec.label()).unwrap(), spec);
        }
    }

    #[test]
    fn spec_accepts_scientific_and_seconds() {
        let spec = FaultSpec::parse("eio:1e-4,crash:10s").unwrap();
        assert_eq!(spec.eio_ppb, 100_000);
        assert_eq!(spec.crash_ms, 10_000);
        assert_eq!(spec.label(), "eio:0.0001,crash:10000ms");
        assert_eq!(spec.crash_at(), Some(Nanos::from_secs(10)));
    }

    #[test]
    fn spec_rejects_malformed_input_with_one_line_errors() {
        for bad in [
            "",
            "none",
            "slow-disk",
            "slow-disk:fast",
            "slow-disk:0.5x",
            "stall:50ms",
            "stall:50ms/500ms",
            "eio:2.0",
            "eio:-1",
            "enospc:0%",
            "enospc:101",
            "crash:0ms",
            "warp:9",
        ] {
            let err = FaultSpec::parse(bad).expect_err(bad);
            assert!(!err.contains('\n'), "{bad}: multi-line error {err:?}");
        }
    }

    #[test]
    fn parse_flag_treats_none_as_absent() {
        assert_eq!(FaultSpec::parse_flag("none").unwrap(), None);
        assert_eq!(FaultSpec::parse_flag("").unwrap(), None);
        assert!(FaultSpec::parse_flag("slow-disk:2x").unwrap().is_some());
        assert!(FaultSpec::parse_flag("bogus").is_err());
    }

    #[test]
    fn retry_policy_round_trips() {
        for s in ["none", "bounded:3", "continue"] {
            let p = RetryPolicy::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!(RetryPolicy::parse("bounded:0").is_err());
        assert!(RetryPolicy::parse("bounded:many").is_err());
        assert!(RetryPolicy::parse("always").is_err());
        assert_eq!(RetryPolicy::Bounded { retries: 7 }.retries(), 7);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(RetryPolicy::backoff(1), Nanos::from_micros(100));
        assert_eq!(RetryPolicy::backoff(2), Nanos::from_micros(200));
        assert_eq!(RetryPolicy::backoff(3), Nanos::from_micros(400));
        assert_eq!(RetryPolicy::backoff(8), Nanos::from_millis(10));
        assert_eq!(RetryPolicy::backoff(64), Nanos::from_millis(10));
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let spec = FaultSpec::parse("eio:0.01").unwrap();
        let outcomes = |seed| {
            let mut st = FaultState::new(spec, seed);
            (0..10_000u64)
                .map(|i| st.check(&IoRequest::read(i, 1)).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(outcomes(7), outcomes(7), "same seed, same faults");
        assert_ne!(outcomes(7), outcomes(8), "different seed, different faults");
        let hits = outcomes(7).iter().filter(|&&e| e).count();
        assert!((50..200).contains(&hits), "≈1% of 10k draws, got {hits}");
    }

    #[test]
    fn sticky_blocks_fail_forever() {
        let spec = FaultSpec::parse("eio-sticky:1.0").unwrap();
        let mut st = FaultState::new(spec, 3);
        assert!(st.check(&IoRequest::read(42, 1)).is_err());
        for _ in 0..5 {
            assert_eq!(
                st.check(&IoRequest::read(42, 1)),
                Err(SimError::Io { block: 42 })
            );
        }
        assert_eq!(st.stats().bad_blocks, 1);
        assert_eq!(st.stats().sticky_errors, 6);
    }

    #[test]
    fn degrade_scales_and_stalls() {
        let spec = FaultSpec::parse("slow-disk:4x,stall:100ms/10ms").unwrap();
        let mut st = FaultState::new(spec, 0);
        // Inside the stall window at t=2ms: wait 8ms + 4x the base.
        let total = st.degrade(Nanos::from_millis(2), Nanos::from_millis(1));
        assert_eq!(total, Nanos::from_millis(4) + Nanos::from_millis(8));
        // Outside the window: only the multiplier.
        let total = st.degrade(Nanos::from_millis(50), Nanos::from_millis(1));
        assert_eq!(total, Nanos::from_millis(4));
        assert_eq!(st.stats().stall_hits, 1);
        assert_eq!(st.stats().degraded(), Nanos::from_millis(14));
    }

    #[test]
    fn enospc_gate_honors_fill_fraction() {
        let spec = FaultSpec::parse("enospc:90%").unwrap();
        let mut st = FaultState::new(spec, 0);
        assert!(st.enospc_gate(800, 1000, 50).is_ok());
        assert_eq!(st.enospc_gate(880, 1000, 50), Err(SimError::NoSpace));
        assert_eq!(st.stats().enospc_rejections, 1);
    }

    #[test]
    fn faulty_disk_wraps_any_device() {
        let spec = FaultSpec::parse("slow-disk:2x").unwrap();
        let mk = || {
            RamDisk::new(
                256,
                Bytes::kib(4),
                Nanos::from_micros(2),
                Nanos::from_micros(1),
            )
        };
        let ram = mk();
        let healthy = mk().service(&IoRequest::read(0, 8), Nanos::ZERO);
        let mut disk = FaultyDisk::new(ram, spec, 1);
        let lat = disk
            .service_checked(&IoRequest::read(0, 8), Nanos::ZERO)
            .unwrap();
        assert_eq!(lat, healthy * 2);
        assert_eq!(disk.stats().busy, lat, "wrapper stats record degraded time");
    }

    #[test]
    fn ledger_conserves_and_merges() {
        let mut a = OutcomeLedger {
            attempted: 10,
            succeeded: 7,
            retried_ok: 1,
            gave_up: 1,
            dropped: 1,
            retries: 4,
            degraded: Nanos::from_millis(3),
            crash: None,
        };
        assert!(a.balanced());
        let b = OutcomeLedger {
            attempted: 5,
            succeeded: 5,
            ..OutcomeLedger::default()
        };
        a.merge(&b);
        assert_eq!(a.attempted, 15);
        assert!(a.balanced());
        assert!(a.render().starts_with("ledger: attempted 15 = ok 12"));
    }
}
