//! Shared namespace machinery: inodes, directories, path resolution.
//!
//! Every simulated file system layers its *placement policy* over this
//! common tree, so namespace semantics (POSIX-ish path rules, link
//! counting, empty-directory checks) are implemented — and tested — once.
//!
//! Resolution has two entry points: the classic `&str` API (validates
//! and splits on every call — the compatibility path) and the
//! [`PathSpec`] API, which resolves a pre-split path by walking
//! [`Symbol`]-keyed directory tables with zero allocation. Both produce
//! identical results and identical errors; the spec path is what the
//! storage stack's per-path cache uses on every hot operation.

use crate::alloc::Run;
use crate::intern::{Interner, PathSpec, Symbol};
use rb_simcore::error::{SimError, SimResult};
use rb_simcore::fnv::FnvHashMap;
use rb_simcore::inline::InlineVec;
use rb_simcore::units::Bytes;

use crate::vfs::InodeNo;

/// Inode chain recorded during a resolution, root first: inline up to
/// 8 levels deep — deeper than any testbed namespace — so the per-op
/// traversal record costs no allocation on the hot path.
pub type Traversed = InlineVec<InodeNo, 8>;

/// Bytes a directory entry consumes (fixed-size model).
pub const DIRENT_SIZE: u64 = 64;

/// An in-memory inode.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Inode number.
    pub ino: InodeNo,
    /// Logical size.
    pub size: Bytes,
    /// Data runs in logical order (cumulative mapping).
    pub runs: Vec<Run>,
    /// Directory payload, if this is a directory: entry name symbol →
    /// child inode. Resolve symbols through [`Tree::name`].
    pub dir: Option<FnvHashMap<Symbol, InodeNo>>,
    /// Parent directory inode (self for the root).
    pub parent: InodeNo,
}

impl Inode {
    /// Allocated data blocks.
    pub fn blocks(&self) -> u64 {
        self.runs.iter().map(|r| r.len).sum()
    }

    /// True for directories.
    pub fn is_dir(&self) -> bool {
        self.dir.is_some()
    }

    /// Maps a logical block to (physical block, contiguous run remainder).
    pub fn map_block(&self, logical: u64) -> Option<(u64, u64)> {
        let mut base = 0u64;
        for r in &self.runs {
            if logical < base + r.len {
                let off = logical - base;
                return Some((r.start + off, r.len - off));
            }
            base += r.len;
        }
        None
    }

    /// Number of mapping extents (fragmentation of this file).
    pub fn extent_count(&self) -> usize {
        self.runs.len()
    }
}

/// The namespace: an inode table plus path resolution.
#[derive(Debug, Clone)]
pub struct Tree {
    inodes: FnvHashMap<InodeNo, Inode>,
    interner: Interner,
    next_ino: InodeNo,
    root: InodeNo,
}

/// Root inode number (fixed, like ext2's inode 2).
pub const ROOT_INO: InodeNo = 2;

impl Default for Tree {
    fn default() -> Self {
        Self::new()
    }
}

impl Tree {
    /// Creates a namespace containing only `/`.
    pub fn new() -> Self {
        let mut inodes = FnvHashMap::default();
        inodes.insert(
            ROOT_INO,
            Inode {
                ino: ROOT_INO,
                size: Bytes::ZERO,
                runs: Vec::new(),
                dir: Some(FnvHashMap::default()),
                parent: ROOT_INO,
            },
        );
        Tree {
            inodes,
            interner: Interner::new(),
            next_ino: ROOT_INO + 1,
            root: ROOT_INO,
        }
    }

    /// Root inode.
    pub fn root(&self) -> InodeNo {
        self.root
    }

    /// Number of live inodes.
    pub fn len(&self) -> usize {
        self.inodes.len()
    }

    /// Returns true if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.inodes.len() == 1
    }

    /// Immutable inode access.
    pub fn get(&self, ino: InodeNo) -> SimResult<&Inode> {
        self.inodes
            .get(&ino)
            .ok_or_else(|| SimError::NotFound(format!("inode {ino}")))
    }

    /// Mutable inode access.
    pub fn get_mut(&mut self, ino: InodeNo) -> SimResult<&mut Inode> {
        self.inodes
            .get_mut(&ino)
            .ok_or_else(|| SimError::NotFound(format!("inode {ino}")))
    }

    /// Iterates all inodes.
    pub fn iter(&self) -> impl Iterator<Item = &Inode> {
        self.inodes.values()
    }

    /// Fsck-style namespace walk: every inode must be reachable from
    /// the root, and each child's parent pointer must agree with the
    /// directory entry naming it. Returns the first violation found —
    /// shared by the file systems' consistency checks.
    pub fn check_reachable(&self) -> Result<(), String> {
        use std::collections::VecDeque;
        let mut seen = rb_simcore::fnv::FnvHashSet::default();
        let mut queue = VecDeque::from([self.root]);
        seen.insert(self.root);
        while let Some(ino) = queue.pop_front() {
            let node = self
                .inodes
                .get(&ino)
                .ok_or_else(|| format!("directory entry points at missing inode {ino}"))?;
            if let Some(dir) = &node.dir {
                for (&name, &child) in dir {
                    let c = self.inodes.get(&child).ok_or_else(|| {
                        format!(
                            "dirent {:?} in inode {ino} points at missing inode {child}",
                            self.name(name)
                        )
                    })?;
                    if c.parent != ino {
                        return Err(format!(
                            "inode {child} parent pointer {} disagrees with its dirent in {ino}",
                            c.parent
                        ));
                    }
                    if seen.insert(child) {
                        queue.push_back(child);
                    }
                }
            }
        }
        if seen.len() != self.inodes.len() {
            return Err(format!(
                "{} inodes exist but only {} are reachable from the root",
                self.inodes.len(),
                seen.len()
            ));
        }
        Ok(())
    }

    /// The name behind an interned component symbol.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Interns a component name (see [`Interner::intern`]).
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.interner.intern(name)
    }

    /// Validates a path shape: absolute, no `.`/`..` components.
    pub fn validate(path: &str) -> SimResult<()> {
        if !path.starts_with('/') {
            return Err(SimError::InvalidOperation(format!(
                "path must be absolute: {path}"
            )));
        }
        if path.split('/').any(|c| c == "." || c == "..") {
            return Err(SimError::InvalidOperation(format!(
                "path must be canonical: {path}"
            )));
        }
        Ok(())
    }

    /// Iterates a path's components without allocating, rejecting
    /// malformed input up front. This is the single splitting routine
    /// behind every resolution and interning entry point.
    pub fn components_iter(path: &str) -> SimResult<impl Iterator<Item = &str>> {
        Self::validate(path)?;
        Ok(path.split('/').filter(|c| !c.is_empty()))
    }

    /// Splits a path into components, rejecting malformed input.
    ///
    /// Allocates the returned vector; resolution paths use
    /// [`Tree::components_iter`] or a pre-built [`PathSpec`] instead.
    pub fn components(path: &str) -> SimResult<Vec<&str>> {
        Ok(Self::components_iter(path)?.collect())
    }

    /// Validates, splits and interns a path once, producing the spec
    /// the zero-allocation resolution API consumes.
    pub fn make_spec(&mut self, path: &str) -> SimResult<PathSpec> {
        let mut comps = Vec::new();
        for c in Self::components_iter(path)? {
            comps.push(self.interner.intern(c));
        }
        Ok(PathSpec::new(path, comps))
    }

    /// Resolves a pre-split path to an inode, also returning every
    /// directory inode traversed (for metadata charging). Behaviour and
    /// errors are identical to [`Tree::resolve`].
    pub fn resolve_spec(&self, spec: &PathSpec) -> SimResult<(InodeNo, Traversed)> {
        let mut cur = self.root;
        let mut traversed = Traversed::new();
        traversed.push(self.root);
        for &sym in spec.components() {
            cur = self.step(cur, sym, spec.path())?;
            traversed.push(cur);
        }
        Ok((cur, traversed))
    }

    /// Resolves the parent directory of a pre-split path, returning
    /// `(parent_ino, final_component, traversed)`. Behaviour and errors
    /// are identical to [`Tree::resolve_parent`].
    pub fn resolve_parent_spec(&self, spec: &PathSpec) -> SimResult<(InodeNo, Symbol, Traversed)> {
        let Some((leaf, dirs)) = spec.split_last() else {
            return Err(SimError::InvalidOperation("path is the root".into()));
        };
        let mut cur = self.root;
        let mut traversed = Traversed::new();
        traversed.push(self.root);
        for &sym in dirs {
            cur = self.step(cur, sym, spec.path())?;
            traversed.push(cur);
        }
        if self.get(cur)?.dir.is_none() {
            return Err(SimError::InvalidOperation(format!(
                "{}: parent not a directory",
                spec.path()
            )));
        }
        Ok((cur, leaf, traversed))
    }

    /// One resolution step: child of `cur` named `sym`, with the same
    /// errors the string walk produced.
    #[inline]
    fn step(&self, cur: InodeNo, sym: Symbol, path: &str) -> SimResult<InodeNo> {
        let node = self.get(cur)?;
        let dir = node.dir.as_ref().ok_or_else(|| {
            SimError::InvalidOperation(format!("{}: not a directory", self.name(sym)))
        })?;
        dir.get(&sym)
            .copied()
            .ok_or_else(|| SimError::NotFound(path.to_string()))
    }

    /// Returns true if directory `parent` has an entry named `name`.
    ///
    /// An O(1) existence probe for callers that already resolved the
    /// parent — equivalent to (but much cheaper than) re-resolving the
    /// full path and checking for success.
    pub fn has_child(&self, parent: InodeNo, name: Symbol) -> bool {
        self.inodes
            .get(&parent)
            .and_then(|n| n.dir.as_ref())
            .is_some_and(|d| d.contains_key(&name))
    }

    /// Resolves a path to an inode, also returning every directory inode
    /// traversed (for metadata charging).
    pub fn resolve(&self, path: &str) -> SimResult<(InodeNo, Vec<InodeNo>)> {
        let mut cur = self.root;
        let mut traversed = vec![self.root];
        for c in Self::components_iter(path)? {
            cur = self.step_named(cur, c, path)?;
            traversed.push(cur);
        }
        Ok((cur, traversed))
    }

    /// [`Tree::step`] for a component that may never have been interned
    /// (a name that was never created certainly is not in the tree).
    fn step_named(&self, cur: InodeNo, name: &str, path: &str) -> SimResult<InodeNo> {
        let node = self.get(cur)?;
        let dir = node
            .dir
            .as_ref()
            .ok_or_else(|| SimError::InvalidOperation(format!("{name}: not a directory")))?;
        self.interner
            .lookup(name)
            .and_then(|sym| dir.get(&sym).copied())
            .ok_or_else(|| SimError::NotFound(path.to_string()))
    }

    /// Resolves the parent directory of `path`, returning
    /// `(parent_ino, final_component, traversed)`.
    pub fn resolve_parent<'p>(&self, path: &'p str) -> SimResult<(InodeNo, &'p str, Vec<InodeNo>)> {
        let comps = Self::components(path)?;
        let Some((&name, dirs)) = comps.split_last() else {
            return Err(SimError::InvalidOperation("path is the root".into()));
        };
        let mut cur = self.root;
        let mut traversed = vec![self.root];
        for c in dirs {
            cur = self.step_named(cur, c, path)?;
            traversed.push(cur);
        }
        if self.get(cur)?.dir.is_none() {
            return Err(SimError::InvalidOperation(format!(
                "{path}: parent not a directory"
            )));
        }
        Ok((cur, name, traversed))
    }

    /// Inserts a new inode under `parent` with the given name.
    ///
    /// The caller has already verified the name is free.
    pub fn insert_child(
        &mut self,
        parent: InodeNo,
        name: &str,
        is_dir: bool,
    ) -> SimResult<InodeNo> {
        let sym = self.interner.intern(name);
        self.insert_child_sym(parent, sym, is_dir)
    }

    /// [`Tree::insert_child`] with a pre-interned name.
    pub fn insert_child_sym(
        &mut self,
        parent: InodeNo,
        name: Symbol,
        is_dir: bool,
    ) -> SimResult<InodeNo> {
        let ino = self.next_ino;
        self.next_ino += 1;
        let node = Inode {
            ino,
            size: Bytes::ZERO,
            runs: Vec::new(),
            dir: if is_dir {
                Some(FnvHashMap::default())
            } else {
                None
            },
            parent,
        };
        self.inodes.insert(ino, node);
        let pdir = self
            .get_mut(parent)?
            .dir
            .as_mut()
            .ok_or_else(|| SimError::InvalidOperation("parent not a directory".into()))?;
        pdir.insert(name, ino);
        // Directory grows by one entry.
        let psize = self.get(parent)?.size + Bytes::new(DIRENT_SIZE);
        self.get_mut(parent)?.size = psize;
        Ok(ino)
    }

    /// Removes `name` from `parent` and deletes the inode, returning its
    /// data runs for the allocator to free.
    ///
    /// Directories must be empty.
    pub fn remove_child(&mut self, parent: InodeNo, name: &str) -> SimResult<(InodeNo, Vec<Run>)> {
        let sym = self
            .interner
            .lookup(name)
            .ok_or_else(|| SimError::NotFound(name.to_string()))?;
        self.remove_child_sym(parent, sym)
    }

    /// [`Tree::remove_child`] with a pre-interned name.
    pub fn remove_child_sym(
        &mut self,
        parent: InodeNo,
        name: Symbol,
    ) -> SimResult<(InodeNo, Vec<Run>)> {
        let ino = {
            let pdir = self
                .get(parent)?
                .dir
                .as_ref()
                .ok_or_else(|| SimError::InvalidOperation("parent not a directory".into()))?;
            *pdir
                .get(&name)
                .ok_or_else(|| SimError::NotFound(self.name(name).to_string()))?
        };
        if let Some(d) = &self.get(ino)?.dir {
            if !d.is_empty() {
                return Err(SimError::NotEmpty(self.name(name).to_string()));
            }
        }
        let runs = self.get(ino)?.runs.clone();
        self.inodes.remove(&ino);
        if let Some(pdir) = self.get_mut(parent)?.dir.as_mut() {
            pdir.remove(&name);
        }
        let psize = self
            .get(parent)?
            .size
            .saturating_sub(Bytes::new(DIRENT_SIZE));
        self.get_mut(parent)?.size = psize;
        Ok((ino, runs))
    }

    /// Number of entries in a directory (the counted readdir form).
    pub fn dir_len(&self, ino: InodeNo) -> SimResult<u64> {
        self.get(ino)?
            .dir
            .as_ref()
            .map(|d| d.len() as u64)
            .ok_or_else(|| SimError::InvalidOperation(format!("inode {ino}: not a directory")))
    }

    /// Sorted entry names of a directory (allocates; readdir's listing
    /// form, off the hot path).
    pub fn read_names(&self, ino: InodeNo) -> SimResult<Vec<String>> {
        let dir =
            self.get(ino)?.dir.as_ref().ok_or_else(|| {
                SimError::InvalidOperation(format!("inode {ino}: not a directory"))
            })?;
        let mut names: Vec<String> = dir.keys().map(|&s| self.name(s).to_string()).collect();
        names.sort_unstable();
        Ok(names)
    }

    /// Mean extents per file MiB across regular files (layout metric).
    pub fn avg_file_extents(&self) -> f64 {
        let mut files = 0usize;
        let mut total_ext = 0usize;
        for i in self.iter() {
            if !i.is_dir() && !i.runs.is_empty() {
                files += 1;
                total_ext += i.extent_count();
            }
        }
        if files == 0 {
            return 0.0;
        }
        total_ext as f64 / files as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_exists() {
        let t = Tree::new();
        assert!(t.get(ROOT_INO).unwrap().is_dir());
        assert!(t.is_empty());
        let (ino, traversed) = t.resolve("/").unwrap();
        assert_eq!(ino, ROOT_INO);
        assert_eq!(traversed, vec![ROOT_INO]);
    }

    #[test]
    fn create_and_resolve_nested() {
        let mut t = Tree::new();
        let d = t.insert_child(ROOT_INO, "dir", true).unwrap();
        let f = t.insert_child(d, "file", false).unwrap();
        let (ino, traversed) = t.resolve("/dir/file").unwrap();
        assert_eq!(ino, f);
        assert_eq!(traversed, vec![ROOT_INO, d, f]);
        assert!(!t.get(f).unwrap().is_dir());
    }

    #[test]
    fn spec_resolution_agrees_with_string_resolution() {
        let mut t = Tree::new();
        let d = t.insert_child(ROOT_INO, "dir", true).unwrap();
        let f = t.insert_child(d, "file", false).unwrap();
        for path in ["/", "/dir", "/dir/file", "/dir/missing", "/dir/file/deep"] {
            let spec = t.make_spec(path).unwrap();
            match (t.resolve(path), t.resolve_spec(&spec)) {
                (Ok((ia, ta)), Ok((ib, tb))) => {
                    assert_eq!((ia, ta.as_slice()), (ib, tb.as_slice()), "{path}")
                }
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{path}"),
                (a, b) => panic!("{path}: string {a:?} vs spec {b:?}"),
            }
        }
        let spec = t.make_spec("/dir/file").unwrap();
        let (ino, _) = t.resolve_spec(&spec).unwrap();
        assert_eq!(ino, f);
    }

    #[test]
    fn resolve_parent_of_missing_leaf_ok() {
        let mut t = Tree::new();
        t.insert_child(ROOT_INO, "dir", true).unwrap();
        let (parent, name, _) = t.resolve_parent("/dir/new").unwrap();
        assert_eq!(name, "new");
        assert_eq!(parent, t.resolve("/dir").unwrap().0);
        // Same through the spec API.
        let spec = t.make_spec("/dir/new").unwrap();
        let (p2, leaf, _) = t.resolve_parent_spec(&spec).unwrap();
        assert_eq!(p2, parent);
        assert_eq!(t.name(leaf), "new");
    }

    #[test]
    fn malformed_paths_rejected() {
        let t = Tree::new();
        assert!(t.resolve("relative").is_err());
        assert!(t.resolve("/a/../b").is_err());
        assert!(Tree::components("/a/./b").is_err());
        assert!(t.resolve_parent("/").is_err());
        let mut t = Tree::new();
        assert!(t.make_spec("relative").is_err());
        assert!(t.make_spec("/a/../b").is_err());
        let root_spec = t.make_spec("/").unwrap();
        assert!(t.resolve_parent_spec(&root_spec).is_err());
    }

    #[test]
    fn components_iter_does_not_allocate_a_vec() {
        let mut it = Tree::components_iter("/a/b/c").unwrap();
        assert_eq!(it.next(), Some("a"));
        assert_eq!(it.next(), Some("b"));
        assert_eq!(it.next(), Some("c"));
        assert_eq!(it.next(), None);
        assert_eq!(Tree::components("/a//b").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn file_component_in_middle_fails() {
        let mut t = Tree::new();
        t.insert_child(ROOT_INO, "f", false).unwrap();
        assert!(t.resolve("/f/child").is_err());
        assert!(t.resolve_parent("/f/child").is_err());
        let spec = t.make_spec("/f/child").unwrap();
        assert!(t.resolve_spec(&spec).is_err());
        assert!(t.resolve_parent_spec(&spec).is_err());
    }

    #[test]
    fn remove_child_returns_runs() {
        let mut t = Tree::new();
        let f = t.insert_child(ROOT_INO, "f", false).unwrap();
        t.get_mut(f).unwrap().runs = vec![Run { start: 100, len: 5 }];
        let (ino, runs) = t.remove_child(ROOT_INO, "f").unwrap();
        assert_eq!(ino, f);
        assert_eq!(runs, vec![Run { start: 100, len: 5 }]);
        assert!(t.resolve("/f").is_err());
        // Removing a never-interned name is NotFound, not a panic.
        assert!(matches!(
            t.remove_child(ROOT_INO, "ghost"),
            Err(SimError::NotFound(_))
        ));
    }

    #[test]
    fn nonempty_dir_protected() {
        let mut t = Tree::new();
        let d = t.insert_child(ROOT_INO, "d", true).unwrap();
        t.insert_child(d, "f", false).unwrap();
        assert!(matches!(
            t.remove_child(ROOT_INO, "d"),
            Err(SimError::NotEmpty(_))
        ));
        t.remove_child(d, "f").unwrap();
        assert!(t.remove_child(ROOT_INO, "d").is_ok());
    }

    #[test]
    fn dir_size_tracks_entries() {
        let mut t = Tree::new();
        t.insert_child(ROOT_INO, "a", false).unwrap();
        t.insert_child(ROOT_INO, "b", false).unwrap();
        assert_eq!(t.get(ROOT_INO).unwrap().size, Bytes::new(2 * DIRENT_SIZE));
        t.remove_child(ROOT_INO, "a").unwrap();
        assert_eq!(t.get(ROOT_INO).unwrap().size, Bytes::new(DIRENT_SIZE));
    }

    #[test]
    fn read_names_sorted_and_dir_len_counts() {
        let mut t = Tree::new();
        t.insert_child(ROOT_INO, "b", false).unwrap();
        t.insert_child(ROOT_INO, "a", false).unwrap();
        assert_eq!(t.read_names(ROOT_INO).unwrap(), vec!["a", "b"]);
        assert_eq!(t.dir_len(ROOT_INO).unwrap(), 2);
        let f = t.resolve("/a").unwrap().0;
        assert!(t.read_names(f).is_err());
        assert!(t.dir_len(f).is_err());
    }

    #[test]
    fn map_block_walks_runs() {
        let mut t = Tree::new();
        let f = t.insert_child(ROOT_INO, "f", false).unwrap();
        t.get_mut(f).unwrap().runs = vec![Run { start: 100, len: 3 }, Run { start: 500, len: 2 }];
        let node = t.get(f).unwrap();
        assert_eq!(node.map_block(0), Some((100, 3)));
        assert_eq!(node.map_block(2), Some((102, 1)));
        assert_eq!(node.map_block(3), Some((500, 2)));
        assert_eq!(node.map_block(4), Some((501, 1)));
        assert_eq!(node.map_block(5), None);
        assert_eq!(node.blocks(), 5);
        assert_eq!(node.extent_count(), 2);
    }
}
