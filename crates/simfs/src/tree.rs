//! Shared namespace machinery: inodes, directories, path resolution.
//!
//! Every simulated file system layers its *placement policy* over this
//! common tree, so namespace semantics (POSIX-ish path rules, link
//! counting, empty-directory checks) are implemented — and tested — once.

use crate::alloc::Run;
use rb_simcore::error::{SimError, SimResult};
use rb_simcore::units::Bytes;
use std::collections::HashMap;

use crate::vfs::InodeNo;

/// Bytes a directory entry consumes (fixed-size model).
pub const DIRENT_SIZE: u64 = 64;

/// An in-memory inode.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Inode number.
    pub ino: InodeNo,
    /// Logical size.
    pub size: Bytes,
    /// Data runs in logical order (cumulative mapping).
    pub runs: Vec<Run>,
    /// Directory payload, if this is a directory.
    pub dir: Option<HashMap<String, InodeNo>>,
    /// Parent directory inode (self for the root).
    pub parent: InodeNo,
}

impl Inode {
    /// Allocated data blocks.
    pub fn blocks(&self) -> u64 {
        self.runs.iter().map(|r| r.len).sum()
    }

    /// True for directories.
    pub fn is_dir(&self) -> bool {
        self.dir.is_some()
    }

    /// Maps a logical block to (physical block, contiguous run remainder).
    pub fn map_block(&self, logical: u64) -> Option<(u64, u64)> {
        let mut base = 0u64;
        for r in &self.runs {
            if logical < base + r.len {
                let off = logical - base;
                return Some((r.start + off, r.len - off));
            }
            base += r.len;
        }
        None
    }

    /// Number of mapping extents (fragmentation of this file).
    pub fn extent_count(&self) -> usize {
        self.runs.len()
    }
}

/// The namespace: an inode table plus path resolution.
#[derive(Debug, Clone)]
pub struct Tree {
    inodes: HashMap<InodeNo, Inode>,
    next_ino: InodeNo,
    root: InodeNo,
}

/// Root inode number (fixed, like ext2's inode 2).
pub const ROOT_INO: InodeNo = 2;

impl Default for Tree {
    fn default() -> Self {
        Self::new()
    }
}

impl Tree {
    /// Creates a namespace containing only `/`.
    pub fn new() -> Self {
        let mut inodes = HashMap::new();
        inodes.insert(
            ROOT_INO,
            Inode {
                ino: ROOT_INO,
                size: Bytes::ZERO,
                runs: Vec::new(),
                dir: Some(HashMap::new()),
                parent: ROOT_INO,
            },
        );
        Tree {
            inodes,
            next_ino: ROOT_INO + 1,
            root: ROOT_INO,
        }
    }

    /// Root inode.
    pub fn root(&self) -> InodeNo {
        self.root
    }

    /// Number of live inodes.
    pub fn len(&self) -> usize {
        self.inodes.len()
    }

    /// Returns true if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.inodes.len() == 1
    }

    /// Immutable inode access.
    pub fn get(&self, ino: InodeNo) -> SimResult<&Inode> {
        self.inodes
            .get(&ino)
            .ok_or_else(|| SimError::NotFound(format!("inode {ino}")))
    }

    /// Mutable inode access.
    pub fn get_mut(&mut self, ino: InodeNo) -> SimResult<&mut Inode> {
        self.inodes
            .get_mut(&ino)
            .ok_or_else(|| SimError::NotFound(format!("inode {ino}")))
    }

    /// Iterates all inodes.
    pub fn iter(&self) -> impl Iterator<Item = &Inode> {
        self.inodes.values()
    }

    /// Splits a path into components, rejecting malformed input.
    pub fn components(path: &str) -> SimResult<Vec<&str>> {
        if !path.starts_with('/') {
            return Err(SimError::InvalidOperation(format!(
                "path must be absolute: {path}"
            )));
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if comps.iter().any(|c| *c == "." || *c == "..") {
            return Err(SimError::InvalidOperation(format!(
                "path must be canonical: {path}"
            )));
        }
        Ok(comps)
    }

    /// Resolves a path to an inode, also returning every directory inode
    /// traversed (for metadata charging).
    pub fn resolve(&self, path: &str) -> SimResult<(InodeNo, Vec<InodeNo>)> {
        let comps = Self::components(path)?;
        let mut cur = self.root;
        let mut traversed = vec![self.root];
        for c in comps {
            let node = self.get(cur)?;
            let dir = node
                .dir
                .as_ref()
                .ok_or_else(|| SimError::InvalidOperation(format!("{c}: not a directory")))?;
            cur = *dir
                .get(c)
                .ok_or_else(|| SimError::NotFound(path.to_string()))?;
            traversed.push(cur);
        }
        Ok((cur, traversed))
    }

    /// Resolves the parent directory of `path`, returning
    /// `(parent_ino, final_component, traversed)`.
    pub fn resolve_parent<'p>(&self, path: &'p str) -> SimResult<(InodeNo, &'p str, Vec<InodeNo>)> {
        let comps = Self::components(path)?;
        let Some((&name, dirs)) = comps.split_last() else {
            return Err(SimError::InvalidOperation("path is the root".into()));
        };
        let mut cur = self.root;
        let mut traversed = vec![self.root];
        for c in dirs {
            let node = self.get(cur)?;
            let dir = node
                .dir
                .as_ref()
                .ok_or_else(|| SimError::InvalidOperation(format!("{c}: not a directory")))?;
            cur = *dir
                .get(*c)
                .ok_or_else(|| SimError::NotFound(path.to_string()))?;
            traversed.push(cur);
        }
        if self.get(cur)?.dir.is_none() {
            return Err(SimError::InvalidOperation(format!(
                "{path}: parent not a directory"
            )));
        }
        Ok((cur, name, traversed))
    }

    /// Inserts a new inode under `parent` with the given name.
    ///
    /// The caller has already verified the name is free.
    pub fn insert_child(
        &mut self,
        parent: InodeNo,
        name: &str,
        is_dir: bool,
    ) -> SimResult<InodeNo> {
        let ino = self.next_ino;
        self.next_ino += 1;
        let node = Inode {
            ino,
            size: Bytes::ZERO,
            runs: Vec::new(),
            dir: if is_dir { Some(HashMap::new()) } else { None },
            parent,
        };
        self.inodes.insert(ino, node);
        let pdir = self
            .get_mut(parent)?
            .dir
            .as_mut()
            .ok_or_else(|| SimError::InvalidOperation("parent not a directory".into()))?;
        pdir.insert(name.to_string(), ino);
        // Directory grows by one entry.
        let psize = self.get(parent)?.size + Bytes::new(DIRENT_SIZE);
        self.get_mut(parent)?.size = psize;
        Ok(ino)
    }

    /// Removes `name` from `parent` and deletes the inode, returning its
    /// data runs for the allocator to free.
    ///
    /// Directories must be empty.
    pub fn remove_child(&mut self, parent: InodeNo, name: &str) -> SimResult<(InodeNo, Vec<Run>)> {
        let ino = {
            let pdir = self
                .get(parent)?
                .dir
                .as_ref()
                .ok_or_else(|| SimError::InvalidOperation("parent not a directory".into()))?;
            *pdir
                .get(name)
                .ok_or_else(|| SimError::NotFound(name.to_string()))?
        };
        if let Some(d) = &self.get(ino)?.dir {
            if !d.is_empty() {
                return Err(SimError::NotEmpty(name.to_string()));
            }
        }
        let runs = self.get(ino)?.runs.clone();
        self.inodes.remove(&ino);
        if let Some(pdir) = self.get_mut(parent)?.dir.as_mut() {
            pdir.remove(name);
        }
        let psize = self
            .get(parent)?
            .size
            .saturating_sub(Bytes::new(DIRENT_SIZE));
        self.get_mut(parent)?.size = psize;
        Ok((ino, runs))
    }

    /// Mean extents per file MiB across regular files (layout metric).
    pub fn avg_file_extents(&self) -> f64 {
        let files: Vec<&Inode> = self
            .iter()
            .filter(|i| !i.is_dir() && !i.runs.is_empty())
            .collect();
        if files.is_empty() {
            return 0.0;
        }
        let total_ext: usize = files.iter().map(|i| i.extent_count()).sum();
        total_ext as f64 / files.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_exists() {
        let t = Tree::new();
        assert!(t.get(ROOT_INO).unwrap().is_dir());
        assert!(t.is_empty());
        let (ino, traversed) = t.resolve("/").unwrap();
        assert_eq!(ino, ROOT_INO);
        assert_eq!(traversed, vec![ROOT_INO]);
    }

    #[test]
    fn create_and_resolve_nested() {
        let mut t = Tree::new();
        let d = t.insert_child(ROOT_INO, "dir", true).unwrap();
        let f = t.insert_child(d, "file", false).unwrap();
        let (ino, traversed) = t.resolve("/dir/file").unwrap();
        assert_eq!(ino, f);
        assert_eq!(traversed, vec![ROOT_INO, d, f]);
        assert!(!t.get(f).unwrap().is_dir());
    }

    #[test]
    fn resolve_parent_of_missing_leaf_ok() {
        let mut t = Tree::new();
        t.insert_child(ROOT_INO, "dir", true).unwrap();
        let (parent, name, _) = t.resolve_parent("/dir/new").unwrap();
        assert_eq!(name, "new");
        assert_eq!(parent, t.resolve("/dir").unwrap().0);
    }

    #[test]
    fn malformed_paths_rejected() {
        let t = Tree::new();
        assert!(t.resolve("relative").is_err());
        assert!(t.resolve("/a/../b").is_err());
        assert!(Tree::components("/a/./b").is_err());
        assert!(t.resolve_parent("/").is_err());
    }

    #[test]
    fn file_component_in_middle_fails() {
        let mut t = Tree::new();
        t.insert_child(ROOT_INO, "f", false).unwrap();
        assert!(t.resolve("/f/child").is_err());
        assert!(t.resolve_parent("/f/child").is_err());
    }

    #[test]
    fn remove_child_returns_runs() {
        let mut t = Tree::new();
        let f = t.insert_child(ROOT_INO, "f", false).unwrap();
        t.get_mut(f).unwrap().runs = vec![Run { start: 100, len: 5 }];
        let (ino, runs) = t.remove_child(ROOT_INO, "f").unwrap();
        assert_eq!(ino, f);
        assert_eq!(runs, vec![Run { start: 100, len: 5 }]);
        assert!(t.resolve("/f").is_err());
    }

    #[test]
    fn nonempty_dir_protected() {
        let mut t = Tree::new();
        let d = t.insert_child(ROOT_INO, "d", true).unwrap();
        t.insert_child(d, "f", false).unwrap();
        assert!(matches!(
            t.remove_child(ROOT_INO, "d"),
            Err(SimError::NotEmpty(_))
        ));
        t.remove_child(d, "f").unwrap();
        assert!(t.remove_child(ROOT_INO, "d").is_ok());
    }

    #[test]
    fn dir_size_tracks_entries() {
        let mut t = Tree::new();
        t.insert_child(ROOT_INO, "a", false).unwrap();
        t.insert_child(ROOT_INO, "b", false).unwrap();
        assert_eq!(t.get(ROOT_INO).unwrap().size, Bytes::new(2 * DIRENT_SIZE));
        t.remove_child(ROOT_INO, "a").unwrap();
        assert_eq!(t.get(ROOT_INO).unwrap().size, Bytes::new(DIRENT_SIZE));
    }

    #[test]
    fn map_block_walks_runs() {
        let mut t = Tree::new();
        let f = t.insert_child(ROOT_INO, "f", false).unwrap();
        t.get_mut(f).unwrap().runs = vec![Run { start: 100, len: 3 }, Run { start: 500, len: 2 }];
        let node = t.get(f).unwrap();
        assert_eq!(node.map_block(0), Some((100, 3)));
        assert_eq!(node.map_block(2), Some((102, 1)));
        assert_eq!(node.map_block(3), Some((500, 2)));
        assert_eq!(node.map_block(4), Some((501, 1)));
        assert_eq!(node.map_block(5), None);
        assert_eq!(node.blocks(), 5);
        assert_eq!(node.extent_count(), 2);
    }
}
