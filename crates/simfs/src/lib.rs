//! # rb-simfs — simulated file systems and the storage stack
//!
//! Three file-system models over the simulated disk — ext2-like (block
//! groups, bitmaps, indirect blocks), ext3-like (ext2 + ordered-mode
//! journal) and xfs-like (allocation groups, extents, log) — plus the
//! [`stack::StorageStack`] composing file system, page cache and device
//! into the full storage hierarchy the paper calls "middleware with
//! layers above and below".
//!
//! File systems here are *layout engines*: they decide where bytes live
//! and which metadata blocks an operation touches; all data movement runs
//! through the shared cache and device models, so experiments isolate the
//! on-disk-layout dimension cleanly.
//!
//! ## Example
//!
//! ```
//! use rb_simfs::prelude::*;
//! use rb_simcore::units::Bytes;
//!
//! let mut fs = Ext2Fs::new(Ext2Config::for_blocks(65536));
//! let (ino, _) = fs.create("/hello").unwrap();
//! fs.set_size(ino, Bytes::mib(1)).unwrap();
//! assert_eq!(fs.attr(ino).unwrap().blocks, 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
pub mod alloc;
pub mod ext2;
pub mod ext3;
pub mod intern;
pub mod stack;
pub mod tree;
pub mod vfs;
pub mod xfs;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::aging::{age_filesystem, AgingConfig, AgingReport};
    pub use crate::alloc::{BitmapAllocator, ExtentAllocator, Run};
    pub use crate::ext2::{Ext2Config, Ext2Fs};
    pub use crate::ext3::{Ext3Config, Ext3Fs};
    pub use crate::intern::{Interner, PathId, PathSpec, Symbol};
    pub use crate::stack::{Fd, StackConfig, StackStats, StorageStack, META_FILE};
    pub use crate::tree::{Inode, Tree, ROOT_INO};
    pub use crate::vfs::{Extent, FileAttr, FileSystem, InodeNo, MetaIo};
    pub use crate::xfs::{XfsConfig, XfsFs};
}
