//! XFS-like file system: allocation groups, extents and a log.
//!
//! Placement policy: the device is divided into independent allocation
//! groups (AGs); directories rotate across AGs (spreading parallelism),
//! files allocate extents inside their directory's AG with best-fit from
//! a free-extent tree. Compared with the ext2 model, files are mapped by
//! a handful of large extents rather than block runs grown 1-at-a-time,
//! and the demand-miss clustering is much larger (64 KiB), which is what
//! differentiates its cache warm-up curve in the paper's Figure 2.

use crate::alloc::{ExtentAllocator, Run};
use crate::intern::PathSpec;
use crate::tree::{Tree, ROOT_INO};
use crate::vfs::{Extent, FileAttr, FileSystem, InodeNo, MetaIo};
use rb_simcore::error::{SimError, SimResult};
use rb_simcore::fnv::FnvHashMap;
use rb_simcore::units::{BlockNo, Bytes};

/// XFS model configuration.
#[derive(Debug, Clone)]
pub struct XfsConfig {
    /// Device size in blocks.
    pub total_blocks: u64,
    /// Number of allocation groups (xfs default: 4 for small volumes).
    pub allocation_groups: u64,
    /// Log (journal) size in blocks.
    pub log_blocks: u64,
    /// Demand-miss fetch granularity in pages.
    pub cluster_pages: u64,
}

impl XfsConfig {
    /// Defaults for the given device size.
    pub fn for_blocks(total_blocks: u64) -> Self {
        XfsConfig {
            total_blocks,
            allocation_groups: 4,
            log_blocks: 4096.min(total_blocks / 16).max(64),
            cluster_pages: 16,
        }
    }
}

/// Per-AG block bookkeeping.
#[derive(Debug, Clone)]
struct AllocGroup {
    start: BlockNo,
    alloc: ExtentAllocator,
}

/// The xfs-like file system.
///
/// # Examples
///
/// ```
/// use rb_simfs::xfs::{XfsConfig, XfsFs};
/// use rb_simfs::vfs::FileSystem;
/// use rb_simcore::units::Bytes;
///
/// let mut fs = XfsFs::new(XfsConfig::for_blocks(65536));
/// let (ino, _) = fs.create("/data").unwrap();
/// fs.set_size(ino, Bytes::mib(16)).unwrap();
/// // A 16 MiB fresh file maps as one extent.
/// let e = fs.map(ino, 0, 4096).unwrap();
/// assert_eq!(e.len, 4096);
/// ```
#[derive(Debug, Clone)]
pub struct XfsFs {
    config: XfsConfig,
    tree: Tree,
    ags: Vec<AllocGroup>,
    /// AG of each inode.
    ino_ag: FnvHashMap<InodeNo, u64>,
    /// Round-robin cursor for directory placement.
    next_dir_ag: u64,
    /// Log region (in AG 0).
    log_start: BlockNo,
    log_head: u64,
}

/// Blocks reserved per AG for headers (superblock, free-space btree
/// roots, inode btree root).
const AG_HEADER_BLOCKS: u64 = 4;
/// On-disk inodes per block (256-byte inodes).
const INODES_PER_BLOCK: u64 = 16;
/// Inode chunk reserved per AG for the inode btree (simplified fixed
/// region).
const AG_INODE_BLOCKS: u64 = 256;

impl XfsFs {
    /// Formats a new file system.
    pub fn new(config: XfsConfig) -> Self {
        let ag_count = config.allocation_groups.max(1);
        let ag_size = config.total_blocks / ag_count;
        let mut ags = Vec::with_capacity(ag_count as usize);
        for g in 0..ag_count {
            let start = g * ag_size;
            let len = if g == ag_count - 1 {
                config.total_blocks - start
            } else {
                ag_size
            };
            let mut alloc = ExtentAllocator::new(len);
            alloc
                .reserve(0, (AG_HEADER_BLOCKS + AG_INODE_BLOCKS).min(len))
                .expect("mkfs reservation");
            ags.push(AllocGroup { start, alloc });
        }
        // Log lives in AG 0 right after the headers.
        let log_blocks = config.log_blocks.min(ag_size / 2).max(1);
        let log_start = AG_HEADER_BLOCKS + AG_INODE_BLOCKS;
        ags[0]
            .alloc
            .reserve(log_start, log_blocks)
            .expect("log reservation");
        let mut fs = XfsFs {
            config,
            tree: Tree::new(),
            ags,
            ino_ag: FnvHashMap::default(),
            next_dir_ag: 1,
            log_start,
            log_head: 0,
        };
        fs.ino_ag.insert(ROOT_INO, 0);
        fs
    }

    /// Number of allocation groups.
    pub fn ag_count(&self) -> u64 {
        self.ags.len() as u64
    }

    /// Start of the log region (device block).
    pub fn log_start(&self) -> BlockNo {
        self.log_start
    }

    fn ag_of_block(&self, b: BlockNo) -> u64 {
        let ag_size = self.config.total_blocks / self.ag_count();
        (b / ag_size.max(1)).min(self.ag_count() - 1)
    }

    fn inode_table_block(&self, ino: InodeNo) -> BlockNo {
        let ag = self.ino_ag.get(&ino).copied().unwrap_or(0);
        let slot = ino % (AG_INODE_BLOCKS * INODES_PER_BLOCK);
        self.ags[ag as usize].start + AG_HEADER_BLOCKS + slot / INODES_PER_BLOCK
    }

    fn freespace_root_block(&self, ag: u64) -> BlockNo {
        self.ags[ag as usize].start + 1
    }

    fn pick_ag(&mut self, parent: InodeNo, is_dir: bool) -> u64 {
        if is_dir {
            let ag = self.next_dir_ag % self.ag_count();
            self.next_dir_ag += 1;
            ag
        } else {
            self.ino_ag.get(&parent).copied().unwrap_or(0)
        }
    }

    /// Allocates `count` blocks in/near the given AG, returning
    /// device-absolute runs.
    fn alloc_blocks(&mut self, ag: u64, count: u64, goal: BlockNo) -> SimResult<Vec<Run>> {
        let agc = self.ag_count();
        let mut left = count;
        let mut out = Vec::new();
        for i in 0..agc {
            let g = ((ag + i) % agc) as usize;
            let base = self.ags[g].start;
            let local_goal = goal.saturating_sub(base);
            let avail = self.ags[g].alloc.free_blocks();
            if avail == 0 {
                continue;
            }
            let take = left.min(avail);
            let runs = self.ags[g].alloc.alloc(take, local_goal)?;
            for r in runs {
                out.push(Run {
                    start: base + r.start,
                    len: r.len,
                });
            }
            left -= take;
            if left == 0 {
                break;
            }
        }
        if left > 0 {
            // Roll back partial allocation.
            for r in &out {
                let g = self.ag_of_block(r.start) as usize;
                let base = self.ags[g].start;
                self.ags[g]
                    .alloc
                    .free(Run {
                        start: r.start - base,
                        len: r.len,
                    })
                    .expect("rollback");
            }
            return Err(SimError::NoSpace);
        }
        Ok(out)
    }

    fn free_blocks_runs(&mut self, runs: &[Run]) -> SimResult<()> {
        for r in runs {
            let g = self.ag_of_block(r.start) as usize;
            let base = self.ags[g].start;
            self.ags[g].alloc.free(Run {
                start: r.start - base,
                len: r.len,
            })?;
        }
        Ok(())
    }

    /// Appends a log transaction covering `meta`'s writes.
    fn log(&mut self, mut meta: MetaIo) -> MetaIo {
        if meta.writes.is_empty() {
            return meta;
        }
        let count = meta.writes.len() as u64 + 1; // records + commit
        let log_len = self.config.log_blocks.max(1);
        for i in 0..count {
            let pos = (self.log_head + i) % log_len;
            meta.journal_writes.push(self.log_start + pos);
        }
        self.log_head = (self.log_head + count) % log_len;
        meta
    }

    fn charge_lookup(&self, traversed: &[InodeNo], meta: &mut MetaIo) {
        for ino in traversed {
            meta.reads.push(self.inode_table_block(*ino));
        }
    }

    /// Blocks mkfs reserved inside AG `g` (headers, inode chunk, and for
    /// AG 0 the log region) — the clamping mirrors [`XfsFs::new`].
    fn ag_reserved_blocks(&self, g: u64) -> u64 {
        let ag_size = self.config.total_blocks / self.ag_count();
        let len = self.ags[g as usize].alloc.total();
        let mut reserved = (AG_HEADER_BLOCKS + AG_INODE_BLOCKS).min(len);
        if g == 0 {
            reserved += self.config.log_blocks.min(ag_size / 2).max(1);
        }
        reserved
    }

    /// Fsck-style invariant walk: namespace reachability, extent bounds,
    /// single ownership of every data block, and the per-AG free-space
    /// identity `free = total − reserved − owned-data`.
    pub fn fsck(&self) -> Result<(), String> {
        self.tree.check_reachable()?;
        let total = self.config.total_blocks;
        let mut owned = rb_simcore::fnv::FnvHashSet::default();
        let mut ag_data = vec![0u64; self.ags.len()];
        for node in self.tree.iter() {
            for run in &node.runs {
                if run.start + run.len > total {
                    return Err(format!(
                        "inode {}: run {}+{} points beyond the device ({total} blocks)",
                        node.ino, run.start, run.len
                    ));
                }
                let g = self.ag_of_block(run.start);
                if self.ag_of_block(run.start + run.len - 1) != g {
                    return Err(format!(
                        "inode {}: run {}+{} straddles an AG boundary",
                        node.ino, run.start, run.len
                    ));
                }
                for b in run.start..run.start + run.len {
                    if !owned.insert(b) {
                        return Err(format!(
                            "block {b} has two owners (second: inode {})",
                            node.ino
                        ));
                    }
                }
                ag_data[g as usize] += run.len;
            }
        }
        for (g, ag) in self.ags.iter().enumerate() {
            let expected_free = ag
                .alloc
                .total()
                .saturating_sub(self.ag_reserved_blocks(g as u64))
                .saturating_sub(ag_data[g]);
            if ag.alloc.free_blocks() != expected_free {
                return Err(format!(
                    "AG {g}: free-block count {} disagrees with the walk (expected {expected_free})",
                    ag.alloc.free_blocks()
                ));
            }
        }
        Ok(())
    }
}

impl FileSystem for XfsFs {
    fn name(&self) -> &'static str {
        "xfs"
    }

    fn block_size(&self) -> Bytes {
        Bytes::kib(4)
    }

    fn cluster_pages(&self) -> u64 {
        self.config.cluster_pages
    }

    fn intern_path(&mut self, path: &str) -> SimResult<PathSpec> {
        self.tree.make_spec(path)
    }

    fn lookup_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (ino, traversed) = self.tree.resolve_spec(spec)?;
        let mut meta = MetaIo::default();
        self.charge_lookup(&traversed, &mut meta);
        Ok((ino, meta))
    }

    fn create_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (parent, name, traversed) = self.tree.resolve_parent_spec(spec)?;
        if self.tree.has_child(parent, name) {
            return Err(SimError::AlreadyExists(spec.path().to_string()));
        }
        let mut meta = MetaIo::default();
        self.charge_lookup(&traversed, &mut meta);
        let ag = self.pick_ag(parent, false);
        let ino = self.tree.insert_child_sym(parent, name, false)?;
        self.ino_ag.insert(ino, ag);
        meta.writes.push(self.inode_table_block(ino));
        meta.writes.push(self.inode_table_block(parent));
        Ok((ino, self.log(meta)))
    }

    fn mkdir_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (parent, name, traversed) = self.tree.resolve_parent_spec(spec)?;
        if self.tree.has_child(parent, name) {
            return Err(SimError::AlreadyExists(spec.path().to_string()));
        }
        let mut meta = MetaIo::default();
        self.charge_lookup(&traversed, &mut meta);
        let ag = self.pick_ag(parent, true);
        let ino = self.tree.insert_child_sym(parent, name, true)?;
        self.ino_ag.insert(ino, ag);
        meta.writes.push(self.inode_table_block(ino));
        meta.writes.push(self.inode_table_block(parent));
        Ok((ino, self.log(meta)))
    }

    fn unlink_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (parent, name, traversed) = self.tree.resolve_parent_spec(spec)?;
        let mut meta = MetaIo::default();
        self.charge_lookup(&traversed, &mut meta);
        let (ino, runs) = self.tree.remove_child_sym(parent, name)?;
        self.free_blocks_runs(&runs)?;
        for r in &runs {
            meta.writes
                .push(self.freespace_root_block(self.ag_of_block(r.start)));
        }
        meta.writes.push(self.inode_table_block(parent));
        let it = self.inode_table_block(ino);
        meta.writes.push(it);
        self.ino_ag.remove(&ino);
        Ok((ino, self.log(meta)))
    }

    fn rmdir_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        self.unlink_spec(spec)
    }

    fn readdir_spec(&mut self, spec: &PathSpec) -> SimResult<(u64, MetaIo)> {
        let (ino, traversed) = self.tree.resolve_spec(spec)?;
        let mut meta = MetaIo::default();
        self.charge_lookup(&traversed, &mut meta);
        let dir = self.tree.get(ino)?.dir.as_ref().ok_or_else(|| {
            SimError::InvalidOperation(format!("{}: not a directory", spec.path()))
        })?;
        Ok((dir.len() as u64, meta))
    }

    fn readdir_names(&mut self, path: &str) -> SimResult<(Vec<String>, MetaIo)> {
        let spec = self.tree.make_spec(path)?;
        let (_, meta) = self.readdir_spec(&spec)?;
        let (ino, _) = self.tree.resolve_spec(&spec)?;
        Ok((self.tree.read_names(ino)?, meta))
    }

    fn attr(&self, ino: InodeNo) -> SimResult<FileAttr> {
        let node = self.tree.get(ino)?;
        Ok(FileAttr {
            ino,
            size: node.size,
            blocks: node.blocks(),
            is_dir: node.is_dir(),
        })
    }

    fn size_of(&self, ino: InodeNo) -> SimResult<Bytes> {
        Ok(self.tree.get(ino)?.size)
    }

    fn set_size(&mut self, ino: InodeNo, size: Bytes) -> SimResult<MetaIo> {
        let node = self.tree.get(ino)?;
        if node.is_dir() {
            return Err(SimError::InvalidOperation("set_size on directory".into()));
        }
        let have = node.blocks();
        let need = size.div_ceil(self.block_size());
        let mut meta = MetaIo::default();
        meta.writes.push(self.inode_table_block(ino));
        if need > have {
            let ag = self.ino_ag.get(&ino).copied().unwrap_or(0);
            let goal = node.runs.last().map(|r| r.start + r.len).unwrap_or(0);
            // Delayed allocation: the whole growth lands in one request,
            // so best-fit can find a single extent.
            let runs = self.alloc_blocks(ag, need - have, goal)?;
            for r in &runs {
                meta.writes
                    .push(self.freespace_root_block(self.ag_of_block(r.start)));
            }
            let node = self.tree.get_mut(ino)?;
            for r in runs {
                match node.runs.last_mut() {
                    Some(last) if last.start + last.len == r.start => last.len += r.len,
                    _ => node.runs.push(r),
                }
            }
        } else if need < have {
            let mut to_free = have - need;
            let mut freed = Vec::new();
            let node = self.tree.get_mut(ino)?;
            while to_free > 0 {
                let Some(last) = node.runs.last_mut() else {
                    break;
                };
                if last.len <= to_free {
                    to_free -= last.len;
                    freed.push(*last);
                    node.runs.pop();
                } else {
                    last.len -= to_free;
                    freed.push(Run {
                        start: last.start + last.len,
                        len: to_free,
                    });
                    to_free = 0;
                }
            }
            self.free_blocks_runs(&freed)?;
            for r in &freed {
                meta.writes
                    .push(self.freespace_root_block(self.ag_of_block(r.start)));
            }
        }
        self.tree.get_mut(ino)?.size = size;
        Ok(self.log(meta))
    }

    fn map(&self, ino: InodeNo, logical: u64, max: u64) -> SimResult<Extent> {
        let node = self.tree.get(ino)?;
        match node.map_block(logical) {
            Some((physical, rem)) => Ok(Extent {
                logical,
                physical,
                len: rem.min(max.max(1)),
            }),
            None => Err(SimError::OutOfBounds {
                offset: logical,
                size: node.blocks(),
            }),
        }
    }

    fn avg_file_extents(&self) -> f64 {
        self.tree.avg_file_extents()
    }

    fn capacity(&self) -> Bytes {
        self.block_size() * self.config.total_blocks
    }

    fn used(&self) -> Bytes {
        let free: u64 = self.ags.iter().map(|a| a.alloc.free_blocks()).sum();
        self.block_size() * (self.config.total_blocks - free)
    }

    fn crash_plan(&self) -> rb_faults::RecoveryPlan {
        // Log recovery: scan the log region (the same modulo `log()`
        // cycles through) and replay roughly half of it — one commit
        // record per transaction frames the metadata records.
        let log_len = self.config.log_blocks.max(1);
        rb_faults::RecoveryPlan {
            scan_start: self.log_start,
            scan_blocks: log_len,
            replay_writes: log_len / 2,
            mechanism: "journal-replay",
        }
    }

    fn check_consistency(&self) -> Result<(), String> {
        self.fsck()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> XfsFs {
        XfsFs::new(XfsConfig::for_blocks(65536))
    }

    #[test]
    fn fresh_file_is_one_extent() {
        let mut f = fs();
        let (ino, _) = f.create("/a").unwrap();
        f.set_size(ino, Bytes::mib(32)).unwrap();
        let e = f.map(ino, 0, u64::MAX).unwrap();
        assert_eq!(e.len, 32 * 256, "not a single extent: {}", e.len);
    }

    #[test]
    fn directories_rotate_ags() {
        let mut f = fs();
        let mut ags = Vec::new();
        for i in 0..4 {
            let (ino, _) = f.mkdir(&format!("/d{i}")).unwrap();
            ags.push(f.ino_ag[&ino]);
        }
        let distinct: std::collections::HashSet<u64> = ags.iter().copied().collect();
        assert_eq!(distinct.len(), 4, "dirs not spread: {ags:?}");
    }

    #[test]
    fn files_follow_their_directory() {
        let mut f = fs();
        let (d, _) = f.mkdir("/d").unwrap();
        let (a, _) = f.create("/d/a").unwrap();
        let (b, _) = f.create("/d/b").unwrap();
        assert_eq!(f.ino_ag[&a], f.ino_ag[&d]);
        assert_eq!(f.ino_ag[&b], f.ino_ag[&d]);
        // Their data lands inside the AG.
        f.set_size(a, Bytes::mib(1)).unwrap();
        let e = f.map(a, 0, 1).unwrap();
        assert_eq!(f.ag_of_block(e.physical), f.ino_ag[&a]);
    }

    #[test]
    fn ag_spill_when_full() {
        let mut f = XfsFs::new(XfsConfig {
            total_blocks: 4096,
            allocation_groups: 4,
            log_blocks: 64,
            cluster_pages: 16,
        });
        let (ino, _) = f.create("/big").unwrap();
        // Bigger than one AG (1024 blocks): must spill.
        f.set_size(ino, Bytes::kib(4) * 2000).unwrap();
        assert_eq!(f.attr(ino).unwrap().blocks, 2000);
        // Over-filling everything reports NoSpace and rolls back.
        let (i2, _) = f.create("/more").unwrap();
        let free: u64 = f.ags.iter().map(|a| a.alloc.free_blocks()).sum();
        assert!(matches!(
            f.set_size(i2, Bytes::kib(4) * (free + 1)),
            Err(SimError::NoSpace)
        ));
        let free_after: u64 = f.ags.iter().map(|a| a.alloc.free_blocks()).sum();
        assert_eq!(free, free_after, "failed alloc must not leak");
    }

    #[test]
    fn log_transactions_stay_in_region() {
        let mut f = fs();
        for i in 0..100 {
            let (_, meta) = f.create(&format!("/f{i}")).unwrap();
            for b in &meta.journal_writes {
                assert!(
                    (f.log_start()..f.log_start() + f.config.log_blocks).contains(b),
                    "log write {b} escaped"
                );
            }
        }
    }

    #[test]
    fn unlink_frees_extents() {
        let mut f = fs();
        let before: u64 = f.ags.iter().map(|a| a.alloc.free_blocks()).sum();
        let (ino, _) = f.create("/x").unwrap();
        f.set_size(ino, Bytes::mib(8)).unwrap();
        f.unlink("/x").unwrap();
        let after: u64 = f.ags.iter().map(|a| a.alloc.free_blocks()).sum();
        assert_eq!(before, after);
    }

    #[test]
    fn fsck_passes_after_churn() {
        let mut f = fs();
        for i in 0..8 {
            f.mkdir(&format!("/d{i}")).unwrap();
            let (ino, _) = f.create(&format!("/d{i}/f")).unwrap();
            f.set_size(ino, Bytes::mib(1 + i)).unwrap();
        }
        for i in 0..4 {
            f.unlink(&format!("/d{i}/f")).unwrap();
        }
        f.fsck().expect("consistent after churn");
        assert_eq!(f.crash_plan().mechanism, "journal-replay");
        assert!(f.crash_plan().scan_blocks >= 1);
    }

    #[test]
    fn truncate_shrinks_extents() {
        let mut f = fs();
        let (ino, _) = f.create("/t").unwrap();
        f.set_size(ino, Bytes::mib(4)).unwrap();
        f.set_size(ino, Bytes::mib(1)).unwrap();
        assert_eq!(f.attr(ino).unwrap().blocks, 256);
        let e = f.map(ino, 255, 10).unwrap();
        assert_eq!(e.len, 1);
        assert!(f.map(ino, 256, 1).is_err());
    }
}
