//! Ext2-like file system: block groups, bitmaps, inode tables, indirect
//! blocks.
//!
//! The paper's case-study system. Placement policy: inodes go to their
//! parent directory's block group (directories to the emptiest group),
//! and data blocks are allocated first-fit starting from the inode's
//! group — the classic BSD FFS/ext2 clustering heuristic that keeps
//! related data together until fragmentation sets in.

use crate::alloc::{BitmapAllocator, Run};
use crate::intern::{PathSpec, Symbol};
use crate::tree::{Tree, ROOT_INO};
use crate::vfs::{Extent, FileAttr, FileSystem, InodeNo, MetaIo};
use rb_simcore::error::{SimError, SimResult};
use rb_simcore::fnv::FnvHashMap;
use rb_simcore::units::{BlockNo, Bytes};

/// Ext2 model configuration.
#[derive(Debug, Clone)]
pub struct Ext2Config {
    /// Device size in file-system blocks.
    pub total_blocks: u64,
    /// Blocks per block group (ext2 default: 8192 × 4 KiB = 32 MiB).
    pub blocks_per_group: u64,
    /// Inodes per group.
    pub inodes_per_group: u64,
    /// Demand-miss fetch granularity in pages.
    pub cluster_pages: u64,
}

impl Ext2Config {
    /// Defaults matching a 4 KiB-block ext2 on the given device size.
    pub fn for_blocks(total_blocks: u64) -> Self {
        Ext2Config {
            total_blocks,
            blocks_per_group: 8192,
            inodes_per_group: 2048,
            cluster_pages: 2,
        }
    }
}

/// 128-byte on-disk inodes: 32 per 4 KiB block.
const INODES_PER_BLOCK: u64 = 32;
/// Direct block pointers in the inode.
const DIRECT_BLOCKS: u64 = 12;
/// Block pointers per 4 KiB indirect block.
const PTRS_PER_BLOCK: u64 = 1024;
/// Directory entries per 4 KiB directory block.
const DIRENTS_PER_BLOCK: u64 = 64;

/// The ext2-like file system.
///
/// # Examples
///
/// ```
/// use rb_simfs::ext2::{Ext2Config, Ext2Fs};
/// use rb_simfs::vfs::FileSystem;
/// use rb_simcore::units::Bytes;
///
/// let mut fs = Ext2Fs::new(Ext2Config::for_blocks(65536)); // 256 MiB
/// let (ino, _) = fs.create("/data").unwrap();
/// fs.set_size(ino, Bytes::mib(1)).unwrap();
/// let ext = fs.map(ino, 0, 256).unwrap();
/// assert!(ext.len >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Ext2Fs {
    config: Ext2Config,
    tree: Tree,
    alloc: BitmapAllocator,
    /// Free data blocks per group (Orlov-lite bookkeeping).
    group_free: Vec<u64>,
    /// Inodes allocated per group.
    group_inodes: Vec<u64>,
    /// Which group each inode's metadata lives in.
    ino_group: FnvHashMap<InodeNo, u64>,
    /// Indirect mapping blocks owned by each file.
    indirect: FnvHashMap<InodeNo, Vec<BlockNo>>,
}

impl Ext2Fs {
    /// Formats a new file system ("mkfs").
    pub fn new(config: Ext2Config) -> Self {
        let groups = config.total_blocks.div_ceil(config.blocks_per_group);
        let mut alloc = BitmapAllocator::new(config.total_blocks, config.blocks_per_group);
        let meta_per_group = Self::meta_blocks_per_group(&config);
        let mut group_free = vec![0u64; groups as usize];
        for g in 0..groups {
            let start = g * config.blocks_per_group;
            let end = ((g + 1) * config.blocks_per_group).min(config.total_blocks);
            for b in start..(start + meta_per_group).min(end) {
                // Freshly formatted: reservation cannot fail.
                alloc.reserve(b).expect("mkfs reservation");
            }
            group_free[g as usize] = end.saturating_sub(start + meta_per_group);
        }
        let mut fs = Ext2Fs {
            config,
            tree: Tree::new(),
            alloc,
            group_free,
            group_inodes: vec![0; groups as usize],
            ino_group: FnvHashMap::default(),
            indirect: FnvHashMap::default(),
        };
        fs.ino_group.insert(ROOT_INO, 0);
        fs.group_inodes[0] = 1;
        fs
    }

    /// Superblock + group descriptor + two bitmaps + inode table.
    fn meta_blocks_per_group(config: &Ext2Config) -> u64 {
        3 + config.inodes_per_group.div_ceil(INODES_PER_BLOCK)
    }

    /// Number of block groups.
    pub fn groups(&self) -> u64 {
        self.group_free.len() as u64
    }

    /// Reserves one block for an embedded journal (ext3 mkfs support).
    pub(crate) fn reserve_journal_block(&mut self, b: BlockNo) -> SimResult<()> {
        self.alloc.reserve(b)?;
        let g = self.group_of_block(b);
        self.group_free[g as usize] = self.group_free[g as usize].saturating_sub(1);
        Ok(())
    }

    /// Underlying allocator (test and aging access).
    pub fn allocator(&self) -> &BitmapAllocator {
        &self.alloc
    }

    /// Shared namespace (test access).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Blocks mkfs reserved for group metadata, summed over all groups
    /// (clamped on a short last group, exactly as formatting did).
    fn meta_reserved_blocks(&self) -> u64 {
        let per_group = Self::meta_blocks_per_group(&self.config);
        let total = self.config.total_blocks;
        (0..self.groups())
            .map(|g| {
                let start = g * self.config.blocks_per_group;
                let end = ((g + 1) * self.config.blocks_per_group).min(total);
                (start + per_group).min(end).saturating_sub(start)
            })
            .sum()
    }

    /// Fsck-style invariant walk over the in-memory metadata.
    ///
    /// Checks, in order: namespace reachability and parent-pointer
    /// agreement, block-pointer bounds, bitmap agreement (every owned
    /// block marked allocated), double ownership, and the free-count
    /// identity `free = total − mkfs metadata − extra_reserved − data`.
    /// `extra_reserved` is blocks reserved outside mkfs metadata and
    /// file data — ext3 passes its journal region. Returns the first
    /// violation found.
    pub fn fsck(&self, extra_reserved: u64) -> Result<(), String> {
        self.tree.check_reachable()?;
        let total = self.config.total_blocks;
        let mut owned = rb_simcore::fnv::FnvHashSet::default();
        let mut data_blocks = 0u64;
        let mut check_run = |start: BlockNo, len: u64, ino: InodeNo| -> Result<(), String> {
            if start + len > total {
                return Err(format!(
                    "inode {ino}: run {start}+{len} points beyond the device ({total} blocks)"
                ));
            }
            for b in start..start + len {
                if !self.alloc.is_allocated(b) {
                    return Err(format!(
                        "inode {ino}: block {b} is owned but not marked allocated"
                    ));
                }
                if !owned.insert(b) {
                    return Err(format!("block {b} has two owners (second: inode {ino})"));
                }
            }
            Ok(())
        };
        for node in self.tree.iter() {
            for run in &node.runs {
                check_run(run.start, run.len, node.ino)?;
                data_blocks += run.len;
            }
            if let Some(ind) = self.indirect.get(&node.ino) {
                for &b in ind {
                    check_run(b, 1, node.ino)?;
                    data_blocks += 1;
                }
            }
        }
        let expected_free = total
            .saturating_sub(self.meta_reserved_blocks())
            .saturating_sub(extra_reserved)
            .saturating_sub(data_blocks);
        if self.alloc.free_blocks() != expected_free {
            return Err(format!(
                "free-block count {} disagrees with the walk (expected {expected_free})",
                self.alloc.free_blocks()
            ));
        }
        Ok(())
    }

    fn group_of_block(&self, b: BlockNo) -> u64 {
        b / self.config.blocks_per_group
    }

    fn block_bitmap_block(&self, group: u64) -> BlockNo {
        group * self.config.blocks_per_group + 1
    }

    fn inode_bitmap_block(&self, group: u64) -> BlockNo {
        group * self.config.blocks_per_group + 2
    }

    fn inode_table_block(&self, ino: InodeNo) -> BlockNo {
        let group = self.ino_group.get(&ino).copied().unwrap_or(0);
        let slot = ino % self.config.inodes_per_group;
        group * self.config.blocks_per_group + 3 + slot / INODES_PER_BLOCK
    }

    fn data_goal(&self, group: u64) -> BlockNo {
        group * self.config.blocks_per_group + Self::meta_blocks_per_group(&self.config)
    }

    /// Picks a group for a new inode: directories go to the group with
    /// the most free blocks; files go to the parent's group, spilling
    /// forward when its inode quota is exhausted.
    fn pick_group(&self, parent: InodeNo, is_dir: bool) -> u64 {
        let groups = self.groups();
        if is_dir {
            (0..groups)
                .max_by_key(|&g| self.group_free[g as usize])
                .unwrap_or(0)
        } else {
            let start = self.ino_group.get(&parent).copied().unwrap_or(0);
            (0..groups)
                .map(|i| (start + i) % groups)
                .find(|&g| self.group_inodes[g as usize] < self.config.inodes_per_group)
                .unwrap_or(start)
        }
    }

    fn charge_alloc(&mut self, runs: &[Run], meta: &mut MetaIo) {
        for r in runs {
            let g0 = self.group_of_block(r.start);
            let g1 = self.group_of_block(r.start + r.len - 1);
            for g in g0..=g1 {
                let gs = g * self.config.blocks_per_group;
                let ge = gs + self.config.blocks_per_group;
                let overlap = (r.start + r.len).min(ge) - r.start.max(gs);
                self.group_free[g as usize] = self.group_free[g as usize].saturating_sub(overlap);
                meta.writes.push(self.block_bitmap_block(g));
            }
        }
    }

    fn charge_free(&mut self, runs: &[Run], meta: &mut MetaIo) {
        for r in runs {
            let g0 = self.group_of_block(r.start);
            let g1 = self.group_of_block(r.start + r.len - 1);
            for g in g0..=g1 {
                let gs = g * self.config.blocks_per_group;
                let ge = gs + self.config.blocks_per_group;
                let overlap = (r.start + r.len).min(ge) - r.start.max(gs);
                self.group_free[g as usize] += overlap;
                meta.writes.push(self.block_bitmap_block(g));
            }
        }
    }

    /// Directory data block holding the entry for `name` (hash-probed).
    fn dirent_block(&self, dir: InodeNo, name: &str) -> Option<BlockNo> {
        let node = self.tree.get(dir).ok()?;
        let nblocks = node.blocks();
        if nblocks == 0 {
            return None;
        }
        let h = rb_simcore::fnv::fnv1a(rb_simcore::fnv::FNV_OFFSET, name.as_bytes());
        let (phys, _) = node.map_block(h % nblocks)?;
        Some(phys)
    }

    /// Ensures the directory has enough data blocks for its entries.
    fn ensure_dir_blocks(&mut self, dir: InodeNo, meta: &mut MetaIo) -> SimResult<()> {
        let node = self.tree.get(dir)?;
        // 64 B per entry, 64 entries per 4 KiB block.
        let needed = node
            .size
            .as_u64()
            .div_ceil(DIRENTS_PER_BLOCK * crate::tree::DIRENT_SIZE);
        let have = node.blocks();
        if needed > have {
            let group = self.ino_group.get(&dir).copied().unwrap_or(0);
            let goal = node
                .runs
                .last()
                .map(|r| r.start + r.len)
                .unwrap_or_else(|| self.data_goal(group));
            let runs = self.alloc.alloc(needed - have, goal)?;
            self.charge_alloc(&runs, meta);
            let node = self.tree.get_mut(dir)?;
            for r in runs {
                match node.runs.last_mut() {
                    Some(last) if last.start + last.len == r.start => last.len += r.len,
                    _ => node.runs.push(r),
                }
            }
        }
        Ok(())
    }

    /// Indirect blocks a file of `blocks` data blocks needs.
    fn indirect_needed(blocks: u64) -> u64 {
        blocks
            .saturating_sub(DIRECT_BLOCKS)
            .div_ceil(PTRS_PER_BLOCK)
    }

    /// [`Ext2Fs::dirent_block`] for an interned component.
    fn dirent_block_sym(&self, dir: InodeNo, name: Symbol) -> Option<BlockNo> {
        self.dirent_block(dir, self.tree.name(name))
    }

    /// Charges inode-table reads for a resolution chain plus one dirent
    /// block probe per directory step.
    fn charge_lookup(&self, traversed: &[InodeNo], comps: &[Symbol], meta: &mut MetaIo) {
        for ino in traversed {
            meta.reads.push(self.inode_table_block(*ino));
        }
        // traversed = [root, d1, ..., target]; component i is looked up in
        // traversed[i].
        for (i, &name) in comps.iter().enumerate() {
            if let Some(b) = self.dirent_block_sym(traversed[i], name) {
                meta.reads.push(b);
            }
        }
    }
}

impl FileSystem for Ext2Fs {
    fn name(&self) -> &'static str {
        "ext2"
    }

    fn block_size(&self) -> Bytes {
        Bytes::kib(4)
    }

    fn cluster_pages(&self) -> u64 {
        self.config.cluster_pages
    }

    fn intern_path(&mut self, path: &str) -> SimResult<PathSpec> {
        self.tree.make_spec(path)
    }

    fn lookup_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (ino, traversed) = self.tree.resolve_spec(spec)?;
        let mut meta = MetaIo::default();
        self.charge_lookup(&traversed, spec.components(), &mut meta);
        Ok((ino, meta))
    }

    fn create_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (parent, name, traversed) = self.tree.resolve_parent_spec(spec)?;
        if self.tree.has_child(parent, name) {
            return Err(SimError::AlreadyExists(spec.path().to_string()));
        }
        let mut meta = MetaIo::default();
        let comps = spec.components();
        self.charge_lookup(&traversed, &comps[..comps.len() - 1], &mut meta);
        let group = self.pick_group(parent, false);
        let ino = self.tree.insert_child_sym(parent, name, false)?;
        self.ino_group.insert(ino, group);
        self.group_inodes[group as usize] += 1;
        self.ensure_dir_blocks(parent, &mut meta)?;
        meta.writes.push(self.inode_bitmap_block(group));
        meta.writes.push(self.inode_table_block(ino));
        meta.writes.push(self.inode_table_block(parent));
        if let Some(b) = self.dirent_block_sym(parent, name) {
            meta.writes.push(b);
        }
        Ok((ino, meta))
    }

    fn mkdir_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (parent, name, traversed) = self.tree.resolve_parent_spec(spec)?;
        if self.tree.has_child(parent, name) {
            return Err(SimError::AlreadyExists(spec.path().to_string()));
        }
        let mut meta = MetaIo::default();
        let comps = spec.components();
        self.charge_lookup(&traversed, &comps[..comps.len() - 1], &mut meta);
        let group = self.pick_group(parent, true);
        let ino = self.tree.insert_child_sym(parent, name, true)?;
        self.ino_group.insert(ino, group);
        self.group_inodes[group as usize] += 1;
        self.ensure_dir_blocks(parent, &mut meta)?;
        meta.writes.push(self.inode_bitmap_block(group));
        meta.writes.push(self.inode_table_block(ino));
        meta.writes.push(self.inode_table_block(parent));
        if let Some(b) = self.dirent_block_sym(parent, name) {
            meta.writes.push(b);
        }
        Ok((ino, meta))
    }

    fn unlink_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (parent, name, traversed) = self.tree.resolve_parent_spec(spec)?;
        let mut meta = MetaIo::default();
        let comps = spec.components();
        self.charge_lookup(&traversed, &comps[..comps.len() - 1], &mut meta);
        let (ino, runs) = self.tree.remove_child_sym(parent, name)?;
        for r in &runs {
            self.alloc.free(*r)?;
        }
        self.charge_free(&runs, &mut meta);
        if let Some(ind) = self.indirect.remove(&ino) {
            for b in ind {
                self.alloc.free(Run { start: b, len: 1 })?;
                let g = self.group_of_block(b);
                self.group_free[g as usize] += 1;
                meta.writes.push(self.block_bitmap_block(g));
            }
        }
        let group = self.ino_group.remove(&ino).unwrap_or(0);
        self.group_inodes[group as usize] = self.group_inodes[group as usize].saturating_sub(1);
        meta.writes.push(self.inode_bitmap_block(group));
        meta.writes.push(self.inode_table_block(parent));
        if let Some(b) = self.dirent_block_sym(parent, name) {
            meta.writes.push(b);
        }
        Ok((ino, meta))
    }

    fn rmdir_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        // Same machinery; remove_child enforces emptiness.
        self.unlink_spec(spec)
    }

    fn readdir_spec(&mut self, spec: &PathSpec) -> SimResult<(u64, MetaIo)> {
        let (ino, traversed) = self.tree.resolve_spec(spec)?;
        let mut meta = MetaIo::default();
        self.charge_lookup(&traversed, spec.components(), &mut meta);
        let node = self.tree.get(ino)?;
        let dir = node.dir.as_ref().ok_or_else(|| {
            SimError::InvalidOperation(format!("{}: not a directory", spec.path()))
        })?;
        let entries = dir.len() as u64;
        // Reading every entry touches every directory data block.
        for r in &node.runs {
            for b in r.start..r.start + r.len {
                meta.reads.push(b);
            }
        }
        Ok((entries, meta))
    }

    fn readdir_names(&mut self, path: &str) -> SimResult<(Vec<String>, MetaIo)> {
        let spec = self.tree.make_spec(path)?;
        let (_, meta) = self.readdir_spec(&spec)?;
        let (ino, _) = self.tree.resolve_spec(&spec)?;
        Ok((self.tree.read_names(ino)?, meta))
    }

    fn attr(&self, ino: InodeNo) -> SimResult<FileAttr> {
        let node = self.tree.get(ino)?;
        Ok(FileAttr {
            ino,
            size: node.size,
            blocks: node.blocks(),
            is_dir: node.is_dir(),
        })
    }

    fn size_of(&self, ino: InodeNo) -> SimResult<Bytes> {
        Ok(self.tree.get(ino)?.size)
    }

    fn set_size(&mut self, ino: InodeNo, size: Bytes) -> SimResult<MetaIo> {
        let node = self.tree.get(ino)?;
        if node.is_dir() {
            return Err(SimError::InvalidOperation("set_size on directory".into()));
        }
        let have = node.blocks();
        let need = size.div_ceil(self.block_size());
        let mut meta = MetaIo::default();
        meta.writes.push(self.inode_table_block(ino));
        if need > have {
            let group = self.ino_group.get(&ino).copied().unwrap_or(0);
            let goal = node
                .runs
                .last()
                .map(|r| r.start + r.len)
                .unwrap_or_else(|| self.data_goal(group));
            let runs = self.alloc.alloc(need - have, goal)?;
            // Indirect mapping blocks — allocated before the data runs are
            // committed so a failure can roll everything back.
            let want_ind = Self::indirect_needed(need);
            let have_ind = self.indirect.get(&ino).map_or(0, |v| v.len() as u64);
            let ind_runs = if want_ind > have_ind {
                match self.alloc.alloc(want_ind - have_ind, goal) {
                    Ok(r) => r,
                    Err(e) => {
                        for r in &runs {
                            self.alloc.free(*r).expect("rollback of fresh alloc");
                        }
                        return Err(e);
                    }
                }
            } else {
                Vec::new()
            };
            self.charge_alloc(&runs, &mut meta);
            self.charge_alloc(&ind_runs, &mut meta);
            let node = self.tree.get_mut(ino)?;
            for r in runs {
                match node.runs.last_mut() {
                    Some(last) if last.start + last.len == r.start => last.len += r.len,
                    _ => node.runs.push(r),
                }
            }
            if !ind_runs.is_empty() {
                let entry = self.indirect.entry(ino).or_default();
                for r in ind_runs {
                    for b in r.start..r.start + r.len {
                        entry.push(b);
                        meta.writes.push(b);
                    }
                }
            }
        } else if need < have {
            // Truncate: free tail blocks.
            let mut to_free = have - need;
            let mut freed = Vec::new();
            let node = self.tree.get_mut(ino)?;
            while to_free > 0 {
                let Some(last) = node.runs.last_mut() else {
                    break;
                };
                if last.len <= to_free {
                    to_free -= last.len;
                    freed.push(*last);
                    node.runs.pop();
                } else {
                    last.len -= to_free;
                    freed.push(Run {
                        start: last.start + last.len,
                        len: to_free,
                    });
                    to_free = 0;
                }
            }
            for r in &freed {
                self.alloc.free(*r)?;
            }
            self.charge_free(&freed, &mut meta);
            // Release now-surplus indirect blocks.
            let want_ind = Self::indirect_needed(need) as usize;
            let surplus: Vec<BlockNo> = match self.indirect.get_mut(&ino) {
                Some(ind) if ind.len() > want_ind => ind.split_off(want_ind),
                _ => Vec::new(),
            };
            for b in surplus {
                self.alloc.free(Run { start: b, len: 1 })?;
                let g = self.group_of_block(b);
                self.group_free[g as usize] += 1;
                meta.writes.push(self.block_bitmap_block(g));
            }
        }
        self.tree.get_mut(ino)?.size = size;
        Ok(meta)
    }

    fn map(&self, ino: InodeNo, logical: u64, max: u64) -> SimResult<Extent> {
        let node = self.tree.get(ino)?;
        match node.map_block(logical) {
            Some((physical, rem)) => Ok(Extent {
                logical,
                physical,
                len: rem.min(max.max(1)),
            }),
            None => Err(SimError::OutOfBounds {
                offset: logical,
                size: node.blocks(),
            }),
        }
    }

    fn avg_file_extents(&self) -> f64 {
        self.tree.avg_file_extents()
    }

    fn capacity(&self) -> Bytes {
        self.block_size() * self.config.total_blocks
    }

    fn used(&self) -> Bytes {
        self.block_size() * (self.config.total_blocks - self.alloc.free_blocks())
    }

    fn crash_plan(&self) -> rb_faults::RecoveryPlan {
        // No journal: recovery is an fsck pass over every group's
        // metadata (bitmaps + inode tables) — capacity-proportional,
        // where journal replay below is log-proportional.
        rb_faults::RecoveryPlan {
            scan_start: 0,
            scan_blocks: self.meta_reserved_blocks().max(1),
            replay_writes: 0,
            mechanism: "fsck-scan",
        }
    }

    fn check_consistency(&self) -> Result<(), String> {
        self.fsck(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Ext2Fs {
        Ext2Fs::new(Ext2Config::for_blocks(65536)) // 256 MiB
    }

    #[test]
    fn mkfs_reserves_metadata() {
        let f = fs();
        assert!(f.allocator().is_allocated(0));
        assert!(f.allocator().is_allocated(1));
        assert!(f.allocator().is_allocated(8192)); // group 1 superblock
        assert!(f.used() > Bytes::ZERO);
    }

    #[test]
    fn fsck_passes_after_churn() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        for i in 0..12 {
            let (ino, _) = f.create(&format!("/d/f{i}")).unwrap();
            f.set_size(ino, Bytes::mib(2)).unwrap();
        }
        for i in 0..6 {
            f.unlink(&format!("/d/f{i}")).unwrap();
        }
        f.fsck(0).expect("consistent after churn");
        use crate::vfs::FileSystem as _;
        let plan = f.crash_plan();
        assert_eq!(plan.mechanism, "fsck-scan");
        assert_eq!(plan.scan_blocks, f.meta_reserved_blocks().max(1));
    }

    #[test]
    fn create_write_map_roundtrip() {
        let mut f = fs();
        let (ino, meta) = f.create("/a").unwrap();
        assert!(!meta.writes.is_empty());
        f.set_size(ino, Bytes::mib(2)).unwrap();
        let attr = f.attr(ino).unwrap();
        assert_eq!(attr.size, Bytes::mib(2));
        assert_eq!(attr.blocks, 512);
        // Mapping covers every block exactly once, contiguously or not.
        let mut covered = 0;
        let mut logical = 0;
        while logical < 512 {
            let e = f.map(ino, logical, 512).unwrap();
            assert!(e.len >= 1);
            covered += e.len;
            logical += e.len;
        }
        assert_eq!(covered, 512);
        assert!(f.map(ino, 512, 1).is_err());
    }

    #[test]
    fn fresh_files_are_mostly_contiguous() {
        let mut f = fs();
        let (ino, _) = f.create("/big").unwrap();
        f.set_size(ino, Bytes::mib(16)).unwrap();
        let e = f.map(ino, 0, 4096).unwrap();
        // A fresh ext2 should deliver long runs.
        assert!(e.len >= 1024, "first extent only {} blocks", e.len);
    }

    #[test]
    fn lookup_charges_metadata_reads() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        f.create("/d/f").unwrap();
        let (_, meta) = f.lookup("/d/f").unwrap();
        // Inode table reads for /, /d, /d/f plus dirent probes.
        assert!(meta.reads.len() >= 3, "only {} reads", meta.reads.len());
        assert!(meta.writes.is_empty());
    }

    #[test]
    fn unlink_returns_space() {
        let mut f = fs();
        let (ino, _) = f.create("/x").unwrap();
        // Directory blocks allocated by create stay with the directory.
        let free_after_create = f.allocator().free_blocks();
        f.set_size(ino, Bytes::mib(8)).unwrap();
        assert!(f.allocator().free_blocks() < free_after_create);
        let meta = f.unlink("/x").unwrap();
        assert!(
            meta.writes.iter().any(|&b| b % 8192 == 1),
            "block bitmap write"
        );
        assert_eq!(f.allocator().free_blocks(), free_after_create);
        assert!(f.lookup("/x").is_err());
    }

    #[test]
    fn large_file_gets_indirect_blocks() {
        let mut f = fs();
        let (ino, _) = f.create("/big").unwrap();
        // 12 direct + more: 5000 blocks needs ceil(4988/1024) = 5 indirect.
        let meta = f.set_size(ino, Bytes::kib(4) * 5000).unwrap();
        assert_eq!(f.indirect.get(&ino).map(|v| v.len()), Some(5));
        assert!(meta.writes.len() >= 5);
        // Shrinking under the direct limit frees them.
        f.set_size(ino, Bytes::kib(4) * 10).unwrap();
        assert_eq!(f.indirect.get(&ino).map(|v| v.len()).unwrap_or(0), 0);
        assert_eq!(f.attr(ino).unwrap().blocks, 10);
    }

    #[test]
    fn directories_spread_files_cluster() {
        let mut f = fs();
        f.mkdir("/d1").unwrap();
        f.mkdir("/d2").unwrap();
        let (fa, _) = f.create("/d1/a").unwrap();
        let (fb, _) = f.create("/d1/b").unwrap();
        // Files in the same directory share a group.
        assert_eq!(f.ino_group[&fa], f.ino_group[&fb]);
    }

    #[test]
    fn readdir_lists_sorted() {
        let mut f = fs();
        f.create("/b").unwrap();
        f.create("/a").unwrap();
        f.mkdir("/c").unwrap();
        let (names, meta) = f.readdir_names("/").unwrap();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(!meta.reads.is_empty());
        // The counted form charges the same metadata without the names.
        let (count, meta2) = f.readdir("/").unwrap();
        assert_eq!(count, 3);
        assert_eq!(meta, meta2);
        assert!(f.readdir("/a").is_err());
        assert!(f.readdir_names("/a").is_err());
    }

    #[test]
    fn double_create_fails() {
        let mut f = fs();
        f.create("/x").unwrap();
        assert!(matches!(f.create("/x"), Err(SimError::AlreadyExists(_))));
    }

    #[test]
    fn no_space_when_full() {
        let mut f = Ext2Fs::new(Ext2Config::for_blocks(1024)); // 4 MiB
        let (ino, _) = f.create("/fill").unwrap();
        let free = f.allocator().free_blocks();
        // Leave room for the file's own indirect mapping block.
        f.set_size(ino, Bytes::kib(4) * (free - 1)).unwrap();
        let (i2, _) = f.create("/more").unwrap();
        let before = f.allocator().free_blocks();
        assert!(matches!(
            f.set_size(i2, Bytes::mib(1)),
            Err(SimError::NoSpace)
        ));
        // A failed grow must not leak blocks.
        assert_eq!(f.allocator().free_blocks(), before);
    }

    #[test]
    fn truncate_to_zero() {
        let mut f = fs();
        let (ino, _) = f.create("/t").unwrap();
        f.set_size(ino, Bytes::mib(1)).unwrap();
        f.set_size(ino, Bytes::ZERO).unwrap();
        assert_eq!(f.attr(ino).unwrap().blocks, 0);
        assert!(f.map(ino, 0, 1).is_err());
    }
}
