//! Block allocators: bitmap block-groups (ext2-style) and free-extent
//! trees (xfs-style).
//!
//! Allocation policy *is* on-disk layout policy: where an allocator puts
//! blocks determines seek distances and transfer contiguity, which is the
//! paper's "on-disk" benchmarking dimension. Both allocators expose the
//! same goal-directed interface so file systems differ only in policy.

use rb_simcore::error::{SimError, SimResult};
use rb_simcore::units::BlockNo;
use std::collections::BTreeMap;

/// A contiguous run of allocated blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// First block of the run.
    pub start: BlockNo,
    /// Length in blocks.
    pub len: u64,
}

/// Bitmap allocator over fixed-size block groups (the ext2 scheme).
///
/// Allocation walks from a *goal* block: first within the goal's group,
/// then spilling to subsequent groups. Files allocated with goals near
/// their inode's group stay clustered; a fragmented bitmap spreads them.
///
/// # Examples
///
/// ```
/// use rb_simfs::alloc::BitmapAllocator;
///
/// let mut a = BitmapAllocator::new(1024, 256);
/// let runs = a.alloc(10, 0).unwrap();
/// assert_eq!(runs.iter().map(|r| r.len).sum::<u64>(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct BitmapAllocator {
    bits: Vec<bool>,
    group_size: u64,
    free: u64,
    /// Per-group scan accelerator: every block of group `g` below
    /// `first_free_hint[g]` is allocated, so `alloc` may start its walk
    /// there instead of at the group boundary. The hint is a lower
    /// bound, never a promise that the hinted block is free; the runs
    /// found are identical to a full from-the-start scan.
    first_free_hint: Vec<u64>,
}

impl BitmapAllocator {
    /// Creates an allocator of `total` blocks in groups of `group_size`.
    pub fn new(total: u64, group_size: u64) -> Self {
        let group_size = group_size.max(1);
        let groups = total.div_ceil(group_size) as usize;
        BitmapAllocator {
            bits: vec![false; total as usize],
            group_size,
            free: total,
            first_free_hint: (0..groups as u64).map(|g| g * group_size).collect(),
        }
    }

    /// Total blocks managed.
    pub fn total(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.free
    }

    /// Number of block groups.
    pub fn groups(&self) -> u64 {
        self.total().div_ceil(self.group_size)
    }

    /// Returns true if `block` is allocated.
    pub fn is_allocated(&self, block: BlockNo) -> bool {
        self.bits.get(block as usize).copied().unwrap_or(false)
    }

    /// Marks a specific block allocated (used by mkfs for metadata areas).
    ///
    /// Returns an error if already allocated or out of range.
    pub fn reserve(&mut self, block: BlockNo) -> SimResult<()> {
        let i = block as usize;
        if i >= self.bits.len() {
            return Err(SimError::OutOfBounds {
                offset: block,
                size: self.total(),
            });
        }
        if self.bits[i] {
            return Err(SimError::AlreadyExists(format!("block {block}")));
        }
        self.bits[i] = true;
        self.free -= 1;
        Ok(())
    }

    /// Allocates `count` blocks near `goal`, returning the runs found.
    ///
    /// Greedy: take the longest contiguous runs available starting from
    /// the goal's group, then wrap through the remaining groups.
    pub fn alloc(&mut self, count: u64, goal: BlockNo) -> SimResult<Vec<Run>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > self.free {
            return Err(SimError::NoSpace);
        }
        let mut runs: Vec<Run> = Vec::new();
        let mut left = count;
        let goal_group = (goal.min(self.total() - 1)) / self.group_size;
        let groups = self.groups();
        for gi in 0..groups {
            let g = (goal_group + gi) % groups;
            let start = g * self.group_size;
            let end = (start + self.group_size).min(self.total());
            let mut b = start.max(self.first_free_hint[g as usize]);
            while b < end && left > 0 {
                if !self.bits[b as usize] {
                    // Extend the run as far as it goes.
                    let run_start = b;
                    while b < end && left > 0 && !self.bits[b as usize] {
                        self.bits[b as usize] = true;
                        self.free -= 1;
                        left -= 1;
                        b += 1;
                    }
                    let run = Run {
                        start: run_start,
                        len: b - run_start,
                    };
                    match runs.last_mut() {
                        Some(last) if last.start + last.len == run.start => {
                            last.len += run.len;
                        }
                        _ => runs.push(run),
                    }
                } else {
                    b += 1;
                }
            }
            // Everything below `b` in this group is now allocated: the
            // pre-hint prefix by the invariant, the scanned stretch
            // because the walk claims every free block it passes.
            self.first_free_hint[g as usize] = b;
            if left == 0 {
                break;
            }
        }
        debug_assert_eq!(left, 0, "free counter out of sync");
        Ok(runs)
    }

    /// Frees a run of blocks. Double frees are reported as errors.
    pub fn free(&mut self, run: Run) -> SimResult<()> {
        if run.start + run.len > self.total() {
            return Err(SimError::OutOfBounds {
                offset: run.start + run.len,
                size: self.total(),
            });
        }
        for b in run.start..run.start + run.len {
            if !self.bits[b as usize] {
                return Err(SimError::InvalidOperation(format!(
                    "double free of block {b}"
                )));
            }
            self.bits[b as usize] = false;
            self.free += 1;
            let g = (b / self.group_size) as usize;
            if self.first_free_hint[g] > b {
                self.first_free_hint[g] = b;
            }
        }
        Ok(())
    }

    /// Fraction of free space in runs shorter than `threshold` blocks —
    /// a simple external-fragmentation metric.
    pub fn fragmentation(&self, threshold: u64) -> f64 {
        let mut short = 0u64;
        let mut total_free = 0u64;
        let mut i = 0usize;
        while i < self.bits.len() {
            if !self.bits[i] {
                let start = i;
                while i < self.bits.len() && !self.bits[i] {
                    i += 1;
                }
                let len = (i - start) as u64;
                total_free += len;
                if len < threshold {
                    short += len;
                }
            } else {
                i += 1;
            }
        }
        if total_free == 0 {
            0.0
        } else {
            short as f64 / total_free as f64
        }
    }
}

/// Free-extent allocator with best-fit selection (the xfs scheme).
///
/// Free space is kept as a set of extents indexed by start; allocation
/// prefers an extent at/after the goal that can satisfy the request in
/// one piece, falling back to the largest available extent.
#[derive(Debug, Clone)]
pub struct ExtentAllocator {
    /// start -> len of each free extent.
    by_start: BTreeMap<BlockNo, u64>,
    free: u64,
    total: u64,
}

impl ExtentAllocator {
    /// Creates an allocator with the whole device free.
    pub fn new(total: u64) -> Self {
        let mut by_start = BTreeMap::new();
        if total > 0 {
            by_start.insert(0, total);
        }
        ExtentAllocator {
            by_start,
            free: total,
            total,
        }
    }

    /// Total blocks managed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.free
    }

    /// Number of free extents (fragmentation proxy).
    pub fn free_extents(&self) -> usize {
        self.by_start.len()
    }

    /// Reserves an explicit range (mkfs metadata).
    pub fn reserve(&mut self, start: BlockNo, len: u64) -> SimResult<()> {
        // Find the free extent containing [start, start+len).
        let (&estart, &elen) = self
            .by_start
            .range(..=start)
            .next_back()
            .ok_or(SimError::NoSpace)?;
        if start + len > estart + elen {
            return Err(SimError::InvalidOperation(format!(
                "range {start}+{len} not free"
            )));
        }
        self.by_start.remove(&estart);
        if start > estart {
            self.by_start.insert(estart, start - estart);
        }
        if estart + elen > start + len {
            self.by_start
                .insert(start + len, (estart + elen) - (start + len));
        }
        self.free -= len;
        Ok(())
    }

    /// Allocates `count` blocks near `goal`, preferring a single extent.
    pub fn alloc(&mut self, count: u64, goal: BlockNo) -> SimResult<Vec<Run>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if count > self.free {
            return Err(SimError::NoSpace);
        }
        let mut runs = Vec::new();
        let mut left = count;
        while left > 0 {
            // Preference order: (1) the free extent containing the goal,
            // split at the goal, if enough room remains past it; (2) the
            // first extent at/after the goal that fits the remainder
            // whole; (3) the largest extent anywhere.
            let containing = self
                .by_start
                .range(..=goal)
                .next_back()
                .filter(|(&s, &len)| goal < s + len && s + len - goal >= left)
                .map(|(&s, &len)| (s, len));
            if let Some((s, len)) = containing {
                self.by_start.remove(&s);
                if goal > s {
                    self.by_start.insert(s, goal - s);
                }
                let tail = (s + len) - (goal + left);
                if tail > 0 {
                    self.by_start.insert(goal + left, tail);
                }
                self.free -= left;
                runs.push(Run {
                    start: goal,
                    len: left,
                });
                left = 0;
                continue;
            }
            let fit_after = self
                .by_start
                .range(goal..)
                .find(|(_, &len)| len >= left)
                .map(|(&s, _)| s);
            let chosen = fit_after.or_else(|| {
                self.by_start
                    .iter()
                    .max_by_key(|(_, &len)| len)
                    .map(|(&s, _)| s)
            });
            let Some(start) = chosen else {
                return Err(SimError::NoSpace);
            };
            let len = self.by_start[&start];
            let take = len.min(left);
            self.by_start.remove(&start);
            if take < len {
                self.by_start.insert(start + take, len - take);
            }
            self.free -= take;
            left -= take;
            runs.push(Run { start, len: take });
        }
        Ok(runs)
    }

    /// Frees a run, coalescing with neighbours.
    pub fn free(&mut self, run: Run) -> SimResult<()> {
        if run.len == 0 {
            return Ok(());
        }
        if run.start + run.len > self.total {
            return Err(SimError::OutOfBounds {
                offset: run.start + run.len,
                size: self.total,
            });
        }
        // Overlap checks against predecessor and successor.
        if let Some((&ps, &pl)) = self.by_start.range(..=run.start).next_back() {
            if ps + pl > run.start {
                return Err(SimError::InvalidOperation(format!(
                    "double free at block {}",
                    run.start
                )));
            }
        }
        if let Some((&ns, _)) = self.by_start.range(run.start..).next() {
            if run.start + run.len > ns {
                return Err(SimError::InvalidOperation(format!(
                    "double free at block {ns}"
                )));
            }
        }
        let mut start = run.start;
        let mut len = run.len;
        // Coalesce with predecessor.
        if let Some((&ps, &pl)) = self.by_start.range(..start).next_back() {
            if ps + pl == start {
                self.by_start.remove(&ps);
                start = ps;
                len += pl;
            }
        }
        // Coalesce with successor.
        if let Some((&ns, &nl)) = self.by_start.range(start + len..).next() {
            if start + len == ns {
                self.by_start.remove(&ns);
                len += nl;
            }
        }
        self.by_start.insert(start, len);
        self.free += run.len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_allocates_contiguously_when_fresh() {
        let mut a = BitmapAllocator::new(1000, 100);
        let runs = a.alloc(50, 0).unwrap();
        assert_eq!(runs, vec![Run { start: 0, len: 50 }]);
        assert_eq!(a.free_blocks(), 950);
    }

    #[test]
    fn bitmap_goal_directs_placement() {
        let mut a = BitmapAllocator::new(1000, 100);
        let runs = a.alloc(10, 550).unwrap();
        assert_eq!(runs[0].start, 500, "allocation should start in goal group");
    }

    #[test]
    fn bitmap_spills_across_groups() {
        let mut a = BitmapAllocator::new(300, 100);
        // Fill group 2 completely, then ask for more than one group from
        // a goal inside it.
        a.alloc(100, 250).unwrap();
        let runs = a.alloc(150, 250).unwrap();
        let total: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 150);
        // Spill wrapped to group 0.
        assert!(runs.iter().any(|r| r.start < 100));
    }

    #[test]
    fn bitmap_free_and_refill() {
        let mut a = BitmapAllocator::new(100, 50);
        let runs = a.alloc(100, 0).unwrap();
        assert!(a.alloc(1, 0).is_err());
        for r in runs {
            a.free(r).unwrap();
        }
        assert_eq!(a.free_blocks(), 100);
        assert!(a.alloc(100, 0).is_ok());
    }

    #[test]
    fn bitmap_double_free_detected() {
        let mut a = BitmapAllocator::new(100, 50);
        let runs = a.alloc(10, 0).unwrap();
        a.free(runs[0]).unwrap();
        assert!(a.free(runs[0]).is_err());
    }

    #[test]
    fn bitmap_fragmentation_metric() {
        let mut a = BitmapAllocator::new(100, 100);
        assert_eq!(a.fragmentation(8), 0.0);
        // Allocate every other pair of blocks: free space in runs of 2.
        for i in 0..25u64 {
            a.reserve(i * 4).unwrap();
            a.reserve(i * 4 + 1).unwrap();
        }
        let f = a.fragmentation(8);
        assert!(f > 0.9, "fragmentation {f}");
    }

    #[test]
    fn extent_prefers_single_run() {
        let mut a = ExtentAllocator::new(1000);
        let runs = a.alloc(300, 0).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0], Run { start: 0, len: 300 });
    }

    #[test]
    fn extent_goal_seeks_forward() {
        let mut a = ExtentAllocator::new(1000);
        a.reserve(0, 100).unwrap();
        let runs = a.alloc(50, 600).unwrap();
        assert_eq!(runs[0].start, 600);
    }

    #[test]
    fn extent_falls_back_to_largest() {
        let mut a = ExtentAllocator::new(100);
        // Free space: [10, 20) and [50, 90): largest is 40 blocks.
        a.reserve(0, 10).unwrap();
        a.reserve(20, 30).unwrap();
        a.reserve(90, 10).unwrap();
        let runs = a.alloc(45, 95).unwrap();
        assert_eq!(runs[0].start, 50, "should pick the largest extent first");
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn extent_free_coalesces() {
        let mut a = ExtentAllocator::new(100);
        let r = a.alloc(100, 0).unwrap();
        assert_eq!(a.free_extents(), 0);
        assert_eq!(r.len(), 1);
        a.free(Run { start: 0, len: 30 }).unwrap();
        a.free(Run { start: 60, len: 40 }).unwrap();
        assert_eq!(a.free_extents(), 2);
        a.free(Run { start: 30, len: 30 }).unwrap();
        // Everything merges back into one extent.
        assert_eq!(a.free_extents(), 1);
        assert_eq!(a.free_blocks(), 100);
    }

    #[test]
    fn extent_double_free_detected() {
        let mut a = ExtentAllocator::new(100);
        a.alloc(10, 0).unwrap();
        a.free(Run { start: 0, len: 10 }).unwrap();
        assert!(a.free(Run { start: 0, len: 10 }).is_err());
        assert!(a.free(Run { start: 5, len: 2 }).is_err());
    }

    #[test]
    fn extent_reserve_splits() {
        let mut a = ExtentAllocator::new(100);
        a.reserve(40, 20).unwrap();
        assert_eq!(a.free_extents(), 2);
        assert_eq!(a.free_blocks(), 80);
        assert!(a.reserve(45, 5).is_err(), "overlapping reserve must fail");
    }

    #[test]
    fn allocators_report_no_space() {
        let mut b = BitmapAllocator::new(10, 10);
        assert!(matches!(b.alloc(11, 0), Err(SimError::NoSpace)));
        let mut e = ExtentAllocator::new(10);
        assert!(matches!(e.alloc(11, 0), Err(SimError::NoSpace)));
    }
}
