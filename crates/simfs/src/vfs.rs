//! The file-system abstraction: layout engine plus metadata traffic.
//!
//! A simulated file system answers two questions: *where do a file's
//! bytes live on the device* (the mapping, which determines seeks and
//! contiguity) and *which metadata blocks does an operation touch* (the
//! [`MetaIo`], which the storage stack turns into cached or media reads
//! and writes). Data movement itself happens in the stack, through the
//! page cache, so every file system sees identical caching — isolating
//! the on-disk-layout dimension exactly as the paper asks.

use crate::intern::PathSpec;
use rb_faults::RecoveryPlan;
use rb_simcore::error::SimResult;
use rb_simcore::inline::InlineVec;
use rb_simcore::units::{BlockNo, Bytes};

/// Inode number.
pub type InodeNo = u64;

/// Block list inside a [`MetaIo`]: inline up to 8 blocks — which covers
/// the typical namespace operation — spilling to the heap only for the
/// rare wide op (a large readdir, a long truncate).
pub type MetaBlocks = InlineVec<BlockNo, 8>;

/// Metadata block traffic caused by an operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaIo {
    /// Metadata blocks read (directory blocks, inode table, bitmaps).
    pub reads: MetaBlocks,
    /// Metadata blocks written.
    pub writes: MetaBlocks,
    /// Journal blocks written (empty on non-journaling systems).
    pub journal_writes: MetaBlocks,
}

impl MetaIo {
    /// Merges another operation's traffic into this one.
    pub fn merge(&mut self, other: MetaIo) {
        self.reads.extend_from_slice(&other.reads);
        self.writes.extend_from_slice(&other.writes);
        self.journal_writes.extend_from_slice(&other.journal_writes);
    }

    /// Total metadata blocks touched.
    pub fn total_blocks(&self) -> usize {
        self.reads.len() + self.writes.len() + self.journal_writes.len()
    }
}

/// File attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileAttr {
    /// Inode number.
    pub ino: InodeNo,
    /// Logical size in bytes.
    pub size: Bytes,
    /// Allocated data blocks.
    pub blocks: u64,
    /// True for directories.
    pub is_dir: bool,
}

/// A contiguous piece of a file's mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First logical block covered.
    pub logical: u64,
    /// Corresponding physical (device) block.
    pub physical: BlockNo,
    /// Contiguous length in blocks.
    pub len: u64,
}

/// A simulated file system.
///
/// All paths are absolute, `/`-separated, with no `.`/`..` components.
///
/// Every namespace operation exists in two forms: the `*_spec` form
/// takes a [`PathSpec`] — a path validated, split and interned once via
/// [`FileSystem::intern_path`] — and resolves with zero allocation;
/// the `&str` form is a thin compatibility shim that builds the spec
/// on the spot. Hot paths (the storage stack's per-path cache, the
/// replay driver, the workload engine) pre-intern and call the spec
/// form; both forms produce identical metadata traffic and identical
/// errors.
pub trait FileSystem {
    /// Model name for reports (e.g. `"ext2"`).
    fn name(&self) -> &'static str;

    /// File-system block size (equals the device block size here).
    fn block_size(&self) -> Bytes;

    /// Miss granularity: how many *pages* the stack fetches per demand
    /// miss (modelling per-FS block clustering).
    fn cluster_pages(&self) -> u64;

    /// Validates and interns a path for repeated spec-based use.
    ///
    /// Pure bookkeeping: never touches the namespace, charges no
    /// metadata, and is valid for paths that do not (yet) exist.
    fn intern_path(&mut self, path: &str) -> SimResult<PathSpec>;

    /// Resolves a pre-interned path, charging directory/inode reads.
    fn lookup_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)>;

    /// Creates a regular file at a pre-interned path.
    fn create_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)>;

    /// Creates a directory at a pre-interned path.
    fn mkdir_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)>;

    /// Removes a regular file at a pre-interned path, freeing its
    /// blocks. Returns the removed inode so callers can invalidate
    /// cached pages without a second path walk.
    fn unlink_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)>;

    /// Removes an empty directory at a pre-interned path.
    fn rmdir_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)>;

    /// Counts a directory's entries, charging the same metadata reads a
    /// full listing would (the counted readdir form — no name
    /// allocation on the hot path).
    fn readdir_spec(&mut self, spec: &PathSpec) -> SimResult<(u64, MetaIo)>;

    /// Resolves a path, charging directory/inode reads.
    fn lookup(&mut self, path: &str) -> SimResult<(InodeNo, MetaIo)> {
        let spec = self.intern_path(path)?;
        self.lookup_spec(&spec)
    }

    /// Creates a regular file.
    fn create(&mut self, path: &str) -> SimResult<(InodeNo, MetaIo)> {
        let spec = self.intern_path(path)?;
        self.create_spec(&spec)
    }

    /// Creates a directory.
    fn mkdir(&mut self, path: &str) -> SimResult<(InodeNo, MetaIo)> {
        let spec = self.intern_path(path)?;
        self.mkdir_spec(&spec)
    }

    /// Removes a regular file, freeing its blocks.
    fn unlink(&mut self, path: &str) -> SimResult<MetaIo> {
        let spec = self.intern_path(path)?;
        self.unlink_spec(&spec).map(|(_, meta)| meta)
    }

    /// Removes an empty directory.
    fn rmdir(&mut self, path: &str) -> SimResult<MetaIo> {
        let spec = self.intern_path(path)?;
        self.rmdir_spec(&spec).map(|(_, meta)| meta)
    }

    /// Counts a directory's entries (see [`FileSystem::readdir_spec`]).
    fn readdir(&mut self, path: &str) -> SimResult<(u64, MetaIo)> {
        let spec = self.intern_path(path)?;
        self.readdir_spec(&spec)
    }

    /// Lists a directory's entries as sorted names (allocates; the
    /// listing form, off the hot path).
    fn readdir_names(&mut self, path: &str) -> SimResult<(Vec<String>, MetaIo)>;

    /// Attributes by inode.
    fn attr(&self, ino: InodeNo) -> SimResult<FileAttr>;

    /// Logical size by inode: the read/write fast path. [`FileAttr`]
    /// carries the allocated-block count, which costs a walk of the
    /// inode's extent list — noticeable when every 8 KiB read of a
    /// multi-hundred-extent file pays it for a field the data path
    /// never looks at. Implementations with direct inode access should
    /// override this to return the size alone.
    fn size_of(&self, ino: InodeNo) -> SimResult<Bytes> {
        Ok(self.attr(ino)?.size)
    }

    /// Grows or shrinks a file, (de)allocating data blocks.
    fn set_size(&mut self, ino: InodeNo, size: Bytes) -> SimResult<MetaIo>;

    /// Maps logical block `logical` of `ino`, returning an extent
    /// covering at most `max` blocks starting there.
    fn map(&self, ino: InodeNo, logical: u64, max: u64) -> SimResult<Extent>;

    /// Average number of extents per file-megabyte — a layout-quality
    /// metric (1 run per MB is perfectly contiguous at 256 blocks/MB).
    fn avg_file_extents(&self) -> f64;

    /// Total device capacity.
    fn capacity(&self) -> Bytes;

    /// Bytes of user data currently allocated.
    fn used(&self) -> Bytes;

    /// What recovering from a crash costs on this file system.
    ///
    /// The default models a non-journaled fsck: a scan proportional to
    /// the device (1/16th of capacity, a coarse metadata estimate) with
    /// nothing to replay. Journaling file systems override this with a
    /// small log-region scan plus replay writes.
    fn crash_plan(&self) -> RecoveryPlan {
        RecoveryPlan {
            scan_start: 0,
            scan_blocks: (self.capacity().div_ceil(self.block_size()) / 16).max(1),
            replay_writes: 0,
            mechanism: "fsck-scan",
        }
    }

    /// Fsck-style invariant walk over the in-memory metadata, used as
    /// the post-crash-recovery verdict. Returns a description of the
    /// first inconsistency found; the default trusts the model.
    fn check_consistency(&self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metaio_merge_accumulates() {
        let mut a = MetaIo {
            reads: [1].into_iter().collect(),
            writes: [2].into_iter().collect(),
            journal_writes: MetaBlocks::new(),
        };
        let b = MetaIo {
            reads: [3, 4].into_iter().collect(),
            writes: MetaBlocks::new(),
            journal_writes: [9].into_iter().collect(),
        };
        a.merge(b);
        assert_eq!(a.reads, vec![1, 3, 4]);
        assert_eq!(a.writes, vec![2]);
        assert_eq!(a.journal_writes, vec![9]);
        assert_eq!(a.total_blocks(), 5);
    }
}
