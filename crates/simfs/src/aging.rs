//! File-system aging: fragmenting free space before an experiment.
//!
//! A freshly formatted file system allocates beautifully; real systems do
//! not. Benchmarks on virgin images overstate layout quality — one of the
//! classic methodology errors the paper's survey keeps finding. The ager
//! churns creates, appends and deletes (Smith & Seltzer style) until free
//! space is fragmented, so layout-sensitive experiments can run against
//! honest conditions.

use crate::vfs::FileSystem;
use rb_simcore::error::SimResult;
use rb_simcore::rng::Rng;
use rb_simcore::units::Bytes;

/// Aging workload parameters.
#[derive(Debug, Clone)]
pub struct AgingConfig {
    /// Number of churn rounds.
    pub rounds: u64,
    /// Live files maintained per round.
    pub live_files: u64,
    /// Smallest file created.
    pub min_size: Bytes,
    /// Largest file created.
    pub max_size: Bytes,
    /// Fraction of files deleted each round (0..1).
    pub delete_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AgingConfig {
    fn default() -> Self {
        AgingConfig {
            rounds: 20,
            live_files: 100,
            min_size: Bytes::kib(4),
            max_size: Bytes::kib(512),
            delete_fraction: 0.4,
            seed: 0xA6E,
        }
    }
}

/// Result of an aging pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingReport {
    /// Files created over the whole run.
    pub created: u64,
    /// Files deleted over the whole run.
    pub deleted: u64,
    /// Mean extents per file afterwards (1.0 = perfectly contiguous).
    pub avg_extents_after: f64,
}

/// Ages a file system in place under `/aging/`.
///
/// Files left alive at the end remain on the file system (they are part
/// of the aged state); the `/aging` directory holds them.
pub fn age_filesystem(fs: &mut dyn FileSystem, config: &AgingConfig) -> SimResult<AgingReport> {
    let mut rng = Rng::new(config.seed).fork("aging");
    fs.mkdir("/aging")?;
    let mut live: Vec<(String, u64)> = Vec::new();
    let mut serial = 0u64;
    let mut created = 0u64;
    let mut deleted = 0u64;
    let span = config
        .max_size
        .as_u64()
        .saturating_sub(config.min_size.as_u64())
        .max(1);
    for _ in 0..config.rounds {
        // Create up to the live target.
        while (live.len() as u64) < config.live_files {
            let name = format!("/aging/f{serial}");
            serial += 1;
            let (ino, _) = fs.create(&name)?;
            let size = Bytes::new(config.min_size.as_u64() + rng.below(span));
            if fs.set_size(ino, size).is_err() {
                // Out of space: delete something and carry on.
                if let Some((victim, _)) = live.first().cloned() {
                    fs.unlink(&victim)?;
                    live.remove(0);
                    deleted += 1;
                }
                fs.unlink(&name)?;
                continue;
            }
            live.push((name, ino));
            created += 1;
        }
        // Delete a random fraction.
        let kill = ((live.len() as f64) * config.delete_fraction) as usize;
        for _ in 0..kill {
            if live.is_empty() {
                break;
            }
            let idx = rng.below(live.len() as u64) as usize;
            let (name, _) = live.swap_remove(idx);
            fs.unlink(&name)?;
            deleted += 1;
        }
    }
    Ok(AgingReport {
        created,
        deleted,
        avg_extents_after: fs.avg_file_extents(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext2::{Ext2Config, Ext2Fs};
    use crate::vfs::FileSystem;
    use crate::xfs::{XfsConfig, XfsFs};

    #[test]
    fn aging_fragments_ext2() {
        let mut fs = Ext2Fs::new(Ext2Config::for_blocks(32_768)); // 128 MiB
                                                                  // High occupancy (~75 %) so free space is genuinely chopped up.
        let cfg = AgingConfig {
            live_files: 350,
            ..Default::default()
        };
        let report = age_filesystem(&mut fs, &cfg).unwrap();
        assert!(report.created > 100);
        assert!(report.deleted > 50);
        // A fresh large file on the aged system is more fragmented than
        // on a virgin one.
        let (ino, _) = fs.create("/post").unwrap();
        fs.set_size(ino, rb_simcore::units::Bytes::mib(16)).unwrap();
        let aged_extents = fs.tree().get(ino).unwrap().extent_count();

        let mut virgin = Ext2Fs::new(Ext2Config::for_blocks(32_768));
        let (v, _) = virgin.create("/post").unwrap();
        virgin
            .set_size(v, rb_simcore::units::Bytes::mib(16))
            .unwrap();
        let virgin_extents = virgin.tree().get(v).unwrap().extent_count();
        assert!(
            aged_extents > virgin_extents,
            "aged {aged_extents} vs virgin {virgin_extents}"
        );
    }

    #[test]
    fn aging_is_deterministic() {
        let run = || {
            let mut fs = Ext2Fs::new(Ext2Config::for_blocks(32_768));
            age_filesystem(&mut fs, &AgingConfig::default()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn xfs_resists_fragmentation_better() {
        let cfg = AgingConfig {
            rounds: 10,
            ..Default::default()
        };
        let mut e2 = Ext2Fs::new(Ext2Config::for_blocks(32_768));
        let re2 = age_filesystem(&mut e2, &cfg).unwrap();
        let mut xf = XfsFs::new(XfsConfig::for_blocks(32_768));
        let rxf = age_filesystem(&mut xf, &cfg).unwrap();
        // Best-fit extents should stay at least as contiguous as
        // first-fit bitmap allocation.
        assert!(
            rxf.avg_extents_after <= re2.avg_extents_after + 0.5,
            "xfs {rxf:?} vs ext2 {re2:?}"
        );
    }

    #[test]
    fn respects_no_space_gracefully() {
        let mut fs = Ext2Fs::new(Ext2Config::for_blocks(2048)); // 8 MiB
        let cfg = AgingConfig {
            rounds: 4,
            live_files: 30,
            max_size: Bytes::kib(256),
            ..Default::default()
        };
        // Must not error out even when the tiny volume fills up.
        let report = age_filesystem(&mut fs, &cfg).unwrap();
        assert!(report.created > 0);
    }
}
