//! The storage stack: file system + page cache + block device + clock.
//!
//! The paper's framing is that a file system is "middleware" whose
//! measured behaviour is the interaction of the layers above and below
//! it. [`StorageStack`] composes those layers explicitly: a data read
//! consults the cache, cluster-expands demand misses to the file system's
//! fetch granularity, maps logical blocks to physical extents, services
//! them on the device, and charges a memory-copy cost — each step a
//! separately configurable, separately measurable contribution.

use crate::intern::{PathId, PathSpec};
use crate::vfs::{FileSystem, InodeNo, MetaIo};
use rb_faults::{CrashReport, FaultSpec, FaultState, FaultStats};
use rb_simcache::cache::{CacheConfig, PageCache};
use rb_simcache::page::{FileId, PageKey};
use rb_simcore::error::{SimError, SimResult};
use rb_simcore::fnv::FnvHashMap;
use rb_simcore::rng::Rng;
use rb_simcore::time::{Nanos, VirtualClock};
use rb_simcore::units::{page_span, Bytes, PageNo};
use rb_simdisk::device::{BlockDevice, IoRequest};

/// File id under which metadata blocks are cached.
pub const META_FILE: FileId = u64::MAX;

/// An open file handle.
pub type Fd = u64;

/// Stack-level tunables.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Cost to copy one page between the cache and the user buffer
    /// (~2 µs per 4 KiB at DRAM speeds: yields the paper's ~4 µs hit
    /// latency for the default 8 KiB reads).
    pub mem_copy_per_page: Nanos,
    /// Fixed CPU cost of entering the file system for any operation.
    pub syscall_overhead: Nanos,
    /// Log-normal sigma applied to the memory-copy cost per operation
    /// (TLB/cache effects, interrupts). Gives the in-memory latency peak
    /// its realistic spread over 2-3 log2 buckets; zero disables.
    pub mem_jitter_sigma: f64,
    /// Seed for the stack's own jitter stream.
    pub seed: u64,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            mem_copy_per_page: Nanos::from_micros(2),
            syscall_overhead: Nanos::from_nanos(300),
            mem_jitter_sigma: 0.18,
            seed: 0,
        }
    }
}

/// One operation's simulated cost, decomposed into the two contention
/// domains of the discrete-event scheduler.
///
/// Returned by the time-parameterized `*_at` operations: `cpu` is work
/// a core performs (syscall entry, memory copies), `device` is media
/// service time (demand fetches, writeback, journal commits). A serial
/// caller charges `total()` to its clock; a multi-process scheduler
/// queues `cpu` on a core token and `device` on the shared device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Core-side cost: syscall overhead plus user-buffer copies.
    pub cpu: Nanos,
    /// Device-side cost: total media service time.
    pub device: Nanos,
}

impl OpCost {
    /// A cost with no device component.
    pub fn cpu_only(cpu: Nanos) -> OpCost {
        OpCost {
            cpu,
            device: Nanos::ZERO,
        }
    }

    /// The serialized latency: CPU then device, no queueing.
    pub fn total(&self) -> Nanos {
        self.cpu + self.device
    }
}

/// Cumulative stack-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Data read operations served.
    pub reads: u64,
    /// Data write operations served.
    pub writes: u64,
    /// Metadata operations (create/unlink/mkdir/stat/lookup...).
    pub meta_ops: u64,
    /// fsync calls.
    pub fsyncs: u64,
    /// Block allocations (file grows via `set_size` or extending write).
    pub allocations: u64,
    /// Journal transaction commits (metadata ops that wrote journal
    /// blocks; zero on non-journaling file systems).
    pub journal_commits: u64,
}

/// A complete simulated storage stack.
///
/// # Examples
///
/// ```
/// use rb_simfs::ext2::{Ext2Config, Ext2Fs};
/// use rb_simfs::stack::{StackConfig, StorageStack};
/// use rb_simcache::cache::CacheConfig;
/// use rb_simdisk::hdd::{Hdd, HddConfig};
/// use rb_simcore::units::Bytes;
///
/// let mut stack = StorageStack::new(
///     Box::new(Ext2Fs::new(Ext2Config::for_blocks(65536))),
///     CacheConfig::paper_testbed(),
///     Box::new(Hdd::new(HddConfig::maxtor_7l250s0_like())),
///     StackConfig::default(),
/// );
/// stack.create("/f").unwrap();
/// let fd = stack.open("/f").unwrap();
/// stack.set_size_fd(fd, Bytes::mib(1)).unwrap();
/// let cold = stack.read(fd, Bytes::ZERO, Bytes::kib(8)).unwrap();
/// let warm = stack.read(fd, Bytes::ZERO, Bytes::kib(8)).unwrap();
/// assert!(warm < cold, "cache hit must be faster than the miss");
/// ```
pub struct StorageStack {
    fs: Box<dyn FileSystem>,
    cache: PageCache,
    disk: Box<dyn BlockDevice>,
    clock: VirtualClock,
    config: StackConfig,
    open: FnvHashMap<Fd, InodeNo>,
    paths: PathTable,
    next_fd: Fd,
    stats: StackStats,
    rng: Rng,
    faults: Option<FaultState>,
    media_floor: Nanos,
}

/// The stack's per-path resolution cache: full path string →
/// [`PathId`] → pre-interned [`PathSpec`].
///
/// The first operation on a path pays one validation + split + intern;
/// every later operation on it — by string (one FNV probe) or by id
/// (one vector index) — resolves through symbol tables with zero
/// allocation. Entries name *paths*, not inodes, so they stay valid
/// across creates and unlinks — which also means they are never
/// reclaimed: the table grows with the number of distinct paths ever
/// touched (tens of bytes per entry), including paths long since
/// unlinked. That is the deliberate trade for id stability; a
/// create-heavy month-long run would want an eviction story here.
#[derive(Debug, Default)]
struct PathTable {
    ids: FnvHashMap<Box<str>, PathId>,
    specs: Vec<PathSpec>,
}

impl StorageStack {
    /// Assembles a stack from its layers.
    pub fn new(
        fs: Box<dyn FileSystem>,
        cache: CacheConfig,
        disk: Box<dyn BlockDevice>,
        config: StackConfig,
    ) -> Self {
        let rng = Rng::new(config.seed).fork("stack-mem-jitter");
        StorageStack {
            fs,
            cache: PageCache::new(cache),
            disk,
            clock: VirtualClock::new(),
            config,
            open: Default::default(),
            paths: PathTable::default(),
            next_fd: 3,
            stats: StackStats::default(),
            rng,
            faults: None,
            media_floor: Nanos::ZERO,
        }
    }

    /// Installs a fault plan on the stack, forking its injection RNG
    /// stream from `seed`. Every later media request runs through the
    /// plan's error/latency decisions; allocations run through its
    /// ENOSPC gate. Installing replaces any previous plan.
    pub fn install_faults(&mut self, spec: FaultSpec, seed: u64) {
        self.faults = Some(FaultState::new(spec, seed));
    }

    /// Injection counters of the installed fault plan, if any.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// Sets the device-availability floor for subsequent media
    /// requests: a discrete-event scheduler that knows the shared
    /// device is busy until `floor` passes it in before dispatching an
    /// op, so mechanical state (seek distance, rotation) is evaluated
    /// at the *actual* service start rather than the op's issue instant
    /// — deep queues stay honest. Serial callers never set it.
    pub fn set_media_floor(&mut self, floor: Nanos) {
        self.media_floor = floor;
    }

    /// Services one media request at `at` (clamped to the media floor),
    /// running fault error-injection and latency degradation. The
    /// propagating form: injected errors surface to the caller.
    fn media_at(&mut self, req: IoRequest, at: Nanos) -> SimResult<Nanos> {
        let at = at.max(self.media_floor);
        match &mut self.faults {
            Some(f) => {
                f.check(&req)?;
                let base = self.disk.service(&req, at);
                Ok(f.degrade(at, base))
            }
            None => Ok(self.disk.service(&req, at)),
        }
    }

    /// Like [`StorageStack::media_at`] for background paths
    /// (writeback, recovery I/O): injected errors are counted and
    /// absorbed — real kernels swallow async-writeback errors too —
    /// but the attempt still occupies the device and still degrades.
    fn media_absorb_at(&mut self, req: IoRequest, at: Nanos) -> Nanos {
        let at = at.max(self.media_floor);
        match &mut self.faults {
            Some(f) => {
                f.check_absorbing(&req);
                let base = self.disk.service(&req, at);
                f.degrade(at, base)
            }
            None => self.disk.service(&req, at),
        }
    }

    /// ENOSPC gate for an allocation growing the file system by
    /// `growth` bytes; a no-op without an installed `enospc` clause.
    fn enospc_gate(&mut self, growth: Bytes) -> SimResult<()> {
        if let Some(f) = &mut self.faults {
            let used = self.fs.used().as_u64();
            let capacity = self.fs.capacity().as_u64();
            f.enospc_gate(used, capacity, growth.as_u64())?;
        }
        Ok(())
    }

    /// Memory-copy cost for `pages` pages, with per-operation jitter.
    fn copy_cost(&mut self, pages: u64) -> Nanos {
        let base = self.config.mem_copy_per_page * pages;
        if self.config.mem_jitter_sigma > 0.0 && !base.is_zero() {
            let f = self
                .rng
                .lognormal(1.0, self.config.mem_jitter_sigma)
                .clamp(0.4, 3.0);
            base.mul_f64(f)
        } else {
            base
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Advances virtual time (think time between operations).
    pub fn advance(&mut self, d: Nanos) {
        self.clock.advance(d);
    }

    /// The file-system layer.
    pub fn fs(&self) -> &dyn FileSystem {
        self.fs.as_ref()
    }

    /// The cache layer.
    pub fn cache(&self) -> &PageCache {
        &self.cache
    }

    /// Device statistics.
    pub fn disk_stats(&self) -> &rb_simdisk::device::DeviceStats {
        self.disk.stats()
    }

    /// Stack statistics.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    /// Resizes the page cache (memory-pressure jitter). Evicted dirty
    /// pages are written back synchronously.
    pub fn set_cache_capacity_pages(&mut self, pages: u64) {
        let dirty = self.cache.set_capacity_pages(pages);
        let lat = self.write_pages_to_media_at(&dirty, self.clock.now());
        self.clock.advance(lat);
    }

    /// Drops every cached page (`echo 3 > drop_caches`).
    pub fn drop_caches(&mut self) {
        self.cache.invalidate_all();
    }

    fn page_size(&self) -> Bytes {
        self.fs.block_size()
    }

    /// Executes metadata traffic through cache and media at instant
    /// `issue`, returning the media time consumed.
    ///
    /// Metadata reads go through the page cache (metadata is cached like
    /// data); metadata writes dirty cache pages; journal writes are
    /// synchronous sequential media writes, as in ordered-mode JBD.
    fn run_meta_at(&mut self, meta: &MetaIo, issue: Nanos) -> SimResult<Nanos> {
        let mut lat = Nanos::ZERO;
        for &block in &meta.reads {
            let out = self.cache.read(META_FILE, block, 1, u64::MAX, issue);
            for _ in &out.miss_pages {
                lat += self.media_at(IoRequest::read(block, 1), issue + lat)?;
            }
            lat += self.write_pages_to_media_at(&out.writeback_pages, issue);
        }
        for &block in &meta.writes {
            let out = self.cache.write(META_FILE, block, 1, issue);
            lat += self.write_pages_to_media_at(&out.writeback_pages, issue);
        }
        for &block in &meta.journal_writes {
            lat += self.media_at(IoRequest::write(block, 1), issue + lat)?;
        }
        if !meta.journal_writes.is_empty() {
            self.stats.journal_commits += 1;
        }
        Ok(lat)
    }

    /// Writes evicted/flushed pages to media starting at instant `base`,
    /// mapping data pages through the file system. Pages of deleted
    /// files are silently dropped.
    fn write_pages_to_media_at(&mut self, pages: &[PageKey], base: Nanos) -> Nanos {
        let mut lat = Nanos::ZERO;
        for key in pages {
            let block = if key.file == META_FILE {
                Some(key.page)
            } else {
                self.fs.map(key.file, key.page, 1).ok().map(|e| e.physical)
            };
            if let Some(b) = block {
                lat += self.media_absorb_at(IoRequest::write(b, 1), base + lat);
            }
        }
        lat
    }

    /// [`StorageStack::write_pages_to_media_at`] with error
    /// propagation, for the synchronous durability paths (fsync):
    /// there the caller asked for the write, so an injected error is
    /// its to handle.
    fn write_pages_to_media_checked_at(
        &mut self,
        pages: &[PageKey],
        base: Nanos,
    ) -> SimResult<Nanos> {
        let mut lat = Nanos::ZERO;
        for key in pages {
            let block = if key.file == META_FILE {
                Some(key.page)
            } else {
                self.fs.map(key.file, key.page, 1).ok().map(|e| e.physical)
            };
            if let Some(b) = block {
                lat += self.media_at(IoRequest::write(b, 1), base + lat)?;
            }
        }
        Ok(lat)
    }

    /// Reads a set of data pages from media starting at instant `base`,
    /// coalescing physically contiguous pages into single requests.
    fn read_pages_from_media_at(
        &mut self,
        ino: InodeNo,
        pages: &[PageNo],
        base: Nanos,
    ) -> SimResult<Nanos> {
        let mut lat = Nanos::ZERO;
        let mut i = 0;
        while i < pages.len() {
            let logical = pages[i];
            // How many of the following requested pages are logically
            // consecutive?
            let mut run = 1;
            while i + run < pages.len() && pages[i + run] == logical + run as u64 {
                run += 1;
            }
            // Map as much of the run as the extent allows.
            match self.fs.map(ino, logical, run as u64) {
                Ok(ext) => {
                    lat += self.media_at(IoRequest::read(ext.physical, ext.len), base + lat)?;
                    i += ext.len as usize;
                }
                Err(_) => {
                    // Unmapped page (sparse region): no media read.
                    i += 1;
                }
            }
        }
        Ok(lat)
    }

    /// Evicts pages a failed read syscall had optimistically inserted
    /// (demand fetch cluster plus the readahead window).
    fn drop_unfilled(&mut self, ino: InodeNo, fetch: &[PageNo], prefetch: &[PageNo]) {
        for &p in fetch.iter().chain(prefetch) {
            self.cache.invalidate_page(ino, p);
        }
    }

    /// Resolves a path to a stable [`PathId`], interning it on first
    /// sight (see the stack's `PathTable`). Pure bookkeeping: no
    /// metadata is charged and the namespace is untouched, so
    /// pre-resolving a working set at build time is free of simulation
    /// side effects.
    pub fn resolve_path(&mut self, path: &str) -> SimResult<PathId> {
        if let Some(&id) = self.paths.ids.get(path) {
            return Ok(id);
        }
        let spec = self.fs.intern_path(path)?;
        let id = PathId::from_index(self.paths.specs.len());
        self.paths.ids.insert(path.into(), id);
        self.paths.specs.push(spec);
        Ok(id)
    }

    /// The pre-interned spec behind a [`PathId`].
    pub fn path_spec(&self, id: PathId) -> &PathSpec {
        &self.paths.specs[id.index()]
    }

    /// Creates a regular file.
    pub fn create(&mut self, path: &str) -> SimResult<Nanos> {
        let id = self.resolve_path(path)?;
        self.create_id(id)
    }

    /// [`StorageStack::create`] for a pre-resolved path.
    pub fn create_id(&mut self, id: PathId) -> SimResult<Nanos> {
        let cost = self.create_id_at(id, self.clock.now())?;
        self.clock.advance(cost.total());
        Ok(cost.total())
    }

    /// [`StorageStack::create`] at instant `issue`, without advancing
    /// the stack clock (the discrete-event form; see [`OpCost`]).
    pub fn create_id_at(&mut self, id: PathId, issue: Nanos) -> SimResult<OpCost> {
        let (_, meta) = self.fs.create_spec(&self.paths.specs[id.index()])?;
        let device = self.run_meta_at(&meta, issue)?;
        self.stats.meta_ops += 1;
        Ok(OpCost {
            cpu: self.config.syscall_overhead,
            device,
        })
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> SimResult<Nanos> {
        let id = self.resolve_path(path)?;
        self.mkdir_id(id)
    }

    /// [`StorageStack::mkdir`] for a pre-resolved path.
    pub fn mkdir_id(&mut self, id: PathId) -> SimResult<Nanos> {
        let cost = self.mkdir_id_at(id, self.clock.now())?;
        self.clock.advance(cost.total());
        Ok(cost.total())
    }

    /// [`StorageStack::mkdir`] at instant `issue` (discrete-event form).
    pub fn mkdir_id_at(&mut self, id: PathId, issue: Nanos) -> SimResult<OpCost> {
        let (_, meta) = self.fs.mkdir_spec(&self.paths.specs[id.index()])?;
        let device = self.run_meta_at(&meta, issue)?;
        self.stats.meta_ops += 1;
        Ok(OpCost {
            cpu: self.config.syscall_overhead,
            device,
        })
    }

    /// Removes a file and drops its cached pages.
    pub fn unlink(&mut self, path: &str) -> SimResult<Nanos> {
        let id = self.resolve_path(path)?;
        self.unlink_id(id)
    }

    /// [`StorageStack::unlink`] for a pre-resolved path.
    pub fn unlink_id(&mut self, id: PathId) -> SimResult<Nanos> {
        let cost = self.unlink_id_at(id, self.clock.now())?;
        self.clock.advance(cost.total());
        Ok(cost.total())
    }

    /// [`StorageStack::unlink`] at instant `issue` (discrete-event form).
    pub fn unlink_id_at(&mut self, id: PathId, issue: Nanos) -> SimResult<OpCost> {
        let (ino, meta) = self.fs.unlink_spec(&self.paths.specs[id.index()])?;
        self.cache.invalidate_file(ino);
        let device = self.run_meta_at(&meta, issue)?;
        self.stats.meta_ops += 1;
        Ok(OpCost {
            cpu: self.config.syscall_overhead,
            device,
        })
    }

    /// Stats a path.
    pub fn stat(&mut self, path: &str) -> SimResult<Nanos> {
        let id = self.resolve_path(path)?;
        self.stat_id(id)
    }

    /// [`StorageStack::stat`] for a pre-resolved path.
    pub fn stat_id(&mut self, id: PathId) -> SimResult<Nanos> {
        let cost = self.stat_id_at(id, self.clock.now())?;
        self.clock.advance(cost.total());
        Ok(cost.total())
    }

    /// [`StorageStack::stat`] at instant `issue` (discrete-event form).
    pub fn stat_id_at(&mut self, id: PathId, issue: Nanos) -> SimResult<OpCost> {
        let (_, meta) = self.fs.lookup_spec(&self.paths.specs[id.index()])?;
        let device = self.run_meta_at(&meta, issue)?;
        self.stats.meta_ops += 1;
        Ok(OpCost {
            cpu: self.config.syscall_overhead,
            device,
        })
    }

    /// Counts a directory's entries, charging the full listing's
    /// metadata traffic (the hot, allocation-free readdir form).
    pub fn readdir(&mut self, path: &str) -> SimResult<(u64, Nanos)> {
        let id = self.resolve_path(path)?;
        let (entries, meta) = self.fs.readdir_spec(&self.paths.specs[id.index()])?;
        let lat = self.config.syscall_overhead + self.run_meta_at(&meta, self.clock.now())?;
        self.clock.advance(lat);
        self.stats.meta_ops += 1;
        Ok((entries, lat))
    }

    /// Lists a directory's sorted entry names (allocates; same charge
    /// as [`StorageStack::readdir`]).
    pub fn readdir_names(&mut self, path: &str) -> SimResult<(Vec<String>, Nanos)> {
        let (names, meta) = self.fs.readdir_names(path)?;
        let lat = self.config.syscall_overhead + self.run_meta_at(&meta, self.clock.now())?;
        self.clock.advance(lat);
        self.stats.meta_ops += 1;
        Ok((names, lat))
    }

    /// Opens a file, resolving and charging the path walk.
    pub fn open(&mut self, path: &str) -> SimResult<Fd> {
        let id = self.resolve_path(path)?;
        self.open_id(id)
    }

    /// [`StorageStack::open`] for a pre-resolved path.
    pub fn open_id(&mut self, id: PathId) -> SimResult<Fd> {
        let (fd, cost) = self.open_id_at(id, self.clock.now())?;
        self.clock.advance(cost.total());
        Ok(fd)
    }

    /// [`StorageStack::open`] at instant `issue` (discrete-event form).
    pub fn open_id_at(&mut self, id: PathId, issue: Nanos) -> SimResult<(Fd, OpCost)> {
        let (ino, meta) = self.fs.lookup_spec(&self.paths.specs[id.index()])?;
        let device = self.run_meta_at(&meta, issue)?;
        self.stats.meta_ops += 1;
        let fd = self.next_fd;
        self.next_fd += 1;
        self.open.insert(fd, ino);
        Ok((
            fd,
            OpCost {
                cpu: self.config.syscall_overhead,
                device,
            },
        ))
    }

    /// Closes a handle.
    pub fn close(&mut self, fd: Fd) -> SimResult<()> {
        self.open
            .remove(&fd)
            .map(|_| ())
            .ok_or_else(|| SimError::InvalidOperation(format!("bad fd {fd}")))
    }

    fn ino_of(&self, fd: Fd) -> SimResult<InodeNo> {
        self.open
            .get(&fd)
            .copied()
            .ok_or_else(|| SimError::InvalidOperation(format!("bad fd {fd}")))
    }

    /// Grows/truncates an open file (allocation + metadata, journaled on
    /// journaling systems).
    pub fn set_size_fd(&mut self, fd: Fd, size: Bytes) -> SimResult<Nanos> {
        let cost = self.set_size_fd_at(fd, size, self.clock.now())?;
        self.clock.advance(cost.total());
        Ok(cost.total())
    }

    /// [`StorageStack::set_size_fd`] at instant `issue` (discrete-event
    /// form).
    pub fn set_size_fd_at(&mut self, fd: Fd, size: Bytes, issue: Nanos) -> SimResult<OpCost> {
        let ino = self.ino_of(fd)?;
        let attr = self.fs.attr(ino)?;
        if size > attr.size {
            self.enospc_gate(size - attr.size)?;
        }
        let meta = self.fs.set_size(ino, size)?;
        let device = self.run_meta_at(&meta, issue)?;
        self.stats.meta_ops += 1;
        self.stats.allocations += 1;
        Ok(OpCost {
            cpu: self.config.syscall_overhead,
            device,
        })
    }

    /// Reads `len` bytes at `offset`, returning the operation latency.
    ///
    /// Reads past end of file are clamped (POSIX short read); a read at
    /// or past EOF costs only the syscall overhead.
    pub fn read(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
        let cost = self.read_at(fd, offset, len, self.clock.now())?;
        self.clock.advance(cost.total());
        Ok(cost.total())
    }

    /// [`StorageStack::read`] at instant `issue` (discrete-event form):
    /// the cache outcome is decided at `issue`, media requests are
    /// serviced from `issue` onward, and the clock is left untouched.
    pub fn read_at(
        &mut self,
        fd: Fd,
        offset: Bytes,
        len: Bytes,
        issue: Nanos,
    ) -> SimResult<OpCost> {
        let ino = self.ino_of(fd)?;
        let size = self.fs.size_of(ino)?;
        let mut cpu = self.config.syscall_overhead;
        let len = if offset >= size {
            Bytes::ZERO
        } else {
            len.min(size - offset)
        };
        if len.is_zero() {
            self.stats.reads += 1;
            return Ok(OpCost::cpu_only(cpu));
        }
        let page_size = self.page_size();
        let file_pages = size.div_ceil(page_size);
        let (first, last) = page_span(offset, len, page_size);
        let count = last - first;
        let mut out = self.cache.read(ino, first, count, file_pages, issue);

        // Cluster-expand demand misses to the FS fetch granularity.
        let cluster = self.fs.cluster_pages().max(1);
        let mut writebacks = std::mem::take(&mut out.writeback_pages);
        let mut fetch: Vec<PageNo> = Vec::with_capacity(out.miss_pages.len() * 2);
        for &p in &out.miss_pages {
            let cstart = p - p % cluster;
            let cend = (cstart + cluster).min(file_pages);
            for q in cstart..cend {
                if q == p {
                    fetch.push(q);
                } else if !self.cache.is_resident(ino, q) {
                    writebacks.extend(self.cache.insert_clean(ino, q));
                    fetch.push(q);
                }
            }
        }
        fetch.sort_unstable();
        fetch.dedup();
        // On a failed media read, every page this syscall inserted must
        // leave the cache again: the data never arrived, and a page left
        // resident would turn later reads (and any retry) into phantom
        // hits that mask the injected fault.
        let mut device = match self.read_pages_from_media_at(ino, &fetch, issue) {
            Ok(d) => d,
            Err(e) => {
                self.drop_unfilled(ino, &fetch, &out.prefetch_pages);
                return Err(e);
            }
        };

        // Sequential readahead I/O (window already inserted by the cache).
        device += match self.read_pages_from_media_at(ino, &out.prefetch_pages, issue) {
            Ok(d) => d,
            Err(e) => {
                self.drop_unfilled(ino, &fetch, &out.prefetch_pages);
                return Err(e);
            }
        };

        // Dirty evictions caused by the insertions.
        device += self.write_pages_to_media_at(&writebacks, issue);

        // Copy to the user buffer.
        cpu += self.copy_cost(count);
        self.stats.reads += 1;
        Ok(OpCost { cpu, device })
    }

    /// Writes `len` bytes at `offset`, extending the file if needed.
    pub fn write(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
        let cost = self.write_at(fd, offset, len, self.clock.now())?;
        self.clock.advance(cost.total());
        Ok(cost.total())
    }

    /// [`StorageStack::write`] at instant `issue` (discrete-event form).
    pub fn write_at(
        &mut self,
        fd: Fd,
        offset: Bytes,
        len: Bytes,
        issue: Nanos,
    ) -> SimResult<OpCost> {
        let ino = self.ino_of(fd)?;
        let size = self.fs.size_of(ino)?;
        let mut cpu = self.config.syscall_overhead;
        if len.is_zero() {
            self.stats.writes += 1;
            return Ok(OpCost::cpu_only(cpu));
        }
        let mut device = Nanos::ZERO;
        let end = offset + len;
        if end > size {
            self.enospc_gate(end - size)?;
            let meta = self.fs.set_size(ino, end)?;
            device += self.run_meta_at(&meta, issue)?;
            self.stats.allocations += 1;
        }
        let page_size = self.page_size();
        let (first, last) = page_span(offset, len, page_size);
        let count = last - first;
        let out = self.cache.write(ino, first, count, issue);
        device += self.write_pages_to_media_at(&out.writeback_pages, issue);
        cpu += self.copy_cost(count);
        self.stats.writes += 1;
        Ok(OpCost { cpu, device })
    }

    /// Flushes an open file's dirty pages and metadata to media.
    pub fn fsync(&mut self, fd: Fd) -> SimResult<Nanos> {
        let cost = self.fsync_at(fd, self.clock.now())?;
        self.clock.advance(cost.total());
        Ok(cost.total())
    }

    /// [`StorageStack::fsync`] at instant `issue` (discrete-event form).
    pub fn fsync_at(&mut self, fd: Fd, issue: Nanos) -> SimResult<OpCost> {
        let ino = self.ino_of(fd)?;
        let dirty = self.cache.fsync(ino);
        let device = self.write_pages_to_media_checked_at(&dirty, issue)?;
        self.stats.fsyncs += 1;
        Ok(OpCost {
            cpu: self.config.syscall_overhead,
            device,
        })
    }

    /// Background writeback tick: flushes until the writeback policy's
    /// goals are met (under the dirty ratio, no expired pages), as the
    /// kernel flusher thread does. Returns the media time spent, which
    /// is charged to the timeline — writeback interference is real.
    pub fn writeback_tick(&mut self) -> Nanos {
        let total = self.writeback_tick_at(self.clock.now());
        self.clock.advance(total);
        total
    }

    /// [`StorageStack::writeback_tick`] at instant `issue`: the flusher
    /// pass starts at `issue`, each flushed batch pushes the expiry
    /// horizon forward by its own media time, and the clock is left to
    /// the caller (discrete-event form).
    pub fn writeback_tick_at(&mut self, issue: Nanos) -> Nanos {
        let mut total = Nanos::ZERO;
        loop {
            let due = self.cache.take_writeback_due(issue + total);
            if due.is_empty() {
                break;
            }
            total += self.write_pages_to_media_at(&due, issue + total);
        }
        total
    }

    /// Simulates a crash at instant `issue` followed by recovery.
    ///
    /// The crash discards the entire page cache — dirty pages are the
    /// writes the power loss lost. Recovery then runs the file system's
    /// [`crash plan`](FileSystem::crash_plan): journaling systems scan
    /// their log region and replay it (fast, bounded by the log size);
    /// non-journaled systems pay a metadata-proportional fsck scan.
    /// Recovery I/O runs on the degraded device but never fails — a
    /// recovery that itself errored would be a different experiment.
    /// The report's `consistent` verdict is the post-recovery
    /// [`FileSystem::check_consistency`] walk.
    pub fn crash_recover_at(&mut self, issue: Nanos) -> SimResult<CrashReport> {
        let lost_dirty_pages = self.cache.dirty_pages();
        self.cache.invalidate_all();
        let plan = self.fs.crash_plan();
        let mut lat = Nanos::ZERO;
        // Scan the plan's region in large sequential requests.
        let mut block = plan.scan_start;
        let mut remaining = plan.scan_blocks;
        while remaining > 0 {
            let n = remaining.min(256);
            lat += self.media_absorb_at(IoRequest::read(block, n), issue + lat);
            block += n;
            remaining -= n;
        }
        // Replay rewrites into the same region it scanned.
        let mut block = plan.scan_start;
        let mut remaining = plan.replay_writes;
        while remaining > 0 {
            let n = remaining.min(256);
            lat += self.media_absorb_at(IoRequest::write(block, n), issue + lat);
            block += n;
            remaining -= n;
        }
        let consistent = self.fs.check_consistency().is_ok();
        Ok(CrashReport {
            at: issue,
            mechanism: plan.mechanism,
            recovery: lat,
            lost_dirty_pages,
            consistent,
        })
    }
}

impl std::fmt::Debug for StorageStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageStack")
            .field("fs", &self.fs.name())
            .field("now", &self.clock.now())
            .field("resident_pages", &self.cache.resident_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext2::{Ext2Config, Ext2Fs};
    use crate::ext3::{Ext3Config, Ext3Fs};
    use crate::xfs::{XfsConfig, XfsFs};
    use rb_simdisk::hdd::{Hdd, HddConfig};

    fn stack_with(fs: Box<dyn FileSystem>) -> StorageStack {
        StorageStack::new(
            fs,
            CacheConfig::paper_testbed(),
            Box::new(Hdd::new(HddConfig::maxtor_7l250s0_like())),
            StackConfig::default(),
        )
    }

    fn ext2_stack() -> StorageStack {
        stack_with(Box::new(Ext2Fs::new(Ext2Config::for_blocks(262_144)))) // 1 GiB
    }

    #[test]
    fn hit_vs_miss_latency_gap() {
        let mut s = ext2_stack();
        s.create("/f").unwrap();
        let fd = s.open("/f").unwrap();
        s.set_size_fd(fd, Bytes::mib(10)).unwrap();
        let miss = s.read(fd, Bytes::mib(5), Bytes::kib(8)).unwrap();
        let hit = s.read(fd, Bytes::mib(5), Bytes::kib(8)).unwrap();
        assert!(miss.as_millis() >= 1, "miss {miss} should touch the disk");
        assert!(hit.as_micros() < 100, "hit {hit} should be memory-speed");
        // The paper's three-orders-of-magnitude gap.
        assert!(miss.as_nanos() / hit.as_nanos() > 100);
    }

    #[test]
    fn eof_semantics() {
        let mut s = ext2_stack();
        s.create("/f").unwrap();
        let fd = s.open("/f").unwrap();
        s.set_size_fd(fd, Bytes::kib(8)).unwrap();
        // Read at EOF: cheap, no disk.
        let lat = s.read(fd, Bytes::kib(8), Bytes::kib(8)).unwrap();
        assert!(lat.as_micros() < 10);
        // Read straddling EOF: clamped to one page.
        let reads0 = s.disk_stats().reads;
        s.read(fd, Bytes::kib(4), Bytes::kib(8)).unwrap();
        assert!(s.disk_stats().reads > reads0);
    }

    #[test]
    fn writes_are_cached_then_fsync_hits_disk() {
        let mut s = ext2_stack();
        s.create("/f").unwrap();
        let fd = s.open("/f").unwrap();
        s.set_size_fd(fd, Bytes::mib(1)).unwrap();
        let writes0 = s.disk_stats().writes;
        let wlat = s.write(fd, Bytes::ZERO, Bytes::kib(64)).unwrap();
        assert!(wlat.as_micros() < 500, "buffered write {wlat} too slow");
        assert_eq!(s.disk_stats().writes, writes0, "write went to media early");
        let flat = s.fsync(fd).unwrap();
        assert!(s.disk_stats().writes > writes0, "fsync reached media");
        assert!(flat > wlat);
    }

    #[test]
    fn unlink_drops_cache() {
        let mut s = ext2_stack();
        s.create("/f").unwrap();
        let fd = s.open("/f").unwrap();
        s.set_size_fd(fd, Bytes::mib(1)).unwrap();
        s.read(fd, Bytes::ZERO, Bytes::kib(64)).unwrap();
        assert!(s.cache().resident_pages() > 0);
        s.close(fd).unwrap();
        s.unlink("/f").unwrap();
        // Only metadata pages may remain.
        assert!(s.cache().resident_pages() <= 8);
    }

    #[test]
    fn cluster_fetch_warms_neighbours() {
        let mut s = ext2_stack(); // ext2: cluster_pages = 2
        s.create("/f").unwrap();
        let fd = s.open("/f").unwrap();
        s.set_size_fd(fd, Bytes::mib(1)).unwrap();
        // Read page 5 only (4 KiB); cluster 2 pulls page 4 too.
        s.read(fd, Bytes::kib(20), Bytes::kib(4)).unwrap();
        let ino = 3; // first created inode after root in a fresh tree
        assert!(s.cache().is_resident(ino, 5));
        assert!(
            s.cache().is_resident(ino, 4),
            "cluster neighbour not fetched"
        );
    }

    #[test]
    fn xfs_cluster_is_larger() {
        let mut s = stack_with(Box::new(XfsFs::new(XfsConfig::for_blocks(262_144))));
        s.create("/f").unwrap();
        let fd = s.open("/f").unwrap();
        s.set_size_fd(fd, Bytes::mib(1)).unwrap();
        let r0 = s.cache().stats();
        s.read(fd, Bytes::kib(68), Bytes::kib(4)).unwrap();
        let r1 = s.cache().stats();
        // One demand miss, but a 16-page cluster inserted.
        assert_eq!(r1.misses - r0.misses, 1);
        assert!(s.cache().resident_pages() >= 16);
    }

    #[test]
    fn journaled_create_writes_sequential_journal() {
        let mut s = stack_with(Box::new(Ext3Fs::new(Ext3Config::for_blocks(262_144))));
        let w0 = s.disk_stats().writes;
        s.create("/f").unwrap();
        // Journal writes are synchronous media writes.
        assert!(s.disk_stats().writes > w0);
    }

    #[test]
    fn sequential_read_faster_than_random_per_byte() {
        let mut s = ext2_stack();
        s.create("/seq").unwrap();
        let fd = s.open("/seq").unwrap();
        s.set_size_fd(fd, Bytes::mib(64)).unwrap();
        // Sequential pass.
        let t0 = s.now();
        let io = Bytes::kib(64);
        let mut off = Bytes::ZERO;
        while off < Bytes::mib(16) {
            s.read(fd, off, io).unwrap();
            off += io;
        }
        let seq_time = s.now() - t0;
        // Random pass over a fresh, uncached region of equal volume.
        s.drop_caches();
        use rb_simcore::rng::Rng;
        let mut rng = Rng::new(3);
        let t1 = s.now();
        for _ in 0..256 {
            let page = 4096 + rng.below(4096); // within 16..32 MiB region
            s.read(fd, Bytes::kib(4) * page, io).unwrap();
        }
        let rnd_time = s.now() - t1;
        assert!(
            seq_time.as_nanos() * 3 < rnd_time.as_nanos(),
            "sequential {seq_time} not ≫ faster than random {rnd_time}"
        );
    }

    #[test]
    fn stats_count_ops() {
        let mut s = ext2_stack();
        s.create("/f").unwrap();
        let fd = s.open("/f").unwrap();
        s.set_size_fd(fd, Bytes::kib(64)).unwrap();
        s.read(fd, Bytes::ZERO, Bytes::kib(8)).unwrap();
        s.write(fd, Bytes::ZERO, Bytes::kib(8)).unwrap();
        s.fsync(fd).unwrap();
        s.stat("/f").unwrap();
        let st = s.stats();
        assert_eq!(st.reads, 1);
        assert_eq!(st.writes, 1);
        assert_eq!(st.fsyncs, 1);
        assert!(st.meta_ops >= 4);
    }

    #[test]
    fn bad_fd_is_reported() {
        let mut s = ext2_stack();
        assert!(s.read(99, Bytes::ZERO, Bytes::kib(4)).is_err());
        assert!(s.close(99).is_err());
    }

    #[test]
    fn virtual_time_advances_with_work() {
        let mut s = ext2_stack();
        let t0 = s.now();
        s.create("/f").unwrap();
        assert!(s.now() > t0);
    }
}
