//! Path interning: split and hash each path once, then resolve by
//! integer symbols forever after.
//!
//! Path resolution used to be the most allocation-heavy step of every
//! metadata operation: each call split the path into a fresh
//! `Vec<&str>` and probed per-directory `HashMap<String, InodeNo>`
//! tables, SipHashing the component string at every level of the walk.
//! This module replaces that with two small types:
//!
//! * [`Symbol`] — an interned path *component* (`"f000001"`). Directory
//!   tables are keyed by `Symbol`, so a probe hashes four bytes instead
//!   of a string.
//! * [`PathSpec`] — a whole path pre-validated and pre-split into its
//!   component symbols. Building one costs what a single old-style
//!   resolution cost; every later use walks the tree with integer
//!   probes and zero allocation.
//!
//! [`PathId`] is a handle to a `PathSpec` cached by the storage stack
//! (see [`StorageStack::resolve_path`](crate::stack::StorageStack::resolve_path)),
//! which is how the workload engine and the replay driver pre-resolve
//! their working sets at build/load time.
//!
//! Interning is pure bookkeeping: symbols never reach any simulated
//! output, so hashes, timings and reports are byte-identical to the
//! string-resolution implementation it replaced.

use rb_simcore::fnv::FnvHashMap;

/// An interned path component (directory-entry name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The symbol's dense index (0-based intern order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A component-string interner: `&str` → [`Symbol`] with O(1)
/// resolution back to the name.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<Box<str>>,
    index: FnvHashMap<Box<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `name`, returning its stable symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.into());
        self.index.insert(name.into(), sym);
        sym
    }

    /// The symbol for `name`, if it was ever interned.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// The name behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner (an index beyond
    /// this interner's table).
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }
}

/// A handle to a [`PathSpec`] cached by the storage stack. Stable for
/// the stack's lifetime; unaffected by creates and unlinks (it names a
/// *path*, not an inode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(u32);

impl PathId {
    /// Builds an id from a dense table index.
    pub fn from_index(index: usize) -> PathId {
        PathId(index as u32)
    }

    /// The id's dense table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A path pre-validated and pre-split into interned components.
///
/// Construction (via
/// [`FileSystem::intern_path`](crate::vfs::FileSystem::intern_path))
/// is the only step that touches the string; resolution afterwards is
/// a walk of symbol-keyed directory tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSpec {
    path: Box<str>,
    comps: Vec<Symbol>,
}

impl PathSpec {
    /// Builds a spec from already-validated parts. Callers outside the
    /// crate go through `FileSystem::intern_path`, which validates.
    pub(crate) fn new(path: &str, comps: Vec<Symbol>) -> PathSpec {
        PathSpec {
            path: path.into(),
            comps,
        }
    }

    /// The full path string.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The interned components, root-first.
    pub fn components(&self) -> &[Symbol] {
        &self.comps
    }

    /// Final component and the directory components leading to it;
    /// `None` for the root path.
    pub fn split_last(&self) -> Option<(Symbol, &[Symbol])> {
        self.comps.split_last().map(|(&leaf, dirs)| (leaf, dirs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolvable() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.lookup("beta"), Some(b));
        assert_eq!(i.lookup("gamma"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn spec_exposes_parts() {
        let mut i = Interner::new();
        let d = i.intern("d");
        let f = i.intern("f");
        let spec = PathSpec::new("/d/f", vec![d, f]);
        assert_eq!(spec.path(), "/d/f");
        assert_eq!(spec.components(), &[d, f]);
        let (leaf, dirs) = spec.split_last().unwrap();
        assert_eq!(leaf, f);
        assert_eq!(dirs, &[d]);
        let root = PathSpec::new("/", vec![]);
        assert!(root.split_last().is_none());
    }

    #[test]
    fn path_id_round_trips_index() {
        let id = PathId::from_index(7);
        assert_eq!(id.index(), 7);
    }
}
