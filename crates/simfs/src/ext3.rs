//! Ext3-like file system: ext2 layout plus an ordered-mode journal.
//!
//! Every metadata mutation additionally writes a transaction to a
//! contiguous journal region (descriptor block + journaled metadata
//! copies + commit block), before the in-place metadata writes are
//! allowed out — the JBD write pattern. Reads are untouched, so in
//! read-only experiments ext3 differs from ext2 only through its larger
//! default miss-fetch clustering; under metadata-heavy workloads the
//! journal roughly doubles metadata write traffic but makes it
//! sequential.

use crate::ext2::{Ext2Config, Ext2Fs};
use crate::intern::PathSpec;
use crate::vfs::{Extent, FileAttr, FileSystem, InodeNo, MetaIo};
use rb_simcore::error::SimResult;
use rb_simcore::units::{BlockNo, Bytes};

/// Ext3 model configuration.
#[derive(Debug, Clone)]
pub struct Ext3Config {
    /// The underlying ext2 layout parameters.
    pub ext2: Ext2Config,
    /// Journal size in blocks (default 8192 = 32 MiB).
    pub journal_blocks: u64,
}

impl Ext3Config {
    /// Defaults for the given device size.
    pub fn for_blocks(total_blocks: u64) -> Self {
        let mut ext2 = Ext2Config::for_blocks(total_blocks);
        ext2.cluster_pages = 4;
        Ext3Config {
            ext2,
            journal_blocks: 8192.min(total_blocks / 8).max(64),
        }
    }
}

/// The ext3-like file system.
///
/// # Examples
///
/// ```
/// use rb_simfs::ext3::{Ext3Config, Ext3Fs};
/// use rb_simfs::vfs::FileSystem;
///
/// let mut fs = Ext3Fs::new(Ext3Config::for_blocks(65536));
/// let (_, meta) = fs.create("/f").unwrap();
/// // Creation is journaled: descriptor + copies + commit.
/// assert!(meta.journal_writes.len() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Ext3Fs {
    inner: Ext2Fs,
    journal_start: BlockNo,
    journal_blocks: u64,
    journal_head: u64,
}

impl Ext3Fs {
    /// Formats a new file system with the journal in the middle of the
    /// device (where mkfs.ext3 tends to land it on a fresh disk).
    pub fn new(config: Ext3Config) -> Self {
        let mut inner = Ext2Fs::new(config.ext2.clone());
        let total = config.ext2.total_blocks;
        let jlen = config.journal_blocks.min(total / 2);
        // Reserve a contiguous journal region starting at mid-device,
        // skipping group metadata blocks.
        let mut start = total / 2;
        let mut reserved = 0;
        let mut first = None;
        while reserved < jlen && start < total {
            if !inner.allocator().is_allocated(start) {
                // Direct reservation through a scoped helper.
                inner
                    .reserve_journal_block(start)
                    .expect("journal reservation");
                if first.is_none() {
                    first = Some(start);
                }
                reserved += 1;
            }
            start += 1;
        }
        Ext3Fs {
            inner,
            journal_start: first.unwrap_or(total / 2),
            journal_blocks: reserved.max(1),
            journal_head: 0,
        }
    }

    /// First block of the journal region.
    pub fn journal_start(&self) -> BlockNo {
        self.journal_start
    }

    /// Journal region length in blocks.
    pub fn journal_len(&self) -> u64 {
        self.journal_blocks
    }

    /// Wraps a mutation's metadata writes in a journal transaction.
    fn journal(&mut self, mut meta: MetaIo) -> MetaIo {
        if meta.writes.is_empty() {
            return meta;
        }
        // Descriptor + one copy per metadata block + commit record.
        let count = meta.writes.len() as u64 + 2;
        for i in 0..count {
            let pos = (self.journal_head + i) % self.journal_blocks;
            meta.journal_writes.push(self.journal_start + pos);
        }
        self.journal_head = (self.journal_head + count) % self.journal_blocks;
        meta
    }
}

impl FileSystem for Ext3Fs {
    fn name(&self) -> &'static str {
        "ext3"
    }

    fn block_size(&self) -> Bytes {
        self.inner.block_size()
    }

    fn cluster_pages(&self) -> u64 {
        self.inner.cluster_pages()
    }

    fn intern_path(&mut self, path: &str) -> SimResult<PathSpec> {
        self.inner.intern_path(path)
    }

    fn lookup_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        self.inner.lookup_spec(spec)
    }

    fn create_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (ino, meta) = self.inner.create_spec(spec)?;
        Ok((ino, self.journal(meta)))
    }

    fn mkdir_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (ino, meta) = self.inner.mkdir_spec(spec)?;
        Ok((ino, self.journal(meta)))
    }

    fn unlink_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (ino, meta) = self.inner.unlink_spec(spec)?;
        Ok((ino, self.journal(meta)))
    }

    fn rmdir_spec(&mut self, spec: &PathSpec) -> SimResult<(InodeNo, MetaIo)> {
        let (ino, meta) = self.inner.rmdir_spec(spec)?;
        Ok((ino, self.journal(meta)))
    }

    fn readdir_spec(&mut self, spec: &PathSpec) -> SimResult<(u64, MetaIo)> {
        self.inner.readdir_spec(spec)
    }

    fn readdir_names(&mut self, path: &str) -> SimResult<(Vec<String>, MetaIo)> {
        self.inner.readdir_names(path)
    }

    fn attr(&self, ino: InodeNo) -> SimResult<FileAttr> {
        self.inner.attr(ino)
    }

    fn size_of(&self, ino: InodeNo) -> SimResult<Bytes> {
        self.inner.size_of(ino)
    }

    fn set_size(&mut self, ino: InodeNo, size: Bytes) -> SimResult<MetaIo> {
        let meta = self.inner.set_size(ino, size)?;
        Ok(self.journal(meta))
    }

    fn map(&self, ino: InodeNo, logical: u64, max: u64) -> SimResult<Extent> {
        self.inner.map(ino, logical, max)
    }

    fn avg_file_extents(&self) -> f64 {
        self.inner.avg_file_extents()
    }

    fn capacity(&self) -> Bytes {
        self.inner.capacity()
    }

    fn used(&self) -> Bytes {
        self.inner.used()
    }

    fn crash_plan(&self) -> rb_faults::RecoveryPlan {
        // JBD recovery: scan the journal region, then rewrite the
        // journaled metadata copies in place. Roughly one descriptor
        // and one commit block per transaction frame the copies, so
        // about half the scanned blocks replay.
        rb_faults::RecoveryPlan {
            scan_start: self.journal_start,
            scan_blocks: self.journal_blocks,
            replay_writes: self.journal_blocks / 2,
            mechanism: "journal-replay",
        }
    }

    fn check_consistency(&self) -> Result<(), String> {
        // The ext2 walk, with the journal region accounted as reserved.
        self.inner.fsck(self.journal_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Ext3Fs {
        Ext3Fs::new(Ext3Config::for_blocks(65536))
    }

    #[test]
    fn journal_region_reserved_contiguously() {
        let f = fs();
        assert!(f.journal_len() >= 64);
        // Region sits near mid-device.
        assert!(f.journal_start() >= 65536 / 2);
        assert!(f.journal_start() < 65536 / 2 + 16384);
    }

    #[test]
    fn mutations_are_journaled() {
        let mut f = fs();
        let (ino, meta) = f.create("/f").unwrap();
        assert_eq!(meta.journal_writes.len(), meta.writes.len() + 2);
        let m2 = f.set_size(ino, Bytes::mib(1)).unwrap();
        assert!(!m2.journal_writes.is_empty());
        // Journal writes land inside the journal region.
        for b in &m2.journal_writes {
            assert!(
                (f.journal_start()..f.journal_start() + f.journal_len()).contains(b),
                "journal write {b} outside region"
            );
        }
    }

    #[test]
    fn reads_are_not_journaled() {
        let mut f = fs();
        f.create("/f").unwrap();
        let (_, meta) = f.lookup("/f").unwrap();
        assert!(meta.journal_writes.is_empty());
        let (_, meta) = f.readdir("/").unwrap();
        assert!(meta.journal_writes.is_empty());
    }

    #[test]
    fn journal_wraps_around() {
        let mut f = fs();
        let per_txn = 6; // create: ~4 writes + 2
        let txns = f.journal_len() / per_txn + 10;
        for i in 0..txns {
            f.create(&format!("/f{i}")).unwrap();
        }
        // Head stayed within the region (no panic, wrapped).
        let (_, meta) = f.create("/last").unwrap();
        for b in &meta.journal_writes {
            assert!((f.journal_start()..f.journal_start() + f.journal_len()).contains(b));
        }
    }

    #[test]
    fn consistency_accounts_for_journal() {
        let mut f = fs();
        for i in 0..16 {
            let (ino, _) = f.create(&format!("/f{i}")).unwrap();
            f.set_size(ino, Bytes::mib(1)).unwrap();
        }
        f.unlink("/f0").unwrap();
        f.check_consistency().expect("consistent after churn");
        let plan = f.crash_plan();
        assert_eq!(plan.mechanism, "journal-replay");
        assert_eq!(plan.scan_start, f.journal_start());
        assert_eq!(plan.scan_blocks, f.journal_len());
    }

    #[test]
    fn data_layout_matches_ext2_policy() {
        let mut f = fs();
        let (ino, _) = f.create("/big").unwrap();
        f.set_size(ino, Bytes::mib(4)).unwrap();
        let e = f.map(ino, 0, 1024).unwrap();
        assert!(e.len >= 256, "ext3 data extents fragmented: {}", e.len);
        assert_eq!(f.name(), "ext3");
        assert_eq!(f.cluster_pages(), 4);
    }
}
