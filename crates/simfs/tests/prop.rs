//! Property tests for the file-system models.

use proptest::prelude::*;
use rb_simcore::units::Bytes;
use rb_simfs::ext2::{Ext2Config, Ext2Fs};
use rb_simfs::ext3::{Ext3Config, Ext3Fs};
use rb_simfs::vfs::FileSystem;
use rb_simfs::xfs::{XfsConfig, XfsFs};

/// Arbitrary namespace operation.
#[derive(Debug, Clone)]
enum NsOp {
    Create(u8),
    Unlink(u8),
    Grow(u8, u16),
    Shrink(u8, u16),
    Stat(u8),
}

fn ns_op() -> impl Strategy<Value = NsOp> {
    prop_oneof![
        (0u8..20).prop_map(NsOp::Create),
        (0u8..20).prop_map(NsOp::Unlink),
        (0u8..20, 1u16..512).prop_map(|(f, b)| NsOp::Grow(f, b)),
        (0u8..20, 0u16..512).prop_map(|(f, b)| NsOp::Shrink(f, b)),
        (0u8..20).prop_map(NsOp::Stat),
    ]
}

/// Runs an op sequence against a file system and a naive model, checking
/// namespace agreement and space conservation throughout.
fn check_against_model(fs: &mut dyn FileSystem, ops: &[NsOp]) {
    use std::collections::HashMap;
    let mut model: HashMap<u8, u64> = HashMap::new(); // file -> blocks
    for op in ops {
        match *op {
            NsOp::Create(f) => {
                let path = format!("/p{f}");
                let created = fs.create(&path);
                match model.entry(f) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        assert!(created.is_err(), "double create succeeded for {path}");
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        if created.is_ok() {
                            v.insert(0);
                        }
                    }
                }
            }
            NsOp::Unlink(f) => {
                let path = format!("/p{f}");
                let removed = fs.unlink(&path);
                if model.remove(&f).is_some() {
                    assert!(removed.is_ok(), "unlink of live {path} failed");
                } else {
                    assert!(removed.is_err(), "unlink of dead {path} succeeded");
                }
            }
            NsOp::Grow(f, blocks) => {
                if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(f) {
                    let path = format!("/p{f}");
                    let (ino, _) = fs.lookup(&path).unwrap();
                    let size = Bytes::kib(4) * blocks as u64;
                    if fs.set_size(ino, size).is_ok() {
                        e.insert(blocks as u64);
                    }
                }
            }
            NsOp::Shrink(f, blocks) => {
                if let Some(&cur) = model.get(&f) {
                    let target = (blocks as u64).min(cur);
                    let path = format!("/p{f}");
                    let (ino, _) = fs.lookup(&path).unwrap();
                    fs.set_size(ino, Bytes::kib(4) * target).unwrap();
                    model.insert(f, target);
                }
            }
            NsOp::Stat(f) => {
                let path = format!("/p{f}");
                let found = fs.lookup(&path).is_ok();
                assert_eq!(found, model.contains_key(&f), "lookup diverged for {path}");
            }
        }
        // Attr agreement for every live file.
        for (&f, &blocks) in &model {
            let path = format!("/p{f}");
            let (ino, _) = fs.lookup(&path).unwrap();
            let attr = fs.attr(ino).unwrap();
            assert_eq!(attr.blocks, blocks, "block count diverged for {path}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ext2_matches_model(ops in proptest::collection::vec(ns_op(), 1..60)) {
        let mut fs = Ext2Fs::new(Ext2Config::for_blocks(32_768));
        check_against_model(&mut fs, &ops);
    }

    #[test]
    fn ext3_matches_model(ops in proptest::collection::vec(ns_op(), 1..60)) {
        let mut fs = Ext3Fs::new(Ext3Config::for_blocks(32_768));
        check_against_model(&mut fs, &ops);
    }

    #[test]
    fn xfs_matches_model(ops in proptest::collection::vec(ns_op(), 1..60)) {
        let mut fs = XfsFs::new(XfsConfig::for_blocks(32_768));
        check_against_model(&mut fs, &ops);
    }

    /// Every journaled transaction's writes stay inside the journal
    /// region, across arbitrary op sequences.
    #[test]
    fn ext3_journal_containment(ops in proptest::collection::vec(ns_op(), 1..40)) {
        let mut fs = Ext3Fs::new(Ext3Config::for_blocks(32_768));
        let (jstart, jlen) = (fs.journal_start(), fs.journal_len());
        let mut live = std::collections::HashSet::new();
        for op in ops {
            let meta = match op {
                NsOp::Create(f) => {
                    if live.insert(f) {
                        fs.create(&format!("/p{f}")).ok().map(|(_, m)| m)
                    } else {
                        None
                    }
                }
                NsOp::Unlink(f) => {
                    if live.remove(&f) {
                        fs.unlink(&format!("/p{f}")).ok()
                    } else {
                        None
                    }
                }
                NsOp::Grow(f, b) | NsOp::Shrink(f, b) => {
                    if live.contains(&f) {
                        let (ino, _) = fs.lookup(&format!("/p{f}")).unwrap();
                        fs.set_size(ino, Bytes::kib(4) * (b as u64 % 256)).ok()
                    } else {
                        None
                    }
                }
                NsOp::Stat(_) => None,
            };
            if let Some(meta) = meta {
                for b in &meta.journal_writes {
                    prop_assert!(
                        (jstart..jstart + jlen).contains(b),
                        "journal write {b} outside [{jstart}, {})",
                        jstart + jlen
                    );
                }
            }
        }
    }

    /// Mapping stays within the device and covers the exact block count,
    /// after arbitrary grow/shrink sequences.
    #[test]
    fn mapping_covers_exact_size(sizes in proptest::collection::vec(0u64..2000, 1..20)) {
        let mut fs = XfsFs::new(XfsConfig::for_blocks(32_768));
        let (ino, _) = fs.create("/f").unwrap();
        for blocks in sizes {
            if fs.set_size(ino, Bytes::kib(4) * blocks).is_err() {
                continue; // out of space is fine
            }
            let mut covered = 0;
            let mut logical = 0;
            while covered < blocks {
                let e = fs.map(ino, logical, u64::MAX).unwrap();
                prop_assert!(e.len >= 1);
                prop_assert!(e.physical + e.len <= 32_768);
                covered += e.len;
                logical += e.len;
            }
            prop_assert_eq!(covered, blocks);
            prop_assert!(fs.map(ino, blocks, 1).is_err() || blocks == 0);
        }
    }

    /// Interned (PathSpec) and string path resolution agree — same
    /// inode, same traversal, same error text — on random valid and
    /// invalid paths over a randomly grown namespace. This is the
    /// correctness property behind the zero-alloc resolution pipeline.
    #[test]
    fn interned_and_string_resolution_agree(
        dirs in proptest::collection::vec("[a-c]{1,2}", 0..6),
        files in proptest::collection::vec("[a-e]{1,2}", 0..6),
        probes in proptest::collection::vec("(/[a-e.]{1,2}){1,3}|[a-e]{1,2}|/", 1..24),
    ) {
        use rb_simfs::tree::{Tree, ROOT_INO};
        let mut tree = Tree::new();
        let mut dir_inos = vec![ROOT_INO];
        for d in &dirs {
            let parent = dir_inos[dir_inos.len() / 2];
            if let Ok(ino) = tree.insert_child(parent, d, true) {
                dir_inos.push(ino);
            }
        }
        for f in &files {
            let parent = dir_inos[dir_inos.len() - 1];
            let _ = tree.insert_child(parent, f, false);
        }
        for probe in &probes {
            let via_string = tree.resolve(probe);
            let via_spec = tree.make_spec(probe).and_then(|s| tree.resolve_spec(&s));
            match (via_string, via_spec) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "resolution diverged for {}", probe),
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(), "errors diverged for {}", probe
                ),
                (a, b) => prop_assert!(false, "{}: string {:?} vs spec {:?}", probe, a, b),
            }
            // Parent resolution agrees too.
            let via_string = tree.resolve_parent(probe).map(|(p, name, t)| (p, name.to_string(), t));
            let via_spec = tree
                .make_spec(probe)
                .and_then(|s| tree.resolve_parent_spec(&s).map(|(p, leaf, t)| (p, tree.name(leaf).to_string(), t)));
            match (via_string, via_spec) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "parent resolution diverged for {}", probe),
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.to_string(), b.to_string(), "parent errors diverged for {}", probe
                ),
                (a, b) => prop_assert!(false, "{}: string {:?} vs spec {:?}", probe, a, b),
            }
        }
    }
}
