//! The discrete-event process scheduler: concurrency as a substrate.
//!
//! The paper's fifth dimension — scaling under concurrent load — used
//! to be faked by a sidecar simulation (the old `scaling::run_point`,
//! deleted in this refactor): one file, uniform 8 KiB reads, its own
//! private cache and disk plumbing. This module promotes that buried
//! logic into the substrate every driver shares: N simulated processes
//! run closed loops over *any* workload against the *real* storage
//! stack, contending for
//!
//! * **cores** — each operation's think phase (the engine's per-op
//!   framework overhead, [`SchedConfig::think`]) claims the
//!   earliest-free core token and queues behind other processes when
//!   all cores are busy ([`CoreSet`]). The stack-level CPU residue
//!   ([`OpCost::cpu`]: syscall entry + memory copies, a few µs) is
//!   charged to the process's own timeline without a token — it is
//!   small against the framework overhead and letting it overlap keeps
//!   the event pump simple;
//! * **the device** — each operation's media phase serializes on the
//!   shared spindle behind both other processes' I/O and background
//!   writeback ([`DeviceQueue`]).
//!
//! Operations execute against the shared stack through the
//! time-parameterized [`Target`](crate::target::Target) interface
//! (`*_at`), which mutates cache/fs/device state at an explicit
//! instant and hands the decomposed [`OpCost`] back to the scheduler
//! instead of advancing a private clock.
//!
//! Determinism is load-bearing, exactly as in the campaign engine: the
//! interleaving is a pure function of (workload, config, seed). Events
//! pop from the shared [`EventQueue`] in time order with FIFO tie-break,
//! core claims resolve ties toward the lowest-index core, and each
//! process draws from its own forked RNG stream, so adding draws in one
//! process never perturbs another.

use rb_simcore::error::{SimError, SimResult};
use rb_simcore::events::EventQueue;
use rb_simcore::time::Nanos;
use rb_simfs::stack::OpCost;

// The contention tokens live next to the event queue in rb-simcore so
// every driver — including the replay crate, which rb-core depends on
// and therefore cannot import from it — shares one implementation.
pub use rb_simcore::events::{CoreSet, DeviceQueue};

/// Closed-loop scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Concurrent closed-loop processes.
    pub processes: u32,
    /// CPU cores available to them.
    pub cores: u32,
    /// Virtual instant the measured phase starts (the target clock's
    /// position when the scheduler takes over).
    pub start: Nanos,
    /// Measured duration: processes stop issuing once `start + duration`
    /// is reached, and in-flight operations drain.
    pub duration: Nanos,
    /// Per-operation framework overhead claimed on a core before the
    /// operation itself executes (the flowop engine's `op_overhead`).
    pub think: Nanos,
    /// Background-flusher cadence ([`Nanos::ZERO`] disables ticks).
    pub tick_every: Nanos,
}

/// One operation's life, reported to the caller at its completion
/// instant. Completions are delivered in completion-time order (FIFO
/// among ties), which is what lets the caller feed windowed series
/// directly.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The process that ran the operation.
    pub process: u32,
    /// When the process arrived (started waiting for a core).
    pub arrived: Nanos,
    /// When the operation completed (CPU + queueing + device).
    pub completed: Nanos,
    /// The operation's raw cost, excluding queueing delays.
    pub cost: OpCost,
}

/// What the scheduler pops from its event queue.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Process `p` wants to start its next operation.
    Arrive(u32),
    /// Process `p` got its CPU phase; execute the operation now.
    Issue { process: u32, arrived: Nanos },
    /// An operation completed (recorded in completion-time order).
    Done {
        process: u32,
        arrived: Nanos,
        cost: OpCost,
    },
    /// Background-flusher tick.
    Tick,
}

/// The outcome of a scheduled run.
#[derive(Debug, Clone, Copy)]
pub struct SchedOutcome {
    /// The virtual instant the last completion (or the deadline,
    /// whichever is later) landed at.
    pub finished: Nanos,
}

/// What the scheduler drives: the operation source, the background
/// flusher, and the completion/error observers, bundled as one object
/// so a driver can hold the target and all bookkeeping state behind a
/// single mutable borrow.
pub trait SchedDriver {
    /// Executes `process`'s next operation at instant `now` against the
    /// shared state and returns its decomposed cost. Errors are routed
    /// to [`SchedDriver::on_error`] and cost the process nothing beyond
    /// the think time it already spent (no spin).
    fn exec(&mut self, process: u32, now: Nanos) -> SimResult<OpCost>;

    /// Runs the background flusher as of instant `start`, returning the
    /// device time consumed. The scheduler charges it to the shared
    /// device queue, so writeback interference delays process I/O
    /// exactly as it does in the serial engine.
    fn tick(&mut self, start: Nanos) -> Nanos;

    /// Observes one successful operation. Completions arrive in
    /// completion-time order (FIFO among ties). Returning an error
    /// aborts the run.
    fn on_complete(&mut self, completion: &Completion) -> SimResult<()>;

    /// Observes one failed operation at its issue instant. Returning an
    /// error aborts the run (e.g. the engine's consecutive-failure
    /// limit).
    fn on_error(&mut self, process: u32, now: Nanos, error: SimError) -> SimResult<()>;
}

/// Drives `config.processes` closed-loop workers over a shared target.
///
/// The schedule is a pure function of the inputs: same driver state,
/// same config — byte-identical event order.
pub fn run_closed_loop<D: SchedDriver + ?Sized>(
    config: &SchedConfig,
    driver: &mut D,
) -> SimResult<SchedOutcome> {
    let end = config.start + config.duration;
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut cores = CoreSet::new(config.cores);
    let mut device = DeviceQueue::new();
    let mut live = config.processes.max(1);
    let mut finished = end;

    for p in 0..config.processes.max(1) {
        queue.schedule(config.start, Event::Arrive(p));
    }
    if !config.tick_every.is_zero() {
        queue.schedule(config.start + config.tick_every, Event::Tick);
    }

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Arrive(p) => {
                if now >= end {
                    // The process retires; in-flight work drains.
                    live -= 1;
                    continue;
                }
                let cpu_done = cores.claim(now, config.think);
                queue.schedule(
                    cpu_done,
                    Event::Issue {
                        process: p,
                        arrived: now,
                    },
                );
            }
            Event::Issue { process, arrived } => match driver.exec(process, now) {
                Ok(cost) => {
                    let after_cpu = now + cost.cpu;
                    let completed = if cost.device.is_zero() {
                        after_cpu
                    } else {
                        device.serve(after_cpu, cost.device)
                    };
                    queue.schedule(
                        completed,
                        Event::Done {
                            process,
                            arrived,
                            cost,
                        },
                    );
                }
                Err(e) => {
                    driver.on_error(process, now, e)?;
                    // Errors still paid the think time; rearrive now.
                    queue.schedule(now, Event::Arrive(process));
                }
            },
            Event::Done {
                process,
                arrived,
                cost,
            } => {
                finished = finished.max(now);
                driver.on_complete(&Completion {
                    process,
                    arrived,
                    completed: now,
                    cost,
                })?;
                queue.schedule(now, Event::Arrive(process));
            }
            Event::Tick => {
                if live == 0 {
                    // Every process has retired: stop rescheduling and
                    // let the queue drain.
                    continue;
                }
                let start = device.next_free().max(now);
                let spent = driver.tick(start);
                if !spent.is_zero() {
                    device.serve(start, spent);
                }
                queue.schedule(now + config.tick_every, Event::Tick);
            }
        }
    }
    Ok(SchedOutcome { finished })
}

#[cfg(test)]
mod tests {
    use super::*;

    // CoreSet/DeviceQueue have their own unit tests next to their
    // implementation in rb_simcore::events.

    /// A scripted test driver: `costs(i)` is the i-th executed op's
    /// outcome; issue order, completions and tick instants are logged.
    struct Script<F: FnMut(u64) -> SimResult<OpCost>> {
        costs: F,
        executed: u64,
        issued: Vec<u32>,
        completions: Vec<Nanos>,
        ticks: Vec<Nanos>,
        errors_seen: u64,
        abort_after_errors: Option<u64>,
    }

    impl<F: FnMut(u64) -> SimResult<OpCost>> Script<F> {
        fn new(costs: F) -> Self {
            Script {
                costs,
                executed: 0,
                issued: Vec::new(),
                completions: Vec::new(),
                ticks: Vec::new(),
                errors_seen: 0,
                abort_after_errors: None,
            }
        }
    }

    impl<F: FnMut(u64) -> SimResult<OpCost>> SchedDriver for Script<F> {
        fn exec(&mut self, process: u32, _now: Nanos) -> SimResult<OpCost> {
            self.issued.push(process);
            let i = self.executed;
            self.executed += 1;
            (self.costs)(i)
        }

        fn tick(&mut self, start: Nanos) -> Nanos {
            self.ticks.push(start);
            Nanos::ZERO
        }

        fn on_complete(&mut self, completion: &Completion) -> SimResult<()> {
            self.completions.push(completion.completed);
            Ok(())
        }

        fn on_error(&mut self, _process: u32, _now: Nanos, _error: SimError) -> SimResult<()> {
            self.errors_seen += 1;
            match self.abort_after_errors {
                Some(n) if self.errors_seen >= n => {
                    Err(SimError::InvalidOperation("too many failures".into()))
                }
                _ => Ok(()),
            }
        }
    }

    /// Equal-instant events drain FIFO: with several processes arriving
    /// at t=0, the issue order is exactly the process order, repeatably.
    #[test]
    fn equal_instant_events_drain_fifo() {
        let run = || {
            let config = SchedConfig {
                processes: 5,
                cores: 5,
                start: Nanos::ZERO,
                duration: Nanos::from_nanos(1),
                think: Nanos::ZERO,
                tick_every: Nanos::ZERO,
            };
            let mut driver = Script::new(|_| Ok(OpCost::cpu_only(Nanos::from_micros(1))));
            run_closed_loop(&config, &mut driver).unwrap();
            driver.issued
        };
        let order = run();
        assert_eq!(&order[..5], &[0, 1, 2, 3, 4]);
        assert_eq!(order, run());
    }

    #[test]
    fn completions_arrive_in_time_order() {
        let config = SchedConfig {
            processes: 3,
            cores: 1,
            start: Nanos::ZERO,
            duration: Nanos::from_micros(50),
            think: Nanos::from_micros(3),
            tick_every: Nanos::ZERO,
        };
        // Alternate fast CPU-only and slow device-bound ops so raw
        // completion instants would interleave without the Done events.
        let mut driver = Script::new(|i| {
            Ok(if i % 2 == 0 {
                OpCost {
                    cpu: Nanos::from_micros(1),
                    device: Nanos::from_micros(9),
                }
            } else {
                OpCost::cpu_only(Nanos::from_micros(1))
            })
        });
        run_closed_loop(&config, &mut driver).unwrap();
        assert!(driver.completions.len() > 3);
        assert!(
            driver.completions.windows(2).all(|w| w[0] <= w[1]),
            "completions out of order: {:?}",
            driver.completions
        );
    }

    #[test]
    fn ticks_follow_cadence_and_stop_at_retirement() {
        let config = SchedConfig {
            processes: 1,
            cores: 1,
            start: Nanos::ZERO,
            duration: Nanos::from_secs(16),
            think: Nanos::from_secs(1),
            tick_every: Nanos::from_secs(5),
        };
        let mut driver = Script::new(|_| Ok(OpCost::cpu_only(Nanos::from_millis(1))));
        run_closed_loop(&config, &mut driver).unwrap();
        // Ticks at 5, 10, 15 s — never falling behind the cadence.
        assert_eq!(driver.ticks.len(), 3, "{:?}", driver.ticks);
    }

    #[test]
    fn errors_abort_when_handler_says_so() {
        let config = SchedConfig {
            processes: 2,
            cores: 2,
            start: Nanos::ZERO,
            duration: Nanos::from_secs(1),
            think: Nanos::from_micros(10),
            tick_every: Nanos::ZERO,
        };
        let mut driver = Script::new(|_| Err(SimError::NotFound("gone".into())));
        driver.abort_after_errors = Some(5);
        let result = run_closed_loop(&config, &mut driver);
        assert!(result.is_err());
        assert_eq!(driver.errors_seen, 5);
    }
}
