//! The discrete-event process scheduler: concurrency as a substrate.
//!
//! The paper's fifth dimension — scaling under concurrent load — used
//! to be faked by a sidecar simulation (the old `scaling::run_point`,
//! deleted in this refactor): one file, uniform 8 KiB reads, its own
//! private cache and disk plumbing. This module promotes that buried
//! logic into the substrate every driver shares: N simulated processes
//! run closed loops over *any* workload against the *real* storage
//! stack, contending for
//!
//! * **cores** — each operation's think phase (the engine's per-op
//!   framework overhead, [`SchedConfig::think`]) claims the
//!   earliest-free core token and queues behind other processes when
//!   all cores are busy ([`CoreSet`]). The stack-level CPU residue
//!   ([`OpCost::cpu`]: syscall entry + memory copies, a few µs) is
//!   charged to the process's own timeline without a token — it is
//!   small against the framework overhead and letting it overlap keeps
//!   the event pump simple;
//! * **the device** — each operation's media phase serializes on the
//!   shared spindle behind both other processes' I/O and background
//!   writeback ([`DeviceQueue`]).
//!
//! Operations execute against the shared stack through the
//! time-parameterized [`Target`](crate::target::Target) interface
//! (`*_at`), which mutates cache/fs/device state at an explicit
//! instant and hands the decomposed [`OpCost`] back to the scheduler
//! instead of advancing a private clock.
//!
//! Determinism is load-bearing, exactly as in the campaign engine: the
//! interleaving is a pure function of (workload, config, seed). Events
//! pop from the shared [`EventQueue`] in time order with FIFO tie-break,
//! core claims resolve ties toward the lowest-index core, and each
//! process draws from its own forked RNG stream, so adding draws in one
//! process never perturbs another.

use rb_simcore::error::{SimError, SimResult};
use rb_simcore::events::EventQueue;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simfs::stack::OpCost;
use std::collections::VecDeque;

// The contention tokens live next to the event queue in rb-simcore so
// every driver — including the replay crate, which rb-core depends on
// and therefore cannot import from it — shares one implementation.
pub use rb_simcore::events::{CoreSet, DeviceQueue};

/// Closed-loop scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Concurrent closed-loop processes.
    pub processes: u32,
    /// CPU cores available to them.
    pub cores: u32,
    /// Virtual instant the measured phase starts (the target clock's
    /// position when the scheduler takes over).
    pub start: Nanos,
    /// Measured duration: processes stop issuing once `start + duration`
    /// is reached, and in-flight operations drain.
    pub duration: Nanos,
    /// Per-operation framework overhead claimed on a core before the
    /// operation itself executes (the flowop engine's `op_overhead`).
    pub think: Nanos,
    /// Background-flusher cadence ([`Nanos::ZERO`] disables ticks).
    pub tick_every: Nanos,
}

/// One operation's life, reported to the caller at its completion
/// instant. Completions are delivered in completion-time order (FIFO
/// among ties), which is what lets the caller feed windowed series
/// directly.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The process that ran the operation.
    pub process: u32,
    /// When the process arrived (started waiting for a core).
    pub arrived: Nanos,
    /// When the operation was issued against the stack (core wait and
    /// think time already paid; `issued - arrived - think` is the core
    /// queueing delay).
    pub issued: Nanos,
    /// The core that served the think phase (for per-core utilization
    /// and trace track ids).
    pub core: u32,
    /// When the operation completed (CPU + queueing + device).
    pub completed: Nanos,
    /// The operation's raw cost, excluding queueing delays.
    pub cost: OpCost,
}

/// What the scheduler pops from its event queue.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Process `p` wants to start its next operation.
    Arrive(u32),
    /// Process `p` got its CPU phase; execute the operation now.
    Issue {
        process: u32,
        arrived: Nanos,
        core: u32,
    },
    /// An operation completed (recorded in completion-time order).
    Done {
        process: u32,
        arrived: Nanos,
        issued: Nanos,
        core: u32,
        cost: OpCost,
    },
    /// Background-flusher tick.
    Tick,
}

/// The outcome of a scheduled run.
#[derive(Debug, Clone, Copy)]
pub struct SchedOutcome {
    /// The virtual instant the last completion (or the deadline,
    /// whichever is later) landed at.
    pub finished: Nanos,
}

/// What the scheduler drives: the operation source, the background
/// flusher, and the completion/error observers, bundled as one object
/// so a driver can hold the target and all bookkeeping state behind a
/// single mutable borrow.
pub trait SchedDriver {
    /// Executes `process`'s next operation at instant `now` against the
    /// shared state and returns its decomposed cost. Errors are routed
    /// to [`SchedDriver::on_error`] and cost the process nothing beyond
    /// the think time it already spent (no spin).
    fn exec(&mut self, process: u32, now: Nanos) -> SimResult<OpCost>;

    /// Runs the background flusher as of instant `start`, returning the
    /// device time consumed. The scheduler charges it to the shared
    /// device queue, so writeback interference delays process I/O
    /// exactly as it does in the serial engine.
    fn tick(&mut self, start: Nanos) -> Nanos;

    /// Observes one successful operation. Completions arrive in
    /// completion-time order (FIFO among ties). Returning an error
    /// aborts the run.
    fn on_complete(&mut self, completion: &Completion) -> SimResult<()>;

    /// Observes one failed operation at its issue instant. Returning an
    /// error aborts the run (e.g. the engine's consecutive-failure
    /// limit).
    fn on_error(&mut self, process: u32, now: Nanos, error: SimError) -> SimResult<()>;

    /// Publishes the shared device queue's next-free instant to the
    /// driver, immediately before each [`SchedDriver::exec`]. A target
    /// with a mechanical device model can then evaluate seek distance
    /// at *actual service start* rather than at issue — without this, a
    /// request issued while the device is busy would charge the seek
    /// from wherever the head was at issue time, not where the queued
    /// work leaves it. Drivers without a positional device ignore it.
    fn set_device_floor(&mut self, _floor: Nanos) {}
}

/// Reusable event-pump state: the event queues and per-run buffers
/// that used to be rebuilt (and re-grown from empty) on every run.
///
/// A campaign executes thousands of scheduled runs back to back; with
/// a scratch held across them, each run starts with pre-sized arenas
/// ([`EventQueue::clear`] keeps the allocation and resets the FIFO
/// counter, so reuse is observationally identical to a fresh queue).
#[derive(Debug, Default)]
pub struct SchedScratch {
    closed: EventQueue<Event>,
    open: EventQueue<OpenEvent>,
    pending: VecDeque<Nanos>,
    idle: Vec<bool>,
    samples: Vec<(Nanos, u32)>,
}

thread_local! {
    /// Per-thread scratch behind the plain `run_closed_loop` /
    /// `run_open_loop` entry points, so every caller gets queue reuse
    /// without threading a scratch through its signature.
    static SCRATCH: std::cell::RefCell<SchedScratch> =
        std::cell::RefCell::new(SchedScratch::default());
}

/// Drives `config.processes` closed-loop workers over a shared target.
///
/// The schedule is a pure function of the inputs: same driver state,
/// same config — byte-identical event order.
pub fn run_closed_loop<D: SchedDriver + ?Sized>(
    config: &SchedConfig,
    driver: &mut D,
) -> SimResult<SchedOutcome> {
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => run_closed_loop_in(&mut scratch, config, driver),
        // Re-entrant call (a driver running a nested loop): fall back
        // to a one-shot scratch rather than panicking on the borrow.
        Err(_) => run_closed_loop_in(&mut SchedScratch::default(), config, driver),
    })
}

/// [`run_closed_loop`] against caller-held scratch state.
pub fn run_closed_loop_in<D: SchedDriver + ?Sized>(
    scratch: &mut SchedScratch,
    config: &SchedConfig,
    driver: &mut D,
) -> SimResult<SchedOutcome> {
    let end = config.start + config.duration;
    let queue = &mut scratch.closed;
    queue.clear();
    queue.reserve(config.processes.max(1) as usize + 2);
    let mut cores = CoreSet::new(config.cores);
    let mut device = DeviceQueue::new();
    let mut live = config.processes.max(1);
    let mut finished = end;

    for p in 0..config.processes.max(1) {
        queue.schedule(config.start, Event::Arrive(p));
    }
    if !config.tick_every.is_zero() {
        queue.schedule(config.start + config.tick_every, Event::Tick);
    }

    while let Some((now, event)) = queue.pop() {
        match event {
            Event::Arrive(p) => {
                if now >= end {
                    // The process retires; in-flight work drains.
                    live -= 1;
                    continue;
                }
                let (core, cpu_done) = cores.claim_indexed(now, config.think);
                queue.schedule(
                    cpu_done,
                    Event::Issue {
                        process: p,
                        arrived: now,
                        core,
                    },
                );
            }
            Event::Issue {
                process,
                arrived,
                core,
            } => {
                driver.set_device_floor(device.next_free());
                match driver.exec(process, now) {
                    Ok(cost) => {
                        let after_cpu = now + cost.cpu;
                        let completed = if cost.device.is_zero() {
                            after_cpu
                        } else {
                            device.serve(after_cpu, cost.device)
                        };
                        queue.schedule(
                            completed,
                            Event::Done {
                                process,
                                arrived,
                                issued: now,
                                core,
                                cost,
                            },
                        );
                    }
                    Err(e) => {
                        driver.on_error(process, now, e)?;
                        // Errors still paid the think time; rearrive now.
                        queue.schedule(now, Event::Arrive(process));
                    }
                }
            }
            Event::Done {
                process,
                arrived,
                issued,
                core,
                cost,
            } => {
                finished = finished.max(now);
                driver.on_complete(&Completion {
                    process,
                    arrived,
                    issued,
                    core,
                    completed: now,
                    cost,
                })?;
                queue.schedule(now, Event::Arrive(process));
            }
            Event::Tick => {
                if live == 0 || now >= end {
                    // Every process has retired, or the deadline has
                    // passed and only in-flight work is draining: a
                    // flusher pass now would charge device time past
                    // the horizon and inflate the virtual end-time of
                    // short runs. Stop rescheduling and let the queue
                    // drain.
                    continue;
                }
                let start = device.next_free().max(now);
                let spent = driver.tick(start);
                if !spent.is_zero() {
                    device.serve(start, spent);
                }
                queue.schedule(now + config.tick_every, Event::Tick);
            }
        }
    }
    Ok(SchedOutcome { finished })
}

/// How requests arrive at the system.
///
/// [`Arrival::Closed`] is the classic benchmark loop: each worker
/// issues its next operation the instant the previous one completes,
/// so the offered load always equals the capacity and queueing delay
/// is structurally invisible. The open variants model *offered* load —
/// requests arrive on their own schedule whether or not the system
/// keeps up, which is what exposes the latency-vs-load hockey stick
/// real services live on.
///
/// Rates are whole operations per second (integer, so an arrival mode
/// can sit in hashable cell identities); all randomness comes from a
/// forked, seed-deterministic [`Rng`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arrival {
    /// Closed loop: issue-on-completion, no arrival process.
    Closed,
    /// Memoryless arrivals: exponential inter-arrival times with mean
    /// `1/rate`.
    Poisson {
        /// Mean offered load, operations per second.
        rate: u64,
    },
    /// ON-OFF bursts: alternating 100 ms phases; the ON phase offers
    /// Poisson arrivals at `2 * rate`, the OFF phase offers none, so
    /// the long-run average is `rate`.
    Bursty {
        /// Long-run average offered load, operations per second.
        rate: u64,
    },
    /// Diurnal ramp: instantaneous Poisson rate climbs linearly from
    /// `0.5 * rate` at the start of the run to `1.5 * rate` at the
    /// end (average `rate`) — a compressed day of traffic.
    Diurnal {
        /// Average offered load, operations per second.
        rate: u64,
    },
}

impl Arrival {
    /// Whether this is an open-loop mode (any variant but `Closed`).
    pub fn is_open(self) -> bool {
        !matches!(self, Arrival::Closed)
    }

    /// The configured average rate, when open.
    pub fn rate(self) -> Option<u64> {
        match self {
            Arrival::Closed => None,
            Arrival::Poisson { rate } | Arrival::Bursty { rate } | Arrival::Diurnal { rate } => {
                Some(rate)
            }
        }
    }

    /// The same arrival shape at a different average rate (`Closed`
    /// stays `Closed`) — how the SLO bisection probes a cell.
    pub fn with_rate(self, rate: u64) -> Arrival {
        match self {
            Arrival::Closed => Arrival::Closed,
            Arrival::Poisson { .. } => Arrival::Poisson { rate },
            Arrival::Bursty { .. } => Arrival::Bursty { rate },
            Arrival::Diurnal { .. } => Arrival::Diurnal { rate },
        }
    }

    /// Canonical label: `closed`, `poisson:RATE`, `bursty:RATE`,
    /// `diurnal:RATE`. Stable — it is part of campaign cell keys.
    /// Allocates; key-building hot paths write the identical bytes
    /// through the [`std::fmt::Display`] impl instead.
    pub fn label(self) -> String {
        self.to_string()
    }

    /// Parses a label produced by [`Arrival::label`] (also the CLI
    /// `--arrival` syntax). Rates must be positive integers.
    pub fn parse(s: &str) -> Result<Arrival, String> {
        if s == "closed" {
            return Ok(Arrival::Closed);
        }
        let (kind, rate) = s
            .split_once(':')
            .ok_or_else(|| format!("bad arrival {s:?}: expected closed or KIND:RATE"))?;
        let rate: u64 = rate
            .parse()
            .map_err(|_| format!("bad arrival rate {rate:?}: expected ops/sec as an integer"))?;
        if rate == 0 {
            return Err(format!("bad arrival {s:?}: rate must be positive"));
        }
        match kind {
            "poisson" => Ok(Arrival::Poisson { rate }),
            "bursty" => Ok(Arrival::Bursty { rate }),
            "diurnal" => Ok(Arrival::Diurnal { rate }),
            other => Err(format!(
                "unknown arrival process {other:?} (try poisson, bursty, diurnal or closed)"
            )),
        }
    }

    /// Parses one `--arrival` axis entry, which is either a single
    /// [`Arrival::parse`] label or a declarative **rate ladder**
    /// `KIND:LO..HIxFACTOR` — the geometric sequence `LO, LO*FACTOR, …`
    /// up to and including `HI` when the ladder lands on it exactly.
    /// `poisson:1000..16000x2` expands to the five rates
    /// `1000, 2000, 4000, 8000, 16000`, each an ordinary arrival whose
    /// label round-trips through [`Arrival::parse`] — the SLO
    /// hockey-stick grid without enumerating every rung by hand.
    pub fn parse_axis(s: &str) -> Result<Vec<Arrival>, String> {
        let Some((kind, range)) = s.split_once(':').filter(|(_, r)| r.contains("..")) else {
            return Arrival::parse(s).map(|a| vec![a]);
        };
        let (lo, rest) = range
            .split_once("..")
            .expect("checked: range contains `..`");
        let (hi, factor) = rest
            .split_once('x')
            .ok_or_else(|| format!("bad arrival ladder {s:?}: expected KIND:LO..HIxFACTOR"))?;
        let parse_rate = |r: &str| -> Result<u64, String> {
            r.parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("bad arrival ladder rate {r:?}: expected positive ops/sec"))
        };
        let lo = parse_rate(lo)?;
        let hi = parse_rate(hi)?;
        let factor = parse_rate(factor)?;
        if factor < 2 {
            return Err(format!(
                "bad arrival ladder {s:?}: factor must be at least 2"
            ));
        }
        if hi < lo {
            return Err(format!("bad arrival ladder {s:?}: {hi} is below {lo}"));
        }
        let mut rungs = Vec::new();
        let mut rate = lo;
        loop {
            rungs.push(Arrival::parse(&format!("{kind}:{rate}"))?);
            match rate.checked_mul(factor) {
                Some(next) if next <= hi => rate = next,
                _ => break,
            }
        }
        Ok(rungs)
    }
}

impl std::fmt::Display for Arrival {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arrival::Closed => f.write_str("closed"),
            Arrival::Poisson { rate } => write!(f, "poisson:{rate}"),
            Arrival::Bursty { rate } => write!(f, "bursty:{rate}"),
            Arrival::Diurnal { rate } => write!(f, "diurnal:{rate}"),
        }
    }
}

/// ON-phase length of the bursty arrival process.
const BURST_ON: Nanos = Nanos::from_millis(100);
/// Full ON+OFF period of the bursty arrival process.
const BURST_PERIOD: Nanos = Nanos::from_millis(200);

/// A deterministic arrival-instant generator: a pure function of
/// (arrival mode, RNG stream, run horizon).
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    arrival: Arrival,
    rng: Rng,
    start: Nanos,
    duration: Nanos,
}

impl ArrivalGen {
    /// Builds a generator for an open arrival mode over
    /// `[start, start + duration)`. `Closed` is rejected — there is no
    /// arrival process to generate.
    pub fn new(arrival: Arrival, rng: Rng, start: Nanos, duration: Nanos) -> SimResult<ArrivalGen> {
        if !arrival.is_open() {
            return Err(SimError::BadConfig(
                "closed-loop mode has no arrival process".into(),
            ));
        }
        Ok(ArrivalGen {
            arrival,
            rng,
            start,
            duration,
        })
    }

    /// One exponential inter-arrival draw at `rate` ops/sec, floored at
    /// a nanosecond so the generator always makes progress.
    fn exp_gap(&mut self, rate: u64) -> Nanos {
        let mean_ns = 1e9 / rate.max(1) as f64;
        Nanos::from_nanos((self.rng.exponential(mean_ns)).max(1.0) as u64)
    }

    /// The next arrival instant strictly after `t`. Callers stop the
    /// stream once this crosses the run horizon.
    pub fn next_after(&mut self, t: Nanos) -> Nanos {
        match self.arrival {
            Arrival::Closed => unreachable!("ArrivalGen::new rejects Closed"),
            Arrival::Poisson { rate } => t + self.exp_gap(rate),
            Arrival::Bursty { rate } => {
                let mut t = t.max(self.start);
                loop {
                    let phase = Nanos::from_nanos(
                        (t - self.start).as_nanos() % BURST_PERIOD.as_nanos().max(1),
                    );
                    if phase >= BURST_ON {
                        // In the OFF phase: jump to the next ON start.
                        t += BURST_PERIOD - phase;
                        continue;
                    }
                    t += self.exp_gap(rate.saturating_mul(2));
                    let phase = Nanos::from_nanos(
                        (t - self.start).as_nanos() % BURST_PERIOD.as_nanos().max(1),
                    );
                    if phase < BURST_ON {
                        return t;
                    }
                    // The draw crossed into an OFF phase; loop to skip
                    // forward and draw again.
                }
            }
            Arrival::Diurnal { rate } => {
                let elapsed = t.saturating_sub(self.start);
                let frac = if self.duration.is_zero() {
                    0.5
                } else {
                    (elapsed.as_secs_f64() / self.duration.as_secs_f64()).clamp(0.0, 1.0)
                };
                let instantaneous = ((rate as f64) * (0.5 + frac)).max(1.0);
                let mean_ns = 1e9 / instantaneous;
                t + Nanos::from_nanos((self.rng.exponential(mean_ns)).max(1.0) as u64)
            }
        }
    }
}

/// Open-loop scheduler configuration: the closed-loop substrate
/// ([`SchedConfig`], whose `processes` become the service workers) plus
/// the arrival process, the admission queue bound and the queue-depth
/// sampling cadence.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Worker/core/device substrate. `sched.processes` is the number of
    /// service workers; `sched.duration` is the arrival horizon
    /// (in-flight and queued work drains past it).
    pub sched: SchedConfig,
    /// The arrival process (must be open).
    pub arrival: Arrival,
    /// Bounded admission queue: arrivals beyond this many waiting
    /// requests are dropped (counted, never served).
    pub queue_cap: u32,
    /// Queue-depth sampling cadence ([`Nanos::ZERO`] disables the
    /// timeline).
    pub sample_every: Nanos,
}

/// What the open-loop pump pops from its event queue.
#[derive(Debug, Clone, Copy)]
enum OpenEvent {
    /// The next generated request arrives.
    Arrive,
    /// Worker `worker` got its CPU phase; execute the request that
    /// arrived at `arrived` now.
    Issue {
        worker: u32,
        arrived: Nanos,
        core: u32,
    },
    /// A request completed.
    Done {
        worker: u32,
        arrived: Nanos,
        issued: Nanos,
        core: u32,
        cost: OpCost,
    },
    /// Background-flusher tick.
    Tick,
    /// Queue-depth sample.
    Sample,
}

/// The outcome of an open-loop run: the end-to-end accounting that a
/// closed loop cannot produce. `offered` always equals
/// `completed + failed + dropped` — every generated request is either
/// served, failed at the target, or rejected at the full queue.
#[derive(Debug, Clone)]
pub struct OpenOutcome {
    /// The virtual instant the last completion (or the deadline,
    /// whichever is later) landed at.
    pub finished: Nanos,
    /// Requests generated by the arrival process within the horizon.
    pub offered: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests that reached the target but failed.
    pub failed: u64,
    /// Requests rejected because the admission queue was full.
    pub dropped: u64,
    /// Deepest the admission queue ever got.
    pub max_queue_depth: u32,
    /// `(instant - start, queue depth)` samples on the configured
    /// cadence, within the horizon.
    pub depth_timeline: Vec<(Nanos, u32)>,
}

/// Drives an open-loop run: the arrival process feeds a bounded queue
/// in front of `sched.processes` service workers, each serving one
/// request at a time through the same core/device contention model as
/// [`run_closed_loop`].
///
/// [`Completion::arrived`] is the request's *arrival* instant, so the
/// latency a driver records (`completed - arrived`) includes the queue
/// wait — the quantity closed loops structurally hide. The schedule is
/// a pure function of (driver state, config, `arrival_rng`).
pub fn run_open_loop<D: SchedDriver + ?Sized>(
    config: &OpenLoopConfig,
    arrival_rng: Rng,
    driver: &mut D,
) -> SimResult<OpenOutcome> {
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => run_open_loop_in(&mut scratch, config, arrival_rng, driver),
        Err(_) => run_open_loop_in(&mut SchedScratch::default(), config, arrival_rng, driver),
    })
}

/// [`run_open_loop`] against caller-held scratch state.
pub fn run_open_loop_in<D: SchedDriver + ?Sized>(
    scratch: &mut SchedScratch,
    config: &OpenLoopConfig,
    arrival_rng: Rng,
    driver: &mut D,
) -> SimResult<OpenOutcome> {
    let sched = &config.sched;
    let end = sched.start + sched.duration;
    let workers = sched.processes.max(1) as usize;
    let queue = &mut scratch.open;
    queue.clear();
    queue.reserve(workers + 3);
    let mut cores = CoreSet::new(sched.cores);
    let mut device = DeviceQueue::new();
    let pending = &mut scratch.pending;
    pending.clear();
    scratch.idle.clear();
    scratch.idle.resize(workers, true);
    let idle = &mut scratch.idle;
    scratch.samples.clear();
    let samples = &mut scratch.samples;
    let mut gen = ArrivalGen::new(config.arrival, arrival_rng, sched.start, sched.duration)?;
    let mut out = OpenOutcome {
        finished: end,
        offered: 0,
        completed: 0,
        failed: 0,
        dropped: 0,
        max_queue_depth: 0,
        depth_timeline: Vec::new(),
    };

    let first = gen.next_after(sched.start);
    if first < end {
        queue.schedule(first, OpenEvent::Arrive);
    }
    if !sched.tick_every.is_zero() {
        queue.schedule(sched.start + sched.tick_every, OpenEvent::Tick);
    }
    if !config.sample_every.is_zero() {
        queue.schedule(sched.start + config.sample_every, OpenEvent::Sample);
    }

    while let Some((now, event)) = queue.pop() {
        match event {
            OpenEvent::Arrive => {
                out.offered += 1;
                // Lowest-index idle worker first: deterministic, like
                // the core tie-break.
                if let Some(w) = idle.iter().position(|&free| free) {
                    idle[w] = false;
                    let (core, cpu_done) = cores.claim_indexed(now, sched.think);
                    queue.schedule(
                        cpu_done,
                        OpenEvent::Issue {
                            worker: w as u32,
                            arrived: now,
                            core,
                        },
                    );
                } else if (pending.len() as u32) < config.queue_cap {
                    pending.push_back(now);
                    out.max_queue_depth = out.max_queue_depth.max(pending.len() as u32);
                } else {
                    out.dropped += 1;
                }
                let next = gen.next_after(now);
                if next < end {
                    queue.schedule(next, OpenEvent::Arrive);
                }
            }
            OpenEvent::Issue {
                worker,
                arrived,
                core,
            } => {
                driver.set_device_floor(device.next_free());
                match driver.exec(worker, now) {
                    Ok(cost) => {
                        let after_cpu = now + cost.cpu;
                        let completed = if cost.device.is_zero() {
                            after_cpu
                        } else {
                            device.serve(after_cpu, cost.device)
                        };
                        queue.schedule(
                            completed,
                            OpenEvent::Done {
                                worker,
                                arrived,
                                issued: now,
                                core,
                                cost,
                            },
                        );
                    }
                    Err(e) => {
                        driver.on_error(worker, now, e)?;
                        out.failed += 1;
                        // The request is consumed (open loops don't retry);
                        // the worker immediately picks up the next one.
                        match pending.pop_front() {
                            Some(arrived) => {
                                let (core, cpu_done) = cores.claim_indexed(now, sched.think);
                                queue.schedule(
                                    cpu_done,
                                    OpenEvent::Issue {
                                        worker,
                                        arrived,
                                        core,
                                    },
                                );
                            }
                            None => idle[worker as usize] = true,
                        }
                    }
                }
            }
            OpenEvent::Done {
                worker,
                arrived,
                issued,
                core,
                cost,
            } => {
                out.finished = out.finished.max(now);
                out.completed += 1;
                driver.on_complete(&Completion {
                    process: worker,
                    arrived,
                    issued,
                    core,
                    completed: now,
                    cost,
                })?;
                match pending.pop_front() {
                    Some(arrived) => {
                        let (core, cpu_done) = cores.claim_indexed(now, sched.think);
                        queue.schedule(
                            cpu_done,
                            OpenEvent::Issue {
                                worker,
                                arrived,
                                core,
                            },
                        );
                    }
                    None => idle[worker as usize] = true,
                }
            }
            OpenEvent::Tick => {
                if now >= end {
                    // Same horizon discipline as the closed loop: no
                    // flusher interference while the tail drains.
                    continue;
                }
                let start = device.next_free().max(now);
                let spent = driver.tick(start);
                if !spent.is_zero() {
                    device.serve(start, spent);
                }
                queue.schedule(now + sched.tick_every, OpenEvent::Tick);
            }
            OpenEvent::Sample => {
                if now >= end {
                    continue;
                }
                samples.push((now - sched.start, pending.len() as u32));
                queue.schedule(now + config.sample_every, OpenEvent::Sample);
            }
        }
    }
    out.depth_timeline = coalesce_depth_timeline(samples);
    Ok(out)
}

/// Fixed upper bound on the entries a reported queue-depth timeline
/// may carry.
pub const DEPTH_TIMELINE_BUCKETS: usize = 256;

/// Coalesces raw queue-depth samples — an unbounded series, one entry
/// per sampling window, that grows without limit on long runs — into at
/// most [`DEPTH_TIMELINE_BUCKETS`] entries. Adjacent samples merge into
/// a bucket reported at the bucket's first instant with the *maximum*
/// depth seen inside it, so backlog peaks survive the summarization.
/// Series that already fit pass through unchanged.
fn coalesce_depth_timeline(samples: &[(Nanos, u32)]) -> Vec<(Nanos, u32)> {
    let n = samples.len();
    if n <= DEPTH_TIMELINE_BUCKETS {
        return samples.to_vec();
    }
    let mut out = Vec::with_capacity(DEPTH_TIMELINE_BUCKETS);
    for b in 0..DEPTH_TIMELINE_BUCKETS {
        let lo = b * n / DEPTH_TIMELINE_BUCKETS;
        let hi = ((b + 1) * n / DEPTH_TIMELINE_BUCKETS).max(lo + 1).min(n);
        let at = samples[lo].0;
        let depth = samples[lo..hi].iter().map(|&(_, d)| d).max().unwrap_or(0);
        out.push((at, depth));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // CoreSet/DeviceQueue have their own unit tests next to their
    // implementation in rb_simcore::events.

    #[test]
    fn arrival_axis_expands_geometric_ladders() {
        let rungs = Arrival::parse_axis("poisson:1000..16000x2").expect("ladder parses");
        let rates: Vec<u64> = rungs.iter().filter_map(|a| a.rate()).collect();
        assert_eq!(rates, [1000, 2000, 4000, 8000, 16000]);
        assert!(rungs.iter().all(|a| matches!(a, Arrival::Poisson { .. })));
        // A ladder that overshoots its top stops at the last rung <= HI.
        let rungs = Arrival::parse_axis("bursty:100..1000x3").expect("ladder parses");
        let rates: Vec<u64> = rungs.iter().filter_map(|a| a.rate()).collect();
        assert_eq!(rates, [100, 300, 900]);
        // Degenerate ladder: LO == HI is the single rung.
        let rungs = Arrival::parse_axis("diurnal:500..500x2").expect("ladder parses");
        assert_eq!(rungs, [Arrival::Diurnal { rate: 500 }]);
    }

    #[test]
    fn arrival_axis_ladder_rungs_round_trip_labels() {
        for rung in Arrival::parse_axis("poisson:250..4000x2").expect("ladder parses") {
            let label = rung.label();
            assert_eq!(Arrival::parse(&label), Ok(rung), "label {label}");
            assert_eq!(Arrival::parse_axis(&label), Ok(vec![rung]));
        }
    }

    #[test]
    fn arrival_axis_plain_labels_unchanged() {
        for label in ["closed", "poisson:2000", "bursty:64", "diurnal:9999"] {
            let axis = Arrival::parse_axis(label).expect("plain label parses");
            assert_eq!(axis, vec![Arrival::parse(label).expect("parses")]);
        }
    }

    #[test]
    fn arrival_axis_rejects_malformed_ladders() {
        for bad in [
            "poisson:1000..16000",  // no factor
            "poisson:1000..500x2",  // reversed bounds
            "poisson:1000..2000x1", // factor below 2
            "poisson:0..2000x2",    // zero rate
            "warble:1..2x2",        // unknown process
            "poisson:a..bx2",       // non-numeric
        ] {
            assert!(Arrival::parse_axis(bad).is_err(), "{bad} should fail");
        }
    }

    /// A scripted test driver: `costs(i)` is the i-th executed op's
    /// outcome; issue order, completions and tick instants are logged.
    struct Script<F: FnMut(u64) -> SimResult<OpCost>> {
        costs: F,
        executed: u64,
        issued: Vec<u32>,
        completions: Vec<Nanos>,
        ticks: Vec<Nanos>,
        errors_seen: u64,
        abort_after_errors: Option<u64>,
    }

    impl<F: FnMut(u64) -> SimResult<OpCost>> Script<F> {
        fn new(costs: F) -> Self {
            Script {
                costs,
                executed: 0,
                issued: Vec::new(),
                completions: Vec::new(),
                ticks: Vec::new(),
                errors_seen: 0,
                abort_after_errors: None,
            }
        }
    }

    impl<F: FnMut(u64) -> SimResult<OpCost>> SchedDriver for Script<F> {
        fn exec(&mut self, process: u32, _now: Nanos) -> SimResult<OpCost> {
            self.issued.push(process);
            let i = self.executed;
            self.executed += 1;
            (self.costs)(i)
        }

        fn tick(&mut self, start: Nanos) -> Nanos {
            self.ticks.push(start);
            Nanos::ZERO
        }

        fn on_complete(&mut self, completion: &Completion) -> SimResult<()> {
            self.completions.push(completion.completed);
            Ok(())
        }

        fn on_error(&mut self, _process: u32, _now: Nanos, _error: SimError) -> SimResult<()> {
            self.errors_seen += 1;
            match self.abort_after_errors {
                Some(n) if self.errors_seen >= n => {
                    Err(SimError::InvalidOperation("too many failures".into()))
                }
                _ => Ok(()),
            }
        }
    }

    /// Equal-instant events drain FIFO: with several processes arriving
    /// at t=0, the issue order is exactly the process order, repeatably.
    #[test]
    fn equal_instant_events_drain_fifo() {
        let run = || {
            let config = SchedConfig {
                processes: 5,
                cores: 5,
                start: Nanos::ZERO,
                duration: Nanos::from_nanos(1),
                think: Nanos::ZERO,
                tick_every: Nanos::ZERO,
            };
            let mut driver = Script::new(|_| Ok(OpCost::cpu_only(Nanos::from_micros(1))));
            run_closed_loop(&config, &mut driver).unwrap();
            driver.issued
        };
        let order = run();
        assert_eq!(&order[..5], &[0, 1, 2, 3, 4]);
        assert_eq!(order, run());
    }

    #[test]
    fn completions_arrive_in_time_order() {
        let config = SchedConfig {
            processes: 3,
            cores: 1,
            start: Nanos::ZERO,
            duration: Nanos::from_micros(50),
            think: Nanos::from_micros(3),
            tick_every: Nanos::ZERO,
        };
        // Alternate fast CPU-only and slow device-bound ops so raw
        // completion instants would interleave without the Done events.
        let mut driver = Script::new(|i| {
            Ok(if i % 2 == 0 {
                OpCost {
                    cpu: Nanos::from_micros(1),
                    device: Nanos::from_micros(9),
                }
            } else {
                OpCost::cpu_only(Nanos::from_micros(1))
            })
        });
        run_closed_loop(&config, &mut driver).unwrap();
        assert!(driver.completions.len() > 3);
        assert!(
            driver.completions.windows(2).all(|w| w[0] <= w[1]),
            "completions out of order: {:?}",
            driver.completions
        );
    }

    #[test]
    fn ticks_follow_cadence_and_stop_at_retirement() {
        let config = SchedConfig {
            processes: 1,
            cores: 1,
            start: Nanos::ZERO,
            duration: Nanos::from_secs(16),
            think: Nanos::from_secs(1),
            tick_every: Nanos::from_secs(5),
        };
        let mut driver = Script::new(|_| Ok(OpCost::cpu_only(Nanos::from_millis(1))));
        run_closed_loop(&config, &mut driver).unwrap();
        // Ticks at 5, 10, 15 s — never falling behind the cadence.
        assert_eq!(driver.ticks.len(), 3, "{:?}", driver.ticks);
    }

    /// A tick popped past the horizon while operations are still in
    /// flight must neither run the flusher nor reschedule: a short run
    /// with one long op used to have its drain inflated by post-horizon
    /// writeback.
    #[test]
    fn ticks_past_the_horizon_are_skipped_during_drain() {
        let config = SchedConfig {
            processes: 1,
            cores: 1,
            start: Nanos::ZERO,
            duration: Nanos::from_secs(2),
            think: Nanos::from_micros(1),
            tick_every: Nanos::from_secs(5),
        };
        // One op that outlives the whole run: in flight at the 5 s tick.
        let mut driver = Script::new(|_| {
            Ok(OpCost {
                cpu: Nanos::from_micros(1),
                device: Nanos::from_secs(10),
            })
        });
        run_closed_loop(&config, &mut driver).unwrap();
        assert!(
            driver.ticks.is_empty(),
            "post-horizon tick ran the flusher at {:?}",
            driver.ticks
        );
    }

    #[test]
    fn arrival_labels_round_trip() {
        for a in [
            Arrival::Closed,
            Arrival::Poisson { rate: 5000 },
            Arrival::Bursty { rate: 250 },
            Arrival::Diurnal { rate: 12 },
        ] {
            assert_eq!(Arrival::parse(&a.label()), Ok(a));
        }
        assert!(Arrival::parse("poisson").is_err());
        assert!(Arrival::parse("poisson:0").is_err());
        assert!(Arrival::parse("poisson:-3").is_err());
        assert!(Arrival::parse("sawtooth:100").is_err());
    }

    fn open_config(duration: Nanos, arrival: Arrival, workers: u32, cap: u32) -> OpenLoopConfig {
        OpenLoopConfig {
            sched: SchedConfig {
                processes: workers,
                cores: workers,
                start: Nanos::ZERO,
                duration,
                think: Nanos::from_micros(10),
                tick_every: Nanos::ZERO,
            },
            arrival,
            queue_cap: cap,
            sample_every: Nanos::ZERO,
        }
    }

    /// Every generated request is accounted for: served, failed or
    /// dropped — under overload, with a tiny queue, with errors mixed in.
    #[test]
    fn open_loop_accounting_sums_to_offered() {
        let config = open_config(Nanos::from_secs(1), Arrival::Poisson { rate: 20_000 }, 2, 8);
        // Service slower than arrivals (2 workers x ~10k ops/s max each
        // on device time alone), every 7th op fails.
        let mut driver = Script::new(|i| {
            if i % 7 == 3 {
                Err(SimError::NotFound("flaky".into()))
            } else {
                Ok(OpCost {
                    cpu: Nanos::from_micros(20),
                    device: Nanos::from_micros(120),
                })
            }
        });
        let out = run_open_loop(&config, Rng::new(7).fork("arrivals"), &mut driver).unwrap();
        assert!(out.offered > 0);
        assert!(out.dropped > 0, "overload never filled the 8-slot queue");
        assert!(out.failed > 0);
        assert_eq!(out.offered, out.completed + out.failed + out.dropped);
        assert_eq!(out.completed, driver.completions.len() as u64);
    }

    /// The open-loop schedule is a pure function of (config, seed).
    #[test]
    fn open_loop_is_seed_deterministic() {
        let run = |seed: u64| {
            let config = open_config(
                Nanos::from_millis(200),
                Arrival::Bursty { rate: 5_000 },
                3,
                64,
            );
            let mut driver = Script::new(|i| {
                Ok(OpCost {
                    cpu: Nanos::from_micros(5),
                    device: Nanos::from_micros(50 + (i % 5) * 20),
                })
            });
            let out = run_open_loop(&config, Rng::new(seed).fork("arrivals"), &mut driver).unwrap();
            (out.offered, out.completed, out.dropped, driver.completions)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).0, run(4).0, "seed had no effect on arrivals");
    }

    /// An under-loaded open loop keeps the queue shallow and drops
    /// nothing; latencies (completed - arrived) include no queueing to
    /// speak of.
    #[test]
    fn underload_drops_nothing() {
        let config = open_config(Nanos::from_secs(1), Arrival::Poisson { rate: 500 }, 2, 16);
        let mut driver = Script::new(|_| {
            Ok(OpCost {
                cpu: Nanos::from_micros(10),
                device: Nanos::from_micros(100),
            })
        });
        let out = run_open_loop(&config, Rng::new(0).fork("arrivals"), &mut driver).unwrap();
        assert_eq!(out.dropped, 0);
        assert!(out.offered > 300, "rate 500/s over 1 s offered too little");
        assert_eq!(out.offered, out.completed);
    }

    /// The depth timeline samples on its cadence, inside the horizon.
    #[test]
    fn depth_timeline_follows_cadence() {
        let mut config = open_config(
            Nanos::from_secs(1),
            Arrival::Poisson { rate: 20_000 },
            1,
            1_000_000,
        );
        config.sample_every = Nanos::from_millis(100);
        let mut driver = Script::new(|_| {
            Ok(OpCost {
                cpu: Nanos::from_micros(10),
                device: Nanos::from_micros(200),
            })
        });
        let out = run_open_loop(&config, Rng::new(1).fork("arrivals"), &mut driver).unwrap();
        assert_eq!(out.depth_timeline.len(), 9, "{:?}", out.depth_timeline);
        // Saturated at 1 worker: the unbounded queue grows monotonically.
        let depths: Vec<u32> = out.depth_timeline.iter().map(|&(_, d)| d).collect();
        assert!(depths.windows(2).all(|w| w[1] >= w[0]), "{depths:?}");
        // Arrivals keep pushing after the last sample, so the true max
        // is at least the sampled max.
        assert!(out.max_queue_depth >= *depths.iter().max().unwrap());
    }

    /// Each completion's instants form an exact integer partition of
    /// its latency: core wait + think + cpu + device queue wait +
    /// device service == completed - arrived. The flight recorder's
    /// latency decomposition is built on this identity.
    #[test]
    fn completion_decomposition_is_exact() {
        struct Check {
            think: Nanos,
            cores: u32,
            n: u64,
        }
        impl SchedDriver for Check {
            fn exec(&mut self, _p: u32, _now: Nanos) -> SimResult<OpCost> {
                Ok(OpCost {
                    cpu: Nanos::from_micros(2),
                    device: Nanos::from_micros(50),
                })
            }
            fn tick(&mut self, _s: Nanos) -> Nanos {
                Nanos::ZERO
            }
            fn on_complete(&mut self, c: &Completion) -> SimResult<()> {
                self.n += 1;
                assert!(c.core < self.cores, "core id out of range");
                let latency = c.completed - c.arrived;
                let core_wait = c.issued - c.arrived - self.think;
                let queue_wait = c.completed - c.issued - c.cost.cpu - c.cost.device;
                assert_eq!(
                    core_wait + self.think + c.cost.cpu + queue_wait + c.cost.device,
                    latency
                );
                Ok(())
            }
            fn on_error(&mut self, _p: u32, _now: Nanos, _e: SimError) -> SimResult<()> {
                Ok(())
            }
        }
        let config = SchedConfig {
            processes: 4,
            cores: 2,
            start: Nanos::ZERO,
            duration: Nanos::from_millis(10),
            think: Nanos::from_micros(5),
            tick_every: Nanos::ZERO,
        };
        let mut closed = Check {
            think: config.think,
            cores: config.cores,
            n: 0,
        };
        run_closed_loop(&config, &mut closed).unwrap();
        assert!(closed.n > 10, "closed loop barely ran: {}", closed.n);

        let open = OpenLoopConfig {
            sched: config,
            arrival: Arrival::Poisson { rate: 100_000 },
            queue_cap: 64,
            sample_every: Nanos::ZERO,
        };
        let mut open_check = Check {
            think: config.think,
            cores: config.cores,
            n: 0,
        };
        run_open_loop(&open, Rng::new(11).fork("arrivals"), &mut open_check).unwrap();
        assert!(open_check.n > 10, "open loop barely ran: {}", open_check.n);
    }

    #[test]
    fn errors_abort_when_handler_says_so() {
        let config = SchedConfig {
            processes: 2,
            cores: 2,
            start: Nanos::ZERO,
            duration: Nanos::from_secs(1),
            think: Nanos::from_micros(10),
            tick_every: Nanos::ZERO,
        };
        let mut driver = Script::new(|_| Err(SimError::NotFound("gone".into())));
        driver.abort_after_errors = Some(5);
        let result = run_closed_loop(&config, &mut driver);
        assert!(result.is_err());
        assert_eq!(driver.errors_seen, 5);
    }
}
