//! The nano-benchmark suite (paper Section 4's proposal).
//!
//! "We believe that a file system benchmark should be a suite of
//! nano-benchmarks where each individual test measures a particular
//! aspect of file system performance and measures it well … at a
//! minimum, an encompassing benchmark should include in-memory, disk
//! layout, cache warm-up/eviction, and meta-data operations performance
//! evaluation components."
//!
//! This module is that suite. Each component pins down one dimension by
//! construction (cache forced tiny to expose the disk, cache pre-warmed
//! to expose memory, zero-byte files to expose metadata), and the report
//! presents the results side by side — a multi-dimensional answer
//! instead of a single number.

use crate::analysis::WarmupReport;
use crate::dimensions::Dimension;
use crate::runner::{Protocol, Verdict};
use crate::sched::Arrival;
use crate::target::{SimTarget, Target};
use crate::testbed::{self, FsKind};
use crate::workload::{personalities, Engine, EngineConfig};
use rb_simcore::error::SimResult;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simcore::units::{Bytes, PAGE_SIZE};
use rb_stats::bootstrap::{bootstrap_mean_ci, Interval};
use rb_stats::sequential::{self, Decision};
use rb_stats::summary::Summary;
use std::fmt::Write as _;

/// Suite configuration.
#[derive(Debug, Clone)]
pub struct NanoConfig {
    /// Device size for the testbed.
    pub device: Bytes,
    /// Seed.
    pub seed: u64,
    /// Per-component measured duration.
    pub duration: Nanos,
    /// Working file size for layout/caching components.
    pub working_file: Bytes,
}

impl Default for NanoConfig {
    fn default() -> Self {
        NanoConfig {
            device: Bytes::gib(2),
            seed: 0,
            duration: Nanos::from_secs(60),
            working_file: Bytes::mib(256),
        }
    }
}

impl NanoConfig {
    /// Fast variant for tests.
    pub fn quick() -> Self {
        NanoConfig {
            device: Bytes::gib(1),
            seed: 0,
            duration: Nanos::from_secs(15),
            working_file: Bytes::mib(96),
        }
    }
}

/// One metric produced by a component.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric name, e.g. `"throughput"`.
    pub name: &'static str,
    /// Value.
    pub value: f64,
    /// Unit, e.g. `"ops/s"`.
    pub unit: &'static str,
}

impl Metric {
    fn new(name: &'static str, value: f64, unit: &'static str) -> Metric {
        Metric { name, value, unit }
    }
}

/// One nano-benchmark's result.
#[derive(Debug, Clone)]
pub struct NanoResult {
    /// Component name.
    pub component: &'static str,
    /// The dimension this component isolates.
    pub dimension: Dimension,
    /// Measured metrics.
    pub metrics: Vec<Metric>,
}

impl NanoResult {
    /// Looks up a metric value by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }
}

/// The full suite's report for one file system.
#[derive(Debug, Clone)]
pub struct NanoReport {
    /// System under test.
    pub target: String,
    /// Component results, in suite order.
    pub results: Vec<NanoResult>,
}

impl NanoReport {
    /// Looks up a component result.
    pub fn component(&self, name: &str) -> Option<&NanoResult> {
        self.results.iter().find(|r| r.component == name)
    }
}

fn fresh(fs: FsKind, config: &NanoConfig) -> SimTarget {
    testbed::paper_fs(fs, config.device, config.seed)
}

/// In-memory read path: file warmed into cache, then random reads.
/// Isolates the memory/CPU dimension (the paper's in-memory component).
fn in_memory_read(fs: FsKind, config: &NanoConfig) -> SimResult<NanoResult> {
    let mut t = fresh(fs, config);
    let size = Bytes::mib(32).min(config.working_file);
    let w = personalities::random_read(size);
    let mut sets = Engine::setup(&mut t, &w, config.seed)?;
    let cfg = EngineConfig {
        duration: config.duration,
        window: Nanos::from_secs(5),
        seed: config.seed,
        cold_start: false,
        prewarm: true,
        cpu_jitter_sigma: 0.005,
        max_errors: 100,
        processes: 1,
        cores: 4,
        arrival: Arrival::Closed,
        obs: rb_obs::ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    };
    let rec = Engine::run_prepared(&mut t, &w, &cfg, &mut sets)?;
    let p50 = rec
        .histogram
        .quantile(0.5)
        .map(|n| n.as_nanos() as f64)
        .unwrap_or(0.0);
    Ok(NanoResult {
        component: "in-memory-read",
        dimension: Dimension::Caching,
        metrics: vec![
            Metric::new("throughput", rec.ops_per_sec(), "ops/s"),
            Metric::new("latency-p50", p50, "ns"),
            Metric::new("hit-ratio", rec.hit_ratio.unwrap_or(0.0), ""),
        ],
    })
}

/// Sequential layout: cache crushed to 8 MiB so every byte comes off
/// the media in layout order. Isolates the on-disk dimension.
fn disk_layout_sequential(fs: FsKind, config: &NanoConfig) -> SimResult<NanoResult> {
    let mut t = fresh(fs, config);
    t.set_cache_capacity_pages(Bytes::mib(8).div_ceil(PAGE_SIZE));
    let w = personalities::sequential_read(config.working_file);
    let cfg = EngineConfig {
        duration: config.duration,
        window: Nanos::from_secs(5),
        seed: config.seed,
        cold_start: true,
        prewarm: false,
        cpu_jitter_sigma: 0.005,
        max_errors: 100,
        processes: 1,
        cores: 4,
        arrival: Arrival::Closed,
        obs: rb_obs::ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    };
    let rec = Engine::run(&mut t, &w, &cfg)?;
    let mib_per_sec = rec.ops_per_sec() * 64.0 / 1024.0; // 64 KiB per op
    let extents = t.stack().fs().avg_file_extents();
    Ok(NanoResult {
        component: "disk-layout-sequential",
        dimension: Dimension::OnDisk,
        metrics: vec![
            Metric::new("bandwidth", mib_per_sec, "MiB/s"),
            Metric::new("file-extents", extents, "extents"),
        ],
    })
}

/// Random layout: same crushed cache, 8 KiB random reads. Isolates raw
/// positioning cost over the file system's block placement.
fn disk_layout_random(fs: FsKind, config: &NanoConfig) -> SimResult<NanoResult> {
    let mut t = fresh(fs, config);
    t.set_cache_capacity_pages(Bytes::mib(8).div_ceil(PAGE_SIZE));
    let w = personalities::random_read(config.working_file);
    let cfg = EngineConfig {
        duration: config.duration,
        window: Nanos::from_secs(5),
        seed: config.seed,
        cold_start: true,
        prewarm: false,
        cpu_jitter_sigma: 0.005,
        max_errors: 100,
        processes: 1,
        cores: 4,
        arrival: Arrival::Closed,
        obs: rb_obs::ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    };
    let rec = Engine::run(&mut t, &w, &cfg)?;
    let p50 = rec
        .histogram
        .quantile(0.5)
        .map(|n| n.as_nanos() as f64)
        .unwrap_or(0.0);
    Ok(NanoResult {
        component: "disk-layout-random",
        dimension: Dimension::Io,
        metrics: vec![
            Metric::new("throughput", rec.ops_per_sec(), "ops/s"),
            Metric::new("latency-p50", p50, "ns"),
        ],
    })
}

/// Cache warm-up: cold start on a cache-sized file; reports how long
/// the system takes to reach steady state (the Figure 2 measurement).
fn cache_warmup(fs: FsKind, config: &NanoConfig) -> SimResult<NanoResult> {
    let mut t = fresh(fs, config);
    let w = personalities::random_read(config.working_file);
    let cfg = EngineConfig {
        // Warm-up needs more room than the steady components.
        duration: config.duration * 4,
        window: Nanos::from_secs(10),
        seed: config.seed,
        cold_start: true,
        prewarm: false,
        cpu_jitter_sigma: 0.005,
        max_errors: 100,
        processes: 1,
        cores: 4,
        arrival: Arrival::Closed,
        obs: rb_obs::ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    };
    let rec = Engine::run(&mut t, &w, &cfg)?;
    let report = WarmupReport::from_windows(&rec.windows, 5.0);
    Ok(NanoResult {
        component: "cache-warmup",
        dimension: Dimension::Caching,
        metrics: vec![
            Metric::new(
                "warmup-time",
                report.warmup_seconds.unwrap_or(f64::NAN),
                "s",
            ),
            Metric::new("rise-factor", report.rise_factor, "x"),
            Metric::new(
                "steady-throughput",
                rec.tail_ops_per_sec(3).unwrap_or(0.0),
                "ops/s",
            ),
        ],
    })
}

/// Cache eviction: working set at 150 % of cache; steady-state hit
/// ratio exposes the replacement policy's quality (theory for LRU under
/// uniform random: capacity / working set ≈ 0.67).
fn cache_eviction(fs: FsKind, config: &NanoConfig) -> SimResult<NanoResult> {
    let mut t = fresh(fs, config);
    let cache_pages = t.stack().cache().capacity_pages();
    // 150 % of the cache, clamped to 80 % of the device so small
    // testbeds degrade instead of failing with NoSpace.
    let file = Bytes::new(PAGE_SIZE.as_u64() * cache_pages * 3 / 2)
        .min(Bytes::new(config.device.as_u64() * 4 / 5));
    let w = personalities::random_read(file);
    let cfg = EngineConfig {
        duration: config.duration * 2,
        window: Nanos::from_secs(10),
        seed: config.seed,
        cold_start: true,
        prewarm: true,
        cpu_jitter_sigma: 0.005,
        max_errors: 100,
        processes: 1,
        cores: 4,
        arrival: Arrival::Closed,
        obs: rb_obs::ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    };
    let rec = Engine::run(&mut t, &w, &cfg)?;
    let stats = t.stack().cache().stats();
    Ok(NanoResult {
        component: "cache-eviction",
        dimension: Dimension::Caching,
        metrics: vec![
            Metric::new("hit-ratio", rec.hit_ratio.unwrap_or(0.0), ""),
            Metric::new("theoretical-lru", 2.0 / 3.0, ""),
            Metric::new(
                "evictions",
                (stats.evicted_clean + stats.evicted_dirty) as f64,
                "pages",
            ),
        ],
    })
}

/// Metadata operations: create/stat/open/delete on empty files — no
/// data path at all. Isolates the meta-data dimension.
fn metadata_ops(fs: FsKind, config: &NanoConfig) -> SimResult<NanoResult> {
    let mut t = fresh(fs, config);
    let w = personalities::metadata_only(200);
    let cfg = EngineConfig {
        duration: config.duration,
        window: Nanos::from_secs(5),
        seed: config.seed,
        cold_start: true,
        prewarm: false,
        cpu_jitter_sigma: 0.005,
        max_errors: 200,
        processes: 1,
        cores: 4,
        arrival: Arrival::Closed,
        obs: rb_obs::ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    };
    let rec = Engine::run(&mut t, &w, &cfg)?;
    let mut metrics = vec![Metric::new("throughput", rec.ops_per_sec(), "ops/s")];
    for (label, name) in [
        ("create", "create-p50"),
        ("stat", "stat-p50"),
        ("delete", "delete-p50"),
    ] {
        if let Some(h) = rec.per_op.get(label) {
            if let Some(q) = h.quantile(0.5) {
                metrics.push(Metric {
                    name,
                    value: q.as_nanos() as f64,
                    unit: "ns",
                });
            }
        }
    }
    Ok(NanoResult {
        component: "metadata-ops",
        dimension: Dimension::Metadata,
        metrics,
    })
}

/// Scaling: a true closed-loop process sweep (shared cache, shared
/// spindle, bounded cores) on a disk-bound working set, run through the
/// real engine. Load beyond the knee queues rather than scales.
fn scaling(fs: FsKind, config: &NanoConfig) -> SimResult<NanoResult> {
    let scaling_cfg = crate::scaling::ScalingConfig {
        processes: vec![1, 2, 4, 8],
        cores: 4,
        personality: crate::campaign::Personality::RandomRead,
        file_size: config.working_file,
        files: 0,
        cache: Bytes::mib(8),
        policy: rb_simcache::policy::PolicyKind::Lru,
        duration: config.duration,
        seed: config.seed,
    };
    let curve = crate::scaling::thread_scaling(fs, &scaling_cfg)?;
    let saturation = curve
        .points
        .iter()
        .map(|p| p.ops_per_sec)
        .fold(0.0f64, f64::max);
    let last = curve.points.last().map(|p| p.speedup).unwrap_or(1.0);
    Ok(NanoResult {
        component: "scaling",
        dimension: Dimension::Scaling,
        metrics: vec![
            Metric::new("saturation", saturation, "ops/s"),
            Metric::new("speedup-8-procs", last, "x"),
            Metric::new("knee", curve.knee().unwrap_or(0) as f64, "procs"),
        ],
    })
}

/// Runs the complete suite against a simulated file system.
pub fn run_suite(fs: FsKind, config: &NanoConfig) -> SimResult<NanoReport> {
    Ok(NanoReport {
        target: format!("sim:{}", fs.name()),
        results: vec![
            in_memory_read(fs, config)?,
            disk_layout_sequential(fs, config)?,
            disk_layout_random(fs, config)?,
            cache_warmup(fs, config)?,
            cache_eviction(fs, config)?,
            metadata_ops(fs, config)?,
            scaling(fs, config)?,
        ],
    })
}

/// One metric aggregated across repeated suite runs.
#[derive(Debug, Clone)]
pub struct NanoMetricSummary {
    /// Component the metric belongs to.
    pub component: &'static str,
    /// Dimension the component isolates.
    pub dimension: Dimension,
    /// Metric name.
    pub name: &'static str,
    /// Unit.
    pub unit: &'static str,
    /// Cross-run summary (mean, RSD, extremes).
    pub summary: Summary,
    /// Bootstrap CI on the mean, when computable.
    pub ci: Option<Interval>,
}

/// The nano suite executed under a repetition [`Protocol`]: every
/// metric reported as a distribution (mean ± CI), never a single
/// number — with an explicit verdict on whether the headline metric
/// converged.
#[derive(Debug, Clone)]
pub struct NanoProtocolReport {
    /// System under test.
    pub target: String,
    /// Protocol the suite ran under.
    pub protocol: Protocol,
    /// Individual suite runs, in run order.
    pub runs: Vec<NanoReport>,
    /// Per-metric cross-run aggregates, in suite order.
    pub metrics: Vec<NanoMetricSummary>,
    /// Verdict from the stopping rule applied to the headline metric.
    pub verdict: Verdict,
}

/// The metric the adaptive stopping rule watches: the in-memory read
/// path's throughput (the suite's most repeatable headline figure).
const HEADLINE: (&str, &str) = ("in-memory-read", "throughput");

/// Runs the suite repeatedly under `protocol` (run `i` uses
/// `config.seed + i`), aggregating every metric across runs. Under
/// [`Protocol::Adaptive`] the stopping rule watches the headline
/// in-memory throughput metric and stops as soon as its bootstrap CI
/// meets the target.
pub fn run_suite_protocol(
    fs: FsKind,
    config: &NanoConfig,
    protocol: &Protocol,
) -> SimResult<NanoProtocolReport> {
    protocol.validate()?;
    let rule = protocol.stopping_rule();
    let mut runs: Vec<NanoReport> = Vec::new();
    let mut headline: Vec<f64> = Vec::new();
    let verdict = loop {
        let n = runs.len() as u32;
        match &rule {
            None => {
                if n >= protocol.max_runs() {
                    break Verdict::Fixed;
                }
            }
            Some(rule) => {
                let mut rng = Rng::new(config.seed).fork("nano-sequential");
                match sequential::evaluate(&headline, rule, &mut rng) {
                    Decision::Continue => {}
                    Decision::Converged(_) => break Verdict::Converged,
                    Decision::Exhausted(_) => break Verdict::MaxRuns,
                }
            }
        }
        let mut run_config = config.clone();
        run_config.seed = config.seed.wrapping_add(n as u64);
        let report = run_suite(fs, &run_config)?;
        headline.push(
            report
                .component(HEADLINE.0)
                .and_then(|r| r.metric(HEADLINE.1))
                .unwrap_or(0.0),
        );
        runs.push(report);
    };
    let first = runs.first().expect("protocol guarantees at least one run");
    let mut metrics = Vec::new();
    for r in &first.results {
        for m in &r.metrics {
            let samples: Vec<f64> = runs
                .iter()
                .filter_map(|run| run.component(r.component).and_then(|c| c.metric(m.name)))
                .collect();
            let Some(summary) = Summary::from_sample(&samples) else {
                continue;
            };
            let mut rng =
                Rng::new(config.seed).fork(&format!("nano-ci/{}/{}", r.component, m.name));
            let ci = bootstrap_mean_ci(&samples, 1000, 1.0 - protocol.confidence(), &mut rng);
            metrics.push(NanoMetricSummary {
                component: r.component,
                dimension: r.dimension,
                name: m.name,
                unit: m.unit,
                summary,
                ci,
            });
        }
    }
    Ok(NanoProtocolReport {
        target: first.target.clone(),
        protocol: *protocol,
        runs,
        metrics,
        verdict,
    })
}

/// Renders the protocol-aggregated report: one line per metric with
/// mean ± CI and cross-run RSD.
pub fn render_protocol_report(report: &NanoProtocolReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Nano-benchmark suite: {} [{} -> {} run{}, {}]",
        report.target,
        report.protocol,
        report.runs.len(),
        if report.runs.len() == 1 { "" } else { "s" },
        report.verdict
    );
    let _ = writeln!(
        out,
        "(one component per dimension; distributions, not single numbers)"
    );
    let mut current = "";
    for m in &report.metrics {
        if m.component != current {
            current = m.component;
            let _ = writeln!(out, "  [{}] {}", m.dimension.label(), m.component);
        }
        let ci =
            m.ci.map(|ci| format!("±{:.2}", ci.half_width()))
                .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "      {:<20} {:>14.2} {:>10} ({:>5.1}% rsd) {}",
            m.name, m.summary.mean, ci, m.summary.rsd_percent, m.unit
        );
    }
    out
}

/// Renders the multi-dimensional report.
pub fn render_report(report: &NanoReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Nano-benchmark suite: {}", report.target);
    let _ = writeln!(
        out,
        "(one component per dimension; no single number reported)"
    );
    for r in &report.results {
        let _ = writeln!(out, "  [{}] {}", r.dimension.label(), r.component);
        for m in &r.metrics {
            let _ = writeln!(out, "      {:<20} {:>14.2} {}", m.name, m.value, m.unit);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_on_ext2() {
        let report = run_suite(FsKind::Ext2, &NanoConfig::quick()).unwrap();
        assert_eq!(report.results.len(), 7);
        // In-memory component really is in-memory.
        let mem = report.component("in-memory-read").unwrap();
        assert!(mem.metric("hit-ratio").unwrap() > 0.95);
        assert!(mem.metric("throughput").unwrap() > 5000.0);
        // Disk components really hit the disk.
        let rnd = report.component("disk-layout-random").unwrap();
        assert!(rnd.metric("throughput").unwrap() < 1000.0);
        assert!(
            rnd.metric("latency-p50").unwrap() > 1e6,
            "p50 should be ms-scale"
        );
        // Eviction hit ratio lands near LRU theory.
        let ev = report.component("cache-eviction").unwrap();
        let hit = ev.metric("hit-ratio").unwrap();
        assert!((hit - 2.0 / 3.0).abs() < 0.12, "hit ratio {hit}");
        let render = render_report(&report);
        assert!(render.contains("Meta-data"));
        assert!(render.contains("in-memory-read"));
    }

    #[test]
    fn sequential_beats_random_layout() {
        let cfg = NanoConfig::quick();
        let report = run_suite(FsKind::Ext2, &cfg).unwrap();
        let seq_mibs = report
            .component("disk-layout-sequential")
            .unwrap()
            .metric("bandwidth")
            .unwrap();
        let rnd_ops = report
            .component("disk-layout-random")
            .unwrap()
            .metric("throughput")
            .unwrap();
        let rnd_mibs = rnd_ops * 8.0 / 1024.0;
        assert!(
            seq_mibs > 5.0 * rnd_mibs,
            "sequential {seq_mibs} MiB/s not ≫ random {rnd_mibs} MiB/s"
        );
    }

    #[test]
    fn protocol_suite_aggregates_metrics() {
        let mut cfg = NanoConfig::quick();
        cfg.duration = Nanos::from_secs(5);
        cfg.working_file = Bytes::mib(32);
        let rep = run_suite_protocol(FsKind::Ext2, &cfg, &Protocol::FixedRuns(2)).unwrap();
        assert_eq!(rep.runs.len(), 2);
        assert_eq!(rep.verdict, Verdict::Fixed);
        let m = rep
            .metrics
            .iter()
            .find(|m| m.component == "in-memory-read" && m.name == "throughput")
            .expect("headline metric aggregated");
        assert_eq!(m.summary.n, 2);
        let ci = m.ci.expect("bootstrap ci");
        assert!(ci.lo <= m.summary.mean && m.summary.mean <= ci.hi);
        let render = render_protocol_report(&rep);
        assert!(render.contains("fixed(2)"));
        assert!(render.contains("rsd"));
        // Zero-run protocols are rejected, not looped forever.
        assert!(run_suite_protocol(FsKind::Ext2, &cfg, &Protocol::FixedRuns(0)).is_err());
    }

    #[test]
    fn scaling_saturates() {
        let report = run_suite(FsKind::Ext2, &NanoConfig::quick()).unwrap();
        let s = report.component("scaling").unwrap();
        // Disk-bound: 8 processes yield nowhere near 8x.
        assert!(s.metric("speedup-8-procs").unwrap() < 2.0);
    }
}
