//! Workload traces: record, serialize, replay.
//!
//! The paper's survey found trace-based evaluation popular (35 of the
//! 2009–2010 uses) but nearly useless to the community because "almost
//! none of those traces are widely available … it would benefit the
//! community to make them widely available by depositing them with
//! SNIA." rocketbench therefore treats traces as first-class, portable
//! artifacts: any workload run can be recorded, written to a plain-text
//! format, shipped, and replayed against any [`Target`] — including a
//! real file system.
//!
//! The format is one operation per line, whitespace-separated:
//!
//! ```text
//! # rocketbench-trace v1
//! create /set0/f000001
//! open   /set0/f000001
//! read   /set0/f000001 65536 8192
//! write  /set0/f000001 0     4096
//! fsync  /set0/f000001
//! unlink /set0/f000001
//! ```

use crate::target::Target;
use rb_simcore::error::{SimError, SimResult};
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use rb_simfs::stack::Fd;
use rb_stats::histogram::Log2Histogram;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One traced operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Create a file.
    Create(String),
    /// Create a directory.
    Mkdir(String),
    /// Open a file (subsequent ops address it by path).
    Open(String),
    /// Close a file.
    Close(String),
    /// Read `len` bytes at `offset`.
    Read {
        /// Path (must be opened).
        path: String,
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Write `len` bytes at `offset`.
    Write {
        /// Path (must be opened).
        path: String,
        /// Byte offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Set a file's size.
    SetSize {
        /// Path (must be opened).
        path: String,
        /// New size in bytes.
        size: u64,
    },
    /// fsync a file.
    Fsync(String),
    /// stat a path.
    Stat(String),
    /// Unlink a file.
    Unlink(String),
}

impl TraceOp {
    /// The path the operation addresses.
    pub fn path(&self) -> &str {
        match self {
            TraceOp::Create(p)
            | TraceOp::Mkdir(p)
            | TraceOp::Open(p)
            | TraceOp::Close(p)
            | TraceOp::Fsync(p)
            | TraceOp::Stat(p)
            | TraceOp::Unlink(p) => p,
            TraceOp::Read { path, .. }
            | TraceOp::Write { path, .. }
            | TraceOp::SetSize { path, .. } => path,
        }
    }
}

/// A recorded trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Operations in order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Serializes to the portable text format.
    ///
    /// The format is whitespace-separated, so paths containing
    /// whitespace (or empty paths, or `#`-prefixed paths that would
    /// read back as comments) cannot round-trip; serializing them is an
    /// error rather than a silently corrupted trace.
    pub fn to_text(&self) -> SimResult<String> {
        for (i, op) in self.ops.iter().enumerate() {
            let path = op.path();
            if path.is_empty() || path.starts_with('#') || path.chars().any(|c| c.is_whitespace()) {
                return Err(SimError::BadConfig(format!(
                    "op {i}: path {path:?} cannot be represented in the \
                     whitespace-separated trace format"
                )));
            }
        }
        let mut out = String::from("# rocketbench-trace v1\n");
        for op in &self.ops {
            match op {
                TraceOp::Create(p) => {
                    let _ = writeln!(out, "create {p}");
                }
                TraceOp::Mkdir(p) => {
                    let _ = writeln!(out, "mkdir {p}");
                }
                TraceOp::Open(p) => {
                    let _ = writeln!(out, "open {p}");
                }
                TraceOp::Close(p) => {
                    let _ = writeln!(out, "close {p}");
                }
                TraceOp::Read { path, offset, len } => {
                    let _ = writeln!(out, "read {path} {offset} {len}");
                }
                TraceOp::Write { path, offset, len } => {
                    let _ = writeln!(out, "write {path} {offset} {len}");
                }
                TraceOp::SetSize { path, size } => {
                    let _ = writeln!(out, "setsize {path} {size}");
                }
                TraceOp::Fsync(p) => {
                    let _ = writeln!(out, "fsync {p}");
                }
                TraceOp::Stat(p) => {
                    let _ = writeln!(out, "stat {p}");
                }
                TraceOp::Unlink(p) => {
                    let _ = writeln!(out, "unlink {p}");
                }
            }
        }
        Ok(out)
    }

    /// Parses the text format. Unknown lines, missing fields and
    /// trailing junk are errors; comments and blank lines are skipped.
    pub fn from_text(text: &str) -> SimResult<Trace> {
        let mut ops = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let verb = parts.next().unwrap_or_default();
            let mut arg = |name: &str| -> SimResult<String> {
                parts.next().map(str::to_string).ok_or_else(|| {
                    SimError::BadConfig(format!("line {}: missing {name}", lineno + 1))
                })
            };
            let op = match verb {
                "create" => TraceOp::Create(arg("path")?),
                "mkdir" => TraceOp::Mkdir(arg("path")?),
                "open" => TraceOp::Open(arg("path")?),
                "close" => TraceOp::Close(arg("path")?),
                "read" | "write" => {
                    let path = arg("path")?;
                    let offset = arg("offset")?
                        .parse::<u64>()
                        .map_err(|e| SimError::BadConfig(format!("line {}: {e}", lineno + 1)))?;
                    let len = arg("len")?
                        .parse::<u64>()
                        .map_err(|e| SimError::BadConfig(format!("line {}: {e}", lineno + 1)))?;
                    if verb == "read" {
                        TraceOp::Read { path, offset, len }
                    } else {
                        TraceOp::Write { path, offset, len }
                    }
                }
                "setsize" => {
                    let path = arg("path")?;
                    let size = arg("size")?
                        .parse::<u64>()
                        .map_err(|e| SimError::BadConfig(format!("line {}: {e}", lineno + 1)))?;
                    TraceOp::SetSize { path, size }
                }
                "fsync" => TraceOp::Fsync(arg("path")?),
                "stat" => TraceOp::Stat(arg("path")?),
                "unlink" => TraceOp::Unlink(arg("path")?),
                other => {
                    return Err(SimError::BadConfig(format!(
                        "line {}: unknown op {other:?}",
                        lineno + 1
                    )))
                }
            };
            // A path with whitespace serializes into extra tokens; the
            // old parser silently ignored them, so such a trace parsed
            // into *different* operations than were recorded. Reject
            // trailing junk instead.
            if let Some(extra) = parts.next() {
                return Err(SimError::BadConfig(format!(
                    "line {}: trailing token {extra:?} after {verb}",
                    lineno + 1
                )));
            }
            ops.push(op);
        }
        Ok(Trace { ops })
    }
}

/// Result of replaying a trace.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Operations executed successfully.
    pub ops: u64,
    /// Operations that failed.
    pub errors: u64,
    /// Total virtual/wall time consumed.
    pub duration: Nanos,
    /// Latency histogram over all operations.
    pub histogram: Log2Histogram,
}

/// Replays a trace against a target.
///
/// File handles are managed by path: `open` lines open, data ops look up
/// the handle (opening on demand if the trace omitted it). Individual
/// operation failures are counted, not fatal, so traces captured on one
/// system remain usable on another with a slightly different namespace.
pub fn replay(target: &mut dyn Target, trace: &Trace) -> ReplayResult {
    let mut fds: HashMap<String, Fd> = HashMap::new();
    let mut ops = 0u64;
    let mut errors = 0u64;
    let mut histogram = Log2Histogram::new();
    let start = target.now();

    let ensure_open =
        |target: &mut dyn Target, fds: &mut HashMap<String, Fd>, path: &str| -> SimResult<Fd> {
            if let Some(&fd) = fds.get(path) {
                return Ok(fd);
            }
            let fd = target.open(path)?;
            fds.insert(path.to_string(), fd);
            Ok(fd)
        };

    for op in &trace.ops {
        let before = target.now();
        let outcome: SimResult<()> = (|| {
            match op {
                TraceOp::Create(p) => {
                    target.create(p)?;
                }
                TraceOp::Mkdir(p) => {
                    target.mkdir(p)?;
                }
                TraceOp::Open(p) => {
                    ensure_open(target, &mut fds, p)?;
                }
                TraceOp::Close(p) => {
                    if let Some(fd) = fds.remove(p) {
                        target.close(fd)?;
                    }
                }
                TraceOp::Read { path, offset, len } => {
                    let fd = ensure_open(target, &mut fds, path)?;
                    target.read(fd, Bytes::new(*offset), Bytes::new(*len))?;
                }
                TraceOp::Write { path, offset, len } => {
                    let fd = ensure_open(target, &mut fds, path)?;
                    target.write(fd, Bytes::new(*offset), Bytes::new(*len))?;
                }
                TraceOp::SetSize { path, size } => {
                    let fd = ensure_open(target, &mut fds, path)?;
                    target.set_size(fd, Bytes::new(*size))?;
                }
                TraceOp::Fsync(p) => {
                    let fd = ensure_open(target, &mut fds, p)?;
                    target.fsync(fd)?;
                }
                TraceOp::Stat(p) => {
                    target.stat(p)?;
                }
                TraceOp::Unlink(p) => {
                    if let Some(fd) = fds.remove(p) {
                        let _ = target.close(fd);
                    }
                    target.unlink(p)?;
                }
            }
            Ok(())
        })();
        match outcome {
            Ok(()) => {
                ops += 1;
                histogram.record(target.now() - before);
            }
            Err(_) => errors += 1,
        }
    }
    ReplayResult {
        ops,
        errors,
        duration: target.now() - start,
        histogram,
    }
}

/// A recording proxy: wraps a target, passing operations through while
/// appending them to a trace.
pub struct Recorder<'t, T: Target> {
    inner: &'t mut T,
    trace: Trace,
    paths: HashMap<Fd, String>,
}

impl<'t, T: Target> Recorder<'t, T> {
    /// Wraps a target.
    pub fn new(inner: &'t mut T) -> Self {
        Recorder {
            inner,
            trace: Trace::default(),
            paths: HashMap::new(),
        }
    }

    /// Finishes recording, returning the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }

    fn path_of(&self, fd: Fd) -> String {
        self.paths
            .get(&fd)
            .cloned()
            .unwrap_or_else(|| format!("<fd{fd}>"))
    }
}

impl<T: Target> Target for Recorder<'_, T> {
    fn name(&self) -> String {
        format!("record:{}", self.inner.name())
    }

    fn now(&self) -> Nanos {
        self.inner.now()
    }

    fn advance(&mut self, d: Nanos) {
        self.inner.advance(d);
    }

    fn create(&mut self, path: &str) -> SimResult<Nanos> {
        let r = self.inner.create(path)?;
        self.trace.ops.push(TraceOp::Create(path.to_string()));
        Ok(r)
    }

    fn mkdir(&mut self, path: &str) -> SimResult<Nanos> {
        let r = self.inner.mkdir(path)?;
        self.trace.ops.push(TraceOp::Mkdir(path.to_string()));
        Ok(r)
    }

    fn unlink(&mut self, path: &str) -> SimResult<Nanos> {
        let r = self.inner.unlink(path)?;
        self.trace.ops.push(TraceOp::Unlink(path.to_string()));
        Ok(r)
    }

    fn stat(&mut self, path: &str) -> SimResult<Nanos> {
        let r = self.inner.stat(path)?;
        self.trace.ops.push(TraceOp::Stat(path.to_string()));
        Ok(r)
    }

    fn open(&mut self, path: &str) -> SimResult<Fd> {
        let fd = self.inner.open(path)?;
        self.paths.insert(fd, path.to_string());
        self.trace.ops.push(TraceOp::Open(path.to_string()));
        Ok(fd)
    }

    fn close(&mut self, fd: Fd) -> SimResult<()> {
        let path = self.path_of(fd);
        self.inner.close(fd)?;
        self.paths.remove(&fd);
        self.trace.ops.push(TraceOp::Close(path));
        Ok(())
    }

    fn set_size(&mut self, fd: Fd, size: Bytes) -> SimResult<Nanos> {
        let r = self.inner.set_size(fd, size)?;
        self.trace.ops.push(TraceOp::SetSize {
            path: self.path_of(fd),
            size: size.as_u64(),
        });
        Ok(r)
    }

    fn read(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
        let r = self.inner.read(fd, offset, len)?;
        self.trace.ops.push(TraceOp::Read {
            path: self.path_of(fd),
            offset: offset.as_u64(),
            len: len.as_u64(),
        });
        Ok(r)
    }

    fn write(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
        let r = self.inner.write(fd, offset, len)?;
        self.trace.ops.push(TraceOp::Write {
            path: self.path_of(fd),
            offset: offset.as_u64(),
            len: len.as_u64(),
        });
        Ok(r)
    }

    fn fsync(&mut self, fd: Fd) -> SimResult<Nanos> {
        let r = self.inner.fsync(fd)?;
        self.trace.ops.push(TraceOp::Fsync(self.path_of(fd)));
        Ok(r)
    }

    fn drop_caches(&mut self) -> bool {
        self.inner.drop_caches()
    }

    fn set_cache_capacity_pages(&mut self, pages: u64) {
        self.inner.set_cache_capacity_pages(pages);
    }

    fn cache_hit_ratio(&self) -> Option<f64> {
        self.inner.cache_hit_ratio()
    }

    fn cache_stats(&self) -> Option<rb_simcache::page::CacheStats> {
        self.inner.cache_stats()
    }

    fn background_tick(&mut self) {
        self.inner.background_tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use crate::workload::{personalities, Engine, EngineConfig};

    /// One instance of every [`TraceOp`] variant.
    fn all_variants() -> Vec<TraceOp> {
        vec![
            TraceOp::Mkdir("/d".into()),
            TraceOp::Create("/d/f".into()),
            TraceOp::Open("/d/f".into()),
            TraceOp::SetSize {
                path: "/d/f".into(),
                size: 65536,
            },
            TraceOp::Read {
                path: "/d/f".into(),
                offset: 8192,
                len: 4096,
            },
            TraceOp::Write {
                path: "/d/f".into(),
                offset: 0,
                len: 4096,
            },
            TraceOp::Fsync("/d/f".into()),
            TraceOp::Stat("/d/f".into()),
            TraceOp::Close("/d/f".into()),
            TraceOp::Unlink("/d/f".into()),
        ]
    }

    #[test]
    fn text_roundtrip() {
        let trace = Trace {
            ops: all_variants(),
        };
        let text = trace.to_text().unwrap();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn every_variant_roundtrips_individually() {
        // serialize -> parse -> serialize must be a fixed point for each
        // variant on its own (not just for the combined trace).
        for op in all_variants() {
            let trace = Trace { ops: vec![op] };
            let text = trace.to_text().unwrap();
            let parsed = Trace::from_text(&text).unwrap();
            assert_eq!(parsed, trace, "asymmetry for {text:?}");
            assert_eq!(parsed.to_text().unwrap(), text, "reserialize differs");
        }
    }

    #[test]
    fn whitespace_paths_are_rejected_at_serialization() {
        // A path with a space would serialize into extra tokens and
        // parse back as a *different* operation; to_text refuses.
        for bad in ["/a b", "", " ", "/x\ty", "/new\nline", "#comment"] {
            let trace = Trace {
                ops: vec![TraceOp::Create(bad.into())],
            };
            assert!(trace.to_text().is_err(), "accepted path {bad:?}");
        }
        // And the parser refuses the trailing tokens such a line would
        // contain, instead of silently dropping them.
        assert!(Trace::from_text("create /a b").is_err());
        assert!(Trace::from_text("read /x 0 4096 junk").is_err());
        assert!(Trace::from_text("unlink /x /y").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::from_text("explode /x").is_err());
        assert!(Trace::from_text("read /x notanumber 12").is_err());
        assert!(Trace::from_text("read /x").is_err());
        // Comments and blanks are fine.
        let t = Trace::from_text("# hi\n\n  \ncreate /a\n").unwrap();
        assert_eq!(t.ops.len(), 1);
    }

    #[test]
    fn record_then_replay_reproduces_behaviour() {
        // Record a small engine run.
        let mut target = testbed::paper_ext2(rb_simcore::units::Bytes::gib(1), 1);
        let mut recorder = Recorder::new(&mut target);
        let w = personalities::varmail(10);
        let cfg = EngineConfig {
            duration: Nanos::from_secs(2),
            window: Nanos::from_secs(1),
            seed: 1,
            cold_start: false,
            prewarm: false,
            ..Default::default()
        };
        let rec = Engine::run(&mut recorder, &w, &cfg).unwrap();
        let trace = recorder.finish();
        assert!(trace.ops.len() as u64 >= rec.ops, "trace missed operations");

        // Replay on a fresh identical target: every op should succeed.
        let mut fresh = testbed::paper_ext2(rb_simcore::units::Bytes::gib(1), 1);
        let result = replay(&mut fresh, &trace);
        assert_eq!(result.errors, 0, "replay diverged");
        assert_eq!(result.ops, trace.ops.len() as u64);
        assert!(result.duration > Nanos::ZERO);
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = Trace::from_text(
            "mkdir /t\ncreate /t/a\nopen /t/a\nsetsize /t/a 1048576\n\
             read /t/a 0 8192\nread /t/a 524288 8192\nfsync /t/a\nclose /t/a\n",
        )
        .unwrap();
        let run = || {
            let mut t = testbed::paper_ext2(rb_simcore::units::Bytes::gib(1), 9);
            let r = replay(&mut t, &trace);
            (r.ops, r.errors, r.duration)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn replay_tolerates_missing_files() {
        let trace =
            Trace::from_text("stat /missing\nread /also-missing 0 4096\ncreate /ok\n").unwrap();
        let mut t = testbed::paper_ext2(rb_simcore::units::Bytes::gib(1), 2);
        let r = replay(&mut t, &trace);
        assert_eq!(r.errors, 2);
        assert_eq!(r.ops, 1);
    }
}
