//! Workload traces: record, serialize, replay.
//!
//! The trace subsystem lives in its own crate, [`rb_replay`] — the
//! format/model layer ([`Trace`], [`TraceOp`], [`TraceEntry`], the v1
//! and v2 text formats), the recording proxy ([`Recorder`]), the
//! [`Target`](crate::target::Target)-facing replay driver ([`replay`],
//! [`replay_with`]) with its [`Timing`] policies and dependency-aware
//! multi-stream merge, the transformation pipeline and the
//! characterization report. This module re-exports all of it so
//! existing `rb_core::trace::...` paths keep working; see the
//! [`rb_replay`] crate docs for the full taxonomy.

pub use rb_replay::driver::{
    replay, replay_with, schedule, ReplayConfig, ReplayError, ReplayResult,
};
pub use rb_replay::model::{Trace, TraceEntry, TraceOp, TraceVersion};
pub use rb_replay::profile::{characterize, TraceProfile};
pub use rb_replay::record::Recorder;
pub use rb_replay::timing::Timing;
pub use rb_replay::transform::{apply, merge, Transform};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use crate::workload::{personalities, Engine, EngineConfig};
    use rb_simcore::time::Nanos;

    #[test]
    fn record_then_replay_reproduces_behaviour() {
        // Record a small engine run.
        let mut target = testbed::paper_ext2(rb_simcore::units::Bytes::gib(1), 1);
        let mut recorder = Recorder::new(&mut target);
        let w = personalities::varmail(10);
        let cfg = EngineConfig {
            duration: Nanos::from_secs(2),
            window: Nanos::from_secs(1),
            seed: 1,
            cold_start: false,
            prewarm: false,
            ..Default::default()
        };
        let rec = Engine::run(&mut recorder, &w, &cfg).unwrap();
        let trace = recorder.finish();
        assert!(trace.len() as u64 >= rec.ops, "trace missed operations");
        // The recorder emits v2: timestamps are monotone and nontrivial.
        assert_eq!(trace.version, TraceVersion::V2);
        assert!(trace.span() > Nanos::ZERO);
        assert!(trace.entries.windows(2).all(|w| w[0].at <= w[1].at));

        // Replay on a fresh identical target: every op should succeed.
        let mut fresh = testbed::paper_ext2(rb_simcore::units::Bytes::gib(1), 1);
        let result = replay(&mut fresh, &trace);
        assert_eq!(result.errors, 0, "replay diverged");
        assert_eq!(result.ops, trace.len() as u64);
        assert!(result.duration > Nanos::ZERO);
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = Trace::from_text(
            "mkdir /t\ncreate /t/a\nopen /t/a\nsetsize /t/a 1048576\n\
             read /t/a 0 8192\nread /t/a 524288 8192\nfsync /t/a\nclose /t/a\n",
        )
        .unwrap();
        let run = || {
            let mut t = testbed::paper_ext2(rb_simcore::units::Bytes::gib(1), 9);
            let r = replay(&mut t, &trace);
            (r.ops, r.errors, r.duration)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn replay_tolerates_missing_files() {
        let trace =
            Trace::from_text("stat /missing\nread /also-missing 0 4096\ncreate /ok\n").unwrap();
        let mut t = testbed::paper_ext2(rb_simcore::units::Bytes::gib(1), 2);
        let r = replay(&mut t, &trace);
        assert_eq!(r.errors, 2);
        assert_eq!(r.ops, 1);
        let first = r.first_error.expect("first error reported");
        assert_eq!(first.op, "stat /missing");
    }

    #[test]
    fn timing_policies_diverge_on_the_simulated_stack() {
        // Record with real inter-arrival gaps (the engine's op overhead
        // spaces operations out), then replay the same v2 trace under
        // all three policies on identical fresh targets: afap must be
        // fastest, faithful must take at least the recorded span, and
        // scaled=10 must land in between.
        let mut origin = testbed::paper_ext2(rb_simcore::units::Bytes::gib(1), 3);
        let mut recorder = Recorder::new(&mut origin);
        let w = personalities::varmail(10);
        let cfg = EngineConfig {
            duration: Nanos::from_secs(2),
            window: Nanos::from_secs(1),
            seed: 3,
            cold_start: false,
            prewarm: false,
            ..Default::default()
        };
        Engine::run(&mut recorder, &w, &cfg).unwrap();
        let trace = recorder.finish();
        let span = trace.span();
        assert!(
            span > Nanos::from_millis(100),
            "trace has no gaps to honour"
        );

        let run = |timing: Timing| {
            let mut t = testbed::paper_ext2(rb_simcore::units::Bytes::gib(1), 3);
            let r = replay_with(&mut t, &trace, &ReplayConfig { timing, seed: 1 });
            assert_eq!(r.errors, 0, "{timing}: replay diverged");
            r.duration
        };
        let afap = run(Timing::Afap);
        let faithful = run(Timing::Faithful);
        // A gentle acceleration still leaves gaps to honour, so the
        // three policies order strictly; a huge factor would compress
        // the timeline below pure service time and (correctly) converge
        // to afap — the capacity-bound regime.
        let scaled = run(Timing::Scaled { factor: 1.5 });
        assert!(faithful >= span);
        assert!(
            afap < scaled && scaled < faithful,
            "{afap} {scaled} {faithful}"
        );
        let saturated = run(Timing::Scaled { factor: 1000.0 });
        assert_eq!(saturated, afap, "saturated replay is capacity-bound");
        // Deterministic: the same policy reproduces its duration.
        assert_eq!(run(Timing::Faithful), faithful);
    }
}
