//! Benchmark targets: the systems under test.
//!
//! A [`Target`] is anything the workload engine can drive: the simulated
//! storage stack (deterministic, virtual-time — used for every paper
//! reproduction) or a real directory on the host file system (wall-clock
//! — the harness as an actual tool). Both expose the same operations, so
//! a workload definition runs unchanged against either.
//!
//! The trait itself lives in [`rb_replay::target`] (traces are only
//! portable artifacts if any target can execute them); this module
//! re-exports it alongside the two canonical implementations.

use rb_simcore::error::{SimError, SimResult};
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use rb_simfs::intern::PathId;
use rb_simfs::stack::{Fd, OpCost, StorageStack};

pub use rb_replay::target::Target;

/// The simulated storage stack as a target.
pub struct SimTarget {
    stack: StorageStack,
    label: String,
}

impl SimTarget {
    /// Wraps a stack.
    pub fn new(stack: StorageStack) -> Self {
        let label = format!("sim:{}", stack.fs().name());
        SimTarget { stack, label }
    }

    /// The underlying stack.
    pub fn stack(&self) -> &StorageStack {
        &self.stack
    }

    /// Mutable access for experiment-specific surgery.
    pub fn stack_mut(&mut self) -> &mut StorageStack {
        &mut self.stack
    }

    /// The stack-level [`PathId`] for a timed op: the driver's
    /// pre-resolved id when present, a fresh resolution otherwise.
    fn resolve(&mut self, id: Option<PathId>, path: &str) -> SimResult<PathId> {
        match id {
            Some(id) => Ok(id),
            None => self.stack.resolve_path(path),
        }
    }
}

impl Target for SimTarget {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn now(&self) -> Nanos {
        self.stack.now()
    }

    fn advance(&mut self, d: Nanos) {
        self.stack.advance(d);
    }

    fn create(&mut self, path: &str) -> SimResult<Nanos> {
        self.stack.create(path)
    }

    fn mkdir(&mut self, path: &str) -> SimResult<Nanos> {
        self.stack.mkdir(path)
    }

    fn unlink(&mut self, path: &str) -> SimResult<Nanos> {
        self.stack.unlink(path)
    }

    fn stat(&mut self, path: &str) -> SimResult<Nanos> {
        self.stack.stat(path)
    }

    fn open(&mut self, path: &str) -> SimResult<Fd> {
        self.stack.open(path)
    }

    fn prepare_path(&mut self, path: &str) -> Option<PathId> {
        self.stack.resolve_path(path).ok()
    }

    fn create_id(&mut self, id: PathId, _path: &str) -> SimResult<Nanos> {
        self.stack.create_id(id)
    }

    fn mkdir_id(&mut self, id: PathId, _path: &str) -> SimResult<Nanos> {
        self.stack.mkdir_id(id)
    }

    fn unlink_id(&mut self, id: PathId, _path: &str) -> SimResult<Nanos> {
        self.stack.unlink_id(id)
    }

    fn stat_id(&mut self, id: PathId, _path: &str) -> SimResult<Nanos> {
        self.stack.stat_id(id)
    }

    fn open_id(&mut self, id: PathId, _path: &str) -> SimResult<Fd> {
        self.stack.open_id(id)
    }

    fn close(&mut self, fd: Fd) -> SimResult<()> {
        self.stack.close(fd)
    }

    fn set_size(&mut self, fd: Fd, size: Bytes) -> SimResult<Nanos> {
        self.stack.set_size_fd(fd, size)
    }

    fn read(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
        self.stack.read(fd, offset, len)
    }

    fn write(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
        self.stack.write(fd, offset, len)
    }

    fn fsync(&mut self, fd: Fd) -> SimResult<Nanos> {
        self.stack.fsync(fd)
    }

    fn drop_caches(&mut self) -> bool {
        self.stack.drop_caches();
        true
    }

    fn set_cache_capacity_pages(&mut self, pages: u64) {
        self.stack.set_cache_capacity_pages(pages);
    }

    fn cache_hit_ratio(&self) -> Option<f64> {
        Some(self.stack.cache().stats().hit_ratio())
    }

    fn cache_stats(&self) -> Option<rb_simcache::page::CacheStats> {
        Some(self.stack.cache().stats())
    }

    fn cache_policy(&self) -> Option<&'static str> {
        Some(self.stack.cache().policy_name())
    }

    fn stack_stats(&self) -> Option<rb_simfs::stack::StackStats> {
        Some(self.stack.stats())
    }

    fn disk_stats(&self) -> Option<rb_simdisk::device::DeviceStats> {
        Some(self.stack.disk_stats().clone())
    }

    fn background_tick(&mut self) {
        self.stack.writeback_tick();
    }

    // Time-parameterized forms: the stack executes at the scheduler's
    // instant and its private clock stays untouched.

    fn supports_timed(&self) -> bool {
        true
    }

    fn create_at(&mut self, id: Option<PathId>, path: &str, issue: Nanos) -> SimResult<OpCost> {
        let id = self.resolve(id, path)?;
        self.stack.create_id_at(id, issue)
    }

    fn mkdir_at(&mut self, id: Option<PathId>, path: &str, issue: Nanos) -> SimResult<OpCost> {
        let id = self.resolve(id, path)?;
        self.stack.mkdir_id_at(id, issue)
    }

    fn unlink_at(&mut self, id: Option<PathId>, path: &str, issue: Nanos) -> SimResult<OpCost> {
        let id = self.resolve(id, path)?;
        self.stack.unlink_id_at(id, issue)
    }

    fn stat_at(&mut self, id: Option<PathId>, path: &str, issue: Nanos) -> SimResult<OpCost> {
        let id = self.resolve(id, path)?;
        self.stack.stat_id_at(id, issue)
    }

    fn open_at(&mut self, id: Option<PathId>, path: &str, issue: Nanos) -> SimResult<(Fd, OpCost)> {
        let id = self.resolve(id, path)?;
        self.stack.open_id_at(id, issue)
    }

    fn set_size_at(&mut self, fd: Fd, size: Bytes, issue: Nanos) -> SimResult<OpCost> {
        self.stack.set_size_fd_at(fd, size, issue)
    }

    fn read_at(&mut self, fd: Fd, offset: Bytes, len: Bytes, issue: Nanos) -> SimResult<OpCost> {
        self.stack.read_at(fd, offset, len, issue)
    }

    fn write_at(&mut self, fd: Fd, offset: Bytes, len: Bytes, issue: Nanos) -> SimResult<OpCost> {
        self.stack.write_at(fd, offset, len, issue)
    }

    fn fsync_at(&mut self, fd: Fd, issue: Nanos) -> SimResult<OpCost> {
        self.stack.fsync_at(fd, issue)
    }

    fn tick_at(&mut self, issue: Nanos) -> Nanos {
        self.stack.writeback_tick_at(issue)
    }

    fn install_faults(&mut self, spec: rb_faults::FaultSpec, seed: u64) -> SimResult<()> {
        self.stack.install_faults(spec, seed);
        Ok(())
    }

    fn fault_stats(&self) -> Option<rb_faults::FaultStats> {
        self.stack.fault_stats().copied()
    }

    fn crash_recover(&mut self, issue: Nanos) -> SimResult<rb_faults::CrashReport> {
        self.stack.crash_recover_at(issue)
    }

    fn set_device_floor(&mut self, floor: Nanos) {
        self.stack.set_media_floor(floor);
    }
}

/// A real directory on the host file system as a target (wall-clock
/// timing via `std::time::Instant`).
///
/// Useful for sanity-checking the simulator against reality and for
/// using rocketbench as an actual measurement tool. Note everything the
/// paper warns about applies: results depend on the host's cache state,
/// scheduler and storage.
pub struct RealFsTarget {
    root: std::path::PathBuf,
    start: std::time::Instant,
    files: std::collections::HashMap<Fd, std::fs::File>,
    next_fd: Fd,
    buffer: Vec<u8>,
}

impl RealFsTarget {
    /// Creates a target rooted at an existing host directory.
    pub fn new(root: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(RealFsTarget {
            root,
            start: std::time::Instant::now(),
            files: Default::default(),
            next_fd: 3,
            buffer: vec![0u8; 1 << 20],
        })
    }

    fn host_path(&self, path: &str) -> std::path::PathBuf {
        self.root.join(path.trim_start_matches('/'))
    }

    fn io_err(e: std::io::Error) -> SimError {
        SimError::InvalidOperation(format!("host i/o error: {e}"))
    }
}

impl Target for RealFsTarget {
    fn name(&self) -> String {
        format!("real:{}", self.root.display())
    }

    fn now(&self) -> Nanos {
        Nanos::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    fn advance(&mut self, _d: Nanos) {
        // Real time passes on its own.
    }

    fn create(&mut self, path: &str) -> SimResult<Nanos> {
        let t0 = std::time::Instant::now();
        std::fs::File::create(self.host_path(path)).map_err(Self::io_err)?;
        Ok(Nanos::from_nanos(t0.elapsed().as_nanos() as u64))
    }

    fn mkdir(&mut self, path: &str) -> SimResult<Nanos> {
        let t0 = std::time::Instant::now();
        std::fs::create_dir_all(self.host_path(path)).map_err(Self::io_err)?;
        Ok(Nanos::from_nanos(t0.elapsed().as_nanos() as u64))
    }

    fn unlink(&mut self, path: &str) -> SimResult<Nanos> {
        let t0 = std::time::Instant::now();
        std::fs::remove_file(self.host_path(path)).map_err(Self::io_err)?;
        Ok(Nanos::from_nanos(t0.elapsed().as_nanos() as u64))
    }

    fn stat(&mut self, path: &str) -> SimResult<Nanos> {
        let t0 = std::time::Instant::now();
        std::fs::metadata(self.host_path(path)).map_err(Self::io_err)?;
        Ok(Nanos::from_nanos(t0.elapsed().as_nanos() as u64))
    }

    fn open(&mut self, path: &str) -> SimResult<Fd> {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.host_path(path))
            .map_err(Self::io_err)?;
        let fd = self.next_fd;
        self.next_fd += 1;
        self.files.insert(fd, f);
        Ok(fd)
    }

    fn close(&mut self, fd: Fd) -> SimResult<()> {
        self.files
            .remove(&fd)
            .map(|_| ())
            .ok_or_else(|| SimError::InvalidOperation(format!("bad fd {fd}")))
    }

    fn set_size(&mut self, fd: Fd, size: Bytes) -> SimResult<Nanos> {
        let t0 = std::time::Instant::now();
        let f = self
            .files
            .get(&fd)
            .ok_or_else(|| SimError::InvalidOperation(format!("bad fd {fd}")))?;
        f.set_len(size.as_u64()).map_err(Self::io_err)?;
        Ok(Nanos::from_nanos(t0.elapsed().as_nanos() as u64))
    }

    fn read(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
        use std::io::{Read, Seek, SeekFrom};
        let n = (len.as_u64() as usize).min(self.buffer.len());
        let f = self
            .files
            .get_mut(&fd)
            .ok_or_else(|| SimError::InvalidOperation(format!("bad fd {fd}")))?;
        let t0 = std::time::Instant::now();
        f.seek(SeekFrom::Start(offset.as_u64()))
            .map_err(Self::io_err)?;
        let mut read_total = 0usize;
        while read_total < n {
            match f.read(&mut self.buffer[read_total..n]) {
                Ok(0) => break,
                Ok(k) => read_total += k,
                Err(e) => return Err(Self::io_err(e)),
            }
        }
        Ok(Nanos::from_nanos(t0.elapsed().as_nanos() as u64))
    }

    fn write(&mut self, fd: Fd, offset: Bytes, len: Bytes) -> SimResult<Nanos> {
        use std::io::{Seek, SeekFrom, Write};
        let n = (len.as_u64() as usize).min(self.buffer.len());
        let f = self
            .files
            .get_mut(&fd)
            .ok_or_else(|| SimError::InvalidOperation(format!("bad fd {fd}")))?;
        let t0 = std::time::Instant::now();
        f.seek(SeekFrom::Start(offset.as_u64()))
            .map_err(Self::io_err)?;
        f.write_all(&self.buffer[..n]).map_err(Self::io_err)?;
        Ok(Nanos::from_nanos(t0.elapsed().as_nanos() as u64))
    }

    fn fsync(&mut self, fd: Fd) -> SimResult<Nanos> {
        let f = self
            .files
            .get(&fd)
            .ok_or_else(|| SimError::InvalidOperation(format!("bad fd {fd}")))?;
        let t0 = std::time::Instant::now();
        f.sync_all().map_err(Self::io_err)?;
        Ok(Nanos::from_nanos(t0.elapsed().as_nanos() as u64))
    }

    fn drop_caches(&mut self) -> bool {
        // Requires root on Linux; not attempted.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;

    #[test]
    fn sim_target_basic_ops() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        assert_eq!(t.name(), "sim:ext2");
        t.create("/f").unwrap();
        let fd = t.open("/f").unwrap();
        t.set_size(fd, Bytes::mib(1)).unwrap();
        let lat = t.read(fd, Bytes::ZERO, Bytes::kib(8)).unwrap();
        assert!(lat > Nanos::ZERO);
        assert!(t.cache_hit_ratio().is_some());
        assert!(t.drop_caches());
        t.close(fd).unwrap();
        t.unlink("/f").unwrap();
    }

    #[test]
    fn sim_target_advance_moves_clock() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let t0 = t.now();
        t.advance(Nanos::from_micros(99));
        assert_eq!(t.now() - t0, Nanos::from_micros(99));
    }

    #[test]
    fn real_target_round_trip() {
        let dir = std::env::temp_dir().join(format!("rb-target-test-{}", std::process::id()));
        let mut t = RealFsTarget::new(&dir).unwrap();
        t.mkdir("/d").unwrap();
        t.create("/d/f").unwrap();
        let fd = t.open("/d/f").unwrap();
        t.set_size(fd, Bytes::kib(64)).unwrap();
        t.write(fd, Bytes::ZERO, Bytes::kib(8)).unwrap();
        let lat = t.read(fd, Bytes::ZERO, Bytes::kib(8)).unwrap();
        assert!(lat > Nanos::ZERO);
        t.fsync(fd).unwrap();
        t.stat("/d/f").unwrap();
        t.close(fd).unwrap();
        t.unlink("/d/f").unwrap();
        assert!(!t.drop_caches());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn real_target_errors_are_reported() {
        let dir = std::env::temp_dir().join(format!("rb-target-err-{}", std::process::id()));
        let mut t = RealFsTarget::new(&dir).unwrap();
        assert!(t.open("/missing").is_err());
        assert!(t.unlink("/missing").is_err());
        assert!(t.read(42, Bytes::ZERO, Bytes::kib(4)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
