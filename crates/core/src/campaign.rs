//! Declarative sweep campaigns: multi-dimensional experiment grids.
//!
//! The paper's complaint is that file-system benchmarks are run as
//! one-off, under-specified experiments. A [`SweepSpec`] is the
//! opposite: a declarative cross-product over workload personality,
//! file size, file count, file system and cache capacity, executed under
//! one [`RunPlan`] protocol. The spec expands into a deduplicated list
//! of experiment [`Cell`]s; [`run_campaign`] shards the cells across
//! worker threads and aggregates per-cell [`Summary`] statistics into a
//! [`CampaignReport`] with CSV/JSON/ASCII renderers and per-dimension
//! grouping from the Section 2 taxonomy.
//!
//! Determinism is load-bearing: each cell's seed is derived by hashing
//! the cell's identity into the campaign's base seed, so results are
//! byte-identical no matter how many workers run the campaign or which
//! worker picks up which cell.
//!
//! ```
//! use rb_core::campaign::{run_campaign, Personality, SweepSpec};
//! use rb_core::runner::{Protocol, RunPlan};
//! use rb_core::testbed::FsKind;
//! use rb_simcore::time::Nanos;
//! use rb_simcore::units::Bytes;
//!
//! let mut plan = RunPlan::quick(7);
//! plan.protocol = Protocol::FixedRuns(1);
//! plan.duration = Nanos::from_secs(2);
//! let spec = SweepSpec {
//!     name: "doc".into(),
//!     personalities: vec![Personality::RandomRead],
//!     file_sizes: vec![Bytes::mib(4)],
//!     filesystems: vec![FsKind::Ext2],
//!     plan,
//!     ..SweepSpec::default()
//! };
//! let report = run_campaign(&spec, 2).unwrap();
//! assert_eq!(report.cells.len(), 1);
//! ```

use crate::dimensions::{Coverage, CoverageProfile, Dimension};
use crate::report::{self, Json};
use crate::runner::{
    drive_protocol, jittered_cache_pages, run_many, MultiRun, Protocol, RunPlan, Verdict,
};
use crate::sched::Arrival;
use crate::target::Target as _;
use crate::testbed::{self, FsKind};
use crate::workload::{personalities, Workload};
use rb_replay::{characterize, replay_with, ReplayConfig, Timing, Trace, TraceProfile};
use rb_simcore::error::{SimError, SimResult};
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use rb_stats::bootstrap::Interval;
use rb_stats::histogram::Log2Histogram;
use rb_stats::summary::Summary;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A named workload personality — the campaign's workload axis.
///
/// Size-driven personalities (`RandomRead`, `SequentialRead`,
/// `RandomWrite`) sweep the file-size axis; fileset-driven ones sweep
/// the file-count axis. Expansion normalizes the unused axis away so
/// cross products never produce duplicate cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Personality {
    /// 8 KiB random reads of one large file (the Figure 1 workload).
    RandomRead,
    /// Sequential reads of one large file.
    SequentialRead,
    /// 8 KiB random writes to one large file.
    RandomWrite,
    /// Zipf-popular whole-file reads plus a log append.
    Webserver,
    /// Mixed create/write/read/delete file serving.
    Fileserver,
    /// Mail-spool create/append/fsync/delete churn.
    Varmail,
    /// The Postmark transaction mix.
    Postmark,
    /// Pure namespace traffic: create/stat/open/delete.
    MetadataOnly,
}

impl Personality {
    /// Every personality, in report order.
    pub const ALL: [Personality; 8] = [
        Personality::RandomRead,
        Personality::SequentialRead,
        Personality::RandomWrite,
        Personality::Webserver,
        Personality::Fileserver,
        Personality::Varmail,
        Personality::Postmark,
        Personality::MetadataOnly,
    ];

    /// CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            Personality::RandomRead => "randomread",
            Personality::SequentialRead => "seqread",
            Personality::RandomWrite => "randomwrite",
            Personality::Webserver => "webserver",
            Personality::Fileserver => "fileserver",
            Personality::Varmail => "varmail",
            Personality::Postmark => "postmark",
            Personality::MetadataOnly => "metadata",
        }
    }

    /// Parses a CLI/report name.
    pub fn parse(name: &str) -> Option<Personality> {
        Personality::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Whether the file-size axis applies (single-file personalities).
    pub fn uses_file_size(self) -> bool {
        matches!(
            self,
            Personality::RandomRead | Personality::SequentialRead | Personality::RandomWrite
        )
    }

    /// Whether the file-count axis applies (fileset personalities).
    pub fn uses_file_count(self) -> bool {
        !self.uses_file_size()
    }

    /// Instantiates the workload for one cell.
    pub fn workload(self, file_size: Bytes, files: u64) -> Workload {
        match self {
            Personality::RandomRead => personalities::random_read(file_size),
            Personality::SequentialRead => personalities::sequential_read(file_size),
            Personality::RandomWrite => personalities::random_write(file_size),
            Personality::Webserver => personalities::webserver(files),
            Personality::Fileserver => personalities::fileserver(files),
            Personality::Varmail => personalities::varmail(files),
            Personality::Postmark => personalities::postmark(files),
            Personality::MetadataOnly => personalities::metadata_only(files),
        }
    }

    /// Which Section 2 dimensions the personality touches, in Table 1's
    /// marker language.
    pub fn coverage(self) -> CoverageProfile {
        use Coverage::{Exercises, Isolates};
        match self {
            Personality::RandomRead => {
                CoverageProfile::new(&[(Dimension::Io, Exercises), (Dimension::Caching, Isolates)])
            }
            Personality::SequentialRead => {
                CoverageProfile::new(&[(Dimension::Io, Isolates), (Dimension::Caching, Exercises)])
            }
            Personality::RandomWrite => CoverageProfile::new(&[
                (Dimension::Io, Exercises),
                (Dimension::OnDisk, Exercises),
                (Dimension::Caching, Exercises),
            ]),
            Personality::Webserver => CoverageProfile::new(&[
                (Dimension::Io, Exercises),
                (Dimension::Caching, Exercises),
                (Dimension::Metadata, Exercises),
            ]),
            Personality::Fileserver | Personality::Postmark => CoverageProfile::new(&[
                (Dimension::Io, Exercises),
                (Dimension::OnDisk, Exercises),
                (Dimension::Caching, Exercises),
                (Dimension::Metadata, Exercises),
            ]),
            Personality::Varmail => CoverageProfile::new(&[
                (Dimension::OnDisk, Exercises),
                (Dimension::Caching, Exercises),
                (Dimension::Metadata, Exercises),
            ]),
            Personality::MetadataOnly => CoverageProfile::new(&[(Dimension::Metadata, Isolates)]),
        }
    }
}

impl std::fmt::Display for Personality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A trace-backed workload for sweeps: a captured (or transformed)
/// [`Trace`] replayed under one [`Timing`] policy — the campaign's
/// answer to "trace-based evaluation is popular but irreproducible".
///
/// The `name` is the source's identity in cell keys and reports, so two
/// sources with the same name and timing are the same cell (dedup keeps
/// the first). The trace itself is shared (`Arc`) across worker threads
/// without copies.
#[derive(Debug, Clone)]
pub struct TraceSource {
    /// Report/identity name (e.g. the trace file's stem).
    pub name: String,
    /// The trace to replay.
    pub trace: Arc<Trace>,
    /// Timing policy each replay runs under.
    pub timing: Timing,
}

impl TraceSource {
    /// Wraps a trace as a sweep axis value.
    pub fn new(name: impl Into<String>, trace: Trace, timing: Timing) -> TraceSource {
        TraceSource {
            name: name.into(),
            trace: Arc::new(trace),
            timing,
        }
    }

    /// Section 2 coverage of this source. Everything is
    /// [`Coverage::Depends`] — the paper's ⋆ marker: what a trace
    /// exercises depends on the trace — limited to the dimensions its
    /// operations actually touch.
    pub fn coverage(&self) -> CoverageProfile {
        trace_coverage(&characterize(&self.trace))
    }
}

/// Derives the Section 2 coverage of a characterized trace from its
/// operation mix, using the paper's ⋆ ("depends on the workload/trace")
/// marker.
pub fn trace_coverage(profile: &TraceProfile) -> CoverageProfile {
    let count = |verb: &str| {
        profile
            .op_counts
            .iter()
            .find(|(v, _)| v == verb)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    };
    let mut pairs = Vec::new();
    if profile.reads + profile.writes > 0 {
        pairs.push((Dimension::Io, Coverage::Depends));
        pairs.push((Dimension::Caching, Coverage::Depends));
    }
    if profile.writes + count("setsize") + count("fsync") + count("create") + count("unlink") > 0 {
        pairs.push((Dimension::OnDisk, Coverage::Depends));
    }
    if count("create") + count("mkdir") + count("stat") + count("open") + count("unlink") > 0 {
        pairs.push((Dimension::Metadata, Coverage::Depends));
    }
    CoverageProfile::new(&pairs)
}

/// A declarative sweep: the cross product of every listed axis, run
/// under one repetition protocol.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Campaign name, for reports.
    pub name: String,
    /// Workload-personality axis.
    pub personalities: Vec<Personality>,
    /// Trace-backed workload axis: each source crosses with the
    /// file-system and cache axes (file size/count do not apply — a
    /// trace brings its own namespace and sizes).
    pub traces: Vec<TraceSource>,
    /// File-size axis (applies to size-driven personalities).
    pub file_sizes: Vec<Bytes>,
    /// File-count axis (applies to fileset-driven personalities).
    pub file_counts: Vec<u64>,
    /// Simulated file-system axis.
    pub filesystems: Vec<FsKind>,
    /// Cache-capacity axis (the paper's memory-pressure dimension).
    /// [`Bytes::ZERO`] means "uncontrolled": the target keeps its
    /// default cache and no per-run capacity jitter is applied.
    pub cache_capacities: Vec<Bytes>,
    /// Concurrency axis (the paper's scaling dimension): closed-loop
    /// process counts each personality cell runs under. Trace cells
    /// ignore it — a trace's concurrency is its recorded streams.
    /// Cells at `1` run the classic serial engine and keep their
    /// pre-axis identity (keys, seeds and report bytes unchanged).
    pub processes: Vec<u32>,
    /// Load-regime axis (the latency dimension): closed-loop and/or
    /// open-loop arrival processes each personality cell runs under.
    /// Trace cells ignore it — a trace's arrivals are its timestamps.
    /// Cells at [`Arrival::Closed`] keep their pre-axis identity (keys,
    /// seeds and report bytes unchanged); an empty axis means the
    /// implicit closed-loop default.
    pub arrivals: Vec<Arrival>,
    /// Fault-plan axis (the robustness dimension): fault specs each
    /// personality cell runs under, `None` meaning healthy hardware.
    /// Trace cells ignore it — a trace replays what it recorded.
    /// Healthy cells (`None`) keep their pre-axis identity (keys,
    /// seeds and report bytes unchanged); an empty axis means the
    /// implicit healthy default.
    pub faults: Vec<Option<rb_faults::FaultSpec>>,
    /// Retry policy every faulted cell runs under (healthy cells too —
    /// with no faults a retry policy never triggers, so it is free).
    pub retry: rb_faults::RetryPolicy,
    /// Optional SLO target on open-loop p99 latency: when set, every
    /// open-loop cell also reports the maximum offered load (ops/s)
    /// that still sustains `p99 <= slo_p99`, found by deterministic
    /// bisection over the arrival rate.
    pub slo_p99: Option<Nanos>,
    /// Repetition protocol applied to every cell. `plan.base_seed` is
    /// the campaign seed; each cell derives its own base seed from it.
    pub plan: RunPlan,
    /// Minimum formatted device size (grown per cell when a file would
    /// not fit comfortably).
    pub device: Bytes,
    /// Optional shared run budget for the whole campaign. Divided
    /// evenly across cells *before* execution (each cell's protocol is
    /// capped at `budget / n_cells` runs, floored at one), so the cap —
    /// like everything else — depends only on the spec, never on
    /// scheduling order, and reports stay byte-identical at any
    /// `--jobs` count.
    pub run_budget: Option<u64>,
}

impl Default for SweepSpec {
    /// One quick Figure-1-style cell: random read, 64 MiB, ext2, the
    /// paper's cache.
    fn default() -> Self {
        SweepSpec {
            name: "sweep".into(),
            personalities: vec![Personality::RandomRead],
            traces: Vec::new(),
            file_sizes: vec![Bytes::mib(64)],
            file_counts: vec![100],
            filesystems: vec![FsKind::Ext2],
            cache_capacities: vec![testbed::PAPER_CACHE],
            processes: vec![1],
            arrivals: vec![Arrival::Closed],
            faults: Vec::new(),
            retry: rb_faults::RetryPolicy::None,
            slo_p99: None,
            plan: RunPlan::quick(0),
            device: Bytes::gib(1),
            run_budget: None,
        }
    }
}

impl SweepSpec {
    /// Expands the spec into its deduplicated experiment cells, in a
    /// deterministic order (axes iterate in declaration order).
    ///
    /// Normalization powers deduplication: a personality that ignores an
    /// axis gets the neutral value (`0`) on that axis, so e.g. `varmail`
    /// crossed with five file sizes still yields one cell per
    /// (count, fs, cache) combination.
    pub fn expand(&self) -> Vec<Cell> {
        let mut seen = HashSet::new();
        let mut cells = Vec::new();
        // An empty processes axis means the implicit serial default.
        let processes: &[u32] = if self.processes.is_empty() {
            &[1]
        } else {
            &self.processes
        };
        // Likewise an empty arrival axis means the closed-loop default.
        let arrivals: &[Arrival] = if self.arrivals.is_empty() {
            &[Arrival::Closed]
        } else {
            &self.arrivals
        };
        // And an empty fault axis means the implicit healthy default.
        let faults: &[Option<rb_faults::FaultSpec>] = if self.faults.is_empty() {
            &[None]
        } else {
            &self.faults
        };
        for &personality in &self.personalities {
            let sizes: &[Bytes] = if personality.uses_file_size() {
                &self.file_sizes
            } else {
                &[Bytes::ZERO]
            };
            let counts: &[u64] = if personality.uses_file_count() {
                &self.file_counts
            } else {
                &[0]
            };
            for &file_size in sizes {
                for &files in counts {
                    for &fs in &self.filesystems {
                        for &cache in &self.cache_capacities {
                            for &procs in processes {
                                for &arrival in arrivals {
                                    for &fault in faults {
                                        let cell = Cell {
                                            workload: CellWorkload::Personality(personality),
                                            file_size,
                                            files,
                                            fs,
                                            cache,
                                            processes: procs.max(1),
                                            arrival,
                                            faults: fault,
                                        };
                                        if seen.insert(cell.key()) {
                                            cells.push(cell);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Trace-backed cells cross with the fs and cache axes only: a
        // trace's concurrency is its recorded stream structure, not a
        // knob.
        for (index, source) in self.traces.iter().enumerate() {
            for &fs in &self.filesystems {
                for &cache in &self.cache_capacities {
                    let cell = Cell {
                        workload: CellWorkload::Trace {
                            index,
                            name: source.name.clone(),
                            timing: source.timing.label(),
                        },
                        file_size: Bytes::ZERO,
                        files: 0,
                        fs,
                        cache,
                        processes: 1,
                        arrival: Arrival::Closed,
                        faults: None,
                    };
                    if seen.insert(cell.key()) {
                        cells.push(cell);
                    }
                }
            }
        }
        cells
    }
}

/// What a cell runs: a synthetic personality or a replayed trace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellWorkload {
    /// A synthetic flowop personality.
    Personality(Personality),
    /// A trace replayed under a timing policy.
    Trace {
        /// Index into [`SweepSpec::traces`].
        index: usize,
        /// The source's identity name.
        name: String,
        /// Canonical timing label (`afap`/`faithful`/`scaled=N`); part
        /// of the cell identity because the policy changes what the
        /// cell measures.
        timing: String,
    },
}

/// One point of the experiment grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    /// What the cell runs.
    pub workload: CellWorkload,
    /// File size ([`Bytes::ZERO`] when the workload ignores it).
    pub file_size: Bytes,
    /// File count (`0` when the workload ignores it).
    pub files: u64,
    /// File system under test.
    pub fs: FsKind,
    /// Controlled cache capacity ([`Bytes::ZERO`] = uncontrolled).
    pub cache: Bytes,
    /// Closed-loop processes the cell runs under (`1` = serial).
    pub processes: u32,
    /// Load regime ([`Arrival::Closed`] = the classic closed loop).
    pub arrival: Arrival,
    /// Fault plan the cell runs under (`None` = healthy hardware).
    pub faults: Option<rb_faults::FaultSpec>,
}

impl Cell {
    /// The cell's personality, when it runs one.
    pub fn personality(&self) -> Option<Personality> {
        match self.workload {
            CellWorkload::Personality(p) => Some(p),
            CellWorkload::Trace { .. } => None,
        }
    }

    /// Report name of the cell's workload (`"varmail"`,
    /// `"trace:mail@faithful"`, …).
    pub fn workload_name(&self) -> String {
        match &self.workload {
            CellWorkload::Personality(p) => p.name().to_string(),
            CellWorkload::Trace { name, timing, .. } => format!("trace:{name}@{timing}"),
        }
    }

    /// Whether the file-size axis applies to this cell.
    pub fn uses_file_size(&self) -> bool {
        self.personality().is_some_and(|p| p.uses_file_size())
    }

    /// Canonical identity string: the dedup key and the seed-derivation
    /// input. Must not depend on axis ordering or scheduling.
    ///
    /// Personality cells keep the exact pre-trace format, so their
    /// derived seeds — and therefore every personality campaign's
    /// numbers — are unchanged by the trace axis existing. The same
    /// discipline applies to the concurrency axis: serial cells
    /// (`processes == 1`) omit the marker entirely, so every pre-axis
    /// campaign's seeds and report bytes are preserved.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}|size={}|files={}|fs={}|cache={}",
            match &self.workload {
                CellWorkload::Personality(p) => p.name().to_string(),
                CellWorkload::Trace { name, timing, .. } => format!("trace:{name}@{timing}"),
            },
            self.file_size.as_u64(),
            self.files,
            self.fs.name(),
            self.cache.as_u64()
        );
        if self.processes > 1 {
            let _ = write!(key, "|procs={}", self.processes);
        }
        // Closed-loop cells omit the arrival marker entirely, so every
        // pre-axis campaign's seeds and report bytes are preserved.
        // (Display writes the label straight into the key buffer — no
        // intermediate String per cell key.)
        if self.arrival.is_open() {
            let _ = write!(key, "|arrival={}", self.arrival);
        }
        // Healthy cells likewise omit the fault marker, so every
        // pre-fault-axis campaign's seeds and report bytes are
        // preserved.
        if let Some(f) = &self.faults {
            let _ = write!(key, "|faults={}", f.label());
        }
        key
    }

    /// Human-oriented label for tables and charts.
    pub fn label(&self) -> String {
        match &self.workload {
            CellWorkload::Personality(p) => {
                let mut parts = vec![p.name().to_string()];
                if p.uses_file_size() {
                    parts.push(format!("{}", self.file_size));
                } else {
                    parts.push(format!("{}f", self.files));
                }
                parts.push(self.fs.name().to_string());
                if self.processes > 1 {
                    parts.push(format!("{}p", self.processes));
                }
                if self.arrival.is_open() {
                    parts.push(self.arrival.label());
                }
                if let Some(f) = &self.faults {
                    parts.push(f.label());
                }
                parts.join("/")
            }
            CellWorkload::Trace { name, timing, .. } => {
                format!("{name}@{timing}/{}", self.fs.name())
            }
        }
    }

    /// The cell's derived base seed: a 64-bit FNV-1a hash of the cell
    /// key folded into the campaign seed. Every run `i` of the cell then
    /// uses `derived + i`, exactly as [`RunPlan`] prescribes.
    pub fn seed(&self, campaign_seed: u64) -> u64 {
        derive_seed(campaign_seed, &self.key())
    }
}

/// Folds `key` into `base_seed` with 64-bit FNV-1a (the shared
/// [`rb_simcore::fnv::fnv1a`] — the same primitive that hashes the
/// hot-path maps). Stable across platforms and releases;
/// scheduling-independent by construction.
pub fn derive_seed(base_seed: u64, key: &str) -> u64 {
    use rb_simcore::fnv::{fnv1a, FNV_OFFSET};
    fnv1a(fnv1a(FNV_OFFSET, &base_seed.to_le_bytes()), key.as_bytes())
}

/// One cell's aggregated outcome.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell.
    pub cell: Cell,
    /// Section 2 coverage of the cell's workload (a personality's
    /// static profile, or a trace's ⋆-derived profile).
    pub coverage: CoverageProfile,
    /// Derived base seed the cell ran under.
    pub seed: u64,
    /// Steady-state throughput of each run, in run order — the "range
    /// of values" the paper wants reported alongside any mean.
    pub samples: Vec<f64>,
    /// Steady-state throughput summary across the cell's runs.
    pub summary: Summary,
    /// Bootstrap CI on the mean, at the protocol's confidence level.
    pub ci: Option<Interval>,
    /// Why the cell's experiment stopped (converged / max-runs /
    /// mixed-regime / fixed).
    pub verdict: Verdict,
    /// Runs actually executed — under an adaptive protocol this varies
    /// per cell (stable cells stop early; fragile ones run long).
    pub runs: u32,
    /// Mean cache hit ratio across runs, when the target reports one.
    pub hit_ratio: Option<f64>,
    /// Total failed operations across runs.
    pub errors: u64,
    /// Open-loop tail statistics, for cells on the arrival axis
    /// (`None` for closed-loop cells).
    pub open_loop: Option<OpenCellStats>,
    /// Flight-recorder snapshot from the cell's first run, when the
    /// plan enabled metrics capture. The first run (not an aggregate)
    /// keeps the snapshot an exact, explainable account of one run.
    pub metrics: Option<rb_obs::MetricsSnapshot>,
    /// Outcome ledger merged across the cell's runs, for cells on the
    /// fault axis (`None` for healthy cells). Conservation holds on
    /// the merge because it holds per run.
    pub ledger: Option<rb_faults::OutcomeLedger>,
}

/// Open-loop statistics aggregated across one cell's runs: the offered
/// and dropped ledgers summed, the percentile ladder read off the
/// merged per-run latency histograms (merging is order-independent, so
/// the ladder is scheduling-independent too).
#[derive(Debug, Clone, PartialEq)]
pub struct OpenCellStats {
    /// Total ops the arrival process offered, across runs.
    pub offered: u64,
    /// Ops dropped at the bounded queue, across runs.
    pub dropped: u64,
    /// Median completion latency (arrival to completion).
    pub p50: Option<Nanos>,
    /// 99th-percentile completion latency.
    pub p99: Option<Nanos>,
    /// 99.9th-percentile completion latency.
    pub p999: Option<Nanos>,
    /// Maximum offered load (ops/s) sustaining `p99 <= slo_p99`, when
    /// the campaign set an SLO target.
    pub slo_max_rate: Option<u64>,
}

impl OpenCellStats {
    /// Fraction of offered ops dropped at the queue.
    pub fn drop_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }

    fn from_runs(mr: &MultiRun) -> OpenCellStats {
        let mut offered = 0u64;
        let mut dropped = 0u64;
        let mut histogram = Log2Histogram::new();
        for o in &mr.outcomes {
            if let Some(report) = &o.recording.open_loop {
                offered += report.offered;
                dropped += report.dropped;
            }
            histogram.merge(&o.recording.histogram);
        }
        OpenCellStats {
            offered,
            dropped,
            p50: histogram.quantile(0.5),
            p99: histogram.quantile(0.99),
            p999: histogram.quantile(0.999),
            slo_max_rate: None,
        }
    }
}

impl CellResult {
    fn from_multi_run(
        cell: Cell,
        coverage: CoverageProfile,
        seed: u64,
        mr: &MultiRun,
    ) -> CellResult {
        let ratios: Vec<f64> = mr
            .outcomes
            .iter()
            .filter_map(|o| o.recording.hit_ratio)
            .collect();
        let hit_ratio = if ratios.is_empty() {
            None
        } else {
            Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
        };
        let errors = mr.outcomes.iter().map(|o| o.recording.errors).sum();
        let open_loop = cell.arrival.is_open().then(|| OpenCellStats::from_runs(mr));
        let metrics = mr
            .outcomes
            .first()
            .and_then(|o| o.recording.metrics.clone());
        let ledger = mr
            .outcomes
            .iter()
            .filter_map(|o| o.recording.ledger.as_ref())
            .fold(None::<rb_faults::OutcomeLedger>, |acc, l| match acc {
                Some(mut merged) => {
                    merged.merge(l);
                    Some(merged)
                }
                None => Some(l.clone()),
            });
        CellResult {
            cell,
            coverage,
            seed,
            samples: mr.samples(),
            summary: mr.summary.clone(),
            ci: mr.ci,
            verdict: mr.verdict,
            runs: mr.runs(),
            hit_ratio,
            errors,
            open_loop,
            metrics,
            ledger,
        }
    }
}

/// A completed campaign: every cell's aggregate, in expansion order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name (from the spec).
    pub name: String,
    /// Worker threads used (informational; never affects results).
    pub jobs: usize,
    /// Per-cell aggregates, in [`SweepSpec::expand`] order.
    pub cells: Vec<CellResult>,
}

impl CampaignReport {
    /// Union coverage of every cell's workload — what the whole
    /// campaign exercised, in the Section 2 taxonomy.
    pub fn coverage(&self) -> CoverageProfile {
        self.cells
            .iter()
            .fold(CoverageProfile::EMPTY, |acc, c| acc.union(&c.coverage))
    }

    /// Per-dimension grouping: for each taxonomy dimension the cells
    /// exercising it, summarized over their mean throughputs. The
    /// per-dimension RSD is the cross-*configuration* spread — large
    /// values mean the dimension's setting materially changes results,
    /// exactly what the paper says single-configuration benchmarks hide.
    pub fn dimension_groups(&self) -> Vec<(Dimension, Summary)> {
        Dimension::ALL
            .iter()
            .filter_map(|&d| {
                let means: Vec<f64> = self
                    .cells
                    .iter()
                    .filter(|c| c.coverage.get(d) != Coverage::None)
                    .map(|c| c.summary.mean)
                    .collect();
                Summary::from_sample(&means).map(|s| (d, s))
            })
            .collect()
    }

    /// Whether any cell runs concurrently. Reports only grow their
    /// `processes` column when the axis is actually swept, so every
    /// pre-axis campaign's CSV/JSON/table stays byte-identical.
    pub fn sweeps_processes(&self) -> bool {
        self.cells.iter().any(|c| c.cell.processes > 1)
    }

    /// Whether any cell runs open-loop. Like the `processes` column,
    /// the `arrival` column (and the open-loop tail columns) only
    /// appear when the axis is actually swept, so every pre-axis
    /// campaign's CSV/JSON/table stays byte-identical.
    pub fn sweeps_arrival(&self) -> bool {
        self.cells.iter().any(|c| c.cell.arrival.is_open())
    }

    /// Whether any cell runs under a fault plan. Like the other axis
    /// columns, the `faults` and ledger columns only appear when the
    /// axis is actually swept, so every pre-axis campaign's
    /// CSV/JSON/table stays byte-identical.
    pub fn sweeps_faults(&self) -> bool {
        self.cells.iter().any(|c| c.cell.faults.is_some())
    }

    /// Whether any cell carries an SLO verdict.
    fn has_slo(&self) -> bool {
        self.cells.iter().any(|c| {
            c.open_loop
                .as_ref()
                .is_some_and(|o| o.slo_max_rate.is_some())
        })
    }

    /// Whether any cell carries a flight-recorder snapshot. Like the
    /// axis columns, the `--metrics` columns only appear when the plan
    /// recorded them, so every recorder-off report stays byte-identical.
    fn has_metrics(&self) -> bool {
        self.cells.iter().any(|c| c.metrics.is_some())
    }

    /// The campaign table as CSV (one row per cell, runs' spread
    /// included). Campaigns that sweep the concurrency axis get a
    /// `processes` column after `cache_mib`.
    pub fn to_csv(&self) -> String {
        let procs = self.sweeps_processes();
        let arrival = self.sweeps_arrival();
        let faults = self.sweeps_faults();
        let slo = self.has_slo();
        let metrics = self.has_metrics();
        let ms = |v: Option<Nanos>| {
            v.map(|n| format!("{:.3}", n.as_secs_f64() * 1e3))
                .unwrap_or_default()
        };
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                let mut row = vec![
                    c.cell.workload_name(),
                    c.cell.file_size.as_mib().to_string(),
                    c.cell.files.to_string(),
                    c.cell.fs.name().to_string(),
                    c.cell.cache.as_mib().to_string(),
                ];
                if procs {
                    row.push(c.cell.processes.to_string());
                }
                if arrival {
                    row.push(c.cell.arrival.label());
                }
                if faults {
                    row.push(
                        c.cell
                            .faults
                            .as_ref()
                            .map(|f| f.label())
                            .unwrap_or_else(|| "none".into()),
                    );
                }
                row.extend([
                    format!("{}", c.seed),
                    c.runs.to_string(),
                    format!("{:.1}", c.summary.mean),
                    format!("{:.3}", c.summary.rsd_percent),
                    c.ci.map(|ci| format!("{:.1}", ci.lo)).unwrap_or_default(),
                    c.ci.map(|ci| format!("{:.1}", ci.hi)).unwrap_or_default(),
                    c.verdict.label().to_string(),
                    format!("{:.1}", c.summary.min),
                    format!("{:.1}", c.summary.max),
                    c.hit_ratio.map(|h| format!("{h:.4}")).unwrap_or_default(),
                    c.errors.to_string(),
                ]);
                if arrival {
                    let o = c.open_loop.as_ref();
                    row.extend([
                        o.map(|o| o.offered.to_string()).unwrap_or_default(),
                        o.map(|o| o.dropped.to_string()).unwrap_or_default(),
                        ms(o.and_then(|o| o.p50)),
                        ms(o.and_then(|o| o.p99)),
                        ms(o.and_then(|o| o.p999)),
                    ]);
                }
                if slo {
                    row.push(
                        c.open_loop
                            .as_ref()
                            .and_then(|o| o.slo_max_rate)
                            .map(|r| r.to_string())
                            .unwrap_or_default(),
                    );
                }
                if faults {
                    let l = c.ledger.as_ref();
                    row.extend([
                        l.map(|l| l.attempted.to_string()).unwrap_or_default(),
                        l.map(|l| l.succeeded.to_string()).unwrap_or_default(),
                        l.map(|l| l.retried_ok.to_string()).unwrap_or_default(),
                        l.map(|l| l.gave_up.to_string()).unwrap_or_default(),
                        l.map(|l| l.retries.to_string()).unwrap_or_default(),
                        l.map(|l| format!("{:.3}", l.degraded.as_secs_f64() * 1e3))
                            .unwrap_or_default(),
                        l.and_then(|l| l.crash.as_ref())
                            .map(|cr| {
                                if cr.consistent {
                                    "recovered".to_string()
                                } else {
                                    "inconsistent".to_string()
                                }
                            })
                            .unwrap_or_default(),
                    ]);
                }
                if metrics {
                    let m = c.metrics.as_ref();
                    row.extend([
                        m.and_then(|m| m.device_busy_frac())
                            .map(|x| format!("{:.2}", x * 100.0))
                            .unwrap_or_default(),
                        m.map(|m| format!("{:.2}", m.sched.queue_wait_share() * 100.0))
                            .unwrap_or_default(),
                        m.and_then(|m| m.disk.as_ref().map(|d| d.seeks.to_string()))
                            .unwrap_or_default(),
                        m.and_then(|m| m.fs.as_ref().map(|f| f.journal_commits.to_string()))
                            .unwrap_or_default(),
                        m.and_then(|m| m.cache.as_ref().map(|c| c.writeback_flushed.to_string()))
                            .unwrap_or_default(),
                    ]);
                }
                row
            })
            .collect();
        let mut header = vec!["workload", "size_mib", "files", "fs", "cache_mib"];
        if procs {
            header.push("processes");
        }
        if arrival {
            header.push("arrival");
        }
        if faults {
            header.push("faults");
        }
        header.extend([
            "seed",
            "runs",
            "mean_ops_per_sec",
            "rsd_percent",
            "ci_lo",
            "ci_hi",
            "verdict",
            "min",
            "max",
            "hit_ratio",
            "errors",
        ]);
        if arrival {
            header.extend(["offered", "dropped", "p50_ms", "p99_ms", "p999_ms"]);
        }
        if slo {
            header.push("slo_max_ops_per_sec");
        }
        if faults {
            header.extend([
                "attempted",
                "ok_first_try",
                "retried_ok",
                "gave_up",
                "retries",
                "degraded_ms",
                "crash",
            ]);
        }
        if metrics {
            header.extend([
                "dev_busy_pct",
                "qwait_pct",
                "seeks",
                "journal_commits",
                "writeback_flushed",
            ]);
        }
        report::to_csv(&header, &rows)
    }

    /// The campaign as a JSON document (cells + aggregate coverage).
    /// Like the CSV, the per-cell `processes` field only appears when
    /// the concurrency axis is swept.
    pub fn to_json(&self) -> Json {
        let procs = self.sweeps_processes();
        let arrival = self.sweeps_arrival();
        let faults = self.sweeps_faults();
        let metrics = self.has_metrics();
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let mut fields = vec![
                    ("workload", Json::Str(c.cell.workload_name())),
                    ("size_bytes", Json::Num(c.cell.file_size.as_u64() as f64)),
                    ("files", Json::Num(c.cell.files as f64)),
                    ("fs", Json::Str(c.cell.fs.name().into())),
                    ("cache_bytes", Json::Num(c.cell.cache.as_u64() as f64)),
                ];
                if procs {
                    fields.push(("processes", Json::Num(c.cell.processes as f64)));
                }
                if arrival {
                    fields.push(("arrival", Json::Str(c.cell.arrival.label())));
                }
                if faults {
                    fields.push((
                        "faults",
                        Json::Str(
                            c.cell
                                .faults
                                .as_ref()
                                .map(|f| f.label())
                                .unwrap_or_else(|| "none".into()),
                        ),
                    ));
                }
                fields.extend([
                    ("seed", Json::Num(c.seed as f64)),
                    ("runs", Json::Num(c.runs as f64)),
                    (
                        "samples",
                        Json::Arr(c.samples.iter().map(|&s| Json::Num(s)).collect()),
                    ),
                    ("mean_ops_per_sec", Json::Num(c.summary.mean)),
                    ("rsd_percent", Json::Num(c.summary.rsd_percent)),
                    (
                        "ci",
                        match c.ci {
                            Some(ci) => Json::obj(vec![
                                ("lo", Json::Num(ci.lo)),
                                ("hi", Json::Num(ci.hi)),
                                ("rel_width", Json::Num(ci.rel_width())),
                            ]),
                            None => Json::Null,
                        },
                    ),
                    ("verdict", Json::Str(c.verdict.label().into())),
                    ("min", Json::Num(c.summary.min)),
                    ("max", Json::Num(c.summary.max)),
                    (
                        "hit_ratio",
                        c.hit_ratio.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("errors", Json::Num(c.errors as f64)),
                ]);
                if arrival {
                    let open = match &c.open_loop {
                        Some(o) => {
                            let ms = |v: Option<Nanos>| {
                                v.map(|n| Json::Num(n.as_secs_f64() * 1e3))
                                    .unwrap_or(Json::Null)
                            };
                            Json::obj(vec![
                                ("offered", Json::Num(o.offered as f64)),
                                ("dropped", Json::Num(o.dropped as f64)),
                                ("drop_ratio", Json::Num(o.drop_ratio())),
                                ("p50_ms", ms(o.p50)),
                                ("p99_ms", ms(o.p99)),
                                ("p999_ms", ms(o.p999)),
                                (
                                    "slo_max_ops_per_sec",
                                    o.slo_max_rate
                                        .map(|r| Json::Num(r as f64))
                                        .unwrap_or(Json::Null),
                                ),
                            ])
                        }
                        None => Json::Null,
                    };
                    fields.push(("open_loop", open));
                }
                if faults {
                    let ledger = match &c.ledger {
                        Some(l) => {
                            let mut lf = vec![
                                ("attempted", Json::Num(l.attempted as f64)),
                                ("succeeded", Json::Num(l.succeeded as f64)),
                                ("retried_ok", Json::Num(l.retried_ok as f64)),
                                ("gave_up", Json::Num(l.gave_up as f64)),
                                ("dropped", Json::Num(l.dropped as f64)),
                                ("retries", Json::Num(l.retries as f64)),
                                ("degraded_ms", Json::Num(l.degraded.as_secs_f64() * 1e3)),
                                ("balanced", Json::Bool(l.balanced())),
                            ];
                            if let Some(cr) = &l.crash {
                                lf.push((
                                    "crash",
                                    Json::obj(vec![
                                        ("at_ms", Json::Num(cr.at.as_secs_f64() * 1e3)),
                                        ("mechanism", Json::Str(cr.mechanism.into())),
                                        ("recovery_ms", Json::Num(cr.recovery.as_secs_f64() * 1e3)),
                                        ("lost_dirty_pages", Json::Num(cr.lost_dirty_pages as f64)),
                                        ("consistent", Json::Bool(cr.consistent)),
                                    ]),
                                ));
                            }
                            Json::obj(lf)
                        }
                        None => Json::Null,
                    };
                    fields.push(("ledger", ledger));
                }
                if metrics {
                    let m = match &c.metrics {
                        Some(m) => {
                            let counters = m
                                .counters()
                                .into_iter()
                                .map(|(n, v)| (n, Json::Num(v as f64)))
                                .collect();
                            Json::obj(vec![
                                (
                                    "hit_ratio",
                                    m.hit_ratio().map(Json::Num).unwrap_or(Json::Null),
                                ),
                                (
                                    "device_busy",
                                    m.device_busy_frac().map(Json::Num).unwrap_or(Json::Null),
                                ),
                                ("queue_wait_share", Json::Num(m.sched.queue_wait_share())),
                                ("counters", Json::obj(counters)),
                            ])
                        }
                        None => Json::Null,
                    };
                    fields.push(("metrics", m));
                }
                Json::obj(fields)
            })
            .collect();
        let coverage = self.coverage();
        let cov = Dimension::ALL
            .iter()
            .map(|&d| {
                Json::obj(vec![
                    ("dimension", Json::Str(d.label().into())),
                    ("coverage", Json::Str(coverage.get(d).glyph().trim().into())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("campaign", Json::Str(self.name.clone())),
            ("cells", Json::Arr(cells)),
            ("coverage", Json::Arr(cov)),
        ])
    }

    /// Renders the campaign for the terminal: the cell table, the
    /// dimension grouping, the aggregate coverage row, and (when the
    /// campaign swept the file-size axis) an ASCII chart of throughput
    /// vs size per (personality, fs) series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign {:?}: {} cells ({} worker{})",
            self.name,
            self.cells.len(),
            self.jobs,
            if self.jobs == 1 { "" } else { "s" }
        );
        let procs = self.sweeps_processes();
        let arrival = self.sweeps_arrival();
        let faults = self.sweeps_faults();
        let slo = self.has_slo();
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                let mut row = vec![
                    c.cell.label(),
                    if c.cell.cache.is_zero() {
                        "-".into()
                    } else {
                        format!("{}", c.cell.cache)
                    },
                ];
                if procs {
                    row.push(c.cell.processes.to_string());
                }
                if arrival {
                    row.push(c.cell.arrival.label());
                }
                row.extend([
                    c.runs.to_string(),
                    format!("{:.0}", c.summary.mean),
                    format!("{:.1}", c.summary.rsd_percent),
                    c.ci.map(|ci| format!("±{:.0}", ci.half_width()))
                        .unwrap_or_else(|| "-".into()),
                    format!("{:.0}", c.summary.min),
                    format!("{:.0}", c.summary.max),
                    c.hit_ratio
                        .map(|h| format!("{h:.3}"))
                        .unwrap_or_else(|| "-".into()),
                    c.verdict.label().to_string(),
                ]);
                if arrival {
                    let o = c.open_loop.as_ref();
                    row.extend([
                        o.and_then(|o| o.p99)
                            .map(|p| format!("{:.2}", p.as_secs_f64() * 1e3))
                            .unwrap_or_else(|| "-".into()),
                        o.map(|o| format!("{:.3}", o.drop_ratio()))
                            .unwrap_or_else(|| "-".into()),
                    ]);
                }
                if slo {
                    row.push(
                        c.open_loop
                            .as_ref()
                            .and_then(|o| o.slo_max_rate)
                            .map(|r| r.to_string())
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                if faults {
                    let l = c.ledger.as_ref();
                    row.extend([
                        l.map(|l| l.retries.to_string())
                            .unwrap_or_else(|| "-".into()),
                        l.map(|l| l.gave_up.to_string())
                            .unwrap_or_else(|| "-".into()),
                        l.and_then(|l| l.crash.as_ref())
                            .map(|cr| {
                                if cr.consistent {
                                    "recovered".into()
                                } else {
                                    "INCONSISTENT".to_string()
                                }
                            })
                            .unwrap_or_else(|| "-".into()),
                    ]);
                }
                row
            })
            .collect();
        let mut header = vec!["cell", "cache"];
        if procs {
            header.push("procs");
        }
        if arrival {
            header.push("arrival");
        }
        header.extend(["n", "ops/s", "rsd%", "ci", "min", "max", "hits", "verdict"]);
        if arrival {
            header.extend(["p99ms", "drop"]);
        }
        if slo {
            header.push("slo ops/s");
        }
        if faults {
            header.extend(["retries", "gave-up", "crash"]);
        }
        out.push_str(&report::text_table(&header, &rows));
        out.push('\n');
        let groups = self.dimension_groups();
        if !groups.is_empty() {
            let _ = writeln!(out, "per-dimension grouping (Section 2 taxonomy):");
            let rows: Vec<Vec<String>> = groups
                .iter()
                .map(|(d, s)| {
                    vec![
                        d.label().to_string(),
                        s.n.to_string(),
                        format!("{:.0}", s.mean),
                        format!("{:.1}", s.rsd_percent),
                        format!("{:.1}x", s.spread()),
                    ]
                })
                .collect();
            out.push_str(&report::text_table(
                &[
                    "dimension",
                    "cells",
                    "mean ops/s",
                    "cross-cell rsd%",
                    "spread",
                ],
                &rows,
            ));
            let coverage = self.coverage();
            let cov: Vec<String> = Dimension::ALL
                .iter()
                .map(|&d| format!("{}:{}", d.label(), coverage.get(d).glyph().trim()))
                .collect();
            let _ = writeln!(out, "campaign coverage: {}", cov.join("  "));
            out.push('\n');
        }
        if let Some(chart) = self.size_chart() {
            let _ = writeln!(out, "throughput vs file size:");
            out.push_str(&chart);
        }
        out
    }

    /// ASCII chart of mean throughput vs file size, one series per
    /// (personality, fs) pair — per (personality, fs, cache) when the
    /// campaign swept several cache capacities, so a series never has
    /// two y values at one x. `None` unless at least one series has two
    /// or more sizes.
    fn size_chart(&self) -> Option<String> {
        let caches: HashSet<Bytes> = self
            .cells
            .iter()
            .filter(|c| c.cell.uses_file_size())
            .map(|c| c.cell.cache)
            .collect();
        let proc_counts: HashSet<u32> = self
            .cells
            .iter()
            .filter(|c| c.cell.uses_file_size())
            .map(|c| c.cell.processes)
            .collect();
        let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
        for c in &self.cells {
            if !c.cell.uses_file_size() {
                continue;
            }
            let mut label = format!("{}/{}", c.cell.workload_name(), c.cell.fs.name());
            if caches.len() > 1 {
                let _ = write!(label, "/{}", c.cell.cache);
            }
            if proc_counts.len() > 1 {
                let _ = write!(label, "/{}p", c.cell.processes);
            }
            let point = (c.cell.file_size.as_mib_f64(), c.summary.mean);
            match series.iter_mut().find(|(l, _)| *l == label) {
                Some((_, pts)) => pts.push(point),
                None => series.push((label, vec![point])),
            }
        }
        series.retain(|(_, pts)| pts.len() >= 2);
        if series.is_empty() {
            return None;
        }
        let borrowed: Vec<(&str, &[(f64, f64)])> = series
            .iter()
            .map(|(l, pts)| (l.as_str(), pts.as_slice()))
            .collect();
        Some(report::ascii_chart(&borrowed, 64, 12))
    }
}

/// Expected bytes a workload's filesets occupy once created (counts
/// times mean file size).
fn working_set_estimate(workload: &Workload) -> Bytes {
    let total: f64 = workload
        .filesets
        .iter()
        .map(|fs| fs.count as f64 * fs.size.mean())
        .sum();
    Bytes::new(total as u64)
}

/// Executes one cell under the campaign's plan. `run_cap` is the
/// per-cell share of the campaign's run budget, if one was set.
/// Section 2 coverage of a cell's workload — a pure function of
/// `(spec, cell)`, shared by the live path and the store loader so a
/// record loaded from disk carries exactly the coverage a fresh run
/// would have computed.
pub(crate) fn cell_coverage(spec: &SweepSpec, cell: &Cell) -> SimResult<CoverageProfile> {
    match &cell.workload {
        CellWorkload::Personality(p) => {
            // A concurrent cell exercises the scaling dimension on top
            // of the personality's static profile.
            let mut coverage = p.coverage();
            if cell.processes > 1 {
                coverage = coverage.union(&CoverageProfile::new(&[(
                    Dimension::Scaling,
                    Coverage::Exercises,
                )]));
            }
            Ok(coverage)
        }
        CellWorkload::Trace { index, .. } => {
            let source = spec.traces.get(*index).ok_or_else(|| {
                SimError::BadConfig(format!("trace cell references missing source {index}"))
            })?;
            Ok(trace_coverage(&characterize(&source.trace)))
        }
    }
}

pub(crate) fn run_cell(
    spec: &SweepSpec,
    cell: &Cell,
    run_cap: Option<u32>,
) -> SimResult<CellResult> {
    let personality = match &cell.workload {
        CellWorkload::Personality(p) => *p,
        CellWorkload::Trace { index, .. } => return run_trace_cell(spec, cell, *index, run_cap),
    };
    let workload = personality.workload(cell.file_size, cell.files);
    let seed = cell.seed(spec.plan.base_seed);
    let mut plan = spec
        .plan
        .clone()
        .with_base_seed(seed)
        .with_processes(cell.processes)
        .with_arrival(cell.arrival)
        .with_faults(cell.faults)
        .with_retry(spec.retry);
    if let Some(cap) = run_cap {
        plan.protocol = plan.protocol.capped(cap);
    }
    plan.cache_capacity = if cell.cache.is_zero() {
        None
    } else {
        Some(cell.cache)
    };
    // Keep the formatted device comfortably larger than the working set,
    // whether it is one large file or a fileset.
    let working_set = cell.file_size.max(working_set_estimate(&workload));
    let device = spec
        .device
        .max(Bytes::new(working_set.as_u64().saturating_mul(2)));
    let fs = cell.fs;
    let mr = run_many(|s| testbed::paper_fs(fs, device, s), &workload, &plan)?;
    let coverage = cell_coverage(spec, cell)?;
    let mut result = CellResult::from_multi_run(cell.clone(), coverage, seed, &mr);
    if let (Some(stats), Some(slo)) = (result.open_loop.as_mut(), spec.slo_p99) {
        stats.slo_max_rate = Some(slo_max_rate(spec, cell, slo)?);
    }
    Ok(result)
}

/// Maximum offered load (ops/s) at which one probe run of `cell` still
/// sustains `p99 <= slo` — the cell's SLO verdict.
///
/// Deterministic bisection: double the rate from the cell's configured
/// arrival rate until a probe breaches the SLO (bracketing), then
/// bisect the integer interval down to ~5 % relative width. Each probe
/// is a single engine run under the cell's own seed discipline, so the
/// verdict is a pure function of (spec, cell) — never of scheduling.
fn slo_max_rate(spec: &SweepSpec, cell: &Cell, slo: Nanos) -> SimResult<u64> {
    let personality = match &cell.workload {
        CellWorkload::Personality(p) => *p,
        CellWorkload::Trace { .. } => {
            return Err(SimError::BadConfig(
                "SLO verdicts apply to open-loop personality cells, not traces".into(),
            ))
        }
    };
    let workload = personality.workload(cell.file_size, cell.files);
    let seed = cell.seed(spec.plan.base_seed);
    let working_set = cell.file_size.max(working_set_estimate(&workload));
    let device = spec
        .device
        .max(Bytes::new(working_set.as_u64().saturating_mul(2)));
    let fs = cell.fs;
    let probe = |rate: u64| -> SimResult<bool> {
        let mut plan = spec
            .plan
            .clone()
            .with_base_seed(seed)
            .with_processes(cell.processes)
            .with_arrival(cell.arrival.with_rate(rate))
            .with_faults(cell.faults)
            .with_retry(spec.retry)
            .with_protocol(Protocol::FixedRuns(1));
        plan.cache_capacity = if cell.cache.is_zero() {
            None
        } else {
            Some(cell.cache)
        };
        let mr = run_many(|s| testbed::paper_fs(fs, device, s), &workload, &plan)?;
        let p99 = mr.outcomes[0].recording.histogram.quantile(0.99);
        Ok(p99.is_none_or(|p| p <= slo))
    };
    let base = cell.arrival.rate().unwrap_or(1).max(1);
    if !probe(base)? {
        // Even the configured rate breaches: bisect down from it.
        let (mut lo, mut hi) = (0u64, base);
        while hi - lo > (lo / 20).max(1) {
            let mid = lo + (hi - lo) / 2;
            if mid == 0 || probe(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        return Ok(lo);
    }
    // Double until a rate breaches (capped to keep the bracket sane).
    let mut lo = base;
    let mut hi = base;
    loop {
        hi = hi.saturating_mul(2);
        if !probe(hi)? {
            break;
        }
        lo = hi;
        if hi >= base.saturating_mul(1 << 12) {
            // Never breaches within a 4096x bracket: report the bound.
            return Ok(hi);
        }
    }
    while hi - lo > (lo / 20).max(1) {
        let mid = lo + (hi - lo) / 2;
        if probe(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Executes one trace-backed cell: N replays of the source's trace
/// under its timing policy, repeated per the campaign protocol.
///
/// Each run `i` builds a fresh target seeded `cell_seed + i`, applies
/// the cell's cache capacity with the plan's per-run jitter (the same
/// memory-pressure discipline as workload cells), and replays with the
/// run seed driving the stream merge — so a multi-stream trace samples
/// a different legal interleaving per run, which is exactly the
/// run-to-run variance the protocol's CI then quantifies. The sample is
/// replay throughput (ops/s of the virtual clock).
fn run_trace_cell(
    spec: &SweepSpec,
    cell: &Cell,
    index: usize,
    run_cap: Option<u32>,
) -> SimResult<CellResult> {
    let source = spec.traces.get(index).ok_or_else(|| {
        SimError::BadConfig(format!("trace cell references missing source {index}"))
    })?;
    let seed = cell.seed(spec.plan.base_seed);
    let mut protocol = spec.plan.protocol;
    if let Some(cap) = run_cap {
        protocol = protocol.capped(cap);
    }
    // One characterization pass serves both the device sizing and the
    // cell's ⋆ coverage profile.
    let profile = characterize(&source.trace);
    let device = spec
        .device
        .max(Bytes::new(profile.working_set.as_u64().saturating_mul(2)));
    let fs = cell.fs;
    let mut errors = 0u64;
    let mut ratios: Vec<f64> = Vec::new();
    let drive = drive_protocol(&protocol, seed, |_, run_seed| {
        let mut target = testbed::paper_fs(fs, device, run_seed);
        if !cell.cache.is_zero() {
            let pages = jittered_cache_pages(cell.cache, spec.plan.cache_jitter, run_seed);
            target.set_cache_capacity_pages(pages);
        }
        let config = ReplayConfig {
            timing: source.timing,
            seed: run_seed,
        };
        let result = replay_with(&mut target, &source.trace, &config);
        errors += result.errors;
        if let Some(h) = target.cache_hit_ratio() {
            ratios.push(h);
        }
        Ok(result.ops_per_sec())
    })?;
    let summary = Summary::from_sample(&drive.samples)
        .ok_or_else(|| SimError::BadConfig("trace cell finished with zero runs".into()))?;
    let hit_ratio = if ratios.is_empty() {
        None
    } else {
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    };
    Ok(CellResult {
        cell: cell.clone(),
        coverage: trace_coverage(&profile),
        seed,
        runs: drive.samples.len() as u32,
        samples: drive.samples,
        summary,
        ci: drive.ci,
        verdict: drive.verdict,
        hit_ratio,
        errors,
        open_loop: None,
        metrics: None,
        ledger: None,
    })
}

/// Result-store configuration for a campaign run.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Store root directory (conventionally `results/store/`).
    pub dir: std::path::PathBuf,
    /// Probe the store before executing a cell. `false` (`--no-cache`)
    /// forces full execution; finished cells are still written, so a
    /// no-cache run refreshes the store.
    pub read_cache: bool,
}

impl StoreOptions {
    /// Read-write store at `dir` — the default cache-aware mode.
    pub fn at(dir: impl Into<std::path::PathBuf>) -> StoreOptions {
        StoreOptions {
            dir: dir.into(),
            read_cache: true,
        }
    }
}

/// Execution options for [`run_campaign_with`]. The defaults reproduce
/// the classic fully-in-memory campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Stream per-cell records through a content-addressed store.
    pub store: Option<StoreOptions>,
}

/// Execution accounting for one campaign: where each expanded cell came
/// from. Conservation (`expanded == cached + executed`) holds on every
/// successful run; a failed cell aborts the campaign with an error
/// instead of appearing here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignStats {
    /// Cells the spec expanded to.
    pub expanded: usize,
    /// Cells served from the result store (verified cache hits).
    pub cached: usize,
    /// Cells executed live this run.
    pub executed: usize,
}

/// A completed campaign run: the report plus execution accounting.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The assembled report (byte-identical however cells were sourced).
    pub report: CampaignReport,
    /// Cache-hit accounting for this run.
    pub stats: CampaignStats,
}

/// Where a finished cell's result lives, per execution slot. With a
/// store attached this is all a worker retains per cell — the record
/// itself streams to disk — so execution memory is O(jobs), not
/// O(cells) of recordings.
enum CellOutcome {
    /// Served from the store (verified hit); nothing retained.
    Cached,
    /// Executed live and streamed to the store; nothing retained.
    Stored,
    /// Executed live, result held in memory (no store configured).
    Held(Box<CellResult>),
}

/// Runs every cell of `spec`, sharded across `jobs` worker threads.
///
/// Workers pull cells from a shared atomic cursor (work stealing keeps
/// long cells from serializing the tail); each worker builds its own
/// simulated targets, so no simulation state is shared. Results land in
/// per-cell slots indexed by expansion order, which makes the aggregate
/// independent of scheduling: the same spec yields byte-identical
/// reports at any job count.
///
/// With [`CampaignOptions::store`] set, each cell is first probed in
/// the content-addressed store (verified hits skip execution entirely)
/// and each miss is executed and streamed to disk as one fsync'd
/// record before the worker moves on. The report is then assembled
/// from the store's records in expansion (deterministic key) order, so
/// its bytes are identical whether cells came from cache or live runs,
/// at any `--jobs` count.
pub fn run_campaign_with(
    spec: &SweepSpec,
    jobs: usize,
    opts: &CampaignOptions,
) -> SimResult<CampaignRun> {
    let cells = spec.expand();
    if cells.is_empty() {
        return Err(SimError::InvalidOperation(
            "sweep expands to zero cells; every axis needs at least one value".into(),
        ));
    }
    spec.plan.protocol.validate()?;
    if spec.run_budget == Some(0) {
        return Err(SimError::BadConfig(
            "campaign run budget must be at least 1".into(),
        ));
    }
    let store = match &opts.store {
        Some(s) => {
            // A metrics snapshot describes one live run — caching it
            // would replay a diagnostic as if it were a measurement.
            if spec.plan.obs.metrics {
                return Err(SimError::BadConfig(
                    "the result store cannot cache flight-recorder campaigns; \
                     drop the store or run without metrics capture"
                        .into(),
                ));
            }
            Some(crate::store::ResultStore::open(&s.dir).map_err(|e| {
                SimError::BadConfig(format!("cannot open result store {}: {e}", s.dir.display()))
            })?)
        }
        None => None,
    };
    let read_cache = opts.store.as_ref().is_some_and(|s| s.read_cache);
    // A shared run budget divides evenly across cells up front: the cap
    // is a function of the spec alone, so scheduling can never leak into
    // the results. (Redistributing unused runs from early-converging
    // cells would couple cells through completion order — exactly the
    // nondeterminism the campaign engine exists to exclude.)
    let run_cap = spec
        .run_budget
        .map(|budget| ((budget / cells.len() as u64).max(1)).min(u32::MAX as u64) as u32);
    let jobs = jobs.clamp(1, cells.len());
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<SimResult<CellOutcome>>>> =
        cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                // A failed cell aborts the campaign: don't burn the rest
                // of the grid computing results that will be discarded.
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let result = execute_slot(spec, cell, run_cap, store.as_ref(), read_cache);
                if result.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    // Collect in expansion order. Every index below the lowest erroring
    // one was pulled before any abort could trigger, so the first
    // non-empty error slot we meet is the lowest-index failure — the
    // reported error is deterministic even though later cells may have
    // been skipped.
    let mut stats = CampaignStats {
        expanded: cells.len(),
        ..CampaignStats::default()
    };
    let mut results = Vec::with_capacity(cells.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let outcome = match slot.into_inner().expect("slot lock") {
            Some(Ok(outcome)) => outcome,
            Some(Err(e)) => return Err(e),
            // Unreachable by the invariant above; fail soft if a future
            // edit ever breaks it rather than panicking mid-report.
            None => {
                return Err(SimError::InvalidOperation(
                    "campaign aborted before this cell ran".into(),
                ))
            }
        };
        let result = match outcome {
            CellOutcome::Held(res) => {
                stats.executed += 1;
                *res
            }
            origin @ (CellOutcome::Cached | CellOutcome::Stored) => {
                if matches!(origin, CellOutcome::Cached) {
                    stats.cached += 1;
                } else {
                    stats.executed += 1;
                }
                // Rebuild the row from the record just probed or
                // written: cached and live cells flow through exactly
                // the same deserialization, which is what makes the
                // report bytes provably source-independent.
                store
                    .as_ref()
                    .expect("store-backed outcome without a store")
                    .load(spec, &cells[i], run_cap)
                    .ok_or_else(|| {
                        SimError::InvalidOperation(format!(
                            "store record for cell `{}` vanished during assembly",
                            cells[i].key()
                        ))
                    })?
            }
        };
        results.push(result);
    }
    Ok(CampaignRun {
        report: CampaignReport {
            name: spec.name.clone(),
            jobs,
            cells: results,
        },
        stats,
    })
}

/// One worker's handling of one cell: probe, execute, stream.
fn execute_slot(
    spec: &SweepSpec,
    cell: &Cell,
    run_cap: Option<u32>,
    store: Option<&crate::store::ResultStore>,
    read_cache: bool,
) -> SimResult<CellOutcome> {
    if let Some(store) = store {
        if read_cache && store.load(spec, cell, run_cap).is_some() {
            return Ok(CellOutcome::Cached);
        }
        let result = run_cell(spec, cell, run_cap)?;
        store.save(spec, cell, run_cap, &result).map_err(|e| {
            SimError::BadConfig(format!(
                "cannot write store record for cell `{}`: {e}",
                cell.key()
            ))
        })?;
        return Ok(CellOutcome::Stored);
    }
    run_cell(spec, cell, run_cap).map(|r| CellOutcome::Held(Box::new(r)))
}

/// Runs a campaign with the classic fully-in-memory pipeline — no
/// result store, every cell executed live. See [`run_campaign_with`]
/// for the cache-aware, streaming variant.
pub fn run_campaign(spec: &SweepSpec, jobs: usize) -> SimResult<CampaignReport> {
    run_campaign_with(spec, jobs, &CampaignOptions::default()).map(|run| run.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Protocol;
    use rb_simcore::time::Nanos;

    /// A spec small enough for debug-mode unit tests.
    fn tiny_spec() -> SweepSpec {
        let mut plan = RunPlan::quick(42);
        plan.protocol = Protocol::FixedRuns(2);
        plan.duration = Nanos::from_secs(2);
        plan.window = Nanos::from_secs(1);
        plan.tail_windows = 2;
        SweepSpec {
            name: "tiny".into(),
            personalities: vec![Personality::RandomRead],
            traces: Vec::new(),
            file_sizes: vec![Bytes::mib(4), Bytes::mib(8)],
            file_counts: vec![10],
            filesystems: vec![FsKind::Ext2, FsKind::Ext3],
            cache_capacities: vec![Bytes::mib(64)],
            processes: vec![1],
            arrivals: Vec::new(),
            faults: Vec::new(),
            retry: rb_faults::RetryPolicy::None,
            slo_p99: None,
            plan,
            device: Bytes::mib(256),
            run_budget: None,
        }
    }

    #[test]
    fn expansion_is_a_cross_product() {
        let mut spec = tiny_spec();
        spec.personalities = vec![Personality::RandomRead, Personality::SequentialRead];
        // 2 personalities x 2 sizes x 2 fs x 1 cache.
        assert_eq!(spec.expand().len(), 8);
        spec.cache_capacities = vec![Bytes::mib(64), Bytes::mib(128)];
        assert_eq!(spec.expand().len(), 16);
    }

    #[test]
    fn expansion_normalizes_unused_axes() {
        let mut spec = tiny_spec();
        // varmail ignores file size: five sizes collapse onto one cell
        // per (count, fs, cache).
        spec.personalities = vec![Personality::Varmail];
        spec.file_sizes = (1..=5).map(Bytes::mib).collect();
        let cells = spec.expand();
        assert_eq!(cells.len(), 2); // 1 count x 2 fs x 1 cache
        assert!(cells.iter().all(|c| c.file_size == Bytes::ZERO));
        // And randomread ignores file count.
        spec.personalities = vec![Personality::RandomRead];
        spec.file_counts = vec![10, 20, 30];
        assert_eq!(spec.expand().len(), 10); // 5 sizes x 2 fs
    }

    #[test]
    fn expansion_dedups_repeated_axis_values() {
        let mut spec = tiny_spec();
        spec.file_sizes = vec![Bytes::mib(4), Bytes::mib(4), Bytes::mib(4)];
        spec.filesystems = vec![FsKind::Ext2, FsKind::Ext2];
        assert_eq!(spec.expand().len(), 1);
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let spec = tiny_spec();
        let cells = spec.expand();
        let seeds: Vec<u64> = cells.iter().map(|c| c.seed(42)).collect();
        // Stable: recomputing gives the same seeds.
        let again: Vec<u64> = spec.expand().iter().map(|c| c.seed(42)).collect();
        assert_eq!(seeds, again);
        // Distinct per cell and sensitive to the campaign seed.
        let unique: HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len());
        assert_ne!(cells[0].seed(42), cells[0].seed(43));
    }

    #[test]
    fn jobs_do_not_change_results() {
        let spec = tiny_spec();
        let serial = run_campaign(&spec, 1).unwrap();
        let sharded = run_campaign(&spec, 4).unwrap();
        assert_eq!(serial.cells.len(), 4);
        // Byte-identical aggregates regardless of scheduling.
        assert_eq!(serial.to_csv(), sharded.to_csv());
        assert_eq!(serial.to_json().to_string(), sharded.to_json().to_string());
        for (a, b) in serial.cells.iter().zip(&sharded.cells) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.summary, b.summary);
        }
    }

    #[test]
    fn report_renders_all_sections() {
        let spec = tiny_spec();
        let report = run_campaign(&spec, 2).unwrap();
        let text = report.render();
        assert!(text.contains("campaign \"tiny\""));
        assert!(text.contains("randomread/4.0MiB/ext2"));
        assert!(text.contains("per-dimension grouping"));
        assert!(text.contains("campaign coverage:"));
        assert!(text.contains("throughput vs file size"));
        // CSV has a header plus one row per cell.
        assert_eq!(report.to_csv().lines().count(), 1 + report.cells.len());
    }

    #[test]
    fn coverage_union_reflects_personalities() {
        let mut spec = tiny_spec();
        spec.personalities = vec![Personality::RandomRead, Personality::MetadataOnly];
        spec.file_sizes = vec![Bytes::mib(4)];
        spec.filesystems = vec![FsKind::Ext2];
        let report = run_campaign(&spec, 2).unwrap();
        let cov = report.coverage();
        assert_eq!(cov.get(Dimension::Caching), Coverage::Isolates);
        assert_eq!(cov.get(Dimension::Metadata), Coverage::Isolates);
        assert_eq!(cov.get(Dimension::Scaling), Coverage::None);
    }

    #[test]
    fn empty_spec_is_an_error() {
        let mut spec = tiny_spec();
        spec.personalities.clear();
        assert!(run_campaign(&spec, 1).is_err());
    }

    #[test]
    fn degenerate_cells_still_complete() {
        // Zero-size files and empty filesets are valid (if silly)
        // configurations: the engine treats them as sparse/growing sets,
        // so the campaign completes instead of erroring.
        let mut spec = tiny_spec();
        spec.personalities = vec![Personality::RandomRead, Personality::Varmail];
        spec.file_sizes = vec![Bytes::ZERO];
        spec.file_counts = vec![0];
        let report = run_campaign(&spec, 2).unwrap();
        assert_eq!(report.cells.len(), 4); // 2 personalities x 2 fs
    }

    #[test]
    fn extreme_derived_seeds_do_not_overflow_runs() {
        // Derived seeds span the full u64 range; run indexing must wrap.
        let w = crate::workload::personalities::random_read(Bytes::mib(2));
        let plan = RunPlan {
            protocol: Protocol::FixedRuns(3),
            duration: Nanos::from_secs(1),
            window: Nanos::from_secs(1),
            tail_windows: 1,
            base_seed: u64::MAX - 1,
            cache_capacity: Some(Bytes::mib(32)),
            cache_jitter: Bytes::mib(1),
            cold_start: false,
            prewarm: false,
            processes: 1,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        };
        let mr = run_many(
            |s| testbed::paper_fs(FsKind::Ext2, Bytes::mib(64), s),
            &w,
            &plan,
        )
        .unwrap();
        assert_eq!(mr.outcomes.len(), 3);
    }

    #[test]
    fn zero_runs_is_an_error_not_a_panic() {
        let mut spec = tiny_spec();
        spec.plan.protocol = Protocol::FixedRuns(0);
        assert!(run_campaign(&spec, 1).is_err());
    }

    #[test]
    fn run_budget_caps_cells_deterministically() {
        let mut spec = tiny_spec();
        spec.plan.protocol = Protocol::FixedRuns(3);
        // 4 cells, budget 4: one run each.
        spec.run_budget = Some(4);
        let capped = run_campaign(&spec, 2).unwrap();
        assert!(capped.cells.iter().all(|c| c.runs == 1), "cap ignored");
        // Identical at any job count.
        let serial = run_campaign(&spec, 1).unwrap();
        assert_eq!(serial.to_csv(), capped.to_csv());
        // A generous budget changes nothing.
        spec.run_budget = Some(1000);
        let roomy = run_campaign(&spec, 2).unwrap();
        assert!(roomy.cells.iter().all(|c| c.runs == 3));
        // A zero budget is a config error, not a silent 1-run campaign.
        spec.run_budget = Some(0);
        assert!(run_campaign(&spec, 2).is_err());
    }

    /// A small trace that replays cleanly on a fresh simulated target,
    /// with two streams and real inter-arrival gaps.
    fn tiny_trace() -> Trace {
        Trace::from_text(
            "# rocketbench-trace v2\n\
             0 0 mkdir /t\n\
             0 500000 create /t/a\n\
             0 1000000 open /t/a\n\
             0 1500000 setsize /t/a 262144\n\
             1 2000000 create /t/b\n\
             1 2500000 open /t/b\n\
             1 3000000 setsize /t/b 262144\n\
             0 3500000 read /t/a 0 8192\n\
             1 4000000 write /t/b 0 8192\n\
             0 4500000 read /t/a 131072 8192\n\
             1 5000000 fsync /t/b\n\
             0 5500000 read /t/a 8192 8192\n\
             1 6000000 read /t/b 0 8192\n\
             0 6500000 close /t/a\n\
             1 7000000 close /t/b\n",
        )
        .unwrap()
    }

    fn tiny_trace_spec() -> SweepSpec {
        let mut spec = tiny_spec();
        spec.personalities = Vec::new();
        spec.traces = vec![
            TraceSource::new("tt", tiny_trace(), Timing::Afap),
            TraceSource::new("tt", tiny_trace(), Timing::Faithful),
        ];
        spec
    }

    #[test]
    fn trace_cells_cross_with_fs_and_cache() {
        let spec = tiny_trace_spec();
        let cells = spec.expand();
        // 2 sources x 2 fs x 1 cache; the file-size/count axes are
        // normalized away.
        assert_eq!(cells.len(), 4);
        assert!(cells
            .iter()
            .all(|c| c.file_size == Bytes::ZERO && c.files == 0));
        assert_eq!(cells[0].workload_name(), "trace:tt@afap");
        assert_eq!(cells[0].label(), "tt@afap/ext2");
        // Identity includes the timing policy: same trace under two
        // policies is two distinct cells with distinct seeds.
        assert_ne!(cells[0].key(), cells[2].key());
        assert_ne!(cells[0].seed(42), cells[2].seed(42));
        // Duplicate (name, timing) pairs dedup.
        let mut dup = spec.clone();
        dup.traces
            .push(TraceSource::new("tt", tiny_trace(), Timing::Afap));
        assert_eq!(dup.expand().len(), 4);
    }

    #[test]
    fn trace_campaign_reports_like_personality_cells() {
        let report = run_campaign(&tiny_trace_spec(), 2).unwrap();
        assert_eq!(report.cells.len(), 4);
        for c in &report.cells {
            assert_eq!(c.verdict, Verdict::Fixed);
            assert_eq!(c.runs, 2);
            assert_eq!(c.errors, 0, "{}: replay diverged", c.cell.label());
            assert!(c.summary.mean > 0.0);
            let ci = c.ci.expect("bootstrap ci");
            assert!(ci.lo <= c.summary.mean && c.summary.mean <= ci.hi);
            assert!(c.hit_ratio.is_some());
            // Trace coverage is the paper's ⋆ marker.
            assert_eq!(c.coverage.get(Dimension::Io), Coverage::Depends);
        }
        // The afap and faithful cells measure different things.
        let afap = &report.cells[0];
        let faithful = &report.cells[2];
        assert!(afap.summary.mean > faithful.summary.mean);
        // Reports carry the cells in every format.
        let csv = report.to_csv();
        assert!(csv.contains("trace:tt@afap"));
        assert!(csv.contains("trace:tt@faithful"));
        assert!(report.to_json().to_string().contains("trace:tt@afap"));
        assert!(report.render().contains("tt@afap/ext2"));
    }

    #[test]
    fn trace_campaign_is_jobs_deterministic() {
        let mut spec = tiny_trace_spec();
        // Mixed grid: personalities and traces in one campaign.
        spec.personalities = vec![Personality::RandomRead];
        spec.file_sizes = vec![Bytes::mib(4)];
        let serial = run_campaign(&spec, 1).unwrap();
        let sharded = run_campaign(&spec, 4).unwrap();
        assert_eq!(serial.cells.len(), 6); // (1 size + 2 sources) x 2 fs
        assert_eq!(serial.to_csv(), sharded.to_csv());
        assert_eq!(serial.to_json().to_string(), sharded.to_json().to_string());
        // The campaign coverage row unions personality and ⋆ markers
        // (the stronger marker wins: Depends > Exercises < Isolates).
        let cov = serial.coverage();
        assert_eq!(cov.get(Dimension::Io), Coverage::Depends);
        assert_eq!(cov.get(Dimension::Caching), Coverage::Isolates);
        assert_eq!(cov.get(Dimension::OnDisk), Coverage::Depends);
    }

    #[test]
    fn trace_coverage_follows_the_op_mix() {
        let read_only = Trace::from_text("open /a\nread /a 0 4096\nclose /a\n").unwrap();
        let cov = trace_coverage(&characterize(&read_only));
        assert_eq!(cov.get(Dimension::Io), Coverage::Depends);
        assert_eq!(cov.get(Dimension::Caching), Coverage::Depends);
        assert_eq!(cov.get(Dimension::OnDisk), Coverage::None);
        // open/close are namespace traffic.
        assert_eq!(cov.get(Dimension::Metadata), Coverage::Depends);
        let meta_only = Trace::from_text("create /a\nstat /a\nunlink /a\n").unwrap();
        let cov = trace_coverage(&characterize(&meta_only));
        assert_eq!(cov.get(Dimension::Io), Coverage::None);
        assert_eq!(cov.get(Dimension::Metadata), Coverage::Depends);
    }

    #[test]
    fn report_carries_verdicts_and_cis() {
        let report = run_campaign(&tiny_spec(), 2).unwrap();
        for c in &report.cells {
            assert_eq!(c.verdict, Verdict::Fixed);
            assert_eq!(c.runs, 2);
            let ci = c.ci.expect("bootstrap ci");
            assert!(ci.lo <= c.summary.mean && c.summary.mean <= ci.hi);
        }
        let csv = report.to_csv();
        assert!(csv.lines().next().unwrap().contains("verdict"));
        assert!(csv.contains(",fixed,"));
        let json = report.to_json().to_string();
        assert!(json.contains("\"verdict\":\"fixed\""));
        assert!(json.contains("\"ci\":{\"lo\":"));
        assert!(report.render().contains("verdict"));
    }

    #[test]
    fn zero_cache_means_uncontrolled() {
        let mut spec = tiny_spec();
        spec.file_sizes = vec![Bytes::mib(4)];
        spec.filesystems = vec![FsKind::Ext2];
        spec.cache_capacities = vec![Bytes::ZERO];
        let report = run_campaign(&spec, 1).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert!(report.cells[0].summary.mean > 0.0);
        // The table shows "-" rather than a zero capacity.
        assert!(report.render().contains("  -  "));
    }

    #[test]
    fn device_grows_with_fileset_working_set() {
        // varmail ignores file size, so the device must scale with the
        // fileset estimate; with a deliberately tiny spec.device the
        // campaign still completes without ENOSPC-driven failure.
        let mut spec = tiny_spec();
        spec.personalities = vec![Personality::Varmail];
        spec.filesystems = vec![FsKind::Ext2];
        spec.file_counts = vec![300];
        spec.device = Bytes::mib(1);
        let report = run_campaign(&spec, 1).unwrap();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].errors, 0, "fileset did not fit the device");
    }
}
