//! # rb-core — the rocketbench harness
//!
//! The paper's contribution turned into a system: a statistically
//! rigorous, multi-dimensional file-system benchmarking harness.
//!
//! * [`campaign`] — declarative multi-dimensional sweeps, sharded
//!   across worker threads with per-cell deterministic seeds.
//! * [`dimensions`] — the five-dimension taxonomy of Section 2.
//! * [`survey`] — Table 1 (benchmark usage 1999–2010) as data + renderer.
//! * [`target`] — systems under test: the simulated stack or a real
//!   directory.
//! * [`testbed`] — the paper's Xeon + Maxtor + 512 MiB machine, prewired.
//! * [`workload`] — Filebench-style flowops and personalities.
//! * [`runner`] — run protocols (fixed-N and convergence-driven), the
//!   stateful `Experiment` driver, verdicts and summaries.
//! * [`sched`] — the discrete-event process scheduler behind
//!   multi-process runs: core tokens, the shared device queue, and the
//!   closed-loop event pump.
//! * [`store`] — the content-addressed result store behind cache-aware,
//!   resumable campaigns.
//! * [`scaling`] — saturation curves over the process-count axis, run
//!   on the real engine.
//! * [`figures`] — reproduction drivers for Figures 1–4.
//! * [`nano`] — the Section 4 nano-benchmark suite.
//! * [`analysis`] — regimes, fragility, warm-up, sound comparisons.
//! * [`report`] — ASCII charts, CSV, gnuplot, JSON export.
//!
//! ## Quick start
//!
//! ```
//! use rb_core::prelude::*;
//! use rb_simcore::units::Bytes;
//! use rb_simcore::time::Nanos;
//!
//! // The paper's workload on the paper's machine, 10 virtual seconds.
//! let mut target = rb_core::testbed::paper_ext2(Bytes::gib(1), 0);
//! let workload = personalities::random_read(Bytes::mib(16));
//! let cfg = EngineConfig {
//!     duration: Nanos::from_secs(10),
//!     ..Default::default()
//! };
//! let rec = Engine::run(&mut target, &workload, &cfg).unwrap();
//! assert!(rec.ops > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod campaign;
pub mod dimensions;
pub mod figures;
pub mod nano;
pub mod report;
pub mod runner;
pub mod scaling;
pub mod sched;
pub mod store;
pub mod survey;
pub mod target;
pub mod testbed;
pub mod trace;
pub mod workload;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::analysis::{
        compare_systems, ComparisonVerdict, FragilityReport, Regime, WarmupReport,
    };
    pub use crate::campaign::{
        run_campaign, run_campaign_with, CampaignOptions, CampaignReport, CampaignRun,
        CampaignStats, Cell, CellResult, CellWorkload, Personality, StoreOptions, SweepSpec,
        TraceSource,
    };
    pub use crate::dimensions::{Coverage, CoverageProfile, Dimension};
    pub use crate::figures::{
        fig1, fig1_campaign, fig1_zoom, fig1_zoom_campaign, fig2, fig3, fig4, Fig1Config, Fig1Data,
        Fig2Config, Fig2Data, Fig3Config, Fig3Data, Fig4Config, Fig4Data,
    };
    pub use crate::nano::{run_suite, NanoConfig, NanoReport};
    pub use crate::runner::{
        run_many, Experiment, ExperimentStatus, MultiRun, Protocol, RunOutcome, RunPlan, Verdict,
    };
    pub use crate::scaling::{thread_scaling, ScalingConfig, ScalingCurve, ScalingPoint};
    pub use crate::sched::{
        run_open_loop, Arrival, ArrivalGen, CoreSet, DeviceQueue, OpenLoopConfig, OpenOutcome,
        SchedConfig,
    };
    pub use crate::store::{ResultStore, CODE_SALT};
    pub use crate::survey::{render_table1, table1, SurveyRow};
    pub use crate::target::{RealFsTarget, SimTarget, Target};
    pub use crate::testbed::{FsKind, Testbed};
    pub use crate::trace::{
        characterize, replay, replay_with, Recorder, ReplayConfig, ReplayResult, Timing, Trace,
        TraceOp, TraceProfile,
    };
    pub use crate::workload::{
        personalities, Engine, EngineConfig, FileSet, FlowOp, OpenLoopReport, Recording, Workload,
    };
    pub use rb_faults;
    pub use rb_faults::{FaultSpec, OutcomeLedger, RetryPolicy};
    pub use rb_obs::{MetricsSnapshot, ObsConfig, SpanTrace, TraceConfig};
}
