//! The benchmark-usage survey (paper Table 1).
//!
//! The paper surveyed 100 file-system papers from FAST, OSDI, ATC,
//! HotStorage, SOSP and MSST (68 from 2010, 32 from 2009, 13 excluded
//! for having no relevant evaluation), recording which benchmarks each
//! used, alongside the 1999–2007 counts from the earlier Traeger/Zadok
//! nine-year study. This module carries that table as data and
//! regenerates it — rocketbench's reproduction of Table 1.

use crate::dimensions::{Coverage, CoverageProfile, Dimension};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct SurveyRow {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Dimension coverage markers.
    pub profile: CoverageProfile,
    /// Papers using it, 1999–2007 (Traeger et al. study).
    pub used_1999_2007: u32,
    /// Papers using it, 2009–2010 (this paper's survey).
    pub used_2009_2010: u32,
}

/// The survey summary statistics quoted in Section 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveyScope {
    /// Papers reviewed in total.
    pub papers_reviewed: u32,
    /// Papers from 2010.
    pub from_2010: u32,
    /// Papers from 2009.
    pub from_2009: u32,
    /// Papers eliminated (no relevant evaluation).
    pub eliminated: u32,
}

/// The paper's survey scope.
pub const SCOPE: SurveyScope = SurveyScope {
    papers_reviewed: 100,
    from_2010: 68,
    from_2009: 32,
    eliminated: 13,
};

/// Builds the full Table 1 dataset, rows in the paper's order.
pub fn table1() -> Vec<SurveyRow> {
    use Coverage::{Depends as S, Exercises as O, Isolates as B};
    use Dimension::*;
    let row = |name, pairs: &[(Dimension, Coverage)], a, b| SurveyRow {
        name,
        profile: CoverageProfile::new(pairs),
        used_1999_2007: a,
        used_2009_2010: b,
    };
    vec![
        row("IOmeter", &[(Io, B)], 2, 3),
        row(
            "Filebench",
            &[
                (Io, B),
                (OnDisk, O),
                (Caching, O),
                (Metadata, O),
                (Scaling, B),
            ],
            3,
            5,
        ),
        row("IOzone", &[(OnDisk, O), (Caching, O), (Scaling, B)], 0, 4),
        row("Bonnie/Bonnie64/Bonnie++", &[(Io, O), (OnDisk, O)], 2, 0),
        row(
            "Postmark",
            &[(OnDisk, O), (Caching, O), (Metadata, O), (Scaling, B)],
            30,
            17,
        ),
        row(
            "Linux compile",
            &[(OnDisk, O), (Caching, O), (Metadata, O)],
            6,
            3,
        ),
        row(
            "Compile (Apache, openssh, etc.)",
            &[(OnDisk, O), (Caching, O), (Metadata, O)],
            38,
            14,
        ),
        row("DBench", &[(OnDisk, O), (Caching, O), (Metadata, O)], 1, 1),
        row(
            "SPECsfs",
            &[(OnDisk, O), (Caching, O), (Metadata, O), (Scaling, B)],
            7,
            1,
        ),
        row("Sort", &[(OnDisk, O), (Caching, O), (Scaling, B)], 0, 5),
        row(
            "IOR: I/O Performance Benchmark",
            &[(OnDisk, O), (Caching, O), (Scaling, B)],
            0,
            1,
        ),
        row(
            "Production workloads",
            &[(OnDisk, S), (Caching, S), (Metadata, S), (Scaling, S)],
            2,
            2,
        ),
        row(
            "Ad-hoc",
            &[
                (Io, S),
                (OnDisk, S),
                (Caching, S),
                (Metadata, S),
                (Scaling, S),
            ],
            237,
            67,
        ),
        row(
            "Trace-based custom",
            &[(OnDisk, S), (Caching, S), (Metadata, S), (Scaling, S)],
            7,
            18,
        ),
        row(
            "Trace-based standard",
            &[(OnDisk, S), (Caching, S), (Metadata, S), (Scaling, S)],
            14,
            17,
        ),
        row("BLAST", &[(OnDisk, O), (Caching, O)], 0, 2),
        row(
            "Flexible FS Benchmark (FFSB)",
            &[(OnDisk, O), (Caching, O), (Metadata, O), (Scaling, B)],
            0,
            1,
        ),
        row(
            "Flexible I/O tester (fio)",
            &[(Io, O), (OnDisk, O), (Caching, O), (Scaling, B)],
            0,
            1,
        ),
        row("Andrew", &[(OnDisk, O), (Caching, O), (Metadata, O)], 15, 1),
    ]
}

/// Total benchmark uses in a period across all rows.
pub fn total_uses(rows: &[SurveyRow], period_2009_2010: bool) -> u32 {
    rows.iter()
        .map(|r| {
            if period_2009_2010 {
                r.used_2009_2010
            } else {
                r.used_1999_2007
            }
        })
        .sum()
}

/// Renders Table 1 as fixed-width ASCII, matching the paper's layout.
pub fn render_table1(rows: &[SurveyRow]) -> String {
    let mut out = String::new();
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(10).max(9);
    out.push_str(&format!(
        "{:<name_w$} | I/O | On-disk | Caching | Meta-data | Scaling | 1999-2007 | 2009-2010\n",
        "Benchmark",
    ));
    out.push_str(&format!(
        "{}-+-----+---------+---------+-----------+---------+-----------+----------\n",
        "-".repeat(name_w)
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<name_w$} | {:^3} | {:^7} | {:^7} | {:^9} | {:^7} | {:>9} | {:>9}\n",
            r.name,
            r.profile.get(Dimension::Io).glyph(),
            r.profile.get(Dimension::OnDisk).glyph(),
            r.profile.get(Dimension::Caching).glyph(),
            r.profile.get(Dimension::Metadata).glyph(),
            r.profile.get(Dimension::Scaling).glyph(),
            r.used_1999_2007,
            r.used_2009_2010,
        ));
    }
    out.push_str(
        "\nLegend: * isolates dimension, o exercises without isolating, ? depends on workload\n",
    );
    out
}

/// The paper's headline finding, computed from the data: the share of
/// 2009–2010 benchmark uses that were ad-hoc (custom, one-off tools).
pub fn adhoc_share_2009_2010(rows: &[SurveyRow]) -> f64 {
    let total = total_uses(rows, true) as f64;
    let adhoc = rows
        .iter()
        .find(|r| r.name == "Ad-hoc")
        .map(|r| r.used_2009_2010)
        .unwrap_or(0) as f64;
    if total == 0.0 {
        0.0
    } else {
        adhoc / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_count_matches_paper() {
        assert_eq!(table1().len(), 19);
    }

    #[test]
    fn counts_match_paper_exactly() {
        let rows = table1();
        let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
        assert_eq!(get("Postmark").used_1999_2007, 30);
        assert_eq!(get("Postmark").used_2009_2010, 17);
        assert_eq!(get("Ad-hoc").used_1999_2007, 237);
        assert_eq!(get("Ad-hoc").used_2009_2010, 67);
        assert_eq!(get("Filebench").used_2009_2010, 5);
        assert_eq!(get("IOzone").used_1999_2007, 0);
        assert_eq!(get("Andrew").used_1999_2007, 15);
        assert_eq!(get("Compile (Apache, openssh, etc.)").used_1999_2007, 38);
        assert_eq!(get("Trace-based custom").used_2009_2010, 18);
        assert_eq!(get("Trace-based standard").used_2009_2010, 17);
    }

    #[test]
    fn scope_matches_paper() {
        assert_eq!(SCOPE.papers_reviewed, 100);
        assert_eq!(SCOPE.from_2010 + SCOPE.from_2009, 100);
        assert_eq!(SCOPE.eliminated, 13);
    }

    #[test]
    fn adhoc_dominates() {
        let rows = table1();
        // "Ad-hoc testing was, by far, the most common choice."
        let max_named = rows
            .iter()
            .filter(|r| r.name != "Ad-hoc")
            .map(|r| r.used_2009_2010)
            .max()
            .unwrap();
        let adhoc = rows
            .iter()
            .find(|r| r.name == "Ad-hoc")
            .unwrap()
            .used_2009_2010;
        assert!(adhoc > 3 * max_named);
        assert!(adhoc_share_2009_2010(&rows) > 0.35);
    }

    #[test]
    fn filebench_profile_matches_paper() {
        let rows = table1();
        let fb = &rows.iter().find(|r| r.name == "Filebench").unwrap().profile;
        assert_eq!(fb.get(Dimension::Io), Coverage::Isolates);
        assert_eq!(fb.get(Dimension::Scaling), Coverage::Isolates);
        assert_eq!(fb.get(Dimension::OnDisk), Coverage::Exercises);
        assert_eq!(fb.get(Dimension::Caching), Coverage::Exercises);
        assert_eq!(fb.get(Dimension::Metadata), Coverage::Exercises);
    }

    #[test]
    fn compile_benchmarks_are_conflated() {
        // The kernel-build critique: exercises everything, isolates nothing.
        let rows = table1();
        let linux = &rows
            .iter()
            .find(|r| r.name == "Linux compile")
            .unwrap()
            .profile;
        assert!(linux.is_conflated());
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = table1();
        let s = render_table1(&rows);
        for r in &rows {
            assert!(s.contains(r.name), "missing row {}", r.name);
        }
        assert!(s.contains("237"));
        assert!(s.lines().count() >= 22);
    }

    #[test]
    fn totals_are_stable() {
        let rows = table1();
        assert_eq!(total_uses(&rows, false), 364);
        assert_eq!(total_uses(&rows, true), 163);
    }
}
