//! Multi-run experiment execution.
//!
//! The paper's methodology for Figure 1: "For each file size we ran the
//! benchmark 10 times … to ensure steady-state results we report only the
//! last minute." The runner makes that protocol explicit and reusable:
//! N runs with distinct seeds, optional per-run cache-capacity jitter
//! (modelling the OS's few-megabyte memory wobble that the paper blames
//! for 35 % RSD), tail-window reporting, and a cross-run summary.

use crate::target::Target;
use crate::workload::{Engine, EngineConfig, Recording, Workload};
use rb_simcore::error::SimResult;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simcore::units::{Bytes, PAGE_SIZE};
use rb_stats::summary::Summary;

/// Protocol for a repeated experiment.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Number of repetitions.
    pub runs: u32,
    /// Measured duration per run.
    pub duration: Nanos,
    /// Throughput sampling window.
    pub window: Nanos,
    /// Windows from the end used for steady-state reporting
    /// ("the last minute" = 6 × 10 s windows).
    pub tail_windows: usize,
    /// Base seed; run `i` uses `base_seed.wrapping_add(i)` (campaigns
    /// derive base seeds spanning the full `u64` range).
    pub base_seed: u64,
    /// Nominal cache capacity, if the plan controls it.
    pub cache_capacity: Option<Bytes>,
    /// Uniform ± jitter applied to the cache capacity per run.
    pub cache_jitter: Bytes,
    /// Start each run with a cold cache.
    pub cold_start: bool,
    /// Sequentially prewarm the files before measuring (reaches the
    /// cold-start steady state without simulating the full warm-up).
    pub prewarm: bool,
}

impl Default for RunPlan {
    fn default() -> Self {
        RunPlan {
            runs: 10,
            duration: Nanos::from_secs(180),
            window: Nanos::from_secs(10),
            tail_windows: 6,
            base_seed: 0,
            cache_capacity: None,
            cache_jitter: Bytes::ZERO,
            cold_start: true,
            prewarm: false,
        }
    }
}

impl RunPlan {
    /// The paper's Figure 1 protocol (durations shortened from 20 min to
    /// 3 min: the runner reports tail windows after steady state either
    /// way, and the simulator's warm-up completes within a minute).
    pub fn paper_fig1(base_seed: u64) -> Self {
        RunPlan {
            runs: 10,
            duration: Nanos::from_secs(180),
            window: Nanos::from_secs(10),
            tail_windows: 6,
            base_seed,
            cache_capacity: Some(crate::testbed::PAPER_CACHE),
            cache_jitter: Bytes::mib(3),
            cold_start: true,
            prewarm: true,
        }
    }

    /// A smoke-test protocol: 3 runs of 15 virtual seconds with the
    /// paper's cache control. The default for interactive `sweep`
    /// campaigns, where the full Figure 1 protocol would take minutes
    /// per cell.
    pub fn quick(base_seed: u64) -> Self {
        RunPlan {
            runs: 3,
            duration: Nanos::from_secs(15),
            window: Nanos::from_secs(3),
            tail_windows: 3,
            base_seed,
            cache_capacity: Some(crate::testbed::PAPER_CACHE),
            cache_jitter: Bytes::mib(3),
            cold_start: true,
            prewarm: true,
        }
    }

    /// The same plan with a different base seed — how a campaign stamps
    /// each cell with its derived, scheduling-independent seed.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The engine configuration for run `i` of this plan.
    pub fn engine_config(&self, run_index: u32) -> EngineConfig {
        EngineConfig {
            duration: self.duration,
            window: self.window,
            seed: self.base_seed.wrapping_add(run_index as u64),
            cold_start: self.cold_start,
            prewarm: self.prewarm,
            cpu_jitter_sigma: 0.005,
            max_errors: 100,
        }
    }
}

/// One run's outcome.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Full recording (windows, histograms).
    pub recording: Recording,
    /// Seed used.
    pub seed: u64,
    /// Cache capacity in effect (pages), if controlled.
    pub cache_pages: Option<u64>,
    /// Steady-state throughput (tail-window mean).
    pub steady_ops_per_sec: f64,
}

/// A completed multi-run experiment.
#[derive(Debug, Clone)]
pub struct MultiRun {
    /// Per-run outcomes.
    pub outcomes: Vec<RunOutcome>,
    /// Summary of steady-state throughput across runs.
    pub summary: Summary,
}

impl MultiRun {
    /// The steady-state throughput samples.
    pub fn samples(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.steady_ops_per_sec).collect()
    }

    /// Relative standard deviation (%) across runs — Figure 1's right
    /// axis.
    pub fn rsd_percent(&self) -> f64 {
        self.summary.rsd_percent
    }
}

/// Runs `workload` `plan.runs` times, building a fresh target per run via
/// `make_target(seed)`.
pub fn run_many<T, F>(
    mut make_target: F,
    workload: &Workload,
    plan: &RunPlan,
) -> SimResult<MultiRun>
where
    T: Target,
    F: FnMut(u64) -> T,
{
    let mut outcomes = Vec::with_capacity(plan.runs as usize);
    for i in 0..plan.runs {
        let seed = plan.base_seed.wrapping_add(i as u64);
        let mut target = make_target(seed);
        // Per-run memory pressure: capacity = nominal ± jitter.
        let cache_pages = plan.cache_capacity.map(|base| {
            let jitter = plan.cache_jitter.as_u64();
            let mut rng = Rng::new(seed).fork("cache-jitter");
            let delta = if jitter == 0 {
                0
            } else {
                rng.below(2 * jitter + 1) as i64 - jitter as i64
            };
            let bytes = (base.as_u64() as i64 + delta).max(PAGE_SIZE.as_u64() as i64) as u64;
            let pages = Bytes::new(bytes).div_ceil(PAGE_SIZE);
            target.set_cache_capacity_pages(pages);
            pages
        });
        let config = plan.engine_config(i);
        let recording = Engine::run(&mut target, workload, &config)?;
        let steady = recording
            .tail_ops_per_sec(plan.tail_windows)
            .unwrap_or_else(|| recording.ops_per_sec());
        outcomes.push(RunOutcome {
            recording,
            seed,
            cache_pages,
            steady_ops_per_sec: steady,
        });
    }
    let samples: Vec<f64> = outcomes.iter().map(|o| o.steady_ops_per_sec).collect();
    let summary = Summary::from_sample(&samples).expect("at least one run");
    Ok(MultiRun { outcomes, summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use crate::workload::personalities;

    fn quick_plan(runs: u32, secs: u64) -> RunPlan {
        RunPlan {
            runs,
            duration: Nanos::from_secs(secs),
            window: Nanos::from_secs(1),
            tail_windows: 3,
            base_seed: 10,
            cache_capacity: Some(Bytes::mib(410)),
            cache_jitter: Bytes::mib(3),
            cold_start: true,
            prewarm: true,
        }
    }

    #[test]
    fn multi_run_produces_summary() {
        let w = personalities::random_read(Bytes::mib(8));
        let mr = run_many(
            |seed| testbed::paper_ext2(Bytes::gib(1), seed),
            &w,
            &quick_plan(4, 6),
        )
        .unwrap();
        assert_eq!(mr.outcomes.len(), 4);
        assert_eq!(mr.summary.n, 4);
        assert!(mr.summary.mean > 1000.0);
        // Distinct seeds produced distinct cache capacities.
        let caps: std::collections::HashSet<_> =
            mr.outcomes.iter().map(|o| o.cache_pages.unwrap()).collect();
        assert!(caps.len() > 1, "jitter had no effect: {caps:?}");
    }

    #[test]
    fn in_memory_runs_are_stable_across_seeds() {
        let w = personalities::random_read(Bytes::mib(8));
        let mr = run_many(
            |seed| testbed::paper_ext2(Bytes::gib(1), seed),
            &w,
            &quick_plan(5, 8),
        )
        .unwrap();
        // Memory-bound: RSD well under 2 %, as in the paper's left region.
        assert!(mr.rsd_percent() < 2.0, "rsd {}", mr.rsd_percent());
    }

    #[test]
    fn deterministic_given_same_plan() {
        let w = personalities::random_read(Bytes::mib(4));
        let run = || {
            run_many(
                |seed| testbed::paper_ext2(Bytes::gib(1), seed),
                &w,
                &quick_plan(2, 3),
            )
            .unwrap()
            .samples()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_jitter_when_uncontrolled() {
        let w = personalities::random_read(Bytes::mib(4));
        let plan = RunPlan {
            cache_capacity: None,
            ..quick_plan(2, 3)
        };
        let mr = run_many(|seed| testbed::paper_ext2(Bytes::gib(1), seed), &w, &plan).unwrap();
        assert!(mr.outcomes.iter().all(|o| o.cache_pages.is_none()));
    }
}
