//! Multi-run experiment execution: fixed-N and convergence-driven.
//!
//! The paper's methodology for Figure 1 was folklore made explicit: "we
//! ran the benchmark 10 times … to ensure steady-state results we report
//! only the last minute". This module keeps that protocol available —
//! byte-for-byte, for exact figure reproduction — as
//! [`Protocol::FixedRuns`], and adds what the paper (and Hasselbring's
//! *Benchmarking as Empirical Standard*) actually asks for:
//! [`Protocol::Adaptive`], a sequential protocol that detects each run's
//! warm-up with a changepoint test instead of a fixed tail window, keeps
//! adding runs until the bootstrap confidence interval on the mean is
//! narrower than a target, and records an explicit [`Verdict`]
//! (converged / hit the run ceiling / refused because the runs straddle
//! performance regimes) on every [`MultiRun`].
//!
//! The stateful driver is [`Experiment`]; [`run_many`] remains the
//! one-call convenience wrapper.

use crate::analysis::Regime;
use crate::sched::Arrival;
use crate::target::Target;
use crate::workload::{Engine, EngineConfig, Recording, Workload};
use rb_simcore::error::{SimError, SimResult};
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simcore::units::{Bytes, PAGE_SIZE};
use rb_stats::bootstrap::{bootstrap_mean_ci, Interval};
use rb_stats::changepoint::steady_state_start;
use rb_stats::sequential::{self, Decision, StoppingRule};
use rb_stats::summary::Summary;

/// RSD limit (%) used by the adaptive protocol's per-run warm-up
/// detection: steady state starts at the first window from which the
/// remaining suffix stays within this relative standard deviation.
pub const WARMUP_RSD_LIMIT: f64 = 5.0;

/// Bootstrap resamples used for the final reported interval.
const REPORT_RESAMPLES: usize = 1000;

/// How the number of repetitions is decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Protocol {
    /// Exactly N runs — the paper's "ran it 10 times" folklore, kept for
    /// exact reproduction of the pre-refactor figures.
    FixedRuns(u32),
    /// Convergence-driven: run at least `min_runs`, stop as soon as the
    /// `confidence`-level bootstrap CI on the mean steady-state
    /// throughput is narrower than `ci_rel_width` (relative to the
    /// mean), give up explicitly at `max_runs`.
    Adaptive {
        /// Floor on the number of runs (sequential CIs on tiny samples
        /// are unreliable).
        min_runs: u32,
        /// Ceiling on the number of runs; hitting it yields
        /// [`Verdict::MaxRuns`], never a silent success.
        max_runs: u32,
        /// Target relative CI width (e.g. `0.02` = 2 % of the mean).
        ci_rel_width: f64,
        /// Confidence level of the interval (e.g. `0.95`).
        confidence: f64,
    },
}

impl Protocol {
    /// The default adaptive protocol: 5–30 runs, 2 % CI at 95 %.
    pub fn adaptive_default() -> Protocol {
        Protocol::Adaptive {
            min_runs: 5,
            max_runs: 30,
            ci_rel_width: 0.02,
            confidence: 0.95,
        }
    }

    /// Upper bound on runs this protocol can execute.
    pub fn max_runs(&self) -> u32 {
        match *self {
            Protocol::FixedRuns(n) => n,
            Protocol::Adaptive { max_runs, .. } => max_runs,
        }
    }

    /// Lower bound on runs this protocol will execute.
    pub fn min_runs(&self) -> u32 {
        match *self {
            Protocol::FixedRuns(n) => n,
            Protocol::Adaptive { min_runs, .. } => min_runs,
        }
    }

    /// True for the convergence-driven variant.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, Protocol::Adaptive { .. })
    }

    /// Checks the protocol for nonsense configurations.
    pub fn validate(&self) -> SimResult<()> {
        match *self {
            Protocol::FixedRuns(0) => Err(SimError::BadConfig(
                "protocol needs at least one run".into(),
            )),
            Protocol::FixedRuns(_) => Ok(()),
            Protocol::Adaptive {
                min_runs,
                max_runs,
                ci_rel_width,
                confidence,
            } => StoppingRule::new(min_runs, max_runs, ci_rel_width, confidence)
                .validate()
                .map_err(SimError::BadConfig),
        }
    }

    /// The same protocol with its run count capped at `cap` (floored at
    /// one run). Used by campaigns to divide a shared run budget across
    /// cells deterministically.
    pub fn capped(&self, cap: u32) -> Protocol {
        let cap = cap.max(1);
        match *self {
            Protocol::FixedRuns(n) => Protocol::FixedRuns(n.min(cap)),
            Protocol::Adaptive {
                min_runs,
                max_runs,
                ci_rel_width,
                confidence,
            } => Protocol::Adaptive {
                min_runs: min_runs.min(cap),
                max_runs: max_runs.min(cap),
                ci_rel_width,
                confidence,
            },
        }
    }

    /// The stopping rule for the adaptive variant; `None` for fixed-N.
    pub fn stopping_rule(&self) -> Option<StoppingRule> {
        match *self {
            Protocol::FixedRuns(_) => None,
            Protocol::Adaptive {
                min_runs,
                max_runs,
                ci_rel_width,
                confidence,
            } => Some(StoppingRule::new(
                min_runs,
                max_runs,
                ci_rel_width,
                confidence,
            )),
        }
    }

    /// Confidence level used for the reported interval.
    pub fn confidence(&self) -> f64 {
        match *self {
            Protocol::FixedRuns(_) => 0.95,
            Protocol::Adaptive { confidence, .. } => confidence,
        }
    }

    /// Parses a percentage like `2%`, `2`, or `0.5%` into a fraction
    /// (`0.02`, `0.02`, `0.005`). The value is always read as percent;
    /// the `%` suffix is optional.
    pub fn parse_percent(s: &str) -> Result<f64, String> {
        let digits = s.trim().trim_end_matches('%').trim();
        let v = digits
            .parse::<f64>()
            .map_err(|_| format!("bad percentage {s:?}; expected e.g. 2% or 0.5"))?;
        if !(v > 0.0 && v < 100.0) {
            return Err(format!("percentage {s:?} must be in (0, 100)"));
        }
        Ok(v / 100.0)
    }

    /// Builds a protocol from command-line flag values — the one parser
    /// behind both the `rocketbench` CLI and the rb-bench regenerators,
    /// so the flag semantics cannot drift between them. Every error is
    /// a single human-readable line.
    pub fn from_flags(
        flags: &ProtocolFlags<'_>,
        default_fixed_runs: u32,
    ) -> Result<Protocol, String> {
        let parse_runs = |flag: &str, v: &str| -> Result<u32, String> {
            match v.parse::<u32>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(format!("bad --{flag}: {v:?} is not a positive run count")),
            }
        };
        match flags.protocol.unwrap_or("fixed") {
            "fixed" => {
                for (name, value) in [
                    ("ci", flags.ci),
                    ("min-runs", flags.min_runs),
                    ("max-runs", flags.max_runs),
                    ("confidence", flags.confidence),
                ] {
                    if value.is_some() {
                        return Err(format!("--{name} only applies to --protocol adaptive"));
                    }
                }
                let runs = match flags.runs {
                    Some(v) => parse_runs("runs", v)?,
                    None => default_fixed_runs,
                };
                Ok(Protocol::FixedRuns(runs))
            }
            "adaptive" => {
                if flags.runs.is_some() {
                    return Err("--runs sets a fixed count; with --protocol adaptive use \
                         --min-runs/--max-runs"
                        .into());
                }
                let Protocol::Adaptive {
                    mut min_runs,
                    mut max_runs,
                    mut ci_rel_width,
                    mut confidence,
                } = Protocol::adaptive_default()
                else {
                    unreachable!("adaptive_default is adaptive")
                };
                if let Some(v) = flags.ci {
                    ci_rel_width = Protocol::parse_percent(v).map_err(|e| format!("--ci: {e}"))?;
                }
                if let Some(v) = flags.min_runs {
                    min_runs = parse_runs("min-runs", v)?;
                }
                if let Some(v) = flags.max_runs {
                    max_runs = parse_runs("max-runs", v)?;
                }
                if let Some(v) = flags.confidence {
                    confidence =
                        Protocol::parse_percent(v).map_err(|e| format!("--confidence: {e}"))?;
                }
                let protocol = Protocol::Adaptive {
                    min_runs,
                    max_runs,
                    ci_rel_width,
                    confidence,
                };
                protocol.validate().map_err(|e| e.to_string())?;
                Ok(protocol)
            }
            other => Err(format!("unknown protocol {other:?}; use fixed or adaptive")),
        }
    }
}

/// Raw command-line flag values feeding [`Protocol::from_flags`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ProtocolFlags<'a> {
    /// `--protocol` (`fixed` | `adaptive`); `None` defaults to fixed.
    pub protocol: Option<&'a str>,
    /// `--runs` (fixed protocol only).
    pub runs: Option<&'a str>,
    /// `--ci` (adaptive only), a percentage.
    pub ci: Option<&'a str>,
    /// `--min-runs` (adaptive only).
    pub min_runs: Option<&'a str>,
    /// `--max-runs` (adaptive only).
    pub max_runs: Option<&'a str>,
    /// `--confidence` (adaptive only), a percentage.
    pub confidence: Option<&'a str>,
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Protocol::FixedRuns(n) => write!(f, "fixed({n})"),
            Protocol::Adaptive {
                min_runs,
                max_runs,
                ci_rel_width,
                confidence,
            } => write!(
                f,
                "adaptive({min_runs}..{max_runs}, ci {:.1}% @ {:.0}%)",
                ci_rel_width * 100.0,
                confidence * 100.0
            ),
        }
    }
}

/// Protocol for a repeated experiment.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// How many repetitions, and how that is decided.
    pub protocol: Protocol,
    /// Measured duration per run.
    pub duration: Nanos,
    /// Throughput sampling window.
    pub window: Nanos,
    /// Windows from the end used for steady-state reporting under
    /// [`Protocol::FixedRuns`] ("the last minute" = 6 × 10 s windows).
    /// The adaptive protocol detects warm-up per run instead and only
    /// falls back to this when detection fails.
    pub tail_windows: usize,
    /// Base seed; run `i` uses `base_seed.wrapping_add(i)` (campaigns
    /// derive base seeds spanning the full `u64` range).
    pub base_seed: u64,
    /// Nominal cache capacity, if the plan controls it.
    pub cache_capacity: Option<Bytes>,
    /// Uniform ± jitter applied to the cache capacity per run.
    pub cache_jitter: Bytes,
    /// Start each run with a cold cache.
    pub cold_start: bool,
    /// Sequentially prewarm the files before measuring (reaches the
    /// cold-start steady state without simulating the full warm-up).
    pub prewarm: bool,
    /// Concurrent closed-loop processes per run (`1` = the classic
    /// serial engine; `> 1` = the discrete-event scheduler).
    pub processes: u32,
    /// Load regime: closed-loop (the classic pump) or an open-loop
    /// arrival process offering ops at a fixed rate regardless of
    /// completions.
    pub arrival: Arrival,
    /// Flight-recorder configuration applied to every run (off by
    /// default; enabling it never changes what is measured, only what
    /// is additionally recorded).
    pub obs: rb_obs::ObsConfig,
    /// Deterministic fault plan armed for every run's measured phase
    /// (`None` = healthy device; the pre-fault engine byte-for-byte).
    pub faults: Option<rb_faults::FaultSpec>,
    /// Retry policy applied when injected faults surface as op errors.
    pub retry: rb_faults::RetryPolicy,
}

impl Default for RunPlan {
    fn default() -> Self {
        RunPlan {
            protocol: Protocol::FixedRuns(10),
            duration: Nanos::from_secs(180),
            window: Nanos::from_secs(10),
            tail_windows: 6,
            base_seed: 0,
            cache_capacity: None,
            cache_jitter: Bytes::ZERO,
            cold_start: true,
            prewarm: false,
            processes: 1,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        }
    }
}

impl RunPlan {
    /// The paper's Figure 1 protocol (durations shortened from 20 min to
    /// 3 min: the runner reports tail windows after steady state either
    /// way, and the simulator's warm-up completes within a minute).
    pub fn paper_fig1(base_seed: u64) -> Self {
        RunPlan {
            protocol: Protocol::FixedRuns(10),
            duration: Nanos::from_secs(180),
            window: Nanos::from_secs(10),
            tail_windows: 6,
            base_seed,
            cache_capacity: Some(crate::testbed::PAPER_CACHE),
            cache_jitter: Bytes::mib(3),
            cold_start: true,
            prewarm: true,
            processes: 1,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        }
    }

    /// A smoke-test protocol: 3 runs of 15 virtual seconds with the
    /// paper's cache control. The default for interactive `sweep`
    /// campaigns, where the full Figure 1 protocol would take minutes
    /// per cell.
    pub fn quick(base_seed: u64) -> Self {
        RunPlan {
            protocol: Protocol::FixedRuns(3),
            duration: Nanos::from_secs(15),
            window: Nanos::from_secs(3),
            tail_windows: 3,
            base_seed,
            cache_capacity: Some(crate::testbed::PAPER_CACHE),
            cache_jitter: Bytes::mib(3),
            cold_start: true,
            prewarm: true,
            processes: 1,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        }
    }

    /// The same plan with a different process count — how campaigns
    /// stamp cells along the concurrency axis.
    pub fn with_processes(mut self, processes: u32) -> Self {
        self.processes = processes.max(1);
        self
    }

    /// The same plan under a different load regime — how campaigns
    /// stamp cells along the arrival axis.
    pub fn with_arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// The same plan with a different base seed — how a campaign stamps
    /// each cell with its derived, scheduling-independent seed.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// The same plan under a different repetition protocol.
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// The same plan with the flight recorder configured.
    pub fn with_obs(mut self, obs: rb_obs::ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// The same plan under a fault regime — how campaigns stamp cells
    /// along the faults axis.
    pub fn with_faults(mut self, faults: Option<rb_faults::FaultSpec>) -> Self {
        self.faults = faults;
        self
    }

    /// The same plan under a different retry policy.
    pub fn with_retry(mut self, retry: rb_faults::RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The engine configuration for run `i` of this plan.
    pub fn engine_config(&self, run_index: u32) -> EngineConfig {
        EngineConfig {
            duration: self.duration,
            window: self.window,
            seed: self.base_seed.wrapping_add(run_index as u64),
            cold_start: self.cold_start,
            prewarm: self.prewarm,
            cpu_jitter_sigma: 0.005,
            max_errors: 100,
            processes: self.processes,
            cores: 4,
            arrival: self.arrival,
            obs: self.obs.clone(),
            faults: self.faults,
            retry: self.retry,
        }
    }
}

/// One run's outcome.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Full recording (windows, histograms).
    pub recording: Recording,
    /// Seed used.
    pub seed: u64,
    /// Cache capacity in effect (pages), if controlled.
    pub cache_pages: Option<u64>,
    /// Steady-state throughput. Under [`Protocol::FixedRuns`] this is
    /// the tail-window mean (the paper's "last minute"); under
    /// [`Protocol::Adaptive`] it is the mean over the windows after the
    /// detected warm-up changepoint.
    pub steady_ops_per_sec: f64,
    /// Window index where steady state was detected to begin
    /// (changepoint over the throughput series). `None` when the run
    /// never held steady for at least `tail_windows` windows.
    pub steady_from_window: Option<usize>,
    /// The performance regime this run executed in.
    pub regime: Regime,
}

/// Why a multi-run experiment stopped, and whether its aggregate is
/// trustworthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Fixed-N protocol: no stopping rule was applied (the pre-refactor
    /// behavior, kept for exact reproduction).
    Fixed,
    /// Adaptive protocol: the CI met its target within the run bounds.
    Converged,
    /// Adaptive protocol: `max_runs` reached without convergence. The
    /// aggregate is reported, but flagged.
    MaxRuns,
    /// The runs straddle performance regimes (memory- vs disk-bound):
    /// the mean describes neither, so the experiment refuses to bless
    /// it. The paper's Section 3.1 failure mode, detected.
    MixedRegime,
}

impl Verdict {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Fixed => "fixed",
            Verdict::Converged => "converged",
            Verdict::MaxRuns => "max-runs",
            Verdict::MixedRegime => "mixed-regime",
        }
    }

    /// Parses a report label back into its verdict — the inverse of
    /// [`Verdict::label`], used by the result store to round-trip
    /// persisted cell records.
    pub fn parse(s: &str) -> Option<Verdict> {
        match s {
            "fixed" => Some(Verdict::Fixed),
            "converged" => Some(Verdict::Converged),
            "max-runs" => Some(Verdict::MaxRuns),
            "mixed-regime" => Some(Verdict::MixedRegime),
            _ => None,
        }
    }

    /// Whether the aggregate behind this verdict is methodologically
    /// sound to quote as a single mean.
    pub fn is_sound(self) -> bool {
        matches!(self, Verdict::Fixed | Verdict::Converged)
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A completed multi-run experiment.
#[derive(Debug, Clone)]
pub struct MultiRun {
    /// Per-run outcomes.
    pub outcomes: Vec<RunOutcome>,
    /// Summary of steady-state throughput across runs.
    pub summary: Summary,
    /// Why the experiment stopped.
    pub verdict: Verdict,
    /// Bootstrap CI on the mean steady-state throughput (at the
    /// protocol's confidence level), when computable.
    pub ci: Option<Interval>,
}

impl MultiRun {
    /// The steady-state throughput samples.
    pub fn samples(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.steady_ops_per_sec).collect()
    }

    /// Number of runs executed.
    pub fn runs(&self) -> u32 {
        self.outcomes.len() as u32
    }

    /// Relative standard deviation (%) across runs — Figure 1's right
    /// axis. A spread needs at least two samples; fewer report `0.0`
    /// (never `NaN` — `Moments` defines the zero-sample-variance and
    /// zero-mean cases, and the tests below pin the contract).
    pub fn rsd_percent(&self) -> f64 {
        self.summary.rsd_percent
    }
}

/// What an [`Experiment`] decided after the most recent run.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentStatus {
    /// More runs are needed.
    Continue,
    /// The experiment is complete with this verdict.
    Done(Verdict),
}

/// A stateful multi-run experiment driver.
///
/// Owns the workload and plan, executes one run at a time
/// ([`Experiment::run_next`]), and evaluates the plan's protocol after
/// each ([`Experiment::status`]). [`Experiment::run_to_completion`]
/// drives the loop to a [`MultiRun`]; [`run_many`] wraps construction
/// and completion in one call.
///
/// Every run's seed derives from `plan.base_seed + run_index`, and the
/// stopping rule's bootstrap derives from `plan.base_seed` alone, so an
/// experiment is a pure function of (plan, workload, target factory) —
/// campaigns can schedule cells in any order on any number of workers
/// without changing a single byte of output.
pub struct Experiment<T, F>
where
    T: Target,
    F: FnMut(u64) -> T,
{
    make_target: F,
    workload: Workload,
    plan: RunPlan,
    outcomes: Vec<RunOutcome>,
}

impl<T, F> Experiment<T, F>
where
    T: Target,
    F: FnMut(u64) -> T,
{
    /// Creates a driver, validating the plan's protocol.
    pub fn new(make_target: F, workload: &Workload, plan: &RunPlan) -> SimResult<Self> {
        plan.protocol.validate()?;
        Ok(Experiment {
            make_target,
            workload: workload.clone(),
            plan: plan.clone(),
            outcomes: Vec::new(),
        })
    }

    /// Runs completed so far.
    pub fn completed_runs(&self) -> u32 {
        self.outcomes.len() as u32
    }

    /// Steady-state samples collected so far.
    pub fn samples(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.steady_ops_per_sec).collect()
    }

    /// The outcomes collected so far.
    pub fn outcomes(&self) -> &[RunOutcome] {
        &self.outcomes
    }

    /// Executes the next run.
    pub fn run_next(&mut self) -> SimResult<&RunOutcome> {
        let i = self.outcomes.len() as u32;
        let seed = self.plan.base_seed.wrapping_add(i as u64);
        let mut target = (self.make_target)(seed);
        // Per-run memory pressure: capacity = nominal ± jitter.
        let cache_pages = self.plan.cache_capacity.map(|base| {
            let pages = jittered_cache_pages(base, self.plan.cache_jitter, seed);
            target.set_cache_capacity_pages(pages);
            pages
        });
        let config = self.plan.engine_config(i);
        let recording = Engine::run(&mut target, &self.workload, &config)?;
        let ys: Vec<f64> = recording.windows.iter().map(|w| w.ops_per_sec).collect();
        // Changepoint-detected warm-up end. `steady_state_start` accepts
        // any trailing suffix (a 1-window suffix is trivially "stable"),
        // so demand the steady phase cover at least `tail_windows`
        // windows — a shorter one means the run never really settled,
        // and averaging a couple of windows would be a far noisier
        // sample than the tail rule.
        let min_steady = self.plan.tail_windows.max(1);
        let steady_from_window =
            steady_state_start(&ys, WARMUP_RSD_LIMIT).filter(|&s| ys.len() - s >= min_steady);
        let steady = if self.plan.protocol.is_adaptive() {
            // Average the detected steady phase; fall back to the
            // tail-window rule (then the whole run) when the series
            // never stabilizes for long enough.
            steady_from_window
                .map(|s| ys[s..].iter().sum::<f64>() / (ys.len() - s) as f64)
                .or_else(|| recording.tail_ops_per_sec(self.plan.tail_windows))
                .unwrap_or_else(|| recording.ops_per_sec())
        } else {
            recording
                .tail_ops_per_sec(self.plan.tail_windows)
                .unwrap_or_else(|| recording.ops_per_sec())
        };
        let regime = Regime::classify(&recording);
        self.outcomes.push(RunOutcome {
            recording,
            seed,
            cache_pages,
            steady_ops_per_sec: steady,
            steady_from_window,
            regime,
        });
        Ok(self.outcomes.last().expect("just pushed"))
    }

    /// Do the collected runs straddle performance regimes?
    fn regimes_mixed(&self) -> bool {
        let first = match self.outcomes.first() {
            Some(o) => o.regime,
            None => return false,
        };
        self.outcomes.iter().any(|o| o.regime != first)
    }

    /// Evaluates the protocol against the runs collected so far.
    pub fn status(&self) -> ExperimentStatus {
        let n = self.completed_runs();
        match self.plan.protocol.stopping_rule() {
            None => {
                if n < self.plan.protocol.max_runs() {
                    ExperimentStatus::Continue
                } else if self.regimes_mixed() {
                    ExperimentStatus::Done(Verdict::MixedRegime)
                } else {
                    ExperimentStatus::Done(Verdict::Fixed)
                }
            }
            Some(rule) => {
                if n < rule.min_runs {
                    return ExperimentStatus::Continue;
                }
                // A sample that straddles regimes is bimodal: no amount
                // of extra runs makes its mean meaningful. Refuse early
                // instead of burning the rest of the budget.
                if self.regimes_mixed() {
                    return ExperimentStatus::Done(Verdict::MixedRegime);
                }
                let mut rng = Rng::new(self.plan.base_seed).fork("sequential-ci");
                match sequential::evaluate(&self.samples(), &rule, &mut rng) {
                    Decision::Continue => ExperimentStatus::Continue,
                    Decision::Converged(_) => ExperimentStatus::Done(Verdict::Converged),
                    Decision::Exhausted(_) => ExperimentStatus::Done(Verdict::MaxRuns),
                }
            }
        }
    }

    /// Drives the experiment until its protocol says stop, then
    /// aggregates.
    pub fn run_to_completion(mut self) -> SimResult<MultiRun> {
        loop {
            match self.status() {
                ExperimentStatus::Continue => {
                    self.run_next()?;
                }
                ExperimentStatus::Done(verdict) => {
                    return self.finish(verdict);
                }
            }
        }
    }

    /// Aggregates the collected runs into a [`MultiRun`].
    fn finish(self, verdict: Verdict) -> SimResult<MultiRun> {
        let samples = self.samples();
        let summary = Summary::from_sample(&samples)
            .ok_or_else(|| SimError::BadConfig("experiment finished with zero runs".into()))?;
        let mut rng = Rng::new(self.plan.base_seed).fork("bootstrap-ci");
        let alpha = 1.0 - self.plan.protocol.confidence();
        let ci = bootstrap_mean_ci(&samples, REPORT_RESAMPLES, alpha, &mut rng);
        Ok(MultiRun {
            outcomes: self.outcomes,
            summary,
            verdict,
            ci,
        })
    }
}

/// Runs `workload` under `plan`'s protocol, building a fresh target per
/// run via `make_target(seed)`.
pub fn run_many<T, F>(make_target: F, workload: &Workload, plan: &RunPlan) -> SimResult<MultiRun>
where
    T: Target,
    F: FnMut(u64) -> T,
{
    Experiment::new(make_target, workload, plan)?.run_to_completion()
}

/// One run's controlled cache capacity in pages: the nominal capacity
/// plus a seeded uniform ± `jitter` perturbation, floored at one page —
/// the per-run memory-pressure model shared by the workload
/// [`Experiment`] and trace-backed campaign cells.
pub fn jittered_cache_pages(base: Bytes, jitter: Bytes, seed: u64) -> u64 {
    let jitter = jitter.as_u64();
    let mut rng = Rng::new(seed).fork("cache-jitter");
    let delta = if jitter == 0 {
        0
    } else {
        rng.below(2 * jitter + 1) as i64 - jitter as i64
    };
    let bytes = (base.as_u64() as i64 + delta).max(PAGE_SIZE.as_u64() as i64) as u64;
    Bytes::new(bytes).div_ceil(PAGE_SIZE)
}

/// Outcome of a generic protocol-driven sample loop.
///
/// [`drive_protocol`] is the repetition discipline of [`Experiment`] —
/// same stopping rule, same seed derivation, same bootstrap RNG forks —
/// for experiments whose per-run body is not the flowop engine (e.g.
/// trace replay): every run `i` gets seed `base_seed + i`, the adaptive
/// rule is re-evaluated after each run once `min_runs` are in, and the
/// reported CI comes from the deterministic `bootstrap-ci` stream.
/// Unlike [`Experiment`] it has no [`Recording`]s, so it cannot detect
/// mixed performance regimes; callers that can classify regimes should
/// do so themselves.
#[derive(Debug, Clone)]
pub struct ProtocolDrive {
    /// One sample per executed run, in run order.
    pub samples: Vec<f64>,
    /// Why the loop stopped.
    pub verdict: Verdict,
    /// Bootstrap CI on the mean sample, at the protocol's confidence.
    pub ci: Option<Interval>,
}

/// Drives `run(run_index, run_seed) -> sample` under a repetition
/// protocol; see [`ProtocolDrive`].
pub fn drive_protocol<F>(
    protocol: &Protocol,
    base_seed: u64,
    mut run: F,
) -> SimResult<ProtocolDrive>
where
    F: FnMut(u32, u64) -> SimResult<f64>,
{
    protocol.validate()?;
    let mut samples: Vec<f64> = Vec::new();
    let verdict = loop {
        let n = samples.len() as u32;
        match protocol.stopping_rule() {
            None => {
                if n >= protocol.max_runs() {
                    break Verdict::Fixed;
                }
            }
            Some(rule) => {
                if n >= rule.min_runs {
                    let mut rng = Rng::new(base_seed).fork("sequential-ci");
                    match sequential::evaluate(&samples, &rule, &mut rng) {
                        Decision::Continue => {}
                        Decision::Converged(_) => break Verdict::Converged,
                        Decision::Exhausted(_) => break Verdict::MaxRuns,
                    }
                }
            }
        }
        let seed = base_seed.wrapping_add(n as u64);
        samples.push(run(n, seed)?);
    };
    let mut rng = Rng::new(base_seed).fork("bootstrap-ci");
    let alpha = 1.0 - protocol.confidence();
    let ci = bootstrap_mean_ci(&samples, REPORT_RESAMPLES, alpha, &mut rng);
    Ok(ProtocolDrive {
        samples,
        verdict,
        ci,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;
    use crate::workload::personalities;

    fn quick_plan(runs: u32, secs: u64) -> RunPlan {
        RunPlan {
            protocol: Protocol::FixedRuns(runs),
            duration: Nanos::from_secs(secs),
            window: Nanos::from_secs(1),
            tail_windows: 3,
            base_seed: 10,
            cache_capacity: Some(Bytes::mib(410)),
            cache_jitter: Bytes::mib(3),
            cold_start: true,
            prewarm: true,
            processes: 1,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        }
    }

    fn adaptive_plan(min: u32, max: u32, ci: f64, secs: u64) -> RunPlan {
        RunPlan {
            protocol: Protocol::Adaptive {
                min_runs: min,
                max_runs: max,
                ci_rel_width: ci,
                confidence: 0.95,
            },
            ..quick_plan(0, secs)
        }
    }

    #[test]
    fn multi_run_produces_summary() {
        let w = personalities::random_read(Bytes::mib(8));
        let mr = run_many(
            |seed| testbed::paper_ext2(Bytes::gib(1), seed),
            &w,
            &quick_plan(4, 6),
        )
        .unwrap();
        assert_eq!(mr.outcomes.len(), 4);
        assert_eq!(mr.summary.n, 4);
        assert!(mr.summary.mean > 1000.0);
        assert_eq!(mr.verdict, Verdict::Fixed);
        let ci = mr.ci.expect("bootstrap ci");
        assert!(ci.contains(ci.point));
        // Distinct seeds produced distinct cache capacities.
        let caps: std::collections::HashSet<_> =
            mr.outcomes.iter().map(|o| o.cache_pages.unwrap()).collect();
        assert!(caps.len() > 1, "jitter had no effect: {caps:?}");
    }

    #[test]
    fn in_memory_runs_are_stable_across_seeds() {
        let w = personalities::random_read(Bytes::mib(8));
        let mr = run_many(
            |seed| testbed::paper_ext2(Bytes::gib(1), seed),
            &w,
            &quick_plan(5, 8),
        )
        .unwrap();
        // Memory-bound: RSD well under 2 %, as in the paper's left region.
        assert!(mr.rsd_percent() < 2.0, "rsd {}", mr.rsd_percent());
        // And all runs classify into the same (memory) regime.
        assert!(mr
            .outcomes
            .iter()
            .all(|o| o.regime == crate::analysis::Regime::MemoryBound));
    }

    #[test]
    fn deterministic_given_same_plan() {
        let w = personalities::random_read(Bytes::mib(4));
        let run = || {
            run_many(
                |seed| testbed::paper_ext2(Bytes::gib(1), seed),
                &w,
                &quick_plan(2, 3),
            )
            .unwrap()
            .samples()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_jitter_when_uncontrolled() {
        let w = personalities::random_read(Bytes::mib(4));
        let plan = RunPlan {
            cache_capacity: None,
            ..quick_plan(2, 3)
        };
        let mr = run_many(|seed| testbed::paper_ext2(Bytes::gib(1), seed), &w, &plan).unwrap();
        assert!(mr.outcomes.iter().all(|o| o.cache_pages.is_none()));
    }

    #[test]
    fn zero_runs_is_an_error_not_a_panic() {
        let w = personalities::random_read(Bytes::mib(4));
        let plan = quick_plan(0, 2);
        assert!(run_many(|seed| testbed::paper_ext2(Bytes::gib(1), seed), &w, &plan).is_err());
    }

    #[test]
    fn rsd_is_zero_never_nan_for_single_run() {
        let w = personalities::random_read(Bytes::mib(4));
        let mr = run_many(
            |seed| testbed::paper_ext2(Bytes::gib(1), seed),
            &w,
            &quick_plan(1, 3),
        )
        .unwrap();
        assert_eq!(mr.outcomes.len(), 1);
        let rsd = mr.rsd_percent();
        assert!(rsd == 0.0 && !rsd.is_nan(), "rsd {rsd}");
    }

    #[test]
    fn adaptive_stable_workload_converges_before_max() {
        // Memory-bound: ~0.5 % RSD, so a 5 % CI target converges at the
        // minimum run count.
        let w = personalities::random_read(Bytes::mib(8));
        let mr = run_many(
            |seed| testbed::paper_ext2(Bytes::gib(1), seed),
            &w,
            &adaptive_plan(3, 12, 0.05, 6),
        )
        .unwrap();
        assert_eq!(mr.verdict, Verdict::Converged);
        assert!(
            mr.runs() < 12,
            "stable workload burned the whole budget: {} runs",
            mr.runs()
        );
        let ci = mr.ci.expect("ci");
        assert!(ci.rel_width() <= 0.05, "ci rel width {}", ci.rel_width());
    }

    #[test]
    fn adaptive_detects_warmup_per_run() {
        let w = personalities::random_read(Bytes::mib(8));
        let plan = adaptive_plan(3, 6, 0.05, 6);
        let mr = run_many(|seed| testbed::paper_ext2(Bytes::gib(1), seed), &w, &plan).unwrap();
        for o in &mr.outcomes {
            // Prewarmed in-memory runs stabilize quickly — and the
            // detected steady phase must cover at least the tail-window
            // span (a shorter suffix does not count as "detected").
            let s = o.steady_from_window.expect("steady state detected");
            let windows = o.recording.windows.len();
            assert!(
                windows - s >= plan.tail_windows,
                "steady suffix too short: start {s} of {windows}"
            );
        }
    }

    #[test]
    fn adaptive_too_short_steady_phase_falls_back_to_tail_rule() {
        // With fewer windows than tail_windows, no suffix can satisfy
        // the minimum steady-phase length: detection must report None
        // (a trivially "stable" 1-window suffix does not count) and the
        // steady sample must come from the tail-window rule, never from
        // averaging a couple of trailing windows.
        let mut plan = adaptive_plan(1, 1, 0.05, 4);
        plan.window = Nanos::from_secs(1);
        plan.tail_windows = 6;
        let w = personalities::random_read(Bytes::mib(8));
        let mr = run_many(|seed| testbed::paper_ext2(Bytes::gib(1), seed), &w, &plan).unwrap();
        let o = &mr.outcomes[0];
        assert!(o.recording.windows.len() < plan.tail_windows);
        assert_eq!(
            o.steady_from_window, None,
            "a sub-tail-length suffix must not count as steady"
        );
        let tail = o.recording.tail_ops_per_sec(plan.tail_windows).unwrap();
        assert_eq!(o.steady_ops_per_sec, tail);
    }

    #[test]
    fn experiment_is_resumable_and_matches_run_many() {
        let w = personalities::random_read(Bytes::mib(4));
        let plan = quick_plan(3, 3);
        let mut exp =
            Experiment::new(|seed| testbed::paper_ext2(Bytes::gib(1), seed), &w, &plan).unwrap();
        while exp.status() == ExperimentStatus::Continue {
            exp.run_next().unwrap();
        }
        assert_eq!(exp.status(), ExperimentStatus::Done(Verdict::Fixed));
        let stepped = exp.run_to_completion().unwrap();
        let direct = run_many(|seed| testbed::paper_ext2(Bytes::gib(1), seed), &w, &plan).unwrap();
        assert_eq!(stepped.samples(), direct.samples());
        assert_eq!(stepped.verdict, direct.verdict);
    }

    #[test]
    fn protocol_validation_and_capping() {
        assert!(Protocol::FixedRuns(0).validate().is_err());
        assert!(Protocol::FixedRuns(1).validate().is_ok());
        assert!(Protocol::adaptive_default().validate().is_ok());
        let bad = Protocol::Adaptive {
            min_runs: 10,
            max_runs: 5,
            ci_rel_width: 0.02,
            confidence: 0.95,
        };
        assert!(bad.validate().is_err());
        assert_eq!(Protocol::FixedRuns(10).capped(3), Protocol::FixedRuns(3));
        assert_eq!(Protocol::FixedRuns(2).capped(0), Protocol::FixedRuns(1));
        match Protocol::adaptive_default().capped(4) {
            Protocol::Adaptive {
                min_runs, max_runs, ..
            } => {
                assert_eq!((min_runs, max_runs), (4, 4));
            }
            other => panic!("capping changed the variant: {other:?}"),
        }
    }

    #[test]
    fn protocol_from_flags_shared_parser() {
        let empty = ProtocolFlags::default();
        assert_eq!(
            Protocol::from_flags(&empty, 10).unwrap(),
            Protocol::FixedRuns(10)
        );
        assert_eq!(
            Protocol::from_flags(&empty, 3).unwrap(),
            Protocol::FixedRuns(3)
        );
        let adaptive = ProtocolFlags {
            protocol: Some("adaptive"),
            ci: Some("2%"),
            max_runs: Some("30"),
            ..Default::default()
        };
        assert_eq!(
            Protocol::from_flags(&adaptive, 10).unwrap(),
            Protocol::adaptive_default()
        );
        // Mismatched flags are one-line errors, regardless of caller.
        let mixed = ProtocolFlags {
            ci: Some("2%"),
            ..Default::default()
        };
        assert!(Protocol::from_flags(&mixed, 10).is_err());
        let fixed_runs_with_adaptive = ProtocolFlags {
            protocol: Some("adaptive"),
            runs: Some("5"),
            ..Default::default()
        };
        assert!(Protocol::from_flags(&fixed_runs_with_adaptive, 10).is_err());
        let unknown = ProtocolFlags {
            protocol: Some("warp"),
            ..Default::default()
        };
        assert!(Protocol::from_flags(&unknown, 10).is_err());
    }

    #[test]
    fn drive_protocol_runs_fixed_counts_with_derived_seeds() {
        let mut seeds = Vec::new();
        let drive = drive_protocol(&Protocol::FixedRuns(4), 100, |i, seed| {
            seeds.push((i, seed));
            Ok(1000.0 + i as f64)
        })
        .unwrap();
        assert_eq!(drive.samples.len(), 4);
        assert_eq!(drive.verdict, Verdict::Fixed);
        assert!(drive.ci.is_some());
        assert_eq!(seeds, vec![(0, 100), (1, 101), (2, 102), (3, 103)]);
        // Zero-run protocols are rejected, not an empty success.
        assert!(drive_protocol(&Protocol::FixedRuns(0), 0, |_, _| Ok(1.0)).is_err());
    }

    #[test]
    fn drive_protocol_adaptive_stops_on_stable_samples() {
        let drive = drive_protocol(&Protocol::adaptive_default(), 7, |_, _| Ok(5000.0)).unwrap();
        assert_eq!(drive.verdict, Verdict::Converged);
        assert_eq!(drive.samples.len(), 5, "constant samples converge at min");
        // Wildly noisy samples exhaust the budget instead.
        let mut noise = Rng::new(9);
        let drive = drive_protocol(
            &Protocol::Adaptive {
                min_runs: 3,
                max_runs: 6,
                ci_rel_width: 0.0001,
                confidence: 0.95,
            },
            9,
            |_, _| Ok(1000.0 + noise.next_f64() * 900.0),
        )
        .unwrap();
        assert_eq!(drive.verdict, Verdict::MaxRuns);
        assert_eq!(drive.samples.len(), 6);
    }

    #[test]
    fn drive_protocol_propagates_run_errors() {
        let err = drive_protocol(&Protocol::FixedRuns(3), 0, |i, _| {
            if i == 1 {
                Err(SimError::BadConfig("boom".into()))
            } else {
                Ok(1.0)
            }
        });
        assert!(err.is_err());
    }

    #[test]
    fn jittered_cache_pages_is_seeded_and_floored() {
        let base = Bytes::mib(64);
        let a = jittered_cache_pages(base, Bytes::mib(3), 5);
        assert_eq!(a, jittered_cache_pages(base, Bytes::mib(3), 5));
        assert_ne!(a, jittered_cache_pages(base, Bytes::mib(3), 6));
        // No jitter: exact page count.
        assert_eq!(
            jittered_cache_pages(base, Bytes::ZERO, 5),
            base.div_ceil(PAGE_SIZE)
        );
        // A pathological jitter can never drive capacity below one page.
        assert!(jittered_cache_pages(Bytes::new(1), Bytes::new(1 << 40), 3) >= 1);
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(Protocol::FixedRuns(10).to_string(), "fixed(10)");
        let label = Protocol::adaptive_default().to_string();
        assert!(label.contains("adaptive(5..30"), "{label}");
        assert_eq!(Verdict::MixedRegime.label(), "mixed-regime");
        assert!(Verdict::Converged.is_sound());
        assert!(!Verdict::MaxRuns.is_sound());
    }
}
