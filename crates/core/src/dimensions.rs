//! The file-system benchmarking dimensions (paper Section 2).
//!
//! The paper's central taxonomy: a file system must be evaluated along
//! *multiple* dimensions — raw device I/O, on-disk layout, caching,
//! meta-data operations and scaling — and a benchmark is only
//! interpretable if you know which dimensions it exercises and whether it
//! *isolates* any of them. This module encodes that taxonomy as data so
//! the survey table, the nano-benchmark suite and experiment reports all
//! speak the same language.

use std::fmt;

/// One axis of file-system behaviour (Table 1's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dimension {
    /// Raw device bandwidth/latency characterization.
    Io,
    /// Efficacy of on-disk data and meta-data layout.
    OnDisk,
    /// Cache behaviour: warm-up, eviction, prefetching.
    Caching,
    /// Meta-data operation performance.
    Metadata,
    /// Behaviour under increasing load.
    Scaling,
}

impl Dimension {
    /// All dimensions in Table 1 column order.
    pub const ALL: [Dimension; 5] = [
        Dimension::Io,
        Dimension::OnDisk,
        Dimension::Caching,
        Dimension::Metadata,
        Dimension::Scaling,
    ];

    /// Column header used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Dimension::Io => "I/O",
            Dimension::OnDisk => "On-disk",
            Dimension::Caching => "Caching",
            Dimension::Metadata => "Meta-data",
            Dimension::Scaling => "Scaling",
        }
    }
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a benchmark relates to a dimension (Table 1's cell markers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coverage {
    /// Not exercised.
    None,
    /// Exercised but *not* isolated from other dimensions ("◦").
    Exercises,
    /// Measured in isolation ("•").
    Isolates,
    /// Depends on the trace / production workload used ("⋆").
    Depends,
}

impl Coverage {
    /// The paper's table glyph.
    pub fn glyph(self) -> &'static str {
        match self {
            Coverage::None => " ",
            Coverage::Exercises => "o",
            Coverage::Isolates => "*",
            Coverage::Depends => "?",
        }
    }

    /// The paper's original Unicode glyph.
    pub fn glyph_unicode(self) -> &'static str {
        match self {
            Coverage::None => " ",
            Coverage::Exercises => "◦",
            Coverage::Isolates => "•",
            Coverage::Depends => "⋆",
        }
    }

    /// How much a cell marker tells you, for combining profiles:
    /// isolation beats trace-dependence beats mere exercise beats nothing.
    pub fn strength(self) -> u8 {
        match self {
            Coverage::None => 0,
            Coverage::Exercises => 1,
            Coverage::Depends => 2,
            Coverage::Isolates => 3,
        }
    }

    /// The stronger of two markers (by [`Coverage::strength`]).
    pub fn stronger(self, other: Coverage) -> Coverage {
        if other.strength() > self.strength() {
            other
        } else {
            self
        }
    }
}

/// A profile: coverage across all five dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageProfile {
    /// Coverage per dimension, in [`Dimension::ALL`] order.
    pub cells: [Coverage; 5],
}

impl CoverageProfile {
    /// The profile covering nothing — the identity for [`union`].
    ///
    /// [`union`]: CoverageProfile::union
    pub const EMPTY: CoverageProfile = CoverageProfile {
        cells: [Coverage::None; 5],
    };

    /// Builds a profile from per-dimension pairs; unlisted dimensions get
    /// [`Coverage::None`].
    pub fn new(pairs: &[(Dimension, Coverage)]) -> Self {
        let mut cells = [Coverage::None; 5];
        for &(d, c) in pairs {
            let idx = Dimension::ALL
                .iter()
                .position(|&x| x == d)
                .expect("dimension");
            cells[idx] = c;
        }
        CoverageProfile { cells }
    }

    /// Coverage for one dimension.
    pub fn get(&self, d: Dimension) -> Coverage {
        let idx = Dimension::ALL
            .iter()
            .position(|&x| x == d)
            .expect("dimension");
        self.cells[idx]
    }

    /// Dimensions measured in isolation.
    pub fn isolated(&self) -> Vec<Dimension> {
        Dimension::ALL
            .iter()
            .copied()
            .filter(|&d| self.get(d) == Coverage::Isolates)
            .collect()
    }

    /// Dimensions exercised at all (any non-None coverage).
    pub fn exercised(&self) -> Vec<Dimension> {
        Dimension::ALL
            .iter()
            .copied()
            .filter(|&d| self.get(d) != Coverage::None)
            .collect()
    }

    /// True if the benchmark touches several dimensions but isolates
    /// none — the paper's definition of an uninterpretable benchmark.
    pub fn is_conflated(&self) -> bool {
        self.exercised().len() >= 2 && self.isolated().is_empty()
    }

    /// Combines two profiles cell-wise, keeping the stronger marker.
    ///
    /// A campaign covering several benchmarks covers, per dimension, the
    /// best any member achieves; this is how a sweep's aggregate coverage
    /// row is computed.
    pub fn union(&self, other: &CoverageProfile) -> CoverageProfile {
        let mut cells = [Coverage::None; 5];
        for (i, cell) in cells.iter_mut().enumerate() {
            *cell = self.cells[i].stronger(other.cells[i]);
        }
        CoverageProfile { cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_columns() {
        let labels: Vec<&str> = Dimension::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(
            labels,
            vec!["I/O", "On-disk", "Caching", "Meta-data", "Scaling"]
        );
    }

    #[test]
    fn profile_roundtrip() {
        let p = CoverageProfile::new(&[
            (Dimension::Io, Coverage::Isolates),
            (Dimension::Caching, Coverage::Exercises),
        ]);
        assert_eq!(p.get(Dimension::Io), Coverage::Isolates);
        assert_eq!(p.get(Dimension::Caching), Coverage::Exercises);
        assert_eq!(p.get(Dimension::Scaling), Coverage::None);
        assert_eq!(p.isolated(), vec![Dimension::Io]);
        assert_eq!(p.exercised(), vec![Dimension::Io, Dimension::Caching]);
    }

    #[test]
    fn conflation_definition() {
        // Postmark-like: exercises several dimensions, isolates none but
        // meta-data... the paper marks meta-data as isolated for nothing;
        // here: o o o with no * is conflated.
        let conflated = CoverageProfile::new(&[
            (Dimension::OnDisk, Coverage::Exercises),
            (Dimension::Caching, Coverage::Exercises),
            (Dimension::Metadata, Coverage::Exercises),
        ]);
        assert!(conflated.is_conflated());
        // IOmeter: isolates I/O: not conflated.
        let iometer = CoverageProfile::new(&[(Dimension::Io, Coverage::Isolates)]);
        assert!(!iometer.is_conflated());
        // Single-dimension exercise is not conflated either.
        let single = CoverageProfile::new(&[(Dimension::Caching, Coverage::Exercises)]);
        assert!(!single.is_conflated());
    }

    #[test]
    fn union_keeps_strongest_marker() {
        let a = CoverageProfile::new(&[
            (Dimension::Io, Coverage::Exercises),
            (Dimension::Caching, Coverage::Isolates),
        ]);
        let b = CoverageProfile::new(&[
            (Dimension::Io, Coverage::Isolates),
            (Dimension::Metadata, Coverage::Depends),
        ]);
        let u = a.union(&b);
        assert_eq!(u.get(Dimension::Io), Coverage::Isolates);
        assert_eq!(u.get(Dimension::Caching), Coverage::Isolates);
        assert_eq!(u.get(Dimension::Metadata), Coverage::Depends);
        assert_eq!(u.get(Dimension::OnDisk), Coverage::None);
        assert_eq!(CoverageProfile::EMPTY.union(&a), a);
        assert_eq!(a.union(&CoverageProfile::EMPTY), a);
    }

    #[test]
    fn glyphs_are_distinct() {
        use std::collections::HashSet;
        let set: HashSet<&str> = [
            Coverage::None,
            Coverage::Exercises,
            Coverage::Isolates,
            Coverage::Depends,
        ]
        .iter()
        .map(|c| c.glyph())
        .collect();
        assert_eq!(set.len(), 4);
    }
}
