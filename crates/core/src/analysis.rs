//! Interpreting results: regimes, fragility, warm-up, fair comparison.
//!
//! The paper's complaint is not only that benchmarks are fragile but that
//! researchers *report results without noticing*. This module is the
//! "careful researcher" automated: it classifies which regime a
//! measurement ran in, locates cliffs and fragile transition regions in
//! sweeps, characterizes warm-up, and refuses to bless comparisons made
//! from bimodal (mixed-regime) data.

use crate::workload::Recording;
use rb_stats::changepoint::{steepest_drop, transition_window, Cliff};
use rb_stats::compare::{welch_t, WelchT};
use rb_stats::moments::Moments;
use rb_stats::peaks::{classify_modality, Modality};
use rb_stats::timeseries::Window;

/// The performance regime a run executed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Working set fits in cache: measuring memory/CPU.
    MemoryBound,
    /// Working set far exceeds cache: measuring the disk.
    DiskBound,
    /// Mixed hit/miss operation: the fragile middle.
    Transition,
}

impl Regime {
    /// Classifies a run from its cache hit ratio, using the latency
    /// histogram's modality as a cross-check.
    pub fn classify(recording: &Recording) -> Regime {
        let modality = classify_modality(&recording.histogram);
        match recording.hit_ratio {
            Some(h) if h >= 0.995 => Regime::MemoryBound,
            Some(h) if h <= 0.05 => Regime::DiskBound,
            Some(_) => Regime::Transition,
            None => match modality {
                Modality::Bimodal | Modality::Multimodal => Regime::Transition,
                _ => {
                    // Fall back to the dominant latency scale.
                    match recording.histogram.mode_bucket() {
                        Some(b) if b >= 18 => Regime::DiskBound,
                        Some(_) => Regime::MemoryBound,
                        None => Regime::Transition,
                    }
                }
            },
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Regime::MemoryBound => "memory-bound",
            Regime::DiskBound => "disk-bound",
            Regime::Transition => "transition",
        }
    }
}

/// Fragility analysis of a parameter sweep (Figure 1's story).
#[derive(Debug, Clone)]
pub struct FragilityReport {
    /// Mean throughput per sweep point `(x, mean)`.
    pub means: Vec<(f64, f64)>,
    /// RSD (%) per sweep point `(x, rsd)`.
    pub rsds: Vec<(f64, f64)>,
    /// Steepest cliff, if any.
    pub cliff: Option<Cliff>,
    /// Transition window `(x_lo, x_hi)`, if identifiable.
    pub transition: Option<(f64, f64)>,
    /// Sweep point with the largest RSD.
    pub max_rsd_at: Option<(f64, f64)>,
}

impl FragilityReport {
    /// Analyzes per-point samples: `(x, run samples)` pairs.
    pub fn from_sweep(points: &[(f64, Vec<f64>)]) -> FragilityReport {
        let mut means = Vec::with_capacity(points.len());
        let mut rsds = Vec::with_capacity(points.len());
        for (x, samples) in points {
            let m = Moments::from_slice(samples);
            means.push((*x, m.mean()));
            rsds.push((*x, m.rsd_percent()));
        }
        let cliff = steepest_drop(&means);
        let transition = transition_window(&means, 0.15);
        let max_rsd_at = rsds
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        FragilityReport {
            means,
            rsds,
            cliff,
            transition,
            max_rsd_at,
        }
    }

    /// The narrowest x-distance over which mean throughput halves —
    /// the Section 3.1 zoom metric ("drops within less than 6 MB").
    pub fn halving_distance(&self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for i in 0..self.means.len() {
            let (xi, yi) = self.means[i];
            if yi <= 0.0 {
                continue;
            }
            for (xj, yj) in self.means.iter().copied().skip(i + 1) {
                if yj * 2.0 <= yi {
                    let d = xj - xi;
                    if best.is_none_or(|b| d < b) {
                        best = Some(d);
                    }
                    break;
                }
            }
        }
        best
    }
}

/// Warm-up characterization of a single run (Figure 2's story).
#[derive(Debug, Clone, Copy)]
pub struct WarmupReport {
    /// Window index where steady state begins, if reached.
    pub steady_from_window: Option<usize>,
    /// Seconds of warm-up before steady state.
    pub warmup_seconds: Option<f64>,
    /// Throughput ratio steady/initial (the S-curve's rise).
    pub rise_factor: f64,
}

impl WarmupReport {
    /// Analyzes a windowed throughput series.
    pub fn from_windows(windows: &[Window], rsd_limit: f64) -> WarmupReport {
        let ys: Vec<f64> = windows.iter().map(|w| w.ops_per_sec).collect();
        let steady = rb_stats::changepoint::steady_state_start(&ys, rsd_limit);
        let warmup_seconds = steady
            .and_then(|i| windows.get(i))
            .map(|w| w.start.as_secs_f64());
        let first = ys.iter().copied().find(|&y| y > 0.0).unwrap_or(0.0);
        let last = ys.last().copied().unwrap_or(0.0);
        let rise_factor = if first > 0.0 { last / first } else { 0.0 };
        WarmupReport {
            steady_from_window: steady,
            warmup_seconds,
            rise_factor,
        }
    }
}

/// Verdict of a two-system comparison.
#[derive(Debug, Clone)]
pub struct ComparisonVerdict {
    /// The underlying test.
    pub test: WelchT,
    /// Regimes the two measurements ran in.
    pub regimes: (Regime, Regime),
    /// Whether the comparison is methodologically sound.
    pub sound: bool,
    /// Human-readable explanation.
    pub explanation: String,
}

/// Compares two systems' run samples, refusing to bless mixed-regime
/// comparisons (the paper: depending on when you measure during the
/// transition, "the results can show differences ranging anywhere from a
/// few percentage points to nearly an order of magnitude").
pub fn compare_systems(
    a_name: &str,
    a_samples: &[f64],
    a_regime: Regime,
    b_name: &str,
    b_samples: &[f64],
    b_regime: Regime,
) -> Option<ComparisonVerdict> {
    let test = welch_t(a_samples, b_samples)?;
    let same_regime = a_regime == b_regime;
    let any_transition = a_regime == Regime::Transition || b_regime == Regime::Transition;
    let sound = same_regime && !any_transition;
    let explanation = if !same_regime {
        format!(
            "UNSOUND: {a_name} measured {} while {b_name} measured {}; \
             these numbers describe different subsystems",
            a_regime.label(),
            b_regime.label()
        )
    } else if any_transition {
        "UNSOUND: both systems are in the transition regime; results \
             depend on cache state more than on the systems themselves"
            .to_string()
    } else if test.significant_at(0.05) {
        format!(
            "{a_name} vs {b_name} ({}): difference of {:.1} ops/s is \
             significant (p = {:.4}, {} effect)",
            a_regime.label(),
            test.mean_diff,
            test.p_value,
            test.effect_label()
        )
    } else {
        format!(
            "{a_name} vs {b_name} ({}): no significant difference \
             (p = {:.3})",
            a_regime.label(),
            test.p_value
        )
    };
    Some(ComparisonVerdict {
        test,
        regimes: (a_regime, b_regime),
        sound,
        explanation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_simcore::time::Nanos;
    use rb_stats::histogram::Log2Histogram;

    fn recording_with(hit_ratio: Option<f64>, latencies: &[(u64, u64)]) -> Recording {
        let mut histogram = Log2Histogram::new();
        for &(ns, n) in latencies {
            histogram.record_n(Nanos::from_nanos(ns), n);
        }
        Recording {
            windows: Vec::new(),
            histogram,
            per_op: Default::default(),
            ops: latencies.iter().map(|&(_, n)| n).sum(),
            errors: 0,
            duration: Nanos::from_secs(1),
            hit_ratio,
            open_loop: None,
            metrics: None,
            trace: None,
            ledger: None,
        }
    }

    #[test]
    fn regime_from_hit_ratio() {
        assert_eq!(
            Regime::classify(&recording_with(Some(1.0), &[(4096, 100)])),
            Regime::MemoryBound
        );
        assert_eq!(
            Regime::classify(&recording_with(Some(0.01), &[(8_388_608, 100)])),
            Regime::DiskBound
        );
        assert_eq!(
            Regime::classify(&recording_with(Some(0.5), &[(4096, 50), (8_388_608, 50)])),
            Regime::Transition
        );
    }

    #[test]
    fn regime_from_histogram_when_no_ratio() {
        assert_eq!(
            Regime::classify(&recording_with(None, &[(4096, 100)])),
            Regime::MemoryBound
        );
        assert_eq!(
            Regime::classify(&recording_with(None, &[(8_388_608, 100)])),
            Regime::DiskBound
        );
        assert_eq!(
            Regime::classify(&recording_with(None, &[(4096, 50), (8_388_608, 50)])),
            Regime::Transition
        );
    }

    #[test]
    fn fragility_finds_cliff_and_rsd_spike() {
        // Synthetic Figure 1: plateau, fragile middle, tail.
        let points: Vec<(f64, Vec<f64>)> = vec![
            (320.0, vec![9700.0, 9690.0, 9710.0]),
            (384.0, vec![9715.0, 9700.0, 9720.0]),
            (416.0, vec![9000.0, 4000.0, 6500.0]), // fragile!
            (448.0, vec![1019.0, 1100.0, 950.0]),
            (512.0, vec![465.0, 470.0, 460.0]),
        ];
        let rep = FragilityReport::from_sweep(&points);
        let cliff = rep.cliff.unwrap();
        assert_eq!(cliff.x_before, 416.0);
        let (x, rsd) = rep.max_rsd_at.unwrap();
        assert_eq!(x, 416.0);
        assert!(rsd > 20.0, "rsd {rsd}");
        let halve = rep.halving_distance().unwrap();
        assert!(halve <= 64.0, "halving distance {halve}");
    }

    #[test]
    fn warmup_report_on_s_curve() {
        use rb_stats::timeseries::WindowedSeries;
        let mut s = WindowedSeries::new(Nanos::from_secs(10));
        // 10 windows ramping, then 10 flat.
        let mut t = 0u64;
        for w in 0..20u64 {
            let rate = if w < 10 { (w + 1) * 10 } else { 110 };
            for _ in 0..rate {
                s.record(Nanos::from_secs(w * 10 + (t % 10)), Nanos::from_micros(5));
                t += 1;
            }
        }
        let windows = s.finish();
        let rep = WarmupReport::from_windows(&windows, 5.0);
        assert!(rep.steady_from_window.is_some());
        assert!(rep.warmup_seconds.unwrap() >= 50.0);
        assert!(rep.rise_factor > 5.0);
    }

    #[test]
    fn comparison_blesses_same_regime() {
        let a = [9700.0, 9690.0, 9711.0, 9705.0];
        let b = [9100.0, 9090.0, 9111.0, 9105.0];
        let v = compare_systems(
            "ext2",
            &a,
            Regime::MemoryBound,
            "ext3",
            &b,
            Regime::MemoryBound,
        )
        .unwrap();
        assert!(v.sound);
        assert!(v.explanation.contains("significant"));
    }

    #[test]
    fn comparison_rejects_mixed_regimes() {
        let a = [9700.0, 9690.0, 9711.0];
        let b = [465.0, 470.0, 460.0];
        let v = compare_systems(
            "ext2",
            &a,
            Regime::MemoryBound,
            "xfs",
            &b,
            Regime::DiskBound,
        )
        .unwrap();
        assert!(!v.sound);
        assert!(v.explanation.contains("UNSOUND"));
    }

    #[test]
    fn comparison_rejects_transition() {
        let a = [5000.0, 9000.0, 2000.0];
        let b = [4000.0, 8500.0, 2500.0];
        let v = compare_systems("a", &a, Regime::Transition, "b", &b, Regime::Transition).unwrap();
        assert!(!v.sound);
    }
}
