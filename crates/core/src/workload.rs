//! Workload model: file sets, flowops and personalities.
//!
//! A mini-Filebench: workloads are declarative combinations of *file
//! sets* (populations of files) and weighted *flowops* (read/write/
//! create/delete/stat/fsync primitives), executed by [`Engine::run`]
//! against any [`Target`]. The paper's case-study workload — "one thread
//! randomly reading from a single file" — is [`personalities::random_read`];
//! the other classic personalities (web server, file server, varmail,
//! postmark) are provided for the broader suite.

use crate::sched::{Arrival, Completion, OpenLoopConfig, SchedDriver};
use crate::target::Target;
use rb_simcore::dist::{Dist, Zipf};
use rb_simcore::error::{SimError, SimResult};
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use rb_simfs::intern::PathId;
use rb_simfs::stack::{Fd, OpCost};
use rb_stats::histogram::Log2Histogram;
use rb_stats::timeseries::{GaugeSeries, Window, WindowedSeries};
use std::collections::HashMap;

/// A population of files used by a workload.
#[derive(Debug, Clone)]
pub struct FileSet {
    /// Directory holding the set (e.g. `/set0`).
    pub dir: String,
    /// Files created at setup.
    pub count: u64,
    /// File size distribution (bytes).
    pub size: Dist,
    /// Whether files are preallocated to their size at setup.
    pub prealloc: bool,
}

impl FileSet {
    /// Path of the `i`-th file.
    pub fn path(&self, i: u64) -> String {
        format!("{}/f{:06}", self.dir, i)
    }
}

/// A workload primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowOp {
    /// Read `iosize` bytes at a random aligned offset of a random file.
    ReadRandom {
        /// File set index.
        set: usize,
        /// I/O size.
        iosize: Bytes,
    },
    /// Read the next `iosize` bytes of a random file (per-file cursor,
    /// wrapping at end of file).
    ReadSequential {
        /// File set index.
        set: usize,
        /// I/O size.
        iosize: Bytes,
    },
    /// Read an entire random file in `iosize` chunks.
    ReadWholeFile {
        /// File set index.
        set: usize,
        /// I/O size.
        iosize: Bytes,
    },
    /// Write `iosize` bytes at a random aligned offset.
    WriteRandom {
        /// File set index.
        set: usize,
        /// I/O size.
        iosize: Bytes,
    },
    /// Append `iosize` bytes to a random file.
    Append {
        /// File set index.
        set: usize,
        /// I/O size.
        iosize: Bytes,
    },
    /// Create (and open) a new file in the set.
    CreateFile {
        /// File set index.
        set: usize,
    },
    /// Delete a random file from the set.
    DeleteFile {
        /// File set index.
        set: usize,
    },
    /// Stat a random file.
    StatFile {
        /// File set index.
        set: usize,
    },
    /// Open and close a random file.
    OpenClose {
        /// File set index.
        set: usize,
    },
    /// fsync a random file.
    Fsync {
        /// File set index.
        set: usize,
    },
}

impl FlowOp {
    /// Short label for per-op statistics.
    pub fn label(&self) -> &'static str {
        match self {
            FlowOp::ReadRandom { .. } => "read-rand",
            FlowOp::ReadSequential { .. } => "read-seq",
            FlowOp::ReadWholeFile { .. } => "read-file",
            FlowOp::WriteRandom { .. } => "write-rand",
            FlowOp::Append { .. } => "append",
            FlowOp::CreateFile { .. } => "create",
            FlowOp::DeleteFile { .. } => "delete",
            FlowOp::StatFile { .. } => "stat",
            FlowOp::OpenClose { .. } => "open-close",
            FlowOp::Fsync { .. } => "fsync",
        }
    }
}

/// A complete workload definition.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Name for reports.
    pub name: String,
    /// File sets, indexed by the flowops.
    pub filesets: Vec<FileSet>,
    /// Weighted operation mix.
    pub ops: Vec<(FlowOp, u32)>,
    /// Per-operation framework overhead (syscall dispatch, flowop
    /// accounting — what makes Filebench report ~9.7 kops/s rather than
    /// 250 kops/s for in-memory reads).
    pub op_overhead: Nanos,
    /// File-popularity skew: 0 = uniform, ~1 = web-like.
    pub zipf_theta: f64,
}

/// Engine (single-run) configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Virtual/wall duration of the measured phase.
    pub duration: Nanos,
    /// Throughput sampling window (the paper's Figure 2 uses 10 s).
    pub window: Nanos,
    /// Seed for all workload randomness.
    pub seed: u64,
    /// Drop caches after setup so the run starts cold.
    pub cold_start: bool,
    /// Sequentially sweep every file once before measuring. This reaches
    /// the same steady state as the paper's 20-minute cold runs in a
    /// fraction of the (virtual and host) time; leave it off when the
    /// warm-up itself is the experiment (Figure 2).
    pub prewarm: bool,
    /// Per-run CPU-speed wobble: the op overhead is scaled by a
    /// log-normal factor with this sigma, drawn once per run. Models the
    /// host noise (thermal state, background load) that gives even
    /// memory-bound benchmarks their ~0.5 % run-to-run variance.
    pub cpu_jitter_sigma: f64,
    /// Abort after this many consecutive operation errors.
    pub max_errors: u64,
    /// Concurrent closed-loop worker processes. `1` runs the classic
    /// serial loop (byte-identical to the pre-concurrency engine);
    /// `N > 1` drives N workers through the [`crate::sched`]
    /// discrete-event scheduler, contending for [`EngineConfig::cores`]
    /// and the shared device. Requires a target that supports
    /// time-parameterized operations (the simulated stack does).
    pub processes: u32,
    /// CPU cores the scheduler hands out to processes (ignored when
    /// `processes == 1`).
    pub cores: u32,
    /// How requests arrive. [`Arrival::Closed`] (the default) is the
    /// classic issue-on-completion loop; any open mode generates
    /// offered load on its own seed-deterministic schedule, feeds a
    /// bounded queue in front of [`EngineConfig::processes`] service
    /// workers, and reports tail latency, queue depth and drops in
    /// [`Recording::open_loop`]. Open modes require a
    /// time-parameterized target, like `processes > 1`.
    pub arrival: Arrival,
    /// Flight-recorder configuration: metrics capture and span tracing.
    /// Fully off by default; the disabled path is a single `Option`
    /// check per run, so recordings (and everything derived from them)
    /// stay byte-identical to an engine without the recorder.
    pub obs: rb_obs::ObsConfig,
    /// Deterministic fault plan armed for the measured phase (`None` =
    /// healthy device). Faults install *after* setup/prewarm, so file
    /// preallocation is never error-gated; the plan is a pure function
    /// of (spec, forked seed stream, virtual clock), and the disabled
    /// path leaves every recording byte-identical to a fault-free
    /// engine.
    pub faults: Option<rb_faults::FaultSpec>,
    /// How the engine responds to injected I/O failures.
    /// [`rb_faults::RetryPolicy::None`] keeps the legacy behaviour
    /// (errors count toward [`EngineConfig::max_errors`]); the bounded
    /// and continue policies treat fault-class errors as survivable and
    /// account every op in [`Recording::ledger`].
    pub retry: rb_faults::RetryPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            duration: Nanos::from_secs(60),
            window: Nanos::from_secs(10),
            seed: 0,
            cold_start: true,
            prewarm: false,
            cpu_jitter_sigma: 0.005,
            max_errors: 100,
            processes: 1,
            cores: 4,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        }
    }
}

/// Everything recorded during one run.
#[derive(Debug, Clone)]
pub struct Recording {
    /// Throughput/histogram windows over the run, from t = 0.
    pub windows: Vec<Window>,
    /// Latency histogram over all operations.
    pub histogram: Log2Histogram,
    /// Latency histograms per flowop label.
    pub per_op: HashMap<&'static str, Log2Histogram>,
    /// Operations completed.
    pub ops: u64,
    /// Operations that failed (and were skipped).
    pub errors: u64,
    /// Total measured duration.
    pub duration: Nanos,
    /// Cache hit ratio over the run, when the target reports one.
    pub hit_ratio: Option<f64>,
    /// Open-loop accounting (offered load, drops, tail percentiles,
    /// queue depth), present only when the run used an open
    /// [`EngineConfig::arrival`] mode.
    pub open_loop: Option<OpenLoopReport>,
    /// Flight-recorder snapshot (per-layer counter deltas, latency
    /// decomposition, gauge timeline), present when
    /// [`rb_obs::ObsConfig::metrics`] was enabled.
    pub metrics: Option<rb_obs::MetricsSnapshot>,
    /// Virtual-time span trace of sampled op lifecycles, present when
    /// [`rb_obs::ObsConfig::trace`] was configured.
    pub trace: Option<rb_obs::SpanTrace>,
    /// Fault-outcome ledger (`attempted = succeeded + retried_ok +
    /// gave_up + dropped`, degraded-mode time, crash verdict), present
    /// only when [`EngineConfig::faults`] armed a plan.
    pub ledger: Option<rb_faults::OutcomeLedger>,
}

/// What an open-loop run measures beyond the closed-loop recording:
/// the offered-vs-served ledger and the tail of the latency
/// distribution *including queue wait*.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// The arrival mode the run used.
    pub arrival: Arrival,
    /// Requests the arrival process generated within the horizon.
    pub offered: u64,
    /// Requests served to completion (including past-deadline drain).
    pub completed: u64,
    /// Requests that reached the target but failed.
    pub failed: u64,
    /// Requests rejected at the full admission queue.
    pub dropped: u64,
    /// Median end-to-end latency (arrival to completion), from the
    /// run's log2 histogram. `None` when nothing was recorded.
    pub p50: Option<Nanos>,
    /// 99th-percentile end-to-end latency.
    pub p99: Option<Nanos>,
    /// 99.9th-percentile end-to-end latency.
    pub p999: Option<Nanos>,
    /// Deepest the admission queue ever got.
    pub max_queue_depth: u32,
    /// `(instant since start, queue depth)` sampled once per
    /// [`EngineConfig::window`].
    pub depth_timeline: Vec<(Nanos, u32)>,
}

impl OpenLoopReport {
    /// Fraction of offered requests that were dropped at the queue.
    pub fn drop_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

impl Recording {
    /// Overall mean throughput.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Mean throughput over the final `n` windows ("last minute only").
    pub fn tail_ops_per_sec(&self, n: usize) -> Option<f64> {
        rb_stats::timeseries::tail_mean_ops_per_sec(&self.windows, n)
    }

    /// Throughput points `(seconds, ops/s)` for plotting.
    pub fn throughput_series(&self) -> Vec<(f64, f64)> {
        self.windows
            .iter()
            .map(|w| (w.start.as_secs_f64(), w.ops_per_sec))
            .collect()
    }
}

/// Live state of one file during a run.
#[derive(Debug)]
pub struct LiveFile {
    /// Target path.
    pub path: String,
    /// The path pre-resolved on the target (when the target caches
    /// resolutions), so per-op path operations skip the string walk.
    pub pid: Option<PathId>,
    /// Open handle.
    pub fd: Fd,
    /// Current logical size.
    pub size: Bytes,
    /// Sequential-read cursor.
    pub cursor: Bytes,
}

/// The workload executor.
pub struct Engine;

impl Engine {
    /// Creates the file sets (directories, files, preallocation).
    ///
    /// Returns per-set live-file tables. Separated from [`Engine::run`]
    /// so callers can interpose (age the file system, warm the cache)
    /// between setup and measurement.
    pub fn setup(
        target: &mut dyn Target,
        workload: &Workload,
        seed: u64,
    ) -> SimResult<Vec<Vec<LiveFile>>> {
        let mut rng = Rng::new(seed).fork("setup");
        let mut sets = Vec::with_capacity(workload.filesets.len());
        for fs in &workload.filesets {
            target.mkdir(&fs.dir)?;
            let mut live = Vec::with_capacity(fs.count as usize);
            for i in 0..fs.count {
                let path = fs.path(i);
                // Split/intern the path once here; every later op on
                // this file resolves by id.
                let pid = target.prepare_path(&path);
                match pid {
                    Some(id) => target.create_id(id, &path)?,
                    None => target.create(&path)?,
                };
                let fd = match pid {
                    Some(id) => target.open_id(id, &path)?,
                    None => target.open(&path)?,
                };
                let size = Bytes::new(fs.size.sample(&mut rng).max(0.0) as u64);
                if fs.prealloc && !size.is_zero() {
                    target.set_size(fd, size)?;
                }
                live.push(LiveFile {
                    path,
                    pid,
                    fd,
                    size,
                    cursor: Bytes::ZERO,
                });
            }
            sets.push(live);
        }
        Ok(sets)
    }

    /// Runs `workload` against `target` for the configured duration.
    pub fn run(
        target: &mut dyn Target,
        workload: &Workload,
        config: &EngineConfig,
    ) -> SimResult<Recording> {
        let mut sets = Self::setup(target, workload, config.seed)?;
        if config.cold_start {
            target.drop_caches();
        }
        Self::run_prepared(target, workload, config, &mut sets)
    }

    /// Sequentially sweeps every live file once (64 KiB chunks), filling
    /// the cache the way a linear scan would. Not recorded.
    pub fn prewarm(target: &mut dyn Target, sets: &[Vec<LiveFile>]) -> SimResult<()> {
        let chunk = Bytes::kib(64);
        for set in sets {
            for f in set {
                let mut off = Bytes::ZERO;
                while off < f.size {
                    target.read(f.fd, off, chunk)?;
                    off += chunk;
                }
            }
        }
        Ok(())
    }

    /// Runs the measured phase against already-set-up file sets.
    ///
    /// With [`EngineConfig::processes`] `== 1` this is the classic
    /// serial loop, byte-identical to the pre-concurrency engine. With
    /// `processes > 1` the same flowop mix drives N closed-loop workers
    /// through the [`crate::sched`] discrete-event scheduler, contending
    /// for cores and the shared device.
    pub fn run_prepared(
        target: &mut dyn Target,
        workload: &Workload,
        config: &EngineConfig,
        sets: &mut [Vec<LiveFile>],
    ) -> SimResult<Recording> {
        if workload.ops.is_empty() {
            return Err(SimError::BadConfig("workload has no ops".into()));
        }
        if config.arrival.is_open() {
            return Self::run_open(target, workload, config, sets);
        }
        if config.processes > 1 {
            return Self::run_scheduled(target, workload, config, sets);
        }
        if config.prewarm {
            Self::prewarm(target, sets)?;
        }
        if let Some(spec) = config.faults {
            target.install_faults(spec, config.seed)?;
        }
        let stats_before = target.cache_stats();
        let mut rng = Rng::new(config.seed).fork("run");
        let op_overhead = Self::effective_op_overhead(workload, config);
        let mut obs = ObsState::begin(config, target, op_overhead, 1, 1);
        let program = OpProgram::new(workload)?;
        let mut zipfs = Self::build_zipfs(sets, workload);
        let mut series = WindowedSeries::new(config.window);
        let mut histogram = Log2Histogram::new();
        let mut per_op_slots = vec![Log2Histogram::new(); program.labels.len()];
        let mut ops = 0u64;
        let mut errors = 0u64;
        let mut consecutive_errors = 0u64;
        let mut created_serial = 1_000_000u64;
        let mut ledger = config.faults.map(|_| rb_faults::OutcomeLedger::default());

        let start = target.now();
        let end = start + config.duration;
        let mut crash_at = config.faults.and_then(|s| s.crash_at()).map(|d| start + d);
        // Background flusher cadence (Linux: every ~5 s).
        let tick_every = Nanos::from_secs(5);
        let mut next_tick = start + tick_every;
        while target.now() < end {
            // Catch up on missed cadences: an op longer than the tick
            // interval (a disk-bound whole-file read, say) used to slip
            // the flusher by one period per op, unboundedly.
            while target.now() >= next_tick {
                target.background_tick();
                next_tick += tick_every;
            }
            if let Some(at) = crash_at {
                if target.now() >= at {
                    // The instant of loss: dirty pages vanish, the file
                    // system replays its recovery plan, and the run
                    // continues on the recovered (still degraded) state.
                    crash_at = None;
                    let report = target.crash_recover(target.now())?;
                    target.advance(report.recovery);
                    if let Some(l) = &mut ledger {
                        l.crash = Some(report);
                        l.degraded += report.recovery;
                    }
                }
            }
            let (op_idx, chosen) = program.pick(workload, &mut rng);
            if let Some(l) = &mut ledger {
                l.attempted += 1;
            }
            let mut attempts = 0u32;
            let result = loop {
                let r = Self::execute(
                    target,
                    chosen,
                    sets,
                    &mut zipfs,
                    workload,
                    &mut rng,
                    &mut created_serial,
                );
                match r {
                    Err(e) if Self::is_fault_error(&e) && attempts < config.retry.retries() => {
                        // Deterministic virtual-time backoff, then the
                        // op re-executes in full (fresh draws, same
                        // stream — a redrive, not a replay).
                        attempts += 1;
                        let backoff = rb_faults::RetryPolicy::backoff(attempts);
                        target.advance(backoff);
                        if let Some(l) = &mut ledger {
                            l.degraded += backoff;
                        }
                    }
                    other => break other,
                }
            };
            match result {
                Ok(lat) => {
                    consecutive_errors = 0;
                    if let Some(l) = &mut ledger {
                        if attempts > 0 {
                            l.retried_ok += 1;
                            l.retries += attempts as u64;
                        } else {
                            l.succeeded += 1;
                        }
                    }
                    let when = target.now() - start;
                    // An operation that completes past the deadline belongs
                    // to the next (unreported) window; recording it would
                    // fabricate a nearly-empty trailing sample.
                    if when <= config.duration {
                        ops += 1;
                        series.record(when, lat);
                        histogram.record(lat);
                        per_op_slots[program.slot_of_op[op_idx] as usize].record(lat);
                        if let Some(obs) = &mut obs {
                            let label = program.labels[program.slot_of_op[op_idx] as usize];
                            obs.on_serial_op(label, start + when, lat);
                            obs.maybe_sample(when, target);
                        }
                    }
                    target.advance(op_overhead);
                }
                Err(e) => {
                    errors += 1;
                    if let Some(l) = &mut ledger {
                        l.gave_up += 1;
                        l.retries += attempts as u64;
                    }
                    // Under a fault-tolerant policy, giving up on an
                    // injected fault is an accounted outcome, not a step
                    // toward the consecutive-failure abort.
                    let tolerated =
                        config.retry != rb_faults::RetryPolicy::None && Self::is_fault_error(&e);
                    if tolerated {
                        consecutive_errors = 0;
                    } else {
                        consecutive_errors += 1;
                        if consecutive_errors >= config.max_errors {
                            return Err(SimError::InvalidOperation(format!(
                                "aborting: {consecutive_errors} consecutive op failures"
                            )));
                        }
                    }
                    // Errors still cost framework time; avoids a spin.
                    target.advance(op_overhead);
                }
            }
        }
        if let Some(l) = &mut ledger {
            if let Some(fs) = target.fault_stats() {
                l.degraded += fs.slow_extra + fs.stall_extra;
            }
        }
        let hit_ratio = Self::hit_ratio_delta(stats_before, target);
        let (mut metrics, trace) = match obs {
            Some(o) => o.finish(target, target.now() - start),
            None => (None, None),
        };
        Self::patch_fault_metrics(&mut metrics, &ledger);
        Ok(Recording {
            windows: series.finish(),
            histogram,
            per_op: Self::fold_per_op(&program, per_op_slots),
            ops,
            errors,
            duration: target.now() - start,
            hit_ratio,
            open_loop: None,
            metrics,
            trace,
            ledger,
        })
    }

    /// Whether an error is fault-class — injected (or mechanical)
    /// device failure rather than a workload/config mistake. Only these
    /// are retried, and only these are survivable under a tolerant
    /// [`rb_faults::RetryPolicy`].
    fn is_fault_error(e: &SimError) -> bool {
        matches!(e, SimError::Io { .. } | SimError::NoSpace)
    }

    /// The run's per-op framework overhead: one CPU-speed factor drawn
    /// per run (within-run jitter would average out over millions of
    /// operations, but run-to-run wobble does not). Shared verbatim by
    /// the serial and scheduled paths so they can never drift.
    fn effective_op_overhead(workload: &Workload, config: &EngineConfig) -> Nanos {
        if config.cpu_jitter_sigma > 0.0 {
            let factor = Rng::new(config.seed)
                .fork("cpu-jitter")
                .lognormal(1.0, config.cpu_jitter_sigma)
                .clamp(0.8, 1.25);
            workload.op_overhead.mul_f64(factor)
        } else {
            workload.op_overhead
        }
    }

    /// Total flowop weight, rejecting all-zero mixes.
    fn total_weight(workload: &Workload) -> SimResult<u64> {
        let total: u64 = workload.ops.iter().map(|&(_, w)| w as u64).sum();
        if total == 0 {
            return Err(SimError::BadConfig("all op weights are zero".into()));
        }
        Ok(total)
    }

    /// Popularity sampler per set (rebuilt when a set's size changes a
    /// lot; Zipf over the max index, clamped to live count).
    fn build_zipfs(sets: &[Vec<LiveFile>], workload: &Workload) -> Vec<Zipf> {
        sets.iter()
            .map(|s| Zipf::new(s.len().max(1), workload.zipf_theta))
            .collect()
    }

    /// Folds dense per-slot histograms back into the by-label map the
    /// [`Recording`] reports (slots with no recorded ops are dropped,
    /// matching the old insert-on-first-record HashMap behavior).
    fn fold_per_op(
        program: &OpProgram,
        slots: Vec<Log2Histogram>,
    ) -> HashMap<&'static str, Log2Histogram> {
        let mut map = HashMap::new();
        for (slot, h) in slots.into_iter().enumerate() {
            if h.total() > 0 {
                map.insert(program.labels[slot], h);
            }
        }
        map
    }

    /// Folds the engine-side retry/give-up counts from the outcome
    /// ledger into the snapshot's fault section — the fault layer only
    /// sees injections, not what the retry policy did about them.
    fn patch_fault_metrics(
        metrics: &mut Option<rb_obs::MetricsSnapshot>,
        ledger: &Option<rb_faults::OutcomeLedger>,
    ) {
        if let (Some(m), Some(l)) = (metrics.as_mut(), ledger) {
            if let Some(f) = &mut m.faults {
                f.retries = l.retries;
                f.gave_up = l.gave_up;
            }
        }
    }

    /// Per-phase hit ratio from the cache-stats delta when available.
    fn hit_ratio_delta(
        before: Option<rb_simcache::page::CacheStats>,
        target: &dyn Target,
    ) -> Option<f64> {
        match (before, target.cache_stats()) {
            (Some(b), Some(a)) => {
                let hits = a.hits - b.hits;
                let misses = a.misses - b.misses;
                if hits + misses == 0 {
                    None
                } else {
                    Some(hits as f64 / (hits + misses) as f64)
                }
            }
            _ => target.cache_hit_ratio(),
        }
    }

    /// Runs the measured phase with `processes > 1` workers through the
    /// discrete-event scheduler. The flowop mix, file sets, Zipf
    /// samplers and created-file serial are shared state (mutated in
    /// deterministic event order); each worker draws from its own
    /// forked RNG stream, so the interleaving is a pure function of
    /// (workload, config, seed).
    fn run_scheduled(
        target: &mut dyn Target,
        workload: &Workload,
        config: &EngineConfig,
        sets: &mut [Vec<LiveFile>],
    ) -> SimResult<Recording> {
        if !target.supports_timed() {
            return Err(SimError::BadConfig(format!(
                "{} processes need a time-parameterized target, and {} cannot \
                 decouple execution from its clock; run with processes=1",
                config.processes,
                target.name()
            )));
        }
        if config.prewarm {
            Self::prewarm(target, sets)?;
        }
        if let Some(spec) = config.faults {
            target.install_faults(spec, config.seed)?;
        }
        let stats_before = target.cache_stats();
        let op_overhead = Self::effective_op_overhead(workload, config);
        let program = OpProgram::new(workload)?;
        let zipfs = Self::build_zipfs(sets, workload);
        // One independent stream per worker: adding draws in one
        // process never perturbs another.
        let base_rng = Rng::new(config.seed).fork("run");
        let rngs: Vec<Rng> = (0..config.processes)
            .map(|p| base_rng.fork(&format!("proc{p}")))
            .collect();
        let start = target.now();
        let sched_config = crate::sched::SchedConfig {
            processes: config.processes,
            cores: config.cores,
            start,
            duration: config.duration,
            think: op_overhead,
            tick_every: Nanos::from_secs(5),
        };
        let per_op_slots = vec![Log2Histogram::new(); program.labels.len()];
        let obs = ObsState::begin(config, target, op_overhead, config.processes, config.cores);
        let mut driver = EngineDriver {
            target: &mut *target,
            workload,
            config,
            sets,
            zipfs,
            rngs,
            program,
            created_serial: 1_000_000,
            current_slot: vec![0; config.processes as usize],
            start,
            series: WindowedSeries::new(config.window),
            histogram: Log2Histogram::new(),
            per_op_slots,
            ops: 0,
            errors: 0,
            consecutive_errors: 0,
            obs,
            ledger: config.faults.map(|_| rb_faults::OutcomeLedger::default()),
            crash_at: config.faults.and_then(|s| s.crash_at()).map(|d| start + d),
        };
        let outcome = crate::sched::run_closed_loop(&sched_config, &mut driver)?;
        let EngineDriver {
            series,
            histogram,
            per_op_slots,
            program,
            ops,
            errors,
            obs,
            mut ledger,
            ..
        } = driver;
        // Release the queue-aware service floor the pump has been
        // publishing; post-run surgery issues at the target's own clock.
        target.set_device_floor(Nanos::ZERO);
        if let Some(l) = &mut ledger {
            if let Some(fs) = target.fault_stats() {
                l.degraded += fs.slow_extra + fs.stall_extra;
            }
        }
        // The timed ops never moved the target clock; walk it to the
        // final completion so post-run surgery sees a consistent
        // timeline (and duration matches the serial convention of
        // "first instant at or past the deadline").
        target.advance(outcome.finished - start);
        let hit_ratio = Self::hit_ratio_delta(stats_before, target);
        let (mut metrics, trace) = match obs {
            Some(o) => o.finish(target, outcome.finished - start),
            None => (None, None),
        };
        Self::patch_fault_metrics(&mut metrics, &ledger);
        Ok(Recording {
            windows: series.finish(),
            histogram,
            per_op: Self::fold_per_op(&program, per_op_slots),
            ops,
            errors,
            duration: outcome.finished - start,
            hit_ratio,
            open_loop: None,
            metrics,
            trace,
            ledger,
        })
    }

    /// Admission-queue bound for open-loop runs: past this many waiting
    /// requests, new arrivals are dropped and counted. Large enough
    /// that transient bursts survive, small enough that a saturated run
    /// produces honest backpressure instead of an unbounded backlog.
    const OPEN_QUEUE_CAP: u32 = 1024;

    /// Runs the measured phase open loop: the configured arrival
    /// process feeds a bounded queue in front of
    /// [`EngineConfig::processes`] service workers (any count ≥ 1),
    /// each executing the same flowop mix through the discrete-event
    /// scheduler. Recorded latencies span arrival to completion, so
    /// they include the queue wait a closed loop structurally hides;
    /// [`Recording::open_loop`] carries the offered/dropped ledger,
    /// p50/p99/p999 and the queue-depth timeline.
    fn run_open(
        target: &mut dyn Target,
        workload: &Workload,
        config: &EngineConfig,
        sets: &mut [Vec<LiveFile>],
    ) -> SimResult<Recording> {
        if !target.supports_timed() {
            return Err(SimError::BadConfig(format!(
                "open-loop arrivals need a time-parameterized target, and {} cannot \
                 decouple execution from its clock; run with --arrival closed",
                target.name()
            )));
        }
        if config.prewarm {
            Self::prewarm(target, sets)?;
        }
        if let Some(spec) = config.faults {
            target.install_faults(spec, config.seed)?;
        }
        let stats_before = target.cache_stats();
        let op_overhead = Self::effective_op_overhead(workload, config);
        let program = OpProgram::new(workload)?;
        let zipfs = Self::build_zipfs(sets, workload);
        let workers = config.processes.max(1);
        let base_rng = Rng::new(config.seed).fork("run");
        let rngs: Vec<Rng> = (0..workers)
            .map(|p| base_rng.fork(&format!("proc{p}")))
            .collect();
        // The arrival stream is its own fork: adding workers never
        // perturbs when requests arrive, and vice versa.
        let arrival_rng = Rng::new(config.seed).fork("arrivals");
        let start = target.now();
        let open_config = OpenLoopConfig {
            sched: crate::sched::SchedConfig {
                processes: workers,
                cores: config.cores,
                start,
                duration: config.duration,
                think: op_overhead,
                tick_every: Nanos::from_secs(5),
            },
            arrival: config.arrival,
            queue_cap: Self::OPEN_QUEUE_CAP,
            sample_every: config.window,
        };
        let per_op_slots = vec![Log2Histogram::new(); program.labels.len()];
        let obs = ObsState::begin(config, target, op_overhead, workers, config.cores);
        let mut driver = EngineDriver {
            target: &mut *target,
            workload,
            config,
            sets,
            zipfs,
            rngs,
            program,
            created_serial: 1_000_000,
            current_slot: vec![0; workers as usize],
            start,
            series: WindowedSeries::new(config.window),
            histogram: Log2Histogram::new(),
            per_op_slots,
            ops: 0,
            errors: 0,
            consecutive_errors: 0,
            obs,
            ledger: config.faults.map(|_| rb_faults::OutcomeLedger::default()),
            crash_at: config.faults.and_then(|s| s.crash_at()).map(|d| start + d),
        };
        let outcome = crate::sched::run_open_loop(&open_config, arrival_rng, &mut driver)?;
        let EngineDriver {
            series,
            histogram,
            per_op_slots,
            program,
            ops,
            errors,
            obs,
            mut ledger,
            ..
        } = driver;
        target.set_device_floor(Nanos::ZERO);
        if let Some(l) = &mut ledger {
            // Queue-rejected requests never reached the target: they
            // enter the ledger as attempted-and-dropped, keeping the
            // conservation identity over the *offered* load.
            l.attempted += outcome.dropped;
            l.dropped += outcome.dropped;
            if let Some(fs) = target.fault_stats() {
                l.degraded += fs.slow_extra + fs.stall_extra;
            }
        }
        target.advance(outcome.finished - start);
        let hit_ratio = Self::hit_ratio_delta(stats_before, target);
        let open_loop = OpenLoopReport {
            arrival: config.arrival,
            offered: outcome.offered,
            completed: outcome.completed,
            failed: outcome.failed,
            dropped: outcome.dropped,
            p50: histogram.quantile(0.5),
            p99: histogram.quantile(0.99),
            p999: histogram.quantile(0.999),
            max_queue_depth: outcome.max_queue_depth,
            depth_timeline: outcome.depth_timeline,
        };
        let (mut metrics, trace) = match obs {
            Some(o) => o.finish(target, outcome.finished - start),
            None => (None, None),
        };
        Self::patch_fault_metrics(&mut metrics, &ledger);
        Ok(Recording {
            windows: series.finish(),
            histogram,
            per_op: Self::fold_per_op(&program, per_op_slots),
            ops,
            errors,
            duration: outcome.finished - start,
            hit_ratio,
            open_loop: Some(open_loop),
            metrics,
            trace,
            ledger,
        })
    }

    /// Executes one flowop at instant `issue` through the target's
    /// time-parameterized interface, returning the decomposed cost.
    /// State effects (cache contents, namespace, live-file tables) are
    /// identical to [`Engine::execute`]; only the clock discipline
    /// differs. Multi-step flowops (whole-file reads, create-then-open)
    /// stagger their sub-operations by each step's serialized latency.
    #[allow(clippy::too_many_arguments)]
    fn execute_timed(
        target: &mut dyn Target,
        op: FlowOp,
        sets: &mut [Vec<LiveFile>],
        zipfs: &mut [Zipf],
        workload: &Workload,
        rng: &mut Rng,
        created_serial: &mut u64,
        issue: Nanos,
    ) -> SimResult<OpCost> {
        match op {
            FlowOp::ReadRandom { set, iosize } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                let slots = (f.size.as_u64() / iosize.as_u64().max(1)).max(1);
                let offset = Bytes::new(rng.below(slots) * iosize.as_u64());
                target.read_at(f.fd, offset, iosize, issue)
            }
            FlowOp::ReadSequential { set, iosize } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                if f.cursor >= f.size {
                    f.cursor = Bytes::ZERO;
                }
                let off = f.cursor;
                f.cursor += iosize;
                target.read_at(f.fd, off, iosize, issue)
            }
            FlowOp::ReadWholeFile { set, iosize } => {
                let (fd, size) = {
                    let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                    (f.fd, f.size)
                };
                let mut cost = OpCost::default();
                let mut t = issue;
                let mut off = Bytes::ZERO;
                while off < size {
                    let c = target.read_at(fd, off, iosize, t)?;
                    cost.cpu += c.cpu;
                    cost.device += c.device;
                    t += c.total();
                    off += iosize;
                }
                Ok(cost)
            }
            FlowOp::WriteRandom { set, iosize } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                let slots = (f.size.as_u64() / iosize.as_u64().max(1)).max(1);
                let offset = Bytes::new(rng.below(slots) * iosize.as_u64());
                target.write_at(f.fd, offset, iosize, issue)
            }
            FlowOp::Append { set, iosize } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                let off = f.size;
                f.size += iosize;
                target.write_at(f.fd, off, iosize, issue)
            }
            FlowOp::CreateFile { set } => {
                let dir = &workload
                    .filesets
                    .get(set)
                    .ok_or_else(|| SimError::BadConfig(format!("no file set {set}")))?
                    .dir;
                let path = Self::create_path(dir, *created_serial);
                *created_serial += 1;
                let pid = target.prepare_path(&path);
                let created = target.create_at(pid, &path, issue)?;
                let (fd, opened) = target.open_at(pid, &path, issue + created.total())?;
                sets[set].push(LiveFile {
                    path,
                    pid,
                    fd,
                    size: Bytes::ZERO,
                    cursor: Bytes::ZERO,
                });
                Ok(OpCost {
                    cpu: created.cpu + opened.cpu,
                    device: created.device + opened.device,
                })
            }
            FlowOp::DeleteFile { set } => {
                let live = sets
                    .get_mut(set)
                    .ok_or_else(|| SimError::BadConfig(format!("no file set {set}")))?;
                if live.len() <= 1 {
                    return Err(SimError::NotFound("set nearly empty".into()));
                }
                let idx = rng.below(live.len() as u64) as usize;
                let f = live.swap_remove(idx);
                let _ = target.close(f.fd);
                target.unlink_at(f.pid, &f.path, issue)
            }
            FlowOp::StatFile { set } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                target.stat_at(f.pid, &f.path, issue)
            }
            FlowOp::OpenClose { set } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                let (fd, cost) = target.open_at(f.pid, &f.path, issue)?;
                target.close(fd)?;
                Ok(cost)
            }
            FlowOp::Fsync { set } => {
                let fd = {
                    let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                    f.fd
                };
                target.fsync_at(fd, issue)
            }
        }
    }

    /// Path for the `serial`-th created file in `dir` — byte-identical
    /// to `format!("{dir}/c{serial:08}")`, built by hand so the create
    /// hot path stays off the formatting machinery.
    fn create_path(dir: &str, serial: u64) -> String {
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        let mut v = serial;
        loop {
            i -= 1;
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        let ndigits = digits.len() - i;
        let mut path = String::with_capacity(dir.len() + 2 + ndigits.max(8));
        path.push_str(dir);
        path.push_str("/c");
        for _ in ndigits..8 {
            path.push('0');
        }
        path.push_str(std::str::from_utf8(&digits[i..]).expect("ascii digits"));
        path
    }

    fn pick_file<'s>(
        sets: &'s mut [Vec<LiveFile>],
        zipfs: &mut [Zipf],
        set: usize,
        theta: f64,
        rng: &mut Rng,
    ) -> SimResult<&'s mut LiveFile> {
        let live = sets
            .get_mut(set)
            .ok_or_else(|| SimError::BadConfig(format!("no file set {set}")))?;
        if live.is_empty() {
            return Err(SimError::NotFound(format!("file set {set} is empty")));
        }
        if zipfs[set].len() != live.len() {
            zipfs[set] = Zipf::new(live.len(), theta);
        }
        let idx = zipfs[set].sample(rng).min(live.len() - 1);
        Ok(&mut live[idx])
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        target: &mut dyn Target,
        op: FlowOp,
        sets: &mut [Vec<LiveFile>],
        zipfs: &mut [Zipf],
        workload: &Workload,
        rng: &mut Rng,
        created_serial: &mut u64,
    ) -> SimResult<Nanos> {
        match op {
            FlowOp::ReadRandom { set, iosize } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                let slots = (f.size.as_u64() / iosize.as_u64().max(1)).max(1);
                let offset = Bytes::new(rng.below(slots) * iosize.as_u64());
                target.read(f.fd, offset, iosize)
            }
            FlowOp::ReadSequential { set, iosize } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                if f.cursor >= f.size {
                    f.cursor = Bytes::ZERO;
                }
                let off = f.cursor;
                f.cursor += iosize;
                target.read(f.fd, off, iosize)
            }
            FlowOp::ReadWholeFile { set, iosize } => {
                let (fd, size) = {
                    let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                    (f.fd, f.size)
                };
                let mut total = Nanos::ZERO;
                let mut off = Bytes::ZERO;
                while off < size {
                    total += target.read(fd, off, iosize)?;
                    off += iosize;
                }
                Ok(total)
            }
            FlowOp::WriteRandom { set, iosize } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                let slots = (f.size.as_u64() / iosize.as_u64().max(1)).max(1);
                let offset = Bytes::new(rng.below(slots) * iosize.as_u64());
                target.write(f.fd, offset, iosize)
            }
            FlowOp::Append { set, iosize } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                let off = f.size;
                f.size += iosize;
                target.write(f.fd, off, iosize)
            }
            FlowOp::CreateFile { set } => {
                let dir = &workload
                    .filesets
                    .get(set)
                    .ok_or_else(|| SimError::BadConfig(format!("no file set {set}")))?
                    .dir;
                let path = Self::create_path(dir, *created_serial);
                *created_serial += 1;
                let pid = target.prepare_path(&path);
                let lat = match pid {
                    Some(id) => target.create_id(id, &path)?,
                    None => target.create(&path)?,
                };
                let fd = match pid {
                    Some(id) => target.open_id(id, &path)?,
                    None => target.open(&path)?,
                };
                sets[set].push(LiveFile {
                    path,
                    pid,
                    fd,
                    size: Bytes::ZERO,
                    cursor: Bytes::ZERO,
                });
                Ok(lat)
            }
            FlowOp::DeleteFile { set } => {
                let live = sets
                    .get_mut(set)
                    .ok_or_else(|| SimError::BadConfig(format!("no file set {set}")))?;
                if live.len() <= 1 {
                    return Err(SimError::NotFound("set nearly empty".into()));
                }
                let idx = rng.below(live.len() as u64) as usize;
                let f = live.swap_remove(idx);
                let _ = target.close(f.fd);
                match f.pid {
                    Some(id) => target.unlink_id(id, &f.path),
                    None => target.unlink(&f.path),
                }
            }
            FlowOp::StatFile { set } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                match f.pid {
                    Some(id) => target.stat_id(id, &f.path),
                    None => target.stat(&f.path),
                }
            }
            FlowOp::OpenClose { set } => {
                let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                let t0 = target.now();
                let fd = match f.pid {
                    Some(id) => target.open_id(id, &f.path)?,
                    None => target.open(&f.path)?,
                };
                target.close(fd)?;
                Ok(target.now() - t0)
            }
            FlowOp::Fsync { set } => {
                let fd = {
                    let f = Self::pick_file(sets, zipfs, set, workload.zipf_theta, rng)?;
                    f.fd
                };
                target.fsync(fd)
            }
        }
    }
}

/// Live flight-recorder state for one run: before-captures of every
/// layer's counters, the scheduler accumulators, the gauge timeline and
/// the optional span recorder. Only constructed when
/// [`rb_obs::ObsConfig::enabled`], so the disabled path costs exactly
/// one `Option` check at each hook site.
struct ObsState {
    metrics: bool,
    cache_before: Option<rb_simcache::page::CacheStats>,
    fs_before: Option<rb_simfs::stack::StackStats>,
    disk_before: Option<rb_simdisk::device::DeviceStats>,
    policy: Option<&'static str>,
    sched: rb_obs::SchedMetrics,
    timeline: GaugeSeries,
    spans: Option<rb_obs::SpanRecorder>,
    /// Effective per-op think time, for splitting core wait out of the
    /// pre-issue delay.
    think: Nanos,
}

impl ObsState {
    /// Gauges sampled once per window into the timeline.
    const GAUGES: [&'static str; 2] = ["hit_ratio", "device_busy"];

    /// Captures the before-counters and opens the recorders; `None`
    /// when the flight recorder is fully off.
    fn begin(
        config: &EngineConfig,
        target: &dyn Target,
        think: Nanos,
        processes: u32,
        cores: u32,
    ) -> Option<ObsState> {
        if !config.obs.enabled() {
            return None;
        }
        let sched = rb_obs::SchedMetrics {
            processes,
            cores,
            core_busy: vec![Nanos::ZERO; cores as usize],
            ..rb_obs::SchedMetrics::default()
        };
        Some(ObsState {
            metrics: config.obs.metrics,
            cache_before: target.cache_stats(),
            fs_before: target.stack_stats(),
            disk_before: target.disk_stats(),
            policy: target.cache_policy(),
            sched,
            timeline: GaugeSeries::new(config.window, &Self::GAUGES),
            spans: config.obs.trace.as_ref().map(rb_obs::SpanRecorder::new),
            think,
        })
    }

    /// Samples the gauge timeline if `when` (time since run start)
    /// crossed a window boundary: cumulative hit ratio and device busy
    /// fraction, both as deltas from the run's start.
    fn maybe_sample(&mut self, when: Nanos, target: &dyn Target) {
        if !self.metrics || !self.timeline.due(when) {
            return;
        }
        let hit_ratio = match (self.cache_before, target.cache_stats()) {
            (Some(b), Some(a)) => {
                let hits = a.hits - b.hits;
                let lookups = hits + (a.misses - b.misses);
                if lookups == 0 {
                    0.0
                } else {
                    hits as f64 / lookups as f64
                }
            }
            _ => 0.0,
        };
        let device_busy = match (&self.disk_before, target.disk_stats()) {
            (Some(b), Some(a)) => (a.busy - b.busy).as_secs_f64() / when.as_secs_f64().max(1e-9),
            _ => 0.0,
        };
        self.timeline.sample(when, &[hit_ratio, device_busy]);
    }

    /// Records one serial-loop completion: a flat span (the serial
    /// engine has no contention phases to decompose) plus the run
    /// totals.
    fn on_serial_op(&mut self, label: &'static str, end: Nanos, latency: Nanos) {
        if let Some(spans) = &mut self.spans {
            spans.record_flat(0, 0, label, end - latency, end);
        }
        if self.metrics {
            self.sched.completed += 1;
            self.sched.latency += latency;
        }
    }

    /// Records one scheduled-engine completion: the exact latency
    /// decomposition (`core_wait + think + cpu + queue_wait + device ==
    /// latency` by pump construction) and the op's span tree.
    fn on_sched_op(&mut self, completion: &Completion, label: &'static str) {
        let cpu_end = completion.issued + completion.cost.cpu;
        let device_start = completion.completed - completion.cost.device;
        if let Some(spans) = &mut self.spans {
            spans.record_op(
                completion.process,
                completion.core,
                label,
                completion.arrived,
                completion.issued,
                cpu_end,
                device_start,
                completion.completed,
            );
        }
        if self.metrics {
            let s = &mut self.sched;
            s.completed += 1;
            s.latency += completion.completed - completion.arrived;
            s.core_wait += completion.issued - completion.arrived - self.think;
            s.think += self.think;
            s.cpu += completion.cost.cpu;
            s.device += completion.cost.device;
            s.queue_wait += device_start - cpu_end;
            s.core_busy[completion.core as usize] += self.think;
        }
    }

    /// Closes the recorders into the recording's optional payloads.
    fn finish(
        self,
        target: &dyn Target,
        duration: Nanos,
    ) -> (Option<rb_obs::MetricsSnapshot>, Option<rb_obs::SpanTrace>) {
        let trace = self.spans.map(rb_obs::SpanRecorder::finish);
        if !self.metrics {
            return (None, trace);
        }
        let cache = match (self.cache_before, target.cache_stats()) {
            (Some(b), Some(a)) => Some(rb_obs::metrics::cache_delta(&b, &a)),
            _ => None,
        };
        let fs = match (self.fs_before, target.stack_stats()) {
            (Some(b), Some(a)) => Some(rb_obs::metrics::stack_delta(&b, &a)),
            _ => None,
        };
        let disk = match (&self.disk_before, target.disk_stats()) {
            (Some(b), Some(a)) => Some(rb_obs::DiskDelta::between(b, &a)),
            _ => None,
        };
        // Fault counters come straight from the target's fault layer;
        // retries/gave_up are engine-side and patched in from the
        // ledger by the caller (see `patch_fault_metrics`).
        let faults = target.fault_stats().map(|s| rb_obs::FaultDelta {
            injected_errors: s.injected_errors(),
            bad_blocks: s.bad_blocks,
            stall_hits: s.stall_hits,
            enospc_rejections: s.enospc_rejections,
            absorbed_errors: s.absorbed_errors,
            degraded_us: s.degraded().as_micros(),
            retries: 0,
            gave_up: 0,
        });
        let metrics = rb_obs::MetricsSnapshot {
            duration,
            policy: self.policy,
            cache,
            fs,
            disk,
            faults,
            sched: self.sched,
            timeline: self.timeline,
        };
        (Some(metrics), trace)
    }
}

/// Precomputed flat dispatch for a workload's weighted op mix.
///
/// Built once per run, used once per operation: a single
/// `rng.below(total_weight)` draw (the *same* single draw the old
/// cumulative-weight scan consumed, so RNG streams are untouched) maps
/// straight to the chosen flowop through an expanded lookup table, and
/// every distinct op label gets a dense slot index so per-op latency
/// histograms are array-indexed on the hot path instead of paying a
/// SipHash probe per completion.
struct OpProgram {
    total_weight: u64,
    /// Draw value → op index. Present when the total weight is small
    /// enough to expand (always, for the built-in personalities);
    /// otherwise [`OpProgram::pick`] falls back to the scan.
    table: Option<Vec<u16>>,
    /// Op index → histogram slot. Ops sharing a label share a slot,
    /// exactly like the by-label HashMap bookkeeping this replaces.
    slot_of_op: Vec<u32>,
    /// Histogram slot → label.
    labels: Vec<&'static str>,
}

impl OpProgram {
    /// Largest total weight worth expanding into a dispatch table.
    const MAX_TABLE: u64 = 4096;

    fn new(workload: &Workload) -> SimResult<OpProgram> {
        let total_weight = Engine::total_weight(workload)?;
        let table = if total_weight <= Self::MAX_TABLE && workload.ops.len() <= u16::MAX as usize {
            let mut t = Vec::with_capacity(total_weight as usize);
            for (i, &(_, w)) in workload.ops.iter().enumerate() {
                t.extend(std::iter::repeat_n(i as u16, w as usize));
            }
            Some(t)
        } else {
            None
        };
        let mut labels: Vec<&'static str> = Vec::new();
        let slot_of_op = workload
            .ops
            .iter()
            .map(|&(op, _)| {
                let label = op.label();
                match labels.iter().position(|&l| l == label) {
                    Some(s) => s as u32,
                    None => {
                        labels.push(label);
                        (labels.len() - 1) as u32
                    }
                }
            })
            .collect();
        Ok(OpProgram {
            total_weight,
            table,
            slot_of_op,
            labels,
        })
    }

    /// Picks the next flowop: one weighted draw, O(1) dispatch.
    fn pick(&self, workload: &Workload, rng: &mut Rng) -> (usize, FlowOp) {
        let mut pick = rng.below(self.total_weight);
        if let Some(t) = &self.table {
            let i = t[pick as usize] as usize;
            return (i, workload.ops[i].0);
        }
        for (i, &(op, w)) in workload.ops.iter().enumerate() {
            if pick < w as u64 {
                return (i, op);
            }
            pick -= w as u64;
        }
        (0, workload.ops[0].0)
    }
}

/// The engine's [`SchedDriver`]: owns the target borrow and all shared
/// run state, so the scheduler's event pump works through one object.
struct EngineDriver<'a> {
    target: &'a mut dyn Target,
    workload: &'a Workload,
    config: &'a EngineConfig,
    sets: &'a mut [Vec<LiveFile>],
    zipfs: Vec<Zipf>,
    /// One RNG stream per process, indexed by process id.
    rngs: Vec<Rng>,
    program: OpProgram,
    created_serial: u64,
    /// The histogram slot of each process's in-flight operation (closed
    /// loop: at most one per process), for per-op stats at completion.
    current_slot: Vec<u32>,
    start: Nanos,
    series: WindowedSeries,
    histogram: Log2Histogram,
    per_op_slots: Vec<Log2Histogram>,
    ops: u64,
    errors: u64,
    consecutive_errors: u64,
    /// Flight-recorder state, present only when observability is on.
    obs: Option<ObsState>,
    /// Fault-outcome ledger, present only when faults are armed.
    ledger: Option<rb_faults::OutcomeLedger>,
    /// Pending crash instant; taken (set to `None`) when it fires.
    crash_at: Option<Nanos>,
}

impl EngineDriver<'_> {
    /// One scheduled operation: the weighted draw, the (possibly
    /// retried) execution, and the ledger accounting. Backoff between
    /// attempts folds into the op's CPU charge, so the scheduler sees
    /// one longer operation rather than N short ones — the worker
    /// holds its core through the retry storm, like a thread spinning
    /// in the kernel's resubmit path.
    fn exec_once(&mut self, process: u32, now: Nanos) -> SimResult<OpCost> {
        let rng = &mut self.rngs[process as usize];
        // The same weighted draw as the serial loop, from this
        // process's own stream, dispatched through the flat table.
        let (op_idx, chosen) = self.program.pick(self.workload, rng);
        self.current_slot[process as usize] = self.program.slot_of_op[op_idx];
        if let Some(l) = &mut self.ledger {
            l.attempted += 1;
        }
        let mut attempts = 0u32;
        let mut backoff = Nanos::ZERO;
        loop {
            let result = Engine::execute_timed(
                self.target,
                chosen,
                self.sets,
                &mut self.zipfs,
                self.workload,
                &mut self.rngs[process as usize],
                &mut self.created_serial,
                now + backoff,
            );
            match result {
                Ok(mut cost) => {
                    if let Some(l) = &mut self.ledger {
                        if attempts > 0 {
                            l.retried_ok += 1;
                            l.retries += attempts as u64;
                        } else {
                            l.succeeded += 1;
                        }
                    }
                    cost.cpu += backoff;
                    return Ok(cost);
                }
                Err(e) if Engine::is_fault_error(&e) && attempts < self.config.retry.retries() => {
                    attempts += 1;
                    let wait = rb_faults::RetryPolicy::backoff(attempts);
                    backoff += wait;
                    if let Some(l) = &mut self.ledger {
                        l.degraded += wait;
                    }
                }
                Err(e) => {
                    if let Some(l) = &mut self.ledger {
                        l.gave_up += 1;
                        l.retries += attempts as u64;
                    }
                    return Err(e);
                }
            }
        }
    }
}

impl SchedDriver for EngineDriver<'_> {
    fn exec(&mut self, process: u32, now: Nanos) -> SimResult<OpCost> {
        if let Some(at) = self.crash_at {
            if now >= at {
                // First issue past the crash instant pays for recovery:
                // its device charge carries the replay I/O, so every
                // later op queues behind the recovering device exactly
                // as processes stall behind a remounting file system.
                self.crash_at = None;
                let report = self.target.crash_recover(now)?;
                if let Some(l) = &mut self.ledger {
                    l.crash = Some(report);
                    l.degraded += report.recovery;
                }
                let mut cost = self.exec_once(process, now)?;
                cost.device += report.recovery;
                return Ok(cost);
            }
        }
        self.exec_once(process, now)
    }

    fn tick(&mut self, start: Nanos) -> Nanos {
        self.target.tick_at(start)
    }

    fn on_complete(&mut self, completion: &Completion) -> SimResult<()> {
        self.consecutive_errors = 0;
        let when = completion.completed - self.start;
        // Same deadline discipline as the serial loop: an operation
        // completing past the deadline belongs to an unreported window.
        if when <= self.config.duration {
            self.ops += 1;
            let latency = completion.completed - completion.arrived;
            self.series.record(when, latency);
            self.histogram.record(latency);
            let slot = self.current_slot[completion.process as usize] as usize;
            self.per_op_slots[slot].record(latency);
            if let Some(obs) = &mut self.obs {
                obs.on_sched_op(completion, self.program.labels[slot]);
                obs.maybe_sample(when, self.target);
            }
        }
        Ok(())
    }

    fn on_error(&mut self, _process: u32, _now: Nanos, error: SimError) -> SimResult<()> {
        self.errors += 1;
        // Fault-class errors under a tolerant policy are accounted
        // outcomes (the ledger's gave_up), not steps toward the abort.
        if self.config.retry != rb_faults::RetryPolicy::None && Engine::is_fault_error(&error) {
            self.consecutive_errors = 0;
            return Ok(());
        }
        self.consecutive_errors += 1;
        if self.consecutive_errors >= self.config.max_errors {
            return Err(SimError::InvalidOperation(format!(
                "aborting: {} consecutive op failures",
                self.consecutive_errors
            )));
        }
        Ok(())
    }

    fn set_device_floor(&mut self, floor: Nanos) {
        self.target.set_device_floor(floor);
    }
}

/// Ready-made workload personalities.
pub mod personalities {
    use super::*;

    /// The paper's Section 3 workload: one thread randomly reading from a
    /// single file of the given size, 8 KiB at a time.
    pub fn random_read(file_size: Bytes) -> Workload {
        Workload {
            name: format!("randomread-{file_size}"),
            filesets: vec![FileSet {
                dir: "/set0".into(),
                count: 1,
                size: Dist::Constant(file_size.as_u64() as f64),
                prealloc: true,
            }],
            ops: vec![(
                FlowOp::ReadRandom {
                    set: 0,
                    iosize: Bytes::kib(8),
                },
                1,
            )],
            op_overhead: Nanos::from_micros(99),
            zipf_theta: 0.0,
        }
    }

    /// Sequential whole-file streaming of a single file.
    pub fn sequential_read(file_size: Bytes) -> Workload {
        Workload {
            name: format!("seqread-{file_size}"),
            filesets: vec![FileSet {
                dir: "/set0".into(),
                count: 1,
                size: Dist::Constant(file_size.as_u64() as f64),
                prealloc: true,
            }],
            ops: vec![(
                FlowOp::ReadSequential {
                    set: 0,
                    iosize: Bytes::kib(64),
                },
                1,
            )],
            op_overhead: Nanos::from_micros(99),
            zipf_theta: 0.0,
        }
    }

    /// Random 8 KiB overwrites of a single preallocated file.
    pub fn random_write(file_size: Bytes) -> Workload {
        Workload {
            name: format!("randomwrite-{file_size}"),
            filesets: vec![FileSet {
                dir: "/set0".into(),
                count: 1,
                size: Dist::Constant(file_size.as_u64() as f64),
                prealloc: true,
            }],
            ops: vec![(
                FlowOp::WriteRandom {
                    set: 0,
                    iosize: Bytes::kib(8),
                },
                1,
            )],
            op_overhead: Nanos::from_micros(99),
            zipf_theta: 0.0,
        }
    }

    /// Web server: Zipf-popular whole-file reads of many small files plus
    /// a log append (Filebench webserver shape).
    pub fn webserver(nfiles: u64) -> Workload {
        Workload {
            name: "webserver".into(),
            filesets: vec![
                FileSet {
                    dir: "/htdocs".into(),
                    count: nfiles,
                    size: Dist::Pareto {
                        lo: 2048.0,
                        hi: 262_144.0,
                        alpha: 1.2,
                    },
                    prealloc: true,
                },
                FileSet {
                    dir: "/logs".into(),
                    count: 1,
                    size: Dist::Constant(0.0),
                    prealloc: false,
                },
            ],
            ops: vec![
                (
                    FlowOp::ReadWholeFile {
                        set: 0,
                        iosize: Bytes::kib(16),
                    },
                    10,
                ),
                (
                    FlowOp::Append {
                        set: 1,
                        iosize: Bytes::kib(8),
                    },
                    1,
                ),
            ],
            op_overhead: Nanos::from_micros(50),
            zipf_theta: 0.99,
        }
    }

    /// File server: create/write/read/delete/stat mix over a directory
    /// tree (Filebench fileserver shape).
    pub fn fileserver(nfiles: u64) -> Workload {
        Workload {
            name: "fileserver".into(),
            filesets: vec![FileSet {
                dir: "/share".into(),
                count: nfiles,
                size: Dist::LogNormal {
                    median: 65_536.0,
                    sigma: 1.0,
                },
                prealloc: true,
            }],
            ops: vec![
                (FlowOp::CreateFile { set: 0 }, 1),
                (
                    FlowOp::Append {
                        set: 0,
                        iosize: Bytes::kib(16),
                    },
                    2,
                ),
                (
                    FlowOp::ReadWholeFile {
                        set: 0,
                        iosize: Bytes::kib(64),
                    },
                    3,
                ),
                (FlowOp::StatFile { set: 0 }, 2),
                (FlowOp::DeleteFile { set: 0 }, 1),
                (FlowOp::OpenClose { set: 0 }, 1),
            ],
            op_overhead: Nanos::from_micros(60),
            zipf_theta: 0.0,
        }
    }

    /// Varmail: create, append, fsync, read, delete — the mail-spool
    /// pattern whose fsyncs expose journaling costs.
    pub fn varmail(nfiles: u64) -> Workload {
        Workload {
            name: "varmail".into(),
            filesets: vec![FileSet {
                dir: "/mail".into(),
                count: nfiles,
                size: Dist::LogNormal {
                    median: 8_192.0,
                    sigma: 0.7,
                },
                prealloc: true,
            }],
            ops: vec![
                (FlowOp::CreateFile { set: 0 }, 2),
                (
                    FlowOp::Append {
                        set: 0,
                        iosize: Bytes::kib(8),
                    },
                    3,
                ),
                (FlowOp::Fsync { set: 0 }, 3),
                (
                    FlowOp::ReadWholeFile {
                        set: 0,
                        iosize: Bytes::kib(8),
                    },
                    3,
                ),
                (FlowOp::DeleteFile { set: 0 }, 2),
            ],
            op_overhead: Nanos::from_micros(60),
            zipf_theta: 0.0,
        }
    }

    /// Postmark-like small-file churn: the 1997 benchmark's transaction
    /// mix of creates, deletes, reads and appends.
    pub fn postmark(nfiles: u64) -> Workload {
        Workload {
            name: "postmark".into(),
            filesets: vec![FileSet {
                dir: "/pm".into(),
                count: nfiles,
                size: Dist::Uniform {
                    lo: 512.0,
                    hi: 16_384.0,
                },
                prealloc: true,
            }],
            ops: vec![
                (FlowOp::CreateFile { set: 0 }, 1),
                (FlowOp::DeleteFile { set: 0 }, 1),
                (
                    FlowOp::ReadWholeFile {
                        set: 0,
                        iosize: Bytes::kib(8),
                    },
                    2,
                ),
                (
                    FlowOp::Append {
                        set: 0,
                        iosize: Bytes::kib(8),
                    },
                    2,
                ),
            ],
            op_overhead: Nanos::from_micros(40),
            zipf_theta: 0.0,
        }
    }

    /// Pure metadata churn: create/stat/delete, no data I/O — the
    /// isolation workload for the meta-data dimension.
    pub fn metadata_only(nfiles: u64) -> Workload {
        Workload {
            name: "metadata".into(),
            filesets: vec![FileSet {
                dir: "/meta".into(),
                count: nfiles,
                size: Dist::Constant(0.0),
                prealloc: false,
            }],
            ops: vec![
                (FlowOp::CreateFile { set: 0 }, 2),
                (FlowOp::StatFile { set: 0 }, 3),
                (FlowOp::OpenClose { set: 0 }, 2),
                (FlowOp::DeleteFile { set: 0 }, 2),
            ],
            op_overhead: Nanos::from_micros(30),
            zipf_theta: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed;

    fn quick_cfg(secs: u64, seed: u64) -> EngineConfig {
        EngineConfig {
            duration: Nanos::from_secs(secs),
            window: Nanos::from_secs(1),
            seed,
            cold_start: true,
            prewarm: false,
            cpu_jitter_sigma: 0.0,
            max_errors: 50,
            processes: 1,
            cores: 4,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        }
    }

    #[test]
    fn open_loop_run_reports_the_ledger() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = personalities::random_read(Bytes::mib(16));
        let mut cfg = quick_cfg(3, 1);
        cfg.prewarm = true;
        cfg.arrival = Arrival::Poisson { rate: 2_000 };
        let rec = Engine::run(&mut t, &w, &cfg).unwrap();
        let open = rec.open_loop.expect("open-loop report");
        assert!(open.offered > 0);
        assert_eq!(
            open.offered,
            open.completed + open.failed + open.dropped,
            "ledger does not sum"
        );
        assert!(open.p50.is_some() && open.p99.is_some() && open.p999.is_some());
        assert!(open.p50 <= open.p99 && open.p99 <= open.p999);
        assert!(!open.depth_timeline.is_empty());
    }

    #[test]
    fn closed_loop_recording_has_no_open_report() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = personalities::random_read(Bytes::mib(8));
        let rec = Engine::run(&mut t, &w, &quick_cfg(2, 0)).unwrap();
        assert!(rec.open_loop.is_none());
    }

    #[test]
    fn random_read_runs_and_records() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = personalities::random_read(Bytes::mib(16));
        let rec = Engine::run(&mut t, &w, &quick_cfg(5, 1)).unwrap();
        assert!(rec.ops > 1000, "only {} ops", rec.ops);
        assert_eq!(rec.errors, 0);
        assert_eq!(rec.histogram.total(), rec.ops);
        assert!(!rec.windows.is_empty());
        assert!(rec.ops_per_sec() > 100.0);
        assert!(rec.per_op.contains_key("read-rand"));
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let mut t = testbed::paper_ext2(Bytes::gib(1), 7);
            let w = personalities::random_read(Bytes::mib(8));
            let rec = Engine::run(&mut t, &w, &quick_cfg(3, 7)).unwrap();
            (rec.ops, rec.histogram.clone())
        };
        let (a_ops, a_hist) = run();
        let (b_ops, b_hist) = run();
        assert_eq!(a_ops, b_ops);
        assert_eq!(a_hist, b_hist);
    }

    #[test]
    fn in_memory_throughput_near_plateau() {
        // A 16 MiB file fits the cache: throughput is governed by the
        // 99 us op overhead + ~4.3 us read: ~9.7 kops/s.
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = personalities::random_read(Bytes::mib(16));
        let mut cfg = quick_cfg(30, 2);
        cfg.prewarm = true;
        let rec = Engine::run(&mut t, &w, &cfg).unwrap();
        let tail = rec.tail_ops_per_sec(5).unwrap();
        assert!(
            (9_000.0..10_500.0).contains(&tail),
            "plateau {tail} ops/s out of range"
        );
    }

    #[test]
    fn sequential_read_engages_readahead() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = personalities::sequential_read(Bytes::mib(64));
        let rec = Engine::run(&mut t, &w, &quick_cfg(10, 3)).unwrap();
        assert!(rec.ops > 500);
        let stats = t.stack().cache().stats();
        assert!(stats.prefetched > 0, "readahead never fired");
        assert!(stats.prefetch_accuracy() > 0.5);
    }

    #[test]
    fn churn_personalities_survive() {
        for w in [
            personalities::fileserver(50),
            personalities::varmail(50),
            personalities::postmark(50),
            personalities::metadata_only(50),
        ] {
            let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
            let rec = Engine::run(&mut t, &w, &quick_cfg(5, 4)).unwrap();
            assert!(rec.ops > 100, "{}: only {} ops", w.name, rec.ops);
            // Occasional errors (empty set moments) are fine; collapse is not.
            assert!(
                rec.errors < rec.ops / 10,
                "{}: {} errors vs {} ops",
                w.name,
                rec.errors,
                rec.ops
            );
        }
    }

    #[test]
    fn webserver_zipf_skews_popularity() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = personalities::webserver(200);
        let rec = Engine::run(&mut t, &w, &quick_cfg(5, 5)).unwrap();
        assert!(rec.ops > 50);
        // Zipf + cache: popular files hit, so hit ratio is high despite
        // the set being larger than a cold scan would keep.
        assert!(rec.hit_ratio.unwrap() > 0.5);
    }

    #[test]
    fn background_writeback_bounds_dirty_pages() {
        // A pure-write workload, no fsync: only the 5 s background tick
        // (plus eviction pressure) cleans pages. Dirty pages must stay
        // bounded near the writeback ratio rather than growing without
        // limit until eviction.
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = personalities::random_write(Bytes::mib(128));
        let mut cfg = quick_cfg(40, 6);
        cfg.window = Nanos::from_secs(5);
        let rec = Engine::run(&mut t, &w, &cfg).unwrap();
        assert!(rec.ops > 10_000);
        // Writeback reached the media *during* the run (not only at the
        // end): the periodic ticks really fired.
        assert!(t.stack().disk_stats().writes > 1000);
        // Right after a tick, dirty pages sit at/under the dirty ratio
        // (20 % of capacity). In between ticks the workload re-dirties
        // freely, exactly like a real system between flusher wakeups.
        t.background_tick();
        let dirty = t.stack().cache().dirty_pages();
        let capacity = t.stack().cache().capacity_pages();
        assert!(
            dirty <= capacity / 5,
            "flusher missed its goal: {dirty} dirty of {capacity}"
        );
    }

    #[test]
    fn flight_recorder_off_by_default() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = personalities::random_read(Bytes::mib(8));
        let rec = Engine::run(&mut t, &w, &quick_cfg(2, 0)).unwrap();
        assert!(rec.metrics.is_none());
        assert!(rec.trace.is_none());
    }

    #[test]
    fn flight_recorder_explains_scheduled_runs() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = personalities::fileserver(50);
        let mut cfg = quick_cfg(3, 9);
        cfg.processes = 4;
        cfg.obs.metrics = true;
        cfg.obs.trace = Some(rb_obs::TraceConfig { sample_every: 1 });
        let rec = Engine::run(&mut t, &w, &cfg).unwrap();
        let m = rec.metrics.expect("metrics snapshot");
        assert_eq!(m.sched.completed, rec.ops);
        assert!(m.sched.decomposed());
        assert_eq!(
            m.sched.parts_total(),
            m.sched.latency,
            "decomposition must partition latency exactly"
        );
        assert!(m.hit_ratio().is_some());
        assert!(m.device_busy_frac().is_some());
        assert_eq!(m.sched.core_busy.len(), cfg.cores as usize);
        let report = m.render_explain();
        assert!(report.contains("exact match"), "{report}");
        let trace = rec.trace.expect("span trace");
        assert_eq!(trace.seen, rec.ops);
        trace.validate_nesting().expect("well-nested trace");
    }

    #[test]
    fn flight_recorder_serial_runs_record_flat_spans() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = personalities::random_read(Bytes::mib(8));
        let mut cfg = quick_cfg(2, 3);
        cfg.obs.metrics = true;
        cfg.obs.trace = Some(rb_obs::TraceConfig { sample_every: 4 });
        let rec = Engine::run(&mut t, &w, &cfg).unwrap();
        let m = rec.metrics.expect("metrics snapshot");
        assert!(!m.sched.decomposed(), "serial runs have no decomposition");
        assert_eq!(m.sched.completed, rec.ops);
        assert!(m.render_explain().contains("serial engine"));
        assert!(!m.timeline.points().is_empty(), "gauge timeline sampled");
        let trace = rec.trace.expect("span trace");
        assert_eq!(trace.seen, rec.ops);
        assert_eq!(trace.sampled, rec.ops.div_ceil(4));
        trace.validate_nesting().expect("well-nested trace");
    }

    #[test]
    fn flight_recorder_does_not_perturb_the_run() {
        let run = |obs: rb_obs::ObsConfig| {
            let mut t = testbed::paper_ext2(Bytes::gib(1), 7);
            let w = personalities::fileserver(50);
            let mut cfg = quick_cfg(3, 7);
            cfg.processes = 2;
            cfg.obs = obs;
            let rec = Engine::run(&mut t, &w, &cfg).unwrap();
            (rec.ops, rec.errors, rec.histogram.clone())
        };
        let off = run(rb_obs::ObsConfig::default());
        let on = run(rb_obs::ObsConfig {
            metrics: true,
            trace: Some(rb_obs::TraceConfig { sample_every: 1 }),
        });
        assert_eq!(off, on, "observer effect: recorder changed the run");
    }

    #[test]
    fn empty_ops_rejected() {
        let mut t = testbed::paper_ext2(Bytes::gib(1), 0);
        let w = Workload {
            name: "empty".into(),
            filesets: vec![],
            ops: vec![],
            op_overhead: Nanos::ZERO,
            zipf_theta: 0.0,
        };
        assert!(Engine::run(&mut t, &w, &quick_cfg(1, 0)).is_err());
    }
}
