//! Paper-artifact reproduction drivers (Figures 1–4).
//!
//! Each `figN` function reruns the corresponding Section 3 experiment on
//! the simulated testbed and returns structured data plus a renderer
//! that prints the same rows/series the paper reports. Every function
//! has a `paper()` configuration (full protocol) and a `quick()` one
//! (minutes of virtual time, for tests and smoke runs); both produce the
//! same *shape*, which is what the reproduction is judged on.

use crate::analysis::{FragilityReport, WarmupReport};
use crate::runner::{run_many, Protocol, RunPlan};
use crate::sched::Arrival;
use crate::testbed::{self, FsKind};
use crate::workload::{personalities, Engine, EngineConfig};
use rb_simcore::error::SimResult;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use rb_stats::histogram::Log2Histogram;
use rb_stats::peaks::{classify_modality, Modality};
use rb_stats::timeseries::Window;
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Figure 1: throughput and RSD vs file size
// ---------------------------------------------------------------------

/// Configuration for the Figure 1 sweep.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// File sizes to sweep.
    pub sizes: Vec<Bytes>,
    /// Repetition protocol.
    pub plan: RunPlan,
    /// Formatted device size (must exceed the largest file).
    pub device: Bytes,
}

impl Fig1Config {
    /// The paper's protocol: 64 MB → 1024 MB in 64 MB steps, 10 runs.
    pub fn paper() -> Self {
        Fig1Config {
            sizes: (1..=16).map(|i| Bytes::mib(64 * i)).collect(),
            plan: RunPlan::paper_fig1(0),
            device: Bytes::gib(3),
        }
    }

    /// A minutes-scale variant for tests: fewer sizes, shorter runs.
    pub fn quick() -> Self {
        let mut plan = RunPlan::paper_fig1(0);
        plan.protocol = Protocol::FixedRuns(3);
        plan.duration = Nanos::from_secs(60);
        plan.tail_windows = 2;
        Fig1Config {
            sizes: vec![
                Bytes::mib(128),
                Bytes::mib(384),
                Bytes::mib(448),
                Bytes::mib(768),
            ],
            plan,
            device: Bytes::gib(2),
        }
    }
}

/// One sweep point of Figure 1.
#[derive(Debug, Clone)]
pub struct Fig1Point {
    /// File size.
    pub size: Bytes,
    /// Steady-state throughput per run.
    pub samples: Vec<f64>,
    /// Mean across runs.
    pub mean: f64,
    /// Relative standard deviation (%).
    pub rsd: f64,
}

/// Figure 1 dataset.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// Sweep points in size order.
    pub points: Vec<Fig1Point>,
    /// Cliff/transition/RSD analysis.
    pub fragility: FragilityReport,
}

/// Reruns the Figure 1 experiment.
pub fn fig1(config: &Fig1Config) -> SimResult<Fig1Data> {
    let mut points = Vec::with_capacity(config.sizes.len());
    for (i, &size) in config.sizes.iter().enumerate() {
        let workload = personalities::random_read(size);
        let mut plan = config.plan.clone();
        plan.base_seed = config.plan.base_seed + (i as u64) * 1000;
        let device = config.device;
        let mr = run_many(|seed| testbed::paper_ext2(device, seed), &workload, &plan)?;
        points.push(Fig1Point {
            size,
            samples: mr.samples(),
            mean: mr.summary.mean,
            rsd: mr.summary.rsd_percent,
        });
    }
    let sweep: Vec<(f64, Vec<f64>)> = points
        .iter()
        .map(|p| (p.size.as_mib_f64(), p.samples.clone()))
        .collect();
    let fragility = FragilityReport::from_sweep(&sweep);
    Ok(Fig1Data { points, fragility })
}

/// Reruns the Figure 1 experiment as a sweep campaign sharded across
/// `jobs` worker threads.
///
/// The sweep is the same grid as [`fig1`] — random read × the
/// configured file sizes on the paper's ext2 testbed, honouring the
/// plan's cache-capacity control (or its absence) — but cells run
/// concurrently and each derives its seed from its identity, so the
/// result is deterministic for a given config at any job count (it
/// differs from the serial [`fig1`] numbers only through the per-cell
/// seed derivation, not in shape).
pub fn fig1_campaign(config: &Fig1Config, jobs: usize) -> SimResult<Fig1Data> {
    // `Bytes::ZERO` is the campaign encoding of "cache uncontrolled".
    let cache_capacities = vec![config.plan.cache_capacity.unwrap_or(Bytes::ZERO)];
    let spec = crate::campaign::SweepSpec {
        name: "fig1".into(),
        personalities: vec![crate::campaign::Personality::RandomRead],
        traces: Vec::new(),
        file_sizes: config.sizes.clone(),
        file_counts: vec![0],
        filesystems: vec![FsKind::Ext2],
        cache_capacities,
        processes: vec![1],
        arrivals: Vec::new(),
        faults: Vec::new(),
        retry: rb_faults::RetryPolicy::None,
        slo_p99: None,
        plan: config.plan.clone(),
        device: config.device,
        run_budget: None,
    };
    let report = crate::campaign::run_campaign(&spec, jobs)?;
    let points: Vec<Fig1Point> = report
        .cells
        .iter()
        .map(|c| Fig1Point {
            size: c.cell.file_size,
            samples: c.samples.clone(),
            mean: c.summary.mean,
            rsd: c.summary.rsd_percent,
        })
        .collect();
    let sweep: Vec<(f64, Vec<f64>)> = points
        .iter()
        .map(|p| (p.size.as_mib_f64(), p.samples.clone()))
        .collect();
    let fragility = FragilityReport::from_sweep(&sweep);
    Ok(Fig1Data { points, fragility })
}

/// Renders the Figure 1 table (sizes, means, RSD) plus the analysis.
pub fn render_fig1(data: &Fig1Data) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1: Ext2 random-read throughput vs file size (mean of N runs)"
    );
    let _ = writeln!(out, "{:>10} {:>12} {:>8}", "size", "ops/sec", "RSD%");
    for p in &data.points {
        let _ = writeln!(
            out,
            "{:>10} {:>12.0} {:>8.1}",
            format!("{}", p.size),
            p.mean,
            p.rsd
        );
    }
    if let Some(c) = &data.fragility.cliff {
        let _ = writeln!(
            out,
            "cliff: {:.0} MiB -> {:.0} MiB drops {:.0}x ({:.0} -> {:.0} ops/s)",
            c.x_before,
            c.x_after,
            c.drop_factor(),
            c.y_before,
            c.y_after
        );
    }
    if let Some((lo, hi)) = data.fragility.transition {
        let _ = writeln!(out, "transition window: {lo:.0}..{hi:.0} MiB");
    }
    if let Some((x, rsd)) = data.fragility.max_rsd_at {
        let _ = writeln!(out, "max RSD: {rsd:.1}% at {x:.0} MiB");
    }
    out
}

// ---------------------------------------------------------------------
// Figure 1 zoom: the < 6 MB drop region
// ---------------------------------------------------------------------

/// Configuration for the Section 3.1 zoom experiment.
#[derive(Debug, Clone)]
pub struct Fig1ZoomConfig {
    /// Lower end of the zoom range.
    pub lo: Bytes,
    /// Upper end of the zoom range.
    pub hi: Bytes,
    /// Step between sizes.
    pub step: Bytes,
    /// Repetition protocol.
    pub plan: RunPlan,
    /// Device size.
    pub device: Bytes,
}

impl Fig1ZoomConfig {
    /// The paper's zoom: 384 MB → 448 MB, fine steps.
    pub fn paper() -> Self {
        let mut plan = RunPlan::paper_fig1(50_000);
        plan.protocol = Protocol::FixedRuns(5);
        Fig1ZoomConfig {
            lo: Bytes::mib(384),
            hi: Bytes::mib(448),
            step: Bytes::mib(4),
            plan,
            device: Bytes::gib(2),
        }
    }

    /// Coarser, faster variant.
    pub fn quick() -> Self {
        let mut cfg = Self::paper();
        cfg.step = Bytes::mib(8);
        cfg.plan.protocol = Protocol::FixedRuns(2);
        cfg.plan.duration = Nanos::from_secs(60);
        cfg.plan.tail_windows = 2;
        cfg
    }
}

/// Reruns the zoom sweep; reuses [`Fig1Data`].
pub fn fig1_zoom(config: &Fig1ZoomConfig) -> SimResult<Fig1Data> {
    fig1(&config.as_fig1_config())
}

/// The campaign-sharded variant of [`fig1_zoom`].
pub fn fig1_zoom_campaign(config: &Fig1ZoomConfig, jobs: usize) -> SimResult<Fig1Data> {
    fig1_campaign(&config.as_fig1_config(), jobs)
}

impl Fig1ZoomConfig {
    /// Materializes the zoom range into an explicit size list.
    fn as_fig1_config(&self) -> Fig1Config {
        let mut sizes = Vec::new();
        let mut s = self.lo;
        while s <= self.hi {
            sizes.push(s);
            s += self.step;
        }
        Fig1Config {
            sizes,
            plan: self.plan.clone(),
            device: self.device,
        }
    }
}

// ---------------------------------------------------------------------
// Figure 2: throughput over time for ext2/ext3/xfs
// ---------------------------------------------------------------------

/// Configuration for the Figure 2 warm-up race.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// File size (the paper: 410 MB, the largest that fits in cache).
    pub file_size: Bytes,
    /// Run length.
    pub duration: Nanos,
    /// Sampling window (paper: 10 s).
    pub window: Nanos,
    /// Seed.
    pub seed: u64,
    /// Device size.
    pub device: Bytes,
    /// File systems to race.
    pub systems: Vec<FsKind>,
}

impl Fig2Config {
    /// The paper's protocol: 410 MB file, 20 minutes, 10 s sampling.
    pub fn paper() -> Self {
        Fig2Config {
            file_size: Bytes::mib(410),
            duration: Nanos::from_secs(1200),
            window: Nanos::from_secs(10),
            seed: 0,
            device: Bytes::gib(2),
            systems: FsKind::ALL.to_vec(),
        }
    }

    /// Shorter variant for tests.
    pub fn quick() -> Self {
        Fig2Config {
            file_size: Bytes::mib(128),
            duration: Nanos::from_secs(400),
            window: Nanos::from_secs(10),
            seed: 0,
            device: Bytes::gib(1),
            systems: FsKind::ALL.to_vec(),
        }
    }
}

/// One system's Figure 2 curve.
#[derive(Debug, Clone)]
pub struct Fig2Series {
    /// File-system name.
    pub fs: &'static str,
    /// `(seconds, ops/s)` samples.
    pub series: Vec<(f64, f64)>,
    /// Warm-up characterization.
    pub warmup: WarmupReport,
}

/// Figure 2 dataset.
#[derive(Debug, Clone)]
pub struct Fig2Data {
    /// One curve per file system.
    pub curves: Vec<Fig2Series>,
}

impl Fig2Data {
    /// Largest between-system throughput ratio at each sample instant.
    pub fn divergence_series(&self) -> Vec<(f64, f64)> {
        if self.curves.is_empty() {
            return Vec::new();
        }
        let n = self
            .curves
            .iter()
            .map(|c| c.series.len())
            .min()
            .unwrap_or(0);
        (0..n)
            .map(|i| {
                let t = self.curves[0].series[i].0;
                let ys: Vec<f64> = self.curves.iter().map(|c| c.series[i].1).collect();
                let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let lo = ys.iter().copied().fold(f64::INFINITY, f64::min).max(1e-9);
                (t, hi / lo)
            })
            .collect()
    }
}

/// Reruns the Figure 2 experiment.
pub fn fig2(config: &Fig2Config) -> SimResult<Fig2Data> {
    let mut curves = Vec::new();
    for &kind in &config.systems {
        let mut target = testbed::paper_fs(kind, config.device, config.seed);
        let workload = personalities::random_read(config.file_size);
        let engine_cfg = EngineConfig {
            duration: config.duration,
            window: config.window,
            seed: config.seed,
            cold_start: true,
            prewarm: false,
            cpu_jitter_sigma: 0.005,
            max_errors: 100,
            processes: 1,
            cores: 4,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        };
        let rec = Engine::run(&mut target, &workload, &engine_cfg)?;
        let warmup = WarmupReport::from_windows(&rec.windows, 5.0);
        curves.push(Fig2Series {
            fs: kind.name(),
            series: rec.throughput_series(),
            warmup,
        });
    }
    Ok(Fig2Data { curves })
}

/// Renders Figure 2 as an ASCII chart plus warm-up facts.
pub fn render_fig2(data: &Fig2Data) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2: throughput by time (cold cache, random read)"
    );
    let series: Vec<(&str, &[(f64, f64)])> = data
        .curves
        .iter()
        .map(|c| (c.fs, c.series.as_slice()))
        .collect();
    out.push_str(&crate::report::ascii_chart(&series, 72, 16));
    for c in &data.curves {
        let _ = writeln!(
            out,
            "{:>6}: warm-up {}s, rise {:.0}x",
            c.fs,
            c.warmup
                .warmup_seconds
                .map(|s| format!("{s:.0}"))
                .unwrap_or_else(|| "n/a".into()),
            c.warmup.rise_factor
        );
    }
    out
}

// ---------------------------------------------------------------------
// Figure 3: latency histograms for three working-set sizes
// ---------------------------------------------------------------------

/// Configuration for the Figure 3 histograms.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// File sizes (paper: 64 MB, 1024 MB, 25 GB).
    pub sizes: Vec<Bytes>,
    /// Warm-up phase excluded from the histograms.
    pub warmup: Nanos,
    /// Measured phase.
    pub measure: Nanos,
    /// Seed.
    pub seed: u64,
}

impl Fig3Config {
    /// The paper's three working-set sizes.
    pub fn paper() -> Self {
        Fig3Config {
            sizes: vec![Bytes::mib(64), Bytes::mib(1024), Bytes::gib(25)],
            warmup: Nanos::from_secs(120),
            measure: Nanos::from_secs(120),
            seed: 0,
        }
    }

    /// Smaller variant for tests (same regimes, smaller sizes).
    pub fn quick() -> Self {
        Fig3Config {
            sizes: vec![Bytes::mib(64), Bytes::mib(820), Bytes::gib(8)],
            warmup: Nanos::from_secs(20),
            measure: Nanos::from_secs(60),
            seed: 0,
        }
    }
}

/// One Figure 3 histogram.
#[derive(Debug, Clone)]
pub struct Fig3Histogram {
    /// File size.
    pub size: Bytes,
    /// Steady-state latency histogram.
    pub histogram: Log2Histogram,
    /// Modality classification.
    pub modality: Modality,
}

/// Figure 3 dataset.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// One histogram per size.
    pub histograms: Vec<Fig3Histogram>,
}

/// Reruns the Figure 3 experiment.
pub fn fig3(config: &Fig3Config) -> SimResult<Fig3Data> {
    let mut histograms = Vec::new();
    for &size in &config.sizes {
        // Device comfortably larger than the file.
        let device = Bytes::new((size.as_u64() as f64 * 1.3) as u64).max(Bytes::gib(1));
        let mut target = testbed::paper_ext2(device, config.seed);
        let workload = personalities::random_read(size);
        let mut sets = Engine::setup(&mut target, &workload, config.seed)?;
        crate::target::Target::drop_caches(&mut target);
        // Settle phase: prewarm sequentially, then run briefly so the
        // random-access steady state establishes; discarded.
        let warm_cfg = EngineConfig {
            duration: config.warmup,
            window: Nanos::from_secs(10),
            seed: config.seed,
            cold_start: false,
            prewarm: true,
            cpu_jitter_sigma: 0.005,
            max_errors: 100,
            processes: 1,
            cores: 4,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        };
        let _ = Engine::run_prepared(&mut target, &workload, &warm_cfg, &mut sets)?;
        // Measured phase.
        let measure_cfg = EngineConfig {
            duration: config.measure,
            window: Nanos::from_secs(10),
            seed: config.seed + 1,
            cold_start: false,
            prewarm: false,
            cpu_jitter_sigma: 0.005,
            max_errors: 100,
            processes: 1,
            cores: 4,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        };
        let rec = Engine::run_prepared(&mut target, &workload, &measure_cfg, &mut sets)?;
        let modality = classify_modality(&rec.histogram);
        histograms.push(Fig3Histogram {
            size,
            histogram: rec.histogram,
            modality,
        });
    }
    Ok(Fig3Data { histograms })
}

/// Renders the Figure 3 histograms in the paper's layout.
pub fn render_fig3(data: &Fig3Data) -> String {
    let mut out = String::new();
    for h in &data.histograms {
        let _ = writeln!(
            out,
            "Figure 3: read latency histogram, {} file ({:?})",
            h.size, h.modality
        );
        let lo = h.histogram.min_bucket().unwrap_or(0).saturating_sub(1);
        let hi = (h.histogram.max_bucket().unwrap_or(31) + 2).min(64);
        out.push_str(&h.histogram.render_ascii(lo, hi, 50));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Figure 4: latency histograms over time
// ---------------------------------------------------------------------

/// Configuration for the Figure 4 histogram timeline.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// File size (paper: 256 MB).
    pub file_size: Bytes,
    /// Run length (paper plot: 280 s).
    pub duration: Nanos,
    /// Histogram window (paper: ~20 s slices).
    pub window: Nanos,
    /// Seed.
    pub seed: u64,
}

impl Fig4Config {
    /// The paper's protocol.
    pub fn paper() -> Self {
        Fig4Config {
            file_size: Bytes::mib(256),
            duration: Nanos::from_secs(280),
            window: Nanos::from_secs(20),
            seed: 0,
        }
    }

    /// Shorter variant.
    pub fn quick() -> Self {
        Fig4Config {
            file_size: Bytes::mib(96),
            duration: Nanos::from_secs(120),
            window: Nanos::from_secs(10),
            seed: 0,
        }
    }
}

/// Figure 4 dataset: histogram per time window.
#[derive(Debug, Clone)]
pub struct Fig4Data {
    /// Windows with their histograms.
    pub windows: Vec<Window>,
}

/// Latency-bucket boundary between "memory peak" and "disk peak"
/// territory: 2^16 ns = 65.5 µs.
pub const REGIME_BUCKET: usize = 16;

impl Fig4Data {
    /// Fraction of each window's operations faster than
    /// [`REGIME_BUCKET`] (the cache-hit peak mass).
    pub fn hit_mass_series(&self) -> Vec<(f64, f64)> {
        self.windows
            .iter()
            .map(|w| {
                let frac: f64 = (0..REGIME_BUCKET).map(|k| w.histogram.fraction(k)).sum();
                (w.start.as_secs_f64(), frac)
            })
            .collect()
    }

    /// Fraction of each window's operations at/after [`REGIME_BUCKET`]
    /// (the disk peak mass).
    pub fn miss_mass_series(&self) -> Vec<(f64, f64)> {
        self.hit_mass_series()
            .into_iter()
            .map(|(t, h)| (t, 1.0 - h))
            .collect()
    }

    /// Number of windows whose histogram is bimodal.
    pub fn bimodal_windows(&self) -> usize {
        self.windows
            .iter()
            .filter(|w| classify_modality(&w.histogram) == Modality::Bimodal)
            .count()
    }
}

/// Reruns the Figure 4 experiment.
pub fn fig4(config: &Fig4Config) -> SimResult<Fig4Data> {
    let device = Bytes::gib(1).max(config.file_size * 3);
    let mut target = testbed::paper_ext2(device, config.seed);
    let workload = personalities::random_read(config.file_size);
    let engine_cfg = EngineConfig {
        duration: config.duration,
        window: config.window,
        seed: config.seed,
        cold_start: true,
        prewarm: false,
        cpu_jitter_sigma: 0.005,
        max_errors: 100,
        processes: 1,
        cores: 4,
        arrival: Arrival::Closed,
        obs: rb_obs::ObsConfig::default(),
        faults: None,
        retry: rb_faults::RetryPolicy::None,
    };
    let rec = Engine::run(&mut target, &workload, &engine_cfg)?;
    Ok(Fig4Data {
        windows: rec.windows,
    })
}

/// Renders Figure 4 as one histogram row per window (time down the
/// page, as in the paper's 3-D plot flattened).
pub fn render_fig4(data: &Fig4Data) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4: latency histograms by time (miss peak fades, hit peak grows)"
    );
    for w in &data.windows {
        let pct: Vec<f64> = (4..28).map(|k| w.histogram.fraction(k) * 100.0).collect();
        let _ = writeln!(
            out,
            "t={:>4}s |{}| hits {:>5.1}%",
            w.start.as_secs(),
            crate::report::sparkline(&pct),
            (0..REGIME_BUCKET)
                .map(|k| w.histogram.fraction(k))
                .sum::<f64>()
                * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Full-shape assertions live in the integration tests and the bench
    // binaries; these tests exercise the drivers end-to-end at small
    // scale.

    #[test]
    fn fig1_quick_has_cliff_shape() {
        let data = fig1(&Fig1Config::quick()).unwrap();
        assert_eq!(data.points.len(), 4);
        let first = data.points.first().unwrap();
        let last = data.points.last().unwrap();
        assert!(
            first.mean > 8.0 * last.mean,
            "no cliff: {} vs {}",
            first.mean,
            last.mean
        );
        assert!(data.fragility.cliff.is_some());
        let render = render_fig1(&data);
        assert!(render.contains("cliff"));
    }

    #[test]
    fn fig1_campaign_matches_across_job_counts() {
        let mut plan = RunPlan::paper_fig1(0);
        plan.protocol = Protocol::FixedRuns(2);
        plan.duration = Nanos::from_secs(20);
        plan.tail_windows = 2;
        let config = Fig1Config {
            sizes: vec![Bytes::mib(64), Bytes::mib(768)],
            plan,
            device: Bytes::gib(2),
        };
        let serial = fig1_campaign(&config, 1).unwrap();
        let sharded = fig1_campaign(&config, 2).unwrap();
        assert_eq!(serial.points.len(), 2);
        for (a, b) in serial.points.iter().zip(&sharded.points) {
            assert_eq!(a.size, b.size);
            assert_eq!(a.samples, b.samples);
        }
        // The two regimes still differ by orders of magnitude.
        assert!(serial.points[0].mean > 8.0 * serial.points[1].mean);
    }

    #[test]
    fn fig2_quick_curves_rise_and_converge() {
        let data = fig2(&Fig2Config::quick()).unwrap();
        assert_eq!(data.curves.len(), 3);
        for c in &data.curves {
            assert!(c.series.len() >= 20, "{} too few windows", c.fs);
            let first = c.series.iter().find(|&&(_, y)| y > 0.0).unwrap().1;
            let last = c.series.last().unwrap().1;
            assert!(
                last > 5.0 * first,
                "{} did not warm up: {first} -> {last}",
                c.fs
            );
        }
        let render = render_fig2(&data);
        assert!(render.contains("ext2"));
    }

    #[test]
    fn fig4_quick_shows_regime_shift() {
        let data = fig4(&Fig4Config::quick()).unwrap();
        let hits = data.hit_mass_series();
        assert!(hits.first().unwrap().1 < 0.35, "started warm: {hits:?}");
        assert!(hits.last().unwrap().1 > 0.9, "never warmed: {hits:?}");
        assert!(data.bimodal_windows() >= 2);
        assert!(!render_fig4(&data).is_empty());
    }
}
