//! Saturation curves over the process-count axis (the paper's fifth
//! dimension), measured on the real engine.
//!
//! "Finally, we may be interested in studying a file system's ability to
//! scale with increasing load." Until the concurrency refactor this
//! module *simulated the simulation*: a hardcoded sidecar with one
//! file, uniform 8 KiB reads and its own private cache-and-disk
//! plumbing. It now drives the actual pipeline — any
//! [`Personality`], any
//! [`FsKind`], any cache capacity and replacement policy — through
//! [`Engine::run`] with [`EngineConfig::processes`] swept along the
//! curve, so the contention it reports is the same contention every
//! other experiment in the harness sees:
//!
//! * CPU phases (framework overhead, syscall entry, memory copies) run
//!   in parallel up to the core count, then queue;
//! * media phases serialize on the shared device, behind demand I/O
//!   *and* background writeback.
//!
//! A memory-bound workload therefore scales to the core count and then
//! flattens; a disk-bound workload barely scales at all — the
//! saturation curve *is* the scaling dimension's result, and no single
//! number summarizes it.

use crate::campaign::Personality;
use crate::sched::Arrival;
use crate::testbed::{FsKind, Testbed};
use crate::workload::{Engine, EngineConfig};
use rb_simcache::policy::PolicyKind;
use rb_simcore::error::SimResult;
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;
use rb_stats::histogram::Log2Histogram;

/// Scaling experiment configuration.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Process counts to sweep, in curve order.
    pub processes: Vec<u32>,
    /// CPU cores available to them.
    pub cores: u32,
    /// Workload personality each point runs.
    pub personality: Personality,
    /// File size (size-driven personalities).
    pub file_size: Bytes,
    /// File count (fileset personalities).
    pub files: u64,
    /// Page-cache capacity.
    pub cache: Bytes,
    /// Cache replacement policy.
    pub policy: PolicyKind,
    /// Virtual duration per point.
    pub duration: Nanos,
    /// Seed.
    pub seed: u64,
}

impl ScalingConfig {
    /// Memory-bound preset: random 8 KiB reads of a file the cache
    /// holds entirely.
    pub fn memory_bound() -> Self {
        ScalingConfig {
            processes: vec![1, 2, 4, 8, 16],
            cores: 4,
            personality: Personality::RandomRead,
            file_size: Bytes::mib(64),
            files: 0,
            cache: Bytes::mib(410),
            policy: PolicyKind::Lru,
            duration: Nanos::from_secs(20),
            seed: 0,
        }
    }

    /// Disk-bound preset: the cache is crushed, every read queues on
    /// the spindle.
    pub fn disk_bound() -> Self {
        ScalingConfig {
            processes: vec![1, 2, 4, 8, 16],
            cores: 4,
            personality: Personality::RandomRead,
            file_size: Bytes::mib(256),
            files: 0,
            cache: Bytes::mib(8),
            policy: PolicyKind::Lru,
            duration: Nanos::from_secs(60),
            seed: 0,
        }
    }

    /// The same configuration under a different personality, with a
    /// fileset size for the fileset-driven ones.
    pub fn with_personality(mut self, personality: Personality, files: u64) -> Self {
        self.personality = personality;
        self.files = files;
        self
    }
}

/// One point of the saturation curve.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Concurrent processes.
    pub processes: u32,
    /// Aggregate throughput.
    pub ops_per_sec: f64,
    /// Speedup relative to one process.
    pub speedup: f64,
}

/// The full curve plus per-point latency histograms.
#[derive(Debug, Clone)]
pub struct ScalingCurve {
    /// Points in process order.
    pub points: Vec<ScalingPoint>,
    /// Latency histogram per point (queueing delays included).
    pub histograms: Vec<Log2Histogram>,
}

impl ScalingCurve {
    /// The knee: the smallest process count achieving ≥ 90 % of the
    /// maximum throughput.
    pub fn knee(&self) -> Option<u32> {
        let max = self
            .points
            .iter()
            .map(|p| p.ops_per_sec)
            .fold(0.0f64, f64::max);
        self.points
            .iter()
            .find(|p| p.ops_per_sec >= 0.9 * max)
            .map(|p| p.processes)
    }
}

/// Expected bytes the personality's filesets occupy once created.
fn working_set(config: &ScalingConfig) -> Bytes {
    let workload = config.personality.workload(config.file_size, config.files);
    let total: f64 = workload
        .filesets
        .iter()
        .map(|fs| fs.count as f64 * fs.size.mean())
        .sum();
    config.file_size.max(Bytes::new(total as u64))
}

/// Runs the process-scaling sweep on the given file system kind: one
/// engine run per point, each on a fresh identically-formatted testbed
/// with a cold cache and a sequential prewarm, all sharing the
/// configured personality, cache capacity and policy.
///
/// Every point is a pure function of (kind, config): per-point targets
/// are rebuilt from the same seed, and the multi-process interleaving
/// is the scheduler's deterministic merge — so curves are byte-stable
/// across hosts and repetitions.
pub fn thread_scaling(kind: FsKind, config: &ScalingConfig) -> SimResult<ScalingCurve> {
    let device = Bytes::new(working_set(config).as_u64().saturating_mul(4)).max(Bytes::gib(1));
    let mut points = Vec::new();
    let mut histograms = Vec::new();
    let mut base: Option<f64> = None;
    for &n in &config.processes {
        // Fresh substrates per point: identical layout, cold cache.
        let mut testbed = Testbed::paper(kind, device, config.seed);
        testbed.cache = config.cache;
        testbed.policy = config.policy;
        let mut target = testbed.build();
        let workload = config.personality.workload(config.file_size, config.files);
        let engine_cfg = EngineConfig {
            duration: config.duration,
            window: Nanos::from_secs(5),
            seed: config.seed,
            cold_start: true,
            prewarm: true,
            cpu_jitter_sigma: 0.0,
            max_errors: 100,
            processes: n,
            cores: config.cores,
            arrival: Arrival::Closed,
            obs: rb_obs::ObsConfig::default(),
            faults: None,
            retry: rb_faults::RetryPolicy::None,
        };
        let rec = Engine::run(&mut target, &workload, &engine_cfg)?;
        let ops_per_sec = rec.ops_per_sec();
        let speedup = match base {
            Some(b) if b > 0.0 => ops_per_sec / b,
            _ => {
                base = Some(ops_per_sec);
                1.0
            }
        };
        points.push(ScalingPoint {
            processes: n,
            ops_per_sec,
            speedup,
        });
        histograms.push(rec.histogram);
    }
    Ok(ScalingCurve { points, histograms })
}

/// Renders the saturation curve.
pub fn render_curve(label: &str, curve: &ScalingCurve) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Process scaling: {label}");
    let _ = writeln!(out, "{:>8} {:>12} {:>9}", "procs", "ops/sec", "speedup");
    for p in &curve.points {
        let _ = writeln!(
            out,
            "{:>8} {:>12.0} {:>8.2}x",
            p.processes, p.ops_per_sec, p.speedup
        );
    }
    if let Some(knee) = curve.knee() {
        let _ = writeln!(out, "saturates at ~{knee} processes");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut c: ScalingConfig) -> ScalingConfig {
        c.duration = Nanos::from_secs(5);
        c.processes = vec![1, 2, 4, 8];
        c
    }

    #[test]
    fn memory_bound_scales_to_cores() {
        let cfg = quick(ScalingConfig::memory_bound());
        let curve = thread_scaling(FsKind::Ext2, &cfg).unwrap();
        let by_procs: std::collections::HashMap<u32, f64> = curve
            .points
            .iter()
            .map(|p| (p.processes, p.speedup))
            .collect();
        // Near-linear to the core count...
        assert!(by_procs[&2] > 1.7, "2 procs: {}", by_procs[&2]);
        assert!(by_procs[&4] > 3.2, "4 procs: {}", by_procs[&4]);
        // ...then flat: 8 processes on 4 cores buy little.
        assert!(
            by_procs[&8] < by_procs[&4] * 1.2,
            "8 procs kept scaling past the cores: {} vs {}",
            by_procs[&8],
            by_procs[&4]
        );
    }

    #[test]
    fn disk_bound_does_not_scale() {
        let cfg = quick(ScalingConfig::disk_bound());
        let curve = thread_scaling(FsKind::Ext2, &cfg).unwrap();
        let last = curve.points.last().unwrap();
        assert!(
            last.speedup < 1.5,
            "disk-bound workload scaled {}x with processes?!",
            last.speedup
        );
    }

    #[test]
    fn queueing_shows_in_latency() {
        // Disk-bound with more processes: same throughput, worse latency.
        let cfg = quick(ScalingConfig::disk_bound());
        let curve = thread_scaling(FsKind::Ext2, &cfg).unwrap();
        let p1 = curve.histograms.first().unwrap().quantile(0.5).unwrap();
        let p8 = curve.histograms.last().unwrap().quantile(0.5).unwrap();
        assert!(
            p8 > p1 * 2,
            "queueing delay invisible: median {p1} at 1 process vs {p8} at 8"
        );
    }

    #[test]
    fn knee_detection() {
        let cfg = quick(ScalingConfig::memory_bound());
        let curve = thread_scaling(FsKind::Ext2, &cfg).unwrap();
        let knee = curve.knee().unwrap();
        assert!(
            (4..=8).contains(&knee),
            "knee at {knee}, expected near the 4-core limit"
        );
    }

    #[test]
    fn curves_are_deterministic() {
        let mut cfg = quick(ScalingConfig::memory_bound());
        cfg.duration = Nanos::from_secs(2);
        cfg.processes = vec![1, 4];
        let run = || {
            thread_scaling(FsKind::Xfs, &cfg)
                .unwrap()
                .points
                .iter()
                .map(|p| (p.processes, p.ops_per_sec.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn personalities_and_policies_sweep() {
        // The curve machinery accepts any personality, fs and cache
        // policy — a churn workload under CLOCK on xfs completes and
        // produces positive throughput at every point.
        let mut cfg =
            quick(ScalingConfig::memory_bound()).with_personality(Personality::Fileserver, 30);
        cfg.duration = Nanos::from_secs(2);
        cfg.processes = vec![1, 4];
        cfg.policy = PolicyKind::Clock;
        let curve = thread_scaling(FsKind::Xfs, &cfg).unwrap();
        assert_eq!(curve.points.len(), 2);
        assert!(curve.points.iter().all(|p| p.ops_per_sec > 0.0));
    }

    #[test]
    fn render_lists_all_points() {
        let cfg = quick(ScalingConfig::memory_bound());
        let curve = thread_scaling(FsKind::Ext2, &cfg).unwrap();
        let s = render_curve("test", &curve);
        assert!(s.contains("procs"));
        assert!(s.lines().count() >= curve.points.len() + 2);
    }
}
