//! Thread-scaling simulation (the paper's fifth dimension).
//!
//! "Finally, we may be interested in studying a file system's ability to
//! scale with increasing load." This module simulates N closed-loop
//! threads over the shared storage substrates in virtual time, with the
//! two real contention points modelled explicitly:
//!
//! * CPU phases (syscall overhead, memory copies) run in parallel up to
//!   the core count, then queue;
//! * disk phases serialize on the single spindle.
//!
//! A memory-bound workload therefore scales to the core count and then
//! flattens; a disk-bound workload barely scales at all — the saturation
//! curve *is* the scaling dimension's result, and no single number
//! summarizes it.

use crate::testbed::FsKind;
use rb_simcache::cache::{CacheConfig, PageCache};
use rb_simcache::readahead::ReadaheadConfig;
use rb_simcache::writeback::WritebackConfig;
use rb_simcore::error::SimResult;
use rb_simcore::events::EventQueue;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simcore::units::{Bytes, PAGE_SIZE};
use rb_simdisk::device::{BlockDevice, IoRequest};
use rb_simdisk::hdd::{Hdd, HddConfig};
use rb_simfs::vfs::FileSystem;
use rb_stats::histogram::Log2Histogram;

/// Scaling experiment configuration.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Thread counts to sweep.
    pub threads: Vec<u32>,
    /// CPU cores available (the testbed Xeon: 2).
    pub cores: u32,
    /// Shared file size.
    pub file_size: Bytes,
    /// Page-cache capacity.
    pub cache: Bytes,
    /// Per-operation CPU cost (overhead + copy).
    pub cpu_per_op: Nanos,
    /// Virtual duration per point.
    pub duration: Nanos,
    /// Seed.
    pub seed: u64,
}

impl ScalingConfig {
    /// Memory-bound preset: the whole file fits in cache.
    pub fn memory_bound() -> Self {
        ScalingConfig {
            threads: vec![1, 2, 4, 8, 16],
            cores: 4,
            file_size: Bytes::mib(64),
            cache: Bytes::mib(410),
            cpu_per_op: Nanos::from_micros(100),
            duration: Nanos::from_secs(20),
            seed: 0,
        }
    }

    /// Disk-bound preset: the cache is crushed.
    pub fn disk_bound() -> Self {
        ScalingConfig {
            threads: vec![1, 2, 4, 8, 16],
            cores: 4,
            file_size: Bytes::mib(256),
            cache: Bytes::mib(8),
            cpu_per_op: Nanos::from_micros(100),
            duration: Nanos::from_secs(60),
            seed: 0,
        }
    }
}

/// One point of the saturation curve.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Concurrent threads.
    pub threads: u32,
    /// Aggregate throughput.
    pub ops_per_sec: f64,
    /// Speedup relative to one thread.
    pub speedup: f64,
}

/// The full curve plus per-point latency histograms.
#[derive(Debug, Clone)]
pub struct ScalingCurve {
    /// Points in thread order.
    pub points: Vec<ScalingPoint>,
    /// Latency histogram per point (queueing delays included).
    pub histograms: Vec<Log2Histogram>,
}

impl ScalingCurve {
    /// The knee: the smallest thread count achieving ≥ 90 % of the
    /// maximum throughput.
    pub fn knee(&self) -> Option<u32> {
        let max = self
            .points
            .iter()
            .map(|p| p.ops_per_sec)
            .fold(0.0f64, f64::max);
        self.points
            .iter()
            .find(|p| p.ops_per_sec >= 0.9 * max)
            .map(|p| p.threads)
    }
}

/// Per-thread simulation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Ready to start an operation's CPU part.
    StartOp,
    /// CPU part finished; needs the listed disk work (or none).
    CpuDone,
}

#[derive(Debug, Clone, Copy)]
struct ThreadEvent {
    thread: u32,
    phase: Phase,
    op_started: Nanos,
}

/// Runs one point: `n` threads of uniform random 8 KiB reads.
fn run_point(
    fs: &mut dyn FileSystem,
    ino: u64,
    file_pages: u64,
    config: &ScalingConfig,
    n: u32,
) -> (f64, Log2Histogram) {
    let mut cache = PageCache::new(CacheConfig {
        capacity_pages: config.cache.div_ceil(PAGE_SIZE),
        policy: rb_simcache::policy::PolicyKind::Lru,
        readahead: ReadaheadConfig::disabled(),
        writeback: WritebackConfig::default(),
    });
    let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
    // Start at steady state: populate the cache as a prior sequential
    // sweep would have (LRU keeps the file's tail if it does not fit).
    for page in 0..file_pages {
        cache.insert_clean(ino, page);
    }
    let mut rng = Rng::new(config.seed).fork("scaling");
    let mut queue: EventQueue<ThreadEvent> = EventQueue::new();
    // Core tokens: each core's next-free instant.
    let mut core_free = vec![Nanos::ZERO; config.cores.max(1) as usize];
    // The single disk's next-free instant.
    let mut disk_free = Nanos::ZERO;
    let mut hist = Log2Histogram::new();
    let mut ops = 0u64;

    for t in 0..n {
        queue.schedule(
            Nanos::ZERO,
            ThreadEvent {
                thread: t,
                phase: Phase::StartOp,
                op_started: Nanos::ZERO,
            },
        );
    }
    while let Some((now, ev)) = queue.pop() {
        if now >= config.duration {
            continue; // drain without scheduling more
        }
        match ev.phase {
            Phase::StartOp => {
                // Claim the earliest-free core.
                let core = (0..core_free.len())
                    .min_by_key(|&i| core_free[i])
                    .expect("at least one core");
                let start = core_free[core].max(now);
                let done = start + config.cpu_per_op;
                core_free[core] = done;
                queue.schedule(
                    done,
                    ThreadEvent {
                        thread: ev.thread,
                        phase: Phase::CpuDone,
                        op_started: now,
                    },
                );
            }
            Phase::CpuDone => {
                // Random 2-page read through the shared cache.
                let page = rng.below(file_pages.saturating_sub(1).max(1));
                let out = cache.read(ino, page, 2, file_pages, now);
                let mut finish = now;
                if !out.miss_pages.is_empty() {
                    // Serialize on the disk.
                    let start = disk_free.max(now);
                    let mut lat = Nanos::ZERO;
                    let mut i = 0;
                    while i < out.miss_pages.len() {
                        let logical = out.miss_pages[i];
                        let mut run = 1;
                        while i + run < out.miss_pages.len()
                            && out.miss_pages[i + run] == logical + run as u64
                        {
                            run += 1;
                        }
                        if let Ok(ext) = fs.map(ino, logical, run as u64) {
                            lat +=
                                disk.service(&IoRequest::read(ext.physical, ext.len), start + lat);
                            i += ext.len as usize;
                        } else {
                            i += 1;
                        }
                    }
                    disk_free = start + lat;
                    finish = disk_free;
                }
                ops += 1;
                hist.record(finish - ev.op_started);
                queue.schedule(
                    finish,
                    ThreadEvent {
                        thread: ev.thread,
                        phase: Phase::StartOp,
                        op_started: finish,
                    },
                );
            }
        }
    }
    (ops as f64 / config.duration.as_secs_f64(), hist)
}

/// Runs the thread-scaling sweep on the given file system kind.
pub fn thread_scaling(kind: FsKind, config: &ScalingConfig) -> SimResult<ScalingCurve> {
    let device_blocks = (config.file_size * 4)
        .max(Bytes::gib(1))
        .div_ceil(PAGE_SIZE);
    let mut points = Vec::new();
    let mut histograms = Vec::new();
    let mut base: Option<f64> = None;
    for &n in &config.threads {
        // Fresh substrates per point: identical layout, cold cache.
        let mut fs = kind.format(device_blocks);
        let (ino, _) = fs.create("/shared")?;
        fs.set_size(ino, config.file_size)?;
        let file_pages = config.file_size.div_ceil(PAGE_SIZE);
        let (ops_per_sec, hist) = run_point(fs.as_mut(), ino, file_pages, config, n);
        let speedup = match base {
            Some(b) if b > 0.0 => ops_per_sec / b,
            _ => {
                base = Some(ops_per_sec);
                1.0
            }
        };
        points.push(ScalingPoint {
            threads: n,
            ops_per_sec,
            speedup,
        });
        histograms.push(hist);
    }
    Ok(ScalingCurve { points, histograms })
}

/// Renders the saturation curve.
pub fn render_curve(label: &str, curve: &ScalingCurve) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Thread scaling: {label}");
    let _ = writeln!(out, "{:>8} {:>12} {:>9}", "threads", "ops/sec", "speedup");
    for p in &curve.points {
        let _ = writeln!(
            out,
            "{:>8} {:>12.0} {:>8.2}x",
            p.threads, p.ops_per_sec, p.speedup
        );
    }
    if let Some(knee) = curve.knee() {
        let _ = writeln!(out, "saturates at ~{knee} threads");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut c: ScalingConfig) -> ScalingConfig {
        c.duration = Nanos::from_secs(5);
        c.threads = vec![1, 2, 4, 8];
        c
    }

    #[test]
    fn memory_bound_scales_to_cores() {
        let cfg = quick(ScalingConfig::memory_bound());
        let curve = thread_scaling(FsKind::Ext2, &cfg).unwrap();
        let by_threads: std::collections::HashMap<u32, f64> = curve
            .points
            .iter()
            .map(|p| (p.threads, p.speedup))
            .collect();
        // Near-linear to the core count...
        assert!(by_threads[&2] > 1.7, "2 threads: {}", by_threads[&2]);
        assert!(by_threads[&4] > 3.2, "4 threads: {}", by_threads[&4]);
        // ...then flat: 8 threads on 4 cores buys little.
        assert!(
            by_threads[&8] < by_threads[&4] * 1.2,
            "8 threads kept scaling past the cores: {} vs {}",
            by_threads[&8],
            by_threads[&4]
        );
    }

    #[test]
    fn disk_bound_does_not_scale() {
        let cfg = quick(ScalingConfig::disk_bound());
        let curve = thread_scaling(FsKind::Ext2, &cfg).unwrap();
        let last = curve.points.last().unwrap();
        assert!(
            last.speedup < 1.5,
            "disk-bound workload scaled {}x with threads?!",
            last.speedup
        );
    }

    #[test]
    fn queueing_shows_in_latency() {
        // Disk-bound with more threads: same throughput, worse latency.
        let cfg = quick(ScalingConfig::disk_bound());
        let curve = thread_scaling(FsKind::Ext2, &cfg).unwrap();
        let p1 = curve.histograms.first().unwrap().quantile(0.5).unwrap();
        let p8 = curve.histograms.last().unwrap().quantile(0.5).unwrap();
        assert!(
            p8 > p1 * 2,
            "queueing delay invisible: median {p1} at 1 thread vs {p8} at 8"
        );
    }

    #[test]
    fn knee_detection() {
        let cfg = quick(ScalingConfig::memory_bound());
        let curve = thread_scaling(FsKind::Ext2, &cfg).unwrap();
        let knee = curve.knee().unwrap();
        assert!(
            (4..=8).contains(&knee),
            "knee at {knee}, expected near the 4-core limit"
        );
    }

    #[test]
    fn render_lists_all_points() {
        let cfg = quick(ScalingConfig::memory_bound());
        let curve = thread_scaling(FsKind::Ext2, &cfg).unwrap();
        let s = render_curve("test", &curve);
        assert!(s.contains("threads"));
        assert!(s.lines().count() >= curve.points.len() + 2);
    }
}
