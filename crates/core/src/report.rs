//! Result rendering and export: ASCII charts, CSV, gnuplot data, JSON.
//!
//! Section 4 demands reporting "a range of values that span multiple
//! dimensions" instead of single numbers. These helpers render curves,
//! histograms and multi-run summaries for the terminal and export the
//! underlying data for plotting. The JSON emitter is deliberately
//! minimal (no external dependency) — enough to serialize experiment
//! results losslessly.

use std::fmt::Write as _;

/// A minimal JSON value for result export.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// null
    Null,
    /// true / false
    Bool(bool),
    /// A finite number (non-finite serializes as null).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Serializes to a compact JSON string.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Renders rows as CSV with proper quoting.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Renders rows as an aligned ASCII table: the first column is
/// left-aligned (labels), every other column right-aligned (numbers).
/// Short rows are padded with empty cells.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().take(ncols).enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, width) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            if i > 0 {
                out.push_str("  ");
            }
            let pad = width.saturating_sub(cell.chars().count());
            if i == 0 {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    render_row(&mut out, &headers_owned);
    let rule_len = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

/// Renders `(x, y)` series as a gnuplot-ready `.dat` block: one column
/// per series, `#` comment header, NaN for missing points.
pub fn to_gnuplot(x_label: &str, series: &[(&str, &[(f64, f64)])]) -> String {
    let mut out = String::new();
    let _ = write!(out, "# {x_label}");
    for (name, _) in series {
        let _ = write!(out, "\t{name}");
    }
    out.push('\n');
    // Merge x values.
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs.dedup();
    for x in xs {
        let _ = write!(out, "{x}");
        for (_, pts) in series {
            match pts.iter().find(|&&(px, _)| (px - x).abs() < 1e-9) {
                Some(&(_, y)) => {
                    let _ = write!(out, "\t{y}");
                }
                None => out.push_str("\tNaN"),
            }
        }
        out.push('\n');
    }
    out
}

/// ASCII line chart of one or more series, sized `width` × `height`
/// characters, with automatic y scaling. Series beyond the fourth reuse
/// glyphs.
pub fn ascii_chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    const GLYPHS: [char; 4] = ['*', '+', 'x', 'o'];
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (0.0f64, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if (x_hi - x_lo).abs() < 1e-12 {
        x_hi = x_lo + 1.0;
    }
    if (y_hi - y_lo).abs() < 1e-12 {
        y_hi = y_lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in pts.iter() {
            let cx = (((x - x_lo) / (x_hi - x_lo)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_lo) / (y_hi - y_lo)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{y_hi:>10.0} ┤");
    for row in &grid {
        let _ = writeln!(out, "{:>10} │{}", "", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{y_lo:>10.0} ┼{}", "─".repeat(width));
    let _ = writeln!(
        out,
        "{:>11}{x_lo:<12.0}{:>w$}{x_hi:.0}",
        "",
        "",
        w = width.saturating_sub(24)
    );
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "{:>12} {} = {}", "", GLYPHS[si % GLYPHS.len()], name);
    }
    out
}

/// Unicode sparkline of a series (8 levels).
pub fn sparkline(ys: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if ys.is_empty() {
        return String::new();
    }
    let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    ys.iter()
        .map(|&y| {
            let idx = (((y - lo) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Str("a\"b".into()).to_string(), r#""a\"b""#);
    }

    #[test]
    fn json_nested() {
        let j = Json::obj(vec![
            ("name", Json::Str("fig1".into())),
            ("points", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        assert_eq!(j.to_string(), r#"{"name":"fig1","points":[1,2]}"#);
    }

    #[test]
    fn json_escapes_control_chars() {
        let j = Json::Str("line1\nline2\t\u{1}".into());
        assert_eq!(j.to_string(), "\"line1\\nline2\\t\\u0001\"");
    }

    #[test]
    fn csv_quotes_when_needed() {
        let csv = to_csv(
            &["a", "b"],
            &[
                vec!["1,5".into(), "plain".into()],
                vec!["he \"x\"".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "\"1,5\",plain");
        assert_eq!(lines[2], "\"he \"\"x\"\"\",2");
    }

    #[test]
    fn text_table_aligns_columns() {
        let t = text_table(
            &["cell", "ops/s", "rsd%"],
            &[
                vec!["randomread/ext2".into(), "9500.1".into(), "0.4".into()],
                vec!["seq".into(), "12.0".into(), "35.9".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("cell"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].ends_with("0.4"));
        assert!(lines[3].ends_with("35.9"));
        // Right-aligned numeric columns line up on their last character.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn gnuplot_merges_x() {
        let a = [(0.0, 1.0), (10.0, 2.0)];
        let b = [(10.0, 5.0), (20.0, 6.0)];
        let out = to_gnuplot("t", &[("ext2", &a), ("xfs", &b)]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "# t\text2\txfs");
        assert!(lines[1].starts_with("0\t1\tNaN"));
        assert!(lines[2].starts_with("10\t2\t5"));
        assert!(lines[3].starts_with("20\tNaN\t6"));
    }

    #[test]
    fn chart_renders_every_series() {
        let a: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, i as f64)).collect();
        let b: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (50 - i) as f64)).collect();
        let art = ascii_chart(&[("up", &a), ("down", &b)], 60, 12);
        assert!(art.contains('*'));
        assert!(art.contains('+'));
        assert!(art.contains("up"));
        assert!(art.contains("down"));
    }

    #[test]
    fn chart_empty_is_graceful() {
        assert_eq!(ascii_chart(&[], 10, 5), "(no data)\n");
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s.chars().count(), 8);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[]), "");
    }
}
