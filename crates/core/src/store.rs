//! Content-addressed result store: campaign cells cached on disk.
//!
//! Campaign cells are pure functions of their spec — the cell key, the
//! campaign seed, the repetition protocol and the engine code version
//! fully determine the result (that determinism is what
//! [`crate::campaign`] exists to guarantee). The store exploits it:
//! every finished cell is serialized to one fsync'd record file named
//! by a content hash over that identity, so an unchanged cell is never
//! executed twice. Reruns probe the store first; editing one axis value
//! re-executes only the new column of the grid, and an interrupted
//! campaign resumes from whatever records already landed.
//!
//! ## Layout
//!
//! ```text
//! <dir>/
//!   cells/<digest>.cell   one record per finished cell (atomic rename)
//!   manifest.log          append-only journal: "<digest> <cell key>"
//! ```
//!
//! ## Identity
//!
//! A record's address is `fnv1a(identity)` where the identity string
//! canonically encodes everything a cell result depends on: the code
//! salt ([`CODE_SALT`], bumped whenever engine semantics change), the
//! cell key, the campaign seed, the protocol, the run-shaping plan
//! fields, the retry policy, the SLO target, the device floor, any
//! per-campaign run cap, and (for trace cells) a content hash of the
//! trace itself. Records written under a different salt or spec simply
//! hash to different addresses — they are ignored, never corrupted.
//! On load the stored identity line is compared against the recomputed
//! one, so a hash collision or a tampered record degrades to a cache
//! miss, not a wrong result.
//!
//! ## Fidelity
//!
//! Records round-trip [`CellResult`] losslessly: floating-point fields
//! are written with Rust's shortest-round-trip formatting (parsing the
//! text recovers the exact bits), derived fields (summary, coverage)
//! are recomputed by the same pure functions the live path uses, and
//! everything else is integers and labels. A report assembled from
//! records is therefore byte-identical to one assembled from live runs
//! — the property `tests/campaign_store.rs` pins against the committed
//! sweep goldens.
//!
//! Flight-recorder campaigns (`plan.obs.metrics`) are refused by the
//! store: a metrics snapshot is a diagnostic of one live run, not a
//! reproducible measurement, so caching it would be a lie. See
//! `docs/CAMPAIGNS.md`.

use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rb_simcore::error::{SimError, SimResult};
use rb_simcore::fnv::{fnv1a, FNV_OFFSET};
use rb_simcore::time::Nanos;
use rb_stats::bootstrap::Interval;
use rb_stats::summary::Summary;

use crate::campaign::{cell_coverage, Cell, CellResult, OpenCellStats, SweepSpec};
use crate::runner::Verdict;

/// Code-version salt folded into every record identity. Bump it when
/// engine semantics change (anything that could alter a cell's numbers
/// for the same spec): every existing record then hashes to a dead
/// address and the grid re-executes, which is exactly the safe default.
pub const CODE_SALT: &str = "rb-store-v1";

/// First line of every record file; the version gate for the format.
const RECORD_HEADER: &str = "rocketbench-cell-record v1";

/// Canonical identity string of one cell under one spec: the content
/// hash preimage. Single line by construction (cell keys and labels
/// never contain newlines).
pub fn cell_identity(spec: &SweepSpec, cell: &Cell, run_cap: Option<u32>) -> String {
    let mut id = String::with_capacity(160);
    let _ = write!(
        id,
        "salt={CODE_SALT};cell={};seed={};protocol={};duration={};window={};tail={};\
         jitter={};cold={};prewarm={};retry={};slo={};device={};cap={}",
        cell.key(),
        spec.plan.base_seed,
        spec.plan.protocol,
        spec.plan.duration.as_nanos(),
        spec.plan.window.as_nanos(),
        spec.plan.tail_windows,
        spec.plan.cache_jitter.as_u64(),
        spec.plan.cold_start,
        spec.plan.prewarm,
        spec.retry.label(),
        spec.slo_p99.map_or(u64::MAX, Nanos::as_nanos),
        spec.device.as_u64(),
        run_cap.map_or(-1i64, i64::from),
    );
    // A trace cell's numbers depend on the trace content, which lives
    // outside the cell key — fold a content hash of the canonical v2
    // serialization into the identity so editing a trace invalidates
    // its cells.
    if let crate::campaign::CellWorkload::Trace { index, .. } = &cell.workload {
        let h = spec
            .traces
            .get(*index)
            .and_then(|s| s.trace.to_text_v2().ok())
            .map_or(0, |text| fnv1a(FNV_OFFSET, text.as_bytes()));
        let _ = write!(id, ";trace={h:016x}");
    }
    id
}

/// The 64-bit content address of an identity string.
pub fn digest(identity: &str) -> u64 {
    fnv1a(FNV_OFFSET, identity.as_bytes())
}

/// A directory of content-addressed cell records.
///
/// Shared by reference across campaign workers; the manifest handle is
/// the only mutable state and is mutex-guarded.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    manifest: Mutex<File>,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<ResultStore> {
        fs::create_dir_all(dir.join("cells"))?;
        let manifest = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("manifest.log"))?;
        Ok(ResultStore {
            dir: dir.to_path_buf(),
            manifest: Mutex::new(manifest),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// True when the directory already holds a store (manifest exists):
    /// the `--resume` precondition.
    pub fn exists(dir: &Path) -> bool {
        dir.join("manifest.log").is_file()
    }

    /// Path of the record addressed by `digest`.
    pub fn record_path(&self, digest: u64) -> PathBuf {
        self.dir.join("cells").join(format!("{digest:016x}.cell"))
    }

    /// Number of records in the store (a directory scan; diagnostics
    /// and tests only).
    pub fn record_count(&self) -> usize {
        fs::read_dir(self.dir.join("cells"))
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "cell"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Probes the store for `cell` under `spec`. A hit is parsed and
    /// verified — the stored identity must equal the recomputed one —
    /// and rebuilt into a full [`CellResult`]. Any mismatch, parse
    /// failure or I/O error degrades to a miss (`None`).
    pub fn load(&self, spec: &SweepSpec, cell: &Cell, run_cap: Option<u32>) -> Option<CellResult> {
        let identity = cell_identity(spec, cell, run_cap);
        let path = self.record_path(digest(&identity));
        let text = fs::read_to_string(path).ok()?;
        decode_record(&text, &identity, spec, cell).ok()
    }

    /// Streams one finished cell to disk: the record is written to a
    /// temp file, fsync'd, atomically renamed to its content address,
    /// and journaled in the manifest (also fsync'd). A crash between
    /// cells therefore loses nothing; a crash mid-cell loses only that
    /// cell's in-flight record.
    pub fn save(
        &self,
        spec: &SweepSpec,
        cell: &Cell,
        run_cap: Option<u32>,
        result: &CellResult,
    ) -> io::Result<()> {
        let identity = cell_identity(spec, cell, run_cap);
        let d = digest(&identity);
        let record = encode_record(&identity, result);
        let tmp = self
            .dir
            .join("cells")
            .join(format!(".tmp-{d:016x}-{}", std::process::id()));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(record.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.record_path(d))?;
        let mut manifest = self.manifest.lock().expect("manifest lock");
        writeln!(manifest, "{d:016x} {}", cell.key())?;
        manifest.sync_data()?;
        Ok(())
    }
}

/// Formats an `Option` scalar as its value or `-`.
fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "-".into(), |x| x.to_string())
}

/// Serializes a [`CellResult`] plus its identity into record text.
///
/// Derived fields (summary, coverage) are omitted: the decoder
/// recomputes them with the same pure functions the live path uses,
/// which keeps the format small and the round-trip honest. Metrics
/// snapshots are never present (the store refuses metrics campaigns).
fn encode_record(identity: &str, r: &CellResult) -> String {
    let mut out = String::with_capacity(256);
    let _ = writeln!(out, "{RECORD_HEADER}");
    let _ = writeln!(out, "identity {identity}");
    let _ = writeln!(out, "key {}", r.cell.key());
    let _ = writeln!(out, "seed {}", r.seed);
    let _ = writeln!(out, "runs {}", r.runs);
    let _ = writeln!(out, "verdict {}", r.verdict.label());
    let _ = writeln!(out, "errors {}", r.errors);
    let _ = writeln!(out, "hit_ratio {}", opt(r.hit_ratio));
    let samples: Vec<String> = r.samples.iter().map(f64::to_string).collect();
    let _ = writeln!(out, "samples {}", samples.join(" "));
    match r.ci {
        Some(ci) => {
            let _ = writeln!(out, "ci {} {} {}", ci.lo, ci.point, ci.hi);
        }
        None => {
            let _ = writeln!(out, "ci -");
        }
    }
    if let Some(open) = &r.open_loop {
        let _ = writeln!(
            out,
            "open {} {} {} {} {} {}",
            open.offered,
            open.dropped,
            opt(open.p50.map(Nanos::as_nanos)),
            opt(open.p99.map(Nanos::as_nanos)),
            opt(open.p999.map(Nanos::as_nanos)),
            opt(open.slo_max_rate),
        );
    }
    if let Some(l) = &r.ledger {
        let _ = writeln!(
            out,
            "ledger {} {} {} {} {} {} {}",
            l.attempted,
            l.succeeded,
            l.retried_ok,
            l.gave_up,
            l.dropped,
            l.retries,
            l.degraded.as_nanos(),
        );
        if let Some(c) = &l.crash {
            let _ = writeln!(
                out,
                "crash {} {} {} {} {}",
                c.at.as_nanos(),
                c.mechanism,
                c.recovery.as_nanos(),
                c.lost_dirty_pages,
                c.consistent,
            );
        }
    }
    let _ = writeln!(out, "end");
    out
}

/// One parse failure mode; every variant degrades to a cache miss.
fn bad(msg: &str) -> SimError {
    SimError::BadConfig(format!("store record: {msg}"))
}

fn parse_field<T: std::str::FromStr>(s: &str, what: &str) -> SimResult<T> {
    s.parse().map_err(|_| bad(&format!("bad {what} `{s}`")))
}

fn parse_opt<T: std::str::FromStr>(s: &str, what: &str) -> SimResult<Option<T>> {
    if s == "-" {
        Ok(None)
    } else {
        parse_field(s, what).map(Some)
    }
}

/// Parses and verifies record text back into a [`CellResult`].
///
/// `expect_identity` is the recomputed identity for the probing
/// campaign; a stored identity that differs (salt bump, spec drift, a
/// hash collision, tampering) is rejected. Summary and coverage are
/// rebuilt from the parsed samples and the live spec, so a loaded
/// result is indistinguishable from an executed one.
fn decode_record(
    text: &str,
    expect_identity: &str,
    spec: &SweepSpec,
    cell: &Cell,
) -> SimResult<CellResult> {
    let mut lines = text.lines();
    if lines.next() != Some(RECORD_HEADER) {
        return Err(bad("unknown header"));
    }
    let mut identity = None;
    let mut seed = None;
    let mut runs = None;
    let mut verdict = None;
    let mut errors = None;
    let mut hit_ratio = None;
    let mut samples: Option<Vec<f64>> = None;
    let mut ci = None;
    let mut open_loop = None;
    let mut ledger: Option<rb_faults::OutcomeLedger> = None;
    let mut key = None;
    let mut ended = false;
    for line in lines {
        let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
        match tag {
            "identity" => identity = Some(rest.to_string()),
            "key" => key = Some(rest.to_string()),
            "seed" => seed = Some(parse_field(rest, "seed")?),
            "runs" => runs = Some(parse_field(rest, "runs")?),
            "verdict" => {
                verdict = Some(Verdict::parse(rest).ok_or_else(|| bad("unknown verdict"))?)
            }
            "errors" => errors = Some(parse_field(rest, "errors")?),
            "hit_ratio" => hit_ratio = Some(parse_opt(rest, "hit ratio")?),
            "samples" => {
                samples = Some(
                    rest.split_whitespace()
                        .map(|s| parse_field(s, "sample"))
                        .collect::<SimResult<Vec<f64>>>()?,
                )
            }
            "ci" => {
                ci = Some(if rest == "-" {
                    None
                } else {
                    let mut it = rest.split_whitespace();
                    let mut next = |what| {
                        it.next()
                            .ok_or_else(|| bad(&format!("truncated ci ({what})")))
                            .and_then(|s| parse_field(s, what))
                    };
                    Some(Interval {
                        lo: next("ci lo")?,
                        point: next("ci point")?,
                        hi: next("ci hi")?,
                    })
                })
            }
            "open" => {
                let f: Vec<&str> = rest.split_whitespace().collect();
                if f.len() != 6 {
                    return Err(bad("open line needs 6 fields"));
                }
                open_loop = Some(OpenCellStats {
                    offered: parse_field(f[0], "offered")?,
                    dropped: parse_field(f[1], "dropped")?,
                    p50: parse_opt(f[2], "p50")?.map(Nanos::from_nanos),
                    p99: parse_opt(f[3], "p99")?.map(Nanos::from_nanos),
                    p999: parse_opt(f[4], "p999")?.map(Nanos::from_nanos),
                    slo_max_rate: parse_opt(f[5], "slo rate")?,
                });
            }
            "ledger" => {
                let f: Vec<&str> = rest.split_whitespace().collect();
                if f.len() != 7 {
                    return Err(bad("ledger line needs 7 fields"));
                }
                ledger = Some(rb_faults::OutcomeLedger {
                    attempted: parse_field(f[0], "attempted")?,
                    succeeded: parse_field(f[1], "succeeded")?,
                    retried_ok: parse_field(f[2], "retried_ok")?,
                    gave_up: parse_field(f[3], "gave_up")?,
                    dropped: parse_field(f[4], "dropped")?,
                    retries: parse_field(f[5], "retries")?,
                    degraded: Nanos::from_nanos(parse_field(f[6], "degraded")?),
                    crash: None,
                });
            }
            "crash" => {
                let f: Vec<&str> = rest.split_whitespace().collect();
                if f.len() != 5 {
                    return Err(bad("crash line needs 5 fields"));
                }
                // `mechanism` is a &'static str on the live type; map
                // the stored label back onto the known constants.
                let mechanism = match f[1] {
                    "journal-replay" => "journal-replay",
                    "fsck-scan" => "fsck-scan",
                    other => return Err(bad(&format!("unknown recovery mechanism `{other}`"))),
                };
                let l = ledger
                    .as_mut()
                    .ok_or_else(|| bad("crash line before ledger"))?;
                l.crash = Some(rb_faults::CrashReport {
                    at: Nanos::from_nanos(parse_field(f[0], "crash at")?),
                    mechanism,
                    recovery: Nanos::from_nanos(parse_field(f[2], "recovery")?),
                    lost_dirty_pages: parse_field(f[3], "lost pages")?,
                    consistent: parse_field(f[4], "consistent")?,
                });
            }
            "end" => ended = true,
            _ => return Err(bad(&format!("unknown tag `{tag}`"))),
        }
    }
    if !ended {
        return Err(bad("truncated record (no end marker)"));
    }
    if identity.as_deref() != Some(expect_identity) {
        return Err(bad("identity mismatch"));
    }
    if key.as_deref() != Some(cell.key().as_str()) {
        return Err(bad("key mismatch"));
    }
    let samples = samples.ok_or_else(|| bad("missing samples"))?;
    let summary = Summary::from_sample(&samples).ok_or_else(|| bad("empty sample"))?;
    Ok(CellResult {
        cell: cell.clone(),
        coverage: cell_coverage(spec, cell)?,
        seed: seed.ok_or_else(|| bad("missing seed"))?,
        samples,
        summary,
        ci: ci.ok_or_else(|| bad("missing ci"))?,
        verdict: verdict.ok_or_else(|| bad("missing verdict"))?,
        runs: runs.ok_or_else(|| bad("missing runs"))?,
        hit_ratio: hit_ratio.ok_or_else(|| bad("missing hit ratio"))?,
        errors: errors.ok_or_else(|| bad("missing errors"))?,
        open_loop,
        metrics: None,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_cell;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rb-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> SweepSpec {
        use crate::runner::RunPlan;
        let mut plan = RunPlan::quick(7);
        plan.duration = Nanos::from_millis(300);
        plan.window = Nanos::from_millis(50);
        SweepSpec {
            name: "store-tiny".into(),
            file_sizes: vec![rb_simcore::units::Bytes::mib(8)],
            plan,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn identity_is_deterministic_and_salted() {
        let spec = tiny_spec();
        let cell = &spec.expand()[0];
        let a = cell_identity(&spec, cell, None);
        let b = cell_identity(&spec, cell, None);
        assert_eq!(a, b);
        assert!(a.contains(CODE_SALT));
        assert!(a.contains(&cell.key()));
        // A different campaign seed is a different identity.
        let mut other = tiny_spec();
        other.plan.base_seed = 8;
        assert_ne!(a, cell_identity(&other, &other.expand()[0], None));
        // So is a run cap.
        assert_ne!(a, cell_identity(&spec, cell, Some(3)));
    }

    #[test]
    fn record_round_trips_exactly() {
        let spec = tiny_spec();
        let cell = &spec.expand()[0];
        let live = run_cell(&spec, cell, None).expect("cell runs");
        let identity = cell_identity(&spec, cell, None);
        let text = encode_record(&identity, &live);
        let back = decode_record(&text, &identity, &spec, cell).expect("decodes");
        assert_eq!(back.samples, live.samples);
        assert_eq!(back.seed, live.seed);
        assert_eq!(back.runs, live.runs);
        assert_eq!(back.verdict, live.verdict);
        assert_eq!(back.errors, live.errors);
        assert_eq!(back.hit_ratio, live.hit_ratio);
        assert_eq!(back.summary.mean, live.summary.mean);
        assert_eq!(back.ci.map(|c| (c.lo, c.hi)), live.ci.map(|c| (c.lo, c.hi)));
        assert_eq!(back.coverage, live.coverage);
        assert_eq!(back.open_loop, live.open_loop);
        assert_eq!(back.ledger, live.ledger);
    }

    #[test]
    fn store_save_then_load_hits() {
        let dir = tmpdir("hit");
        let spec = tiny_spec();
        let cell = &spec.expand()[0];
        let store = ResultStore::open(&dir).expect("open");
        assert!(store.load(&spec, cell, None).is_none(), "cold store misses");
        let live = run_cell(&spec, cell, None).expect("cell runs");
        store.save(&spec, cell, None, &live).expect("save");
        let hit = store.load(&spec, cell, None).expect("warm store hits");
        assert_eq!(hit.samples, live.samples);
        assert_eq!(store.record_count(), 1);
        assert!(ResultStore::exists(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_record_degrades_to_miss() {
        let dir = tmpdir("tamper");
        let spec = tiny_spec();
        let cell = &spec.expand()[0];
        let store = ResultStore::open(&dir).expect("open");
        let live = run_cell(&spec, cell, None).expect("cell runs");
        store.save(&spec, cell, None, &live).expect("save");
        // Rewrite the record with a foreign identity at the same
        // address: verification must reject it.
        let path = store.record_path(digest(&cell_identity(&spec, cell, None)));
        let forged = encode_record("salt=other;cell=whatever", &live);
        fs::write(&path, forged).expect("forge");
        assert!(store.load(&spec, cell, None).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
