//! Pre-wired simulated testbeds matching the paper's experimental setup.
//!
//! Section 3: "We used an Intel Xeon 2.8 GHz machine with a single SATA
//! Maxtor 7L250S0 disk drive as a testbed. We artificially decreased the
//! RAM to 512 MB." These constructors reproduce that machine over the
//! simulation stack: a Maxtor-class HDD, a 410 MiB LRU page cache
//! (512 MiB minus the OS), and one of the three file systems, formatted
//! to a device large enough for the experiment.

use crate::target::SimTarget;
use rb_simcache::cache::CacheConfig;
use rb_simcache::policy::PolicyKind;
use rb_simcache::readahead::ReadaheadConfig;
use rb_simcache::writeback::WritebackConfig;
use rb_simcore::units::{Bytes, PAGE_SIZE};
use rb_simdisk::hdd::{Hdd, HddConfig};
use rb_simfs::ext2::{Ext2Config, Ext2Fs};
use rb_simfs::ext3::{Ext3Config, Ext3Fs};
use rb_simfs::stack::{StackConfig, StorageStack};
use rb_simfs::vfs::FileSystem;
use rb_simfs::xfs::{XfsConfig, XfsFs};

/// The paper's page-cache budget: 512 MiB RAM minus the OS, i.e. the
/// 410 MB that Section 3.1 reports as "the largest file that fits in the
/// page cache".
pub const PAPER_CACHE: Bytes = Bytes::mib(410);

/// Supported simulated file systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsKind {
    /// Ext2-like (no journal).
    Ext2,
    /// Ext3-like (ordered journal).
    Ext3,
    /// XFS-like (extents, allocation groups).
    Xfs,
}

impl FsKind {
    /// All kinds, in the paper's Figure 2 order.
    pub const ALL: [FsKind; 3] = [FsKind::Ext2, FsKind::Ext3, FsKind::Xfs];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FsKind::Ext2 => "ext2",
            FsKind::Ext3 => "ext3",
            FsKind::Xfs => "xfs",
        }
    }

    /// Formats a file system of this kind over `device_blocks` blocks.
    pub fn format(self, device_blocks: u64) -> Box<dyn FileSystem> {
        match self {
            FsKind::Ext2 => Box::new(Ext2Fs::new(Ext2Config::for_blocks(device_blocks))),
            FsKind::Ext3 => Box::new(Ext3Fs::new(Ext3Config::for_blocks(device_blocks))),
            FsKind::Xfs => Box::new(XfsFs::new(XfsConfig::for_blocks(device_blocks))),
        }
    }
}

/// Full testbed description.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// File system under test.
    pub fs: FsKind,
    /// Formatted device size (must exceed the working set comfortably).
    pub device: Bytes,
    /// Page-cache capacity.
    pub cache: Bytes,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Readahead configuration.
    pub readahead: ReadaheadConfig,
    /// Seed differentiating runs (feeds the disk's mechanical jitter).
    pub seed: u64,
}

impl Testbed {
    /// The paper's machine with the given file system and device size.
    pub fn paper(fs: FsKind, device: Bytes, seed: u64) -> Self {
        Testbed {
            fs,
            device,
            cache: PAPER_CACHE,
            policy: PolicyKind::Lru,
            readahead: ReadaheadConfig::default(),
            seed,
        }
    }

    /// Builds the simulated machine.
    pub fn build(&self) -> SimTarget {
        let device_blocks = self.device.div_ceil(PAGE_SIZE);
        let fs = self.fs.format(device_blocks);
        let mut hdd = HddConfig::maxtor_7l250s0_like();
        hdd.seed = hdd.seed.wrapping_add(self.seed);
        // Trim the disk model to the formatted size, keeping zone shape.
        let cache = CacheConfig {
            capacity_pages: self.cache.div_ceil(PAGE_SIZE),
            policy: self.policy,
            readahead: self.readahead,
            writeback: WritebackConfig::default(),
        };
        let stack_cfg = StackConfig {
            seed: self.seed,
            ..Default::default()
        };
        let stack = StorageStack::new(fs, cache, Box::new(Hdd::new(hdd)), stack_cfg);
        SimTarget::new(stack)
    }
}

/// The paper testbed with ext2 and default seed handling.
pub fn paper_ext2(device: Bytes, seed: u64) -> SimTarget {
    Testbed::paper(FsKind::Ext2, device, seed).build()
}

/// The paper testbed with an arbitrary file system.
pub fn paper_fs(fs: FsKind, device: Bytes, seed: u64) -> SimTarget {
    Testbed::paper(fs, device, seed).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Target;

    #[test]
    fn builds_all_kinds() {
        for kind in FsKind::ALL {
            let t = paper_fs(kind, Bytes::gib(1), 0);
            assert_eq!(t.name(), format!("sim:{}", kind.name()));
        }
    }

    #[test]
    fn cache_capacity_matches_paper() {
        let t = paper_ext2(Bytes::gib(1), 0);
        assert_eq!(t.stack().cache().capacity_pages(), 410 * 256);
    }

    #[test]
    fn seeds_differentiate_disk_jitter() {
        let run = |seed| {
            let mut t = paper_ext2(Bytes::gib(1), seed);
            t.create("/f").unwrap();
            let fd = t.open("/f").unwrap();
            t.set_size(fd, Bytes::mib(64)).unwrap();
            let mut total = rb_simcore::time::Nanos::ZERO;
            let mut rng = rb_simcore::rng::Rng::new(1);
            for _ in 0..50 {
                let page = rng.below(16_000);
                total += t.read(fd, Bytes::kib(4) * page, Bytes::kib(8)).unwrap();
            }
            total
        };
        // Identical logical workload, different mechanical jitter.
        assert_ne!(run(1), run(2));
        // And the same seed reproduces exactly.
        assert_eq!(run(3), run(3));
    }
}
