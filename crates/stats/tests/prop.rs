//! Property tests for the statistics crate.

use proptest::prelude::*;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_stats::bootstrap::bootstrap_mean_ci;
use rb_stats::changepoint::{binary_segmentation, steepest_drop};
use rb_stats::compare::welch_t;
use rb_stats::histogram::Log2Histogram;
use rb_stats::peaks::find_peaks;
use rb_stats::summary::Summary;

proptest! {
    /// Histogram quantiles are monotone in q.
    #[test]
    fn quantiles_monotone(ns in proptest::collection::vec(1u64..1 << 40, 1..300)) {
        let mut h = Log2Histogram::new();
        for &x in &ns {
            h.record(Nanos::from_nanos(x));
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = Nanos::ZERO;
        for &q in &qs {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= last, "quantile({q}) regressed");
            last = v;
        }
    }

    /// Peak masses never exceed 1 and peaks are sorted by bucket.
    #[test]
    fn peaks_well_formed(ns in proptest::collection::vec(1u64..1 << 30, 1..300)) {
        let mut h = Log2Histogram::new();
        for &x in &ns {
            h.record(Nanos::from_nanos(x));
        }
        let peaks = find_peaks(&h, 4, 0.0);
        let total: f64 = peaks.iter().map(|p| p.mass).sum();
        prop_assert!(total <= 1.0 + 1e-9);
        for w in peaks.windows(2) {
            prop_assert!(w[0].bucket < w[1].bucket);
        }
        for p in &peaks {
            prop_assert!(p.height <= p.mass + 1e-12);
        }
    }

    /// Summary invariants: min <= median <= p90 <= p99 <= max; sd >= 0.
    #[test]
    fn summary_ordering(xs in proptest::collection::vec(-1e12f64..1e12, 1..200)) {
        let s = Summary::from_sample(&xs).unwrap();
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.sd >= 0.0);
        prop_assert_eq!(s.n as usize, xs.len());
    }

    /// Bootstrap interval always contains values between its bounds and
    /// behaves sanely for degenerate samples.
    #[test]
    fn bootstrap_interval_ordered(
        xs in proptest::collection::vec(0.0f64..1e6, 1..60),
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let ci = bootstrap_mean_ci(&xs, 200, 0.1, &mut rng).unwrap();
        prop_assert!(ci.lo <= ci.hi);
        // For resampled means, bounds stay within the sample's range.
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(ci.lo >= lo - 1e-9);
        prop_assert!(ci.hi <= hi + 1e-9);
    }

    /// Welch's t is antisymmetric and its p-value is in [0, 1].
    #[test]
    fn welch_antisymmetric(
        a in proptest::collection::vec(-1e6f64..1e6, 2..40),
        b in proptest::collection::vec(-1e6f64..1e6, 2..40),
    ) {
        if let (Some(ab), Some(ba)) = (welch_t(&a, &b), welch_t(&b, &a)) {
            prop_assert!((ab.t + ba.t).abs() < 1e-9 * ab.t.abs().max(1.0));
            prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&ab.p_value));
            prop_assert!((ab.mean_diff + ba.mean_diff).abs() < 1e-6);
        }
    }

    /// Changepoints are strictly increasing interior indices.
    #[test]
    fn binseg_indices_valid(xs in proptest::collection::vec(-100.0f64..100.0, 10..150)) {
        let cps = binary_segmentation(&xs, 4, 3, 0.05);
        for w in cps.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &c in &cps {
            prop_assert!(c >= 3 && c <= xs.len() - 3);
        }
    }

    /// steepest_drop's reported values match the series content.
    #[test]
    fn steepest_drop_consistent(ys in proptest::collection::vec(0.1f64..1e6, 2..100)) {
        let series: Vec<(f64, f64)> =
            ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
        if let Some(cliff) = steepest_drop(&series) {
            prop_assert_eq!(cliff.y_before, ys[cliff.index]);
            prop_assert_eq!(cliff.y_after, ys[cliff.index + 1]);
            prop_assert!(cliff.drop_factor() > 1.0);
            // It really is the steepest adjacent drop.
            for w in ys.windows(2) {
                if w[0] > 0.0 && w[1] > 0.0 {
                    prop_assert!(
                        w[0] / w[1] <= cliff.drop_factor() + 1e-9,
                        "missed a steeper drop"
                    );
                }
            }
        } else {
            // No drop anywhere: series is non-decreasing.
            for w in ys.windows(2) {
                prop_assert!(w[1] >= w[0]);
            }
        }
    }
}
