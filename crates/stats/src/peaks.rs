//! Peak detection and modality classification for latency histograms.
//!
//! Section 3.2's core observation: during most of a benchmark run the
//! latency distribution is *bi-modal* (an in-memory peak and a disk peak),
//! so means and standard deviations are meaningless and "trying to achieve
//! stable results with small standard deviations is nearly impossible".
//! These routines turn a histogram into its peak structure so the harness
//! can say — quantitatively — when single-number reporting is invalid.

use crate::histogram::{Log2Histogram, BUCKETS};

/// A detected histogram peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Bucket index of the local maximum.
    pub bucket: usize,
    /// Fraction of total observations in the peak's bucket.
    pub height: f64,
    /// Fraction of total observations attributed to the whole peak
    /// (contiguous buckets down to the bounding valleys).
    pub mass: f64,
}

/// Modality classification of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modality {
    /// No observations.
    Empty,
    /// One dominant peak: single-regime behaviour, summary stats are fair.
    Unimodal,
    /// Two well-separated peaks: mixed-regime behaviour (e.g. cache hits
    /// and disk misses); single-number reporting is misleading.
    Bimodal,
    /// Three or more peaks.
    Multimodal,
}

/// Finds peaks in a histogram.
///
/// A bucket is a peak candidate if it is a local maximum of the bucket
/// fractions; candidates closer than `min_separation` buckets are merged
/// into the taller one; peaks with mass below `min_mass` are dropped.
///
/// With the defaults used by [`classify_modality`] (separation 4, mass
/// 2 %), the paper's Figure 3(b) — two equal peaks ~11 buckets apart —
/// classifies as bimodal, while its Figure 3(a) — one 4 µs spike —
/// classifies as unimodal.
pub fn find_peaks(h: &Log2Histogram, min_separation: usize, min_mass: f64) -> Vec<Peak> {
    if h.is_empty() {
        return Vec::new();
    }
    let frac: Vec<f64> = (0..BUCKETS).map(|k| h.fraction(k)).collect();

    // Local maxima (plateau-tolerant: first bucket of a flat top wins).
    let mut candidates: Vec<usize> = Vec::new();
    for k in 0..BUCKETS {
        let cur = frac[k];
        if cur <= 0.0 {
            continue;
        }
        let left = if k == 0 { 0.0 } else { frac[k - 1] };
        let right = if k + 1 == BUCKETS { 0.0 } else { frac[k + 1] };
        if cur >= left && cur > right {
            candidates.push(k);
        }
    }

    // Merge candidates that are too close, keeping the taller.
    candidates.sort_by(|&a, &b| {
        frac[b]
            .partial_cmp(&frac[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<usize> = Vec::new();
    for c in candidates {
        if kept.iter().all(|&k| k.abs_diff(c) >= min_separation) {
            kept.push(c);
        }
    }
    kept.sort_unstable();

    // Attribute mass: split the bucket range at the valleys (minimum
    // between adjacent peaks), each valley belonging to the peak on its
    // left so the ranges partition [0, BUCKETS) and masses sum to <= 1.
    let valley = |a: usize, b: usize| -> usize {
        (a..=b)
            .min_by(|&x, &y| {
                frac[x]
                    .partial_cmp(&frac[y])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(a)
    };
    let mut peaks = Vec::new();
    for (i, &k) in kept.iter().enumerate() {
        let lo_bound = if i == 0 {
            0
        } else {
            // The valley bucket itself belongs to the previous peak.
            (valley(kept[i - 1], k) + 1).min(k)
        };
        let hi_bound = if i + 1 == kept.len() {
            BUCKETS - 1
        } else {
            valley(k, kept[i + 1]).max(k)
        };
        let mass: f64 = (lo_bound..=hi_bound).map(|b| frac[b]).sum();
        if mass >= min_mass {
            peaks.push(Peak {
                bucket: k,
                height: frac[k],
                mass,
            });
        }
    }
    peaks
}

/// Classifies the modality of a histogram using the harness defaults
/// (peak separation ≥ 4 buckets ≈ 16× latency ratio, mass ≥ 2 %).
pub fn classify_modality(h: &Log2Histogram) -> Modality {
    if h.is_empty() {
        return Modality::Empty;
    }
    match find_peaks(h, 4, 0.02).len() {
        0 | 1 => Modality::Unimodal,
        2 => Modality::Bimodal,
        _ => Modality::Multimodal,
    }
}

/// Balance of a bimodal distribution: the mass ratio of the smaller peak
/// to the larger, in `[0, 1]`.
///
/// Figure 3(b)'s "peaks are almost equal in height" corresponds to a
/// balance near 1; Figure 3(c)'s "left peak becomes invisibly small" is a
/// balance near 0. Returns `None` unless exactly two peaks are found.
pub fn bimodal_balance(h: &Log2Histogram) -> Option<f64> {
    let peaks = find_peaks(h, 4, 0.02);
    if peaks.len() != 2 {
        return None;
    }
    let (a, b) = (peaks[0].mass, peaks[1].mass);
    Some(if a < b { a / b } else { b / a })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rb_simcore::time::Nanos;

    fn hist(pairs: &[(u64, u64)]) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for &(ns, n) in pairs {
            h.record_n(Nanos::from_nanos(ns), n);
        }
        h
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(classify_modality(&Log2Histogram::new()), Modality::Empty);
        assert!(find_peaks(&Log2Histogram::new(), 4, 0.02).is_empty());
    }

    #[test]
    fn single_spike_is_unimodal() {
        // Figure 3(a): all operations near 4 us.
        let h = hist(&[(4096, 950), (8192, 30), (2048, 20)]);
        assert_eq!(classify_modality(&h), Modality::Unimodal);
        let peaks = find_peaks(&h, 4, 0.02);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bucket, 12);
        assert!(peaks[0].mass > 0.9);
    }

    #[test]
    fn cache_plus_disk_is_bimodal() {
        // Figure 3(b): half hits at ~4 us, half misses at ~8 ms.
        let h = hist(&[(4096, 500), (8_388_608, 500)]);
        assert_eq!(classify_modality(&h), Modality::Bimodal);
        let peaks = find_peaks(&h, 4, 0.02);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].bucket, 12);
        assert_eq!(peaks[1].bucket, 23);
        let balance = bimodal_balance(&h).unwrap();
        assert!(balance > 0.9, "balance {balance}");
    }

    #[test]
    fn vanishing_peak_returns_to_unimodal() {
        // Figure 3(c): the in-memory peak is invisibly small (< 2 % mass).
        let h = hist(&[(4096, 5), (8_388_608, 995)]);
        assert_eq!(classify_modality(&h), Modality::Unimodal);
        assert!(bimodal_balance(&h).is_none());
    }

    #[test]
    fn adjacent_buckets_merge_into_one_peak() {
        // A realistic spread over buckets 11-13 is still one peak.
        let h = hist(&[(2048, 200), (4096, 500), (8192, 300)]);
        let peaks = find_peaks(&h, 4, 0.02);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].bucket, 12);
    }

    #[test]
    fn three_regimes_multimodal() {
        // Memory, flash and disk tiers: the "multiple distinctive steps"
        // the paper predicts for multi-level caches.
        let h = hist(&[(2048, 300), (131_072, 300), (16_777_216, 400)]);
        assert_eq!(classify_modality(&h), Modality::Multimodal);
    }

    #[test]
    fn min_mass_filters_noise() {
        let h = hist(&[(4096, 990), (1 << 30, 10)]);
        // 1 % outlier mass does not count as a second peak at 2 % cutoff.
        assert_eq!(find_peaks(&h, 4, 0.02).len(), 1);
        // But a 0.5 % cutoff sees it.
        assert_eq!(find_peaks(&h, 4, 0.005).len(), 2);
    }

    #[test]
    fn masses_partition_to_one() {
        let h = hist(&[(4096, 400), (8_388_608, 600)]);
        let peaks = find_peaks(&h, 4, 0.0);
        let total_mass: f64 = peaks.iter().map(|p| p.mass).sum();
        assert!((total_mass - 1.0).abs() < 1e-9, "mass {total_mass}");
    }
}
