//! Two-sample comparison: Welch's t-test and effect sizes.
//!
//! "Which file system is better?" is, per the paper, ill-defined — but
//! when a comparison *is* made, it should at least be statistically
//! defensible. This module provides Welch's unequal-variance t-test with
//! a proper p-value (via the regularized incomplete beta function) plus
//! Cohen's d, so the harness can label differences as significant,
//! insignificant or meaningless-but-significant.

use crate::moments::Moments;

/// Natural log of the gamma function (Lanczos approximation).
fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g = 7, n = 9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function I_x(a, b) by Lentz's continued
/// fraction (Numerical Recipes style).
fn betai(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The continued fraction converges fast for x below the pivot; above
    // it, evaluate the mirrored fraction directly (the `front` factor is
    // symmetric in (a, x) <-> (b, 1-x)), avoiding recursion entirely.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value of Student's t with `df` degrees of freedom.
fn t_pvalue(t: f64, df: f64) -> f64 {
    if df <= 0.0 {
        return 1.0;
    }
    let x = df / (df + t * t);
    betai(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Result of a Welch two-sample comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchT {
    /// The t statistic (positive when sample A's mean is larger).
    pub t: f64,
    /// Welch-Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Cohen's d effect size (pooled-SD standardized mean difference).
    pub cohens_d: f64,
    /// Mean of sample A minus mean of sample B.
    pub mean_diff: f64,
}

impl WelchT {
    /// True if the difference is significant at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Conventional effect-size label for |d|:
    /// negligible < 0.2 ≤ small < 0.5 ≤ medium < 0.8 ≤ large.
    pub fn effect_label(&self) -> &'static str {
        let d = self.cohens_d.abs();
        if d < 0.2 {
            "negligible"
        } else if d < 0.5 {
            "small"
        } else if d < 0.8 {
            "medium"
        } else {
            "large"
        }
    }
}

/// Performs Welch's unequal-variance t-test between two samples.
///
/// Returns `None` if either sample has fewer than 2 observations or both
/// variances are zero (no test is possible — though equal-constant
/// samples yield `p = 1` via the zero-t convention).
///
/// # Examples
///
/// ```
/// use rb_stats::compare::welch_t;
///
/// let ext2 = [9682.0, 9653.0, 9679.0, 9700.0, 9543.0];
/// let ext3 = [8120.0, 8190.0, 8075.0, 8160.0, 8105.0];
/// let r = welch_t(&ext2, &ext3).unwrap();
/// assert!(r.significant_at(0.01));
/// assert_eq!(r.effect_label(), "large");
/// ```
pub fn welch_t(a: &[f64], b: &[f64]) -> Option<WelchT> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let ma = Moments::from_slice(a);
    let mb = Moments::from_slice(b);
    let (va, vb) = (ma.sample_variance(), mb.sample_variance());
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mean_diff = ma.mean() - mb.mean();
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        // Both samples constant.
        let t = if mean_diff.abs() < f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        };
        let p = if t == 0.0 { 1.0 } else { 0.0 };
        return Some(WelchT {
            t,
            df: na + nb - 2.0,
            p_value: p,
            cohens_d: 0.0,
            mean_diff,
        });
    }
    let t = mean_diff / se2.sqrt();
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let pooled_sd = (((na - 1.0) * va + (nb - 1.0) * vb) / (na + nb - 2.0)).sqrt();
    let cohens_d = if pooled_sd > 0.0 {
        mean_diff / pooled_sd
    } else {
        0.0
    };
    Some(WelchT {
        t,
        df,
        p_value: t_pvalue(t, df),
        cohens_d,
        mean_diff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(5) = 24.
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        // Gamma(0.5) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn betai_boundaries() {
        assert_eq!(betai(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betai(2.0, 3.0, 1.0), 1.0);
        // I_{0.5}(a, a) = 0.5 by symmetry.
        assert!((betai(4.0, 4.0, 0.5) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn t_pvalue_known_points() {
        // t = 0 gives p = 1.
        assert!((t_pvalue(0.0, 10.0) - 1.0).abs() < 1e-12);
        // Large |t| gives tiny p.
        assert!(t_pvalue(10.0, 30.0) < 1e-9);
        // t = 2.228 at df = 10 is the classic 5 % two-sided critical value.
        let p = t_pvalue(2.228, 10.0);
        assert!((p - 0.05).abs() < 0.002, "p {p}");
    }

    #[test]
    fn identical_samples_not_significant() {
        let xs = [5.0, 6.0, 7.0, 8.0];
        let r = welch_t(&xs, &xs).unwrap();
        assert!((r.t).abs() < 1e-12);
        assert!(r.p_value > 0.99);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn distinct_means_detected() {
        let a = [100.0, 101.0, 99.0, 100.5, 99.5, 100.2];
        let b = [110.0, 111.0, 109.0, 110.5, 109.5, 110.2];
        let r = welch_t(&a, &b).unwrap();
        assert!(r.significant_at(0.001));
        assert!(r.mean_diff < 0.0);
        assert_eq!(r.effect_label(), "large");
    }

    #[test]
    fn high_variance_masks_difference() {
        // Same mean gap as above but sd ~ 30: not significant at n = 4.
        let a = [80.0, 140.0, 70.0, 110.0];
        let b = [95.0, 150.0, 85.0, 120.0];
        let r = welch_t(&a, &b).unwrap();
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn too_small_samples_are_none() {
        assert!(welch_t(&[1.0], &[2.0, 3.0]).is_none());
        assert!(welch_t(&[], &[]).is_none());
    }

    #[test]
    fn constant_samples_conventions() {
        let r = welch_t(&[5.0, 5.0, 5.0], &[5.0, 5.0]).unwrap();
        assert_eq!(r.p_value, 1.0);
        let r2 = welch_t(&[5.0, 5.0, 5.0], &[6.0, 6.0]).unwrap();
        assert_eq!(r2.p_value, 0.0);
    }

    #[test]
    fn df_between_min_and_sum() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
        let r = welch_t(&a, &b).unwrap();
        assert!(r.df >= 4.0 && r.df <= 9.0, "df {}", r.df);
    }
}
