//! Cliff and changepoint detection.
//!
//! Figure 1's headline feature is a performance cliff: throughput drops by
//! an order of magnitude between two adjacent file sizes, and zooming in
//! shows the drop completes within a < 6 MB window. These routines locate
//! such cliffs in `(x, y)` sweeps and mean-shift changepoints in time
//! series, so the harness can *report* the fragile region instead of
//! averaging across it.

use crate::moments::Moments;

/// A detected cliff between two adjacent sweep points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cliff {
    /// Index of the point before the drop.
    pub index: usize,
    /// X value before the drop.
    pub x_before: f64,
    /// X value after the drop.
    pub x_after: f64,
    /// Y value before the drop.
    pub y_before: f64,
    /// Y value after the drop.
    pub y_after: f64,
}

impl Cliff {
    /// Ratio of y before to y after (≥ 1 for a drop).
    pub fn drop_factor(&self) -> f64 {
        if self.y_after.abs() < f64::EPSILON {
            f64::INFINITY
        } else {
            self.y_before / self.y_after
        }
    }
}

/// Finds the steepest relative drop between adjacent points of a sweep.
///
/// Returns `None` for fewer than 2 points or when no drop exists at all.
///
/// # Examples
///
/// ```
/// use rb_stats::changepoint::steepest_drop;
///
/// // The Figure 1 shape: plateau, cliff, tail.
/// let series = [
///     (320.0, 9700.0),
///     (384.0, 9715.0),
///     (448.0, 1019.0),
///     (512.0, 465.0),
/// ];
/// let cliff = steepest_drop(&series).unwrap();
/// assert_eq!(cliff.x_before, 384.0);
/// assert_eq!(cliff.x_after, 448.0);
/// assert!(cliff.drop_factor() > 9.0);
/// ```
pub fn steepest_drop(series: &[(f64, f64)]) -> Option<Cliff> {
    if series.len() < 2 {
        return None;
    }
    let mut best: Option<(f64, usize)> = None;
    for i in 0..series.len() - 1 {
        let (.., y0) = series[i];
        let (.., y1) = series[i + 1];
        if y0 <= 0.0 {
            continue;
        }
        let ratio = y0 / y1.max(f64::MIN_POSITIVE);
        if ratio > 1.0 && best.is_none_or(|(b, _)| ratio > b) {
            best = Some((ratio, i));
        }
    }
    best.map(|(_, i)| Cliff {
        index: i,
        x_before: series[i].0,
        x_after: series[i + 1].0,
        y_before: series[i].1,
        y_after: series[i + 1].1,
    })
}

/// Identifies the transition window of a sweep that has a high plateau and
/// a low tail: the x range outside of which y is within `tolerance`
/// (relative) of the respective plateau levels.
///
/// Plateau levels are estimated from the first and last points. Returns
/// `None` when the series has no meaningful high-to-low structure (level
/// ratio below 2×).
pub fn transition_window(series: &[(f64, f64)], tolerance: f64) -> Option<(f64, f64)> {
    if series.len() < 3 {
        return None;
    }
    let high = series.first().map(|&(_, y)| y)?;
    let low = series.last().map(|&(_, y)| y)?;
    if low <= 0.0 || high / low < 2.0 {
        return None;
    }
    // Last index still within tolerance of the high plateau.
    let mut start = 0;
    for (i, &(_, y)) in series.iter().enumerate() {
        if (y - high).abs() / high <= tolerance {
            start = i;
        } else {
            break;
        }
    }
    // First index within tolerance of the low plateau, scanning from the end.
    let mut end = series.len() - 1;
    for (i, &(_, y)) in series.iter().enumerate().rev() {
        if (y - low).abs() / low <= tolerance {
            end = i;
        } else {
            break;
        }
    }
    if start >= end {
        // Degenerate: the cliff is between two adjacent samples.
        let c = steepest_drop(series)?;
        return Some((c.x_before, c.x_after));
    }
    Some((series[start].0, series[end].0))
}

/// Splits a time series at mean-shift changepoints using binary
/// segmentation, returning at most `max_k` changepoint indices (each index
/// is the start of a new segment), in increasing order.
///
/// A split is accepted only if it reduces the segment's sum of squared
/// errors by at least `min_gain` (relative, e.g. 0.1 = 10 %). Segments
/// shorter than `min_len` are never split.
pub fn binary_segmentation(xs: &[f64], max_k: usize, min_len: usize, min_gain: f64) -> Vec<usize> {
    fn sse(xs: &[f64]) -> f64 {
        let m = Moments::from_slice(xs);
        m.population_variance() * xs.len() as f64
    }

    /// Best single split of `xs[lo..hi]`; returns (index, gain).
    fn best_split(xs: &[f64], lo: usize, hi: usize, min_len: usize) -> Option<(usize, f64)> {
        let seg = &xs[lo..hi];
        if seg.len() < 2 * min_len {
            return None;
        }
        let total = sse(seg);
        if total <= 0.0 {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for cut in min_len..seg.len() - min_len + 1 {
            // Relative SSE reduction, so gains compare across segments.
            let gain = (total - sse(&seg[..cut]) - sse(&seg[cut..])) / total;
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((lo + cut, gain));
            }
        }
        best
    }

    let mut cps: Vec<usize> = Vec::new();
    let mut segments = vec![(0usize, xs.len())];
    while cps.len() < max_k {
        let mut best: Option<(usize, f64, usize)> = None; // (cut, gain, seg idx)
        for (si, &(lo, hi)) in segments.iter().enumerate() {
            if let Some((cut, gain)) = best_split(xs, lo, hi, min_len) {
                if best.is_none_or(|(_, g, _)| gain > g) {
                    best = Some((cut, gain, si));
                }
            }
        }
        match best {
            Some((cut, gain, si)) if gain >= min_gain => {
                let (lo, hi) = segments[si];
                segments[si] = (lo, cut);
                segments.insert(si + 1, (cut, hi));
                cps.push(cut);
            }
            _ => break,
        }
    }
    cps.sort_unstable();
    cps
}

/// Estimates where a warm-up time series reaches steady state: the first
/// index from which the remaining suffix has relative standard deviation
/// below `rsd_limit` percent. Returns `None` if it never stabilizes.
///
/// This implements the paper's demand that researchers report (or at
/// least detect) the warm-up phase instead of presenting a single number
/// silently measured somewhere inside it.
pub fn steady_state_start(xs: &[f64], rsd_limit: f64) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    // Suffix moments computed right-to-left in O(n).
    let mut suffix = Moments::new();
    let mut stable_from: Option<usize> = None;
    let mut results = vec![false; xs.len()];
    for i in (0..xs.len()).rev() {
        suffix.add(xs[i]);
        results[i] = suffix.rsd_percent() <= rsd_limit;
    }
    for (i, &ok) in results.iter().enumerate() {
        if ok {
            stable_from = Some(i);
            break;
        }
    }
    stable_from
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steepest_drop_finds_fig1_cliff() {
        // Shape of Figure 1 (file size in MB, ops/sec).
        let series: Vec<(f64, f64)> = vec![
            (64.0, 9682.0),
            (128.0, 9653.0),
            (192.0, 9679.0),
            (256.0, 9700.0),
            (320.0, 9543.0),
            (384.0, 9715.0),
            (448.0, 1019.0),
            (512.0, 465.0),
            (576.0, 288.0),
            (640.0, 252.0),
        ];
        let cliff = steepest_drop(&series).unwrap();
        assert_eq!((cliff.x_before, cliff.x_after), (384.0, 448.0));
        assert!(cliff.drop_factor() > 9.0);
    }

    #[test]
    fn no_drop_returns_none() {
        let rising: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        assert!(steepest_drop(&rising).is_none());
        assert!(steepest_drop(&[(0.0, 1.0)]).is_none());
        assert!(steepest_drop(&[]).is_none());
    }

    #[test]
    fn transition_window_brackets_cliff() {
        let series: Vec<(f64, f64)> = vec![
            (64.0, 9700.0),
            (128.0, 9690.0),
            (192.0, 9710.0),
            (256.0, 9700.0),
            (320.0, 9705.0),
            (384.0, 9700.0),
            (448.0, 1019.0),
            (512.0, 465.0),
            (576.0, 288.0),
            (640.0, 252.0),
            (704.0, 222.0),
        ];
        let (a, b) = transition_window(&series, 0.15).unwrap();
        // Window must start at the plateau edge and end once the series has
        // joined the low tail (252 is within 15 % of the 222 tail level).
        assert!(a >= 384.0 - 1e-9, "window start {a}");
        assert!(b <= 640.1, "window end {b}");
        assert!(a < b);
    }

    #[test]
    fn transition_window_flat_series_is_none() {
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 100.0)).collect();
        assert!(transition_window(&flat, 0.1).is_none());
    }

    #[test]
    fn binseg_finds_single_step() {
        let mut xs = vec![10.0; 50];
        xs.extend(vec![2.0; 50]);
        let cps = binary_segmentation(&xs, 3, 5, 0.2);
        assert_eq!(cps, vec![50]);
    }

    #[test]
    fn binseg_finds_two_steps() {
        let mut xs = vec![1.0; 40];
        xs.extend(vec![10.0; 40]);
        xs.extend(vec![5.0; 40]);
        let cps = binary_segmentation(&xs, 4, 5, 0.05);
        assert_eq!(cps.len(), 2, "cps {cps:?}");
        assert!(cps[0].abs_diff(40) <= 1);
        assert!(cps[1].abs_diff(80) <= 1);
    }

    #[test]
    fn binseg_ignores_noise_below_gain() {
        let xs: Vec<f64> = (0..100).map(|i| 10.0 + ((i % 3) as f64) * 0.01).collect();
        assert!(binary_segmentation(&xs, 3, 5, 0.5).is_empty());
    }

    #[test]
    fn steady_state_detects_warmup_end() {
        // S-curve warm-up then stable plateau with small jitter.
        let mut xs: Vec<f64> = (0..60)
            .map(|i| 10_000.0 / (1.0 + (-((i as f64) - 30.0) / 5.0).exp()))
            .collect();
        xs.extend((0..60).map(|i| 10_000.0 + ((i % 5) as f64 - 2.0) * 10.0));
        let start = steady_state_start(&xs, 2.0).unwrap();
        // The suffix from `start` must genuinely be stable, and the warm-up
        // ramp (first half of the S-curve) must be excluded.
        assert!(start >= 35, "start {start}");
        assert!(start <= 65, "start {start}");
        let m = Moments::from_slice(&xs[start..]);
        assert!(m.rsd_percent() <= 2.0);
    }

    #[test]
    fn steady_state_never_for_trending_series() {
        let xs: Vec<f64> = (1..100).map(|i| i as f64).collect();
        // Only the final couple of points can satisfy a tight limit.
        let s = steady_state_start(&xs, 1.0).unwrap();
        assert!(s > 90);
        assert_eq!(steady_state_start(&[], 1.0), None);
    }
}
