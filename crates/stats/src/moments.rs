//! Streaming moments (Welford) and relative standard deviation.
//!
//! Figure 1's right-hand axis is *relative standard deviation* — standard
//! deviation as a percentage of the mean — computed over 10 repeated runs
//! per configuration. [`Moments`] accumulates observations one at a time
//! with Welford's numerically stable update and supports the parallel
//! merge form so per-window statistics can be combined.

/// Streaming mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use rb_stats::moments::Moments;
///
/// let mut m = Moments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.add(x);
/// }
/// assert_eq!(m.mean(), 5.0);
/// assert!((m.population_sd() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Moments::new();
        for &x in xs {
            m.add(x);
        }
        m
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation; 0 for an empty accumulator.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 for an empty accumulator.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample variance (n−1 denominator); 0 when fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (n denominator); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_sd(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_sd(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Relative standard deviation as a percentage of the mean
    /// (Figure 1's right axis). Zero-mean data reports 0.
    pub fn rsd_percent(&self) -> f64 {
        let mean = self.mean();
        if mean.abs() < f64::EPSILON {
            0.0
        } else {
            100.0 * self.sample_sd() / mean.abs()
        }
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sample_sd() / (self.n as f64).sqrt()
        }
    }

    /// 95 % confidence half-width for the mean using the normal
    /// approximation (adequate for the ≥ 10 runs the harness performs).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.standard_error()
    }

    /// Merges another accumulator (Chan et al. parallel form).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_sd(), 0.0);
        assert_eq!(m.rsd_percent(), 0.0);
        assert_eq!(m.min(), 0.0);
        assert_eq!(m.max(), 0.0);
    }

    #[test]
    fn single_observation() {
        let m = Moments::from_slice(&[42.0]);
        assert_eq!(m.mean(), 42.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.min(), 42.0);
        assert_eq!(m.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.7).sin() * 10.0 + 50.0)
            .collect();
        let m = Moments::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((m.mean() - mean).abs() < 1e-9);
        assert!((m.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn rsd_is_percent_of_mean() {
        let m = Moments::from_slice(&[90.0, 100.0, 110.0]);
        assert!((m.rsd_percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let (a, b) = xs.split_at(123);
        let mut ma = Moments::from_slice(a);
        let mb = Moments::from_slice(b);
        ma.merge(&mb);
        let all = Moments::from_slice(&xs);
        assert_eq!(ma.count(), all.count());
        assert!((ma.mean() - all.mean()).abs() < 1e-9);
        assert!((ma.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(ma.min(), all.min());
        assert_eq!(ma.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = Moments::from_slice(&[1.0, 2.0, 3.0]);
        let before = m;
        m.merge(&Moments::new());
        assert_eq!(m, before);
        let mut e = Moments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let small = Moments::from_slice(&[9.0, 10.0, 11.0, 10.0]);
        let mut big = Moments::new();
        for _ in 0..25 {
            for x in [9.0, 10.0, 11.0, 10.0] {
                big.add(x);
            }
        }
        assert!(big.ci95_half_width() < small.ci95_half_width());
    }
}
