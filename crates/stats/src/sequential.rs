//! Sequential (convergence-driven) stopping rules for repeated runs.
//!
//! The paper's complaint — and Hasselbring's empirical-standard
//! checklist — is that benchmarkers pick "10 runs" by folklore and never
//! inspect whether the sample they collected actually pins the mean
//! down. A sequential protocol inverts that: after every run it asks
//! "is the bootstrap confidence interval on the mean narrower than the
//! target yet?", stops as soon as the answer is yes, and gives up
//! explicitly (rather than silently) when a run-count ceiling is hit.
//!
//! The rule is deterministic: the bootstrap takes an explicit
//! [`Rng`], so the same samples and seed always produce the same
//! decision — which is what lets a parallel campaign using this rule
//! stay byte-identical at any worker count.

use crate::bootstrap::{bootstrap_mean_ci, Interval};
use crate::moments::Moments;
use rb_simcore::rng::Rng;

/// Default bootstrap resample count for stopping decisions.
pub const DEFAULT_RESAMPLES: usize = 1000;

/// Default RSD gate (%): convergence is never declared while the sample
/// relative standard deviation exceeds this, however narrow the CI.
/// Guards against blessing a bimodal (mixed-regime) sample whose
/// bootstrap interval happens to be tight.
pub const DEFAULT_RSD_GATE_PERCENT: f64 = 10.0;

/// A convergence-driven stopping rule over bootstrap intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct StoppingRule {
    /// Never stop before this many runs (sequential CIs computed on
    /// tiny samples are unreliable; 5 is a sane floor).
    pub min_runs: u32,
    /// Never run more than this many runs; hitting the ceiling is an
    /// explicit [`Decision::Exhausted`], not a silent success.
    pub max_runs: u32,
    /// Target relative CI width: stop once `(hi - lo) / |mean|` is at
    /// or below this (e.g. `0.02` = "CI narrower than 2 % of the mean").
    pub ci_rel_width: f64,
    /// Confidence level of the interval (e.g. `0.95`).
    pub confidence: f64,
    /// RSD gate (%): see [`DEFAULT_RSD_GATE_PERCENT`].
    pub rsd_gate_percent: f64,
    /// Bootstrap resamples per decision.
    pub resamples: usize,
}

impl StoppingRule {
    /// A rule with the default RSD gate and resample count.
    pub fn new(min_runs: u32, max_runs: u32, ci_rel_width: f64, confidence: f64) -> StoppingRule {
        StoppingRule {
            min_runs,
            max_runs,
            ci_rel_width,
            confidence,
            rsd_gate_percent: DEFAULT_RSD_GATE_PERCENT,
            resamples: DEFAULT_RESAMPLES,
        }
    }

    /// Checks the rule's internal consistency; returns a human-readable
    /// complaint for nonsense configurations.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_runs == 0 {
            return Err("min_runs must be at least 1".into());
        }
        if self.max_runs < self.min_runs {
            return Err(format!(
                "max_runs ({}) must be >= min_runs ({})",
                self.max_runs, self.min_runs
            ));
        }
        if !(self.ci_rel_width > 0.0 && self.ci_rel_width < 1.0) {
            return Err(format!(
                "ci_rel_width must be in (0, 1), got {}",
                self.ci_rel_width
            ));
        }
        if !(self.confidence > 0.5 && self.confidence < 1.0) {
            return Err(format!(
                "confidence must be in (0.5, 1), got {}",
                self.confidence
            ));
        }
        if self.resamples == 0 {
            return Err("resamples must be at least 1".into());
        }
        Ok(())
    }

    /// The bootstrap `alpha` implied by the confidence level.
    pub fn alpha(&self) -> f64 {
        1.0 - self.confidence
    }
}

/// Outcome of evaluating a stopping rule on the samples collected so far.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Keep collecting runs.
    Continue,
    /// The CI met the target (and the RSD gate passed): stop.
    Converged(Interval),
    /// `max_runs` reached without meeting the target: stop, but report
    /// the (too-wide) interval honestly.
    Exhausted(Interval),
}

impl Decision {
    /// The interval attached to a stopping decision, if any.
    pub fn interval(&self) -> Option<Interval> {
        match self {
            Decision::Continue => None,
            Decision::Converged(ci) | Decision::Exhausted(ci) => Some(*ci),
        }
    }

    /// True when the decision says to stop collecting runs.
    pub fn is_stop(&self) -> bool {
        !matches!(self, Decision::Continue)
    }
}

/// Evaluates `rule` against the steady-state samples collected so far.
///
/// Deterministic under `rng`; callers that need scheduling-independent
/// results must derive `rng` from stable identity (a cell key, a base
/// seed), never from wall time or worker index.
///
/// # Examples
///
/// ```
/// use rb_simcore::rng::Rng;
/// use rb_stats::sequential::{evaluate, Decision, StoppingRule};
///
/// let rule = StoppingRule::new(3, 10, 0.05, 0.95);
/// // Two runs: below min_runs, keep going.
/// assert_eq!(
///     evaluate(&[100.0, 101.0], &rule, &mut Rng::new(1)),
///     Decision::Continue
/// );
/// // Four tight runs: converged.
/// let d = evaluate(&[100.0, 101.0, 100.5, 99.8], &rule, &mut Rng::new(1));
/// assert!(matches!(d, Decision::Converged(_)));
/// ```
pub fn evaluate(samples: &[f64], rule: &StoppingRule, rng: &mut Rng) -> Decision {
    let n = samples.len() as u32;
    if n < rule.min_runs {
        return Decision::Continue;
    }
    let ci = match bootstrap_mean_ci(samples, rule.resamples, rule.alpha(), rng) {
        Some(ci) => ci,
        None => return Decision::Continue,
    };
    let rsd = Moments::from_slice(samples).rsd_percent();
    let met = ci.rel_width() <= rule.ci_rel_width && rsd <= rule.rsd_gate_percent;
    if met {
        Decision::Converged(ci)
    } else if n >= rule.max_runs {
        Decision::Exhausted(ci)
    } else {
        Decision::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> StoppingRule {
        StoppingRule::new(4, 12, 0.05, 0.95)
    }

    #[test]
    fn below_min_runs_always_continues() {
        let r = rule();
        for n in 0..4usize {
            let xs = vec![100.0; n];
            assert_eq!(evaluate(&xs, &r, &mut Rng::new(1)), Decision::Continue);
        }
    }

    #[test]
    fn tight_sample_converges_at_min_runs() {
        let xs = [100.0, 100.2, 99.9, 100.1];
        let d = evaluate(&xs, &rule(), &mut Rng::new(2));
        match d {
            Decision::Converged(ci) => {
                assert!(ci.rel_width() <= 0.05);
                assert!(ci.contains(100.0));
            }
            other => panic!("expected convergence, got {other:?}"),
        }
    }

    #[test]
    fn noisy_sample_continues_then_exhausts() {
        // Bimodal sample (regime mix): never converges, exhausts at max.
        let mut xs: Vec<f64> = Vec::new();
        for i in 0..12 {
            xs.push(if i % 2 == 0 { 9700.0 } else { 500.0 });
            let d = evaluate(&xs, &rule(), &mut Rng::new(3));
            if (xs.len() as u32) < 12 {
                assert_eq!(d, Decision::Continue, "stopped early at n={}", xs.len());
            } else {
                assert!(matches!(d, Decision::Exhausted(_)), "got {d:?}");
            }
        }
    }

    #[test]
    fn rsd_gate_blocks_convergence() {
        // Large-n bimodal data can have a proportionally narrow CI, but
        // the RSD gate still refuses to call it converged.
        let xs: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 120.0 } else { 80.0 })
            .collect();
        let mut r = rule();
        r.max_runs = 500;
        r.ci_rel_width = 0.5;
        r.rsd_gate_percent = 5.0;
        assert_eq!(evaluate(&xs, &r, &mut Rng::new(4)), Decision::Continue);
        // Lifting the gate lets the (genuinely narrow) CI win.
        r.rsd_gate_percent = 100.0;
        assert!(matches!(
            evaluate(&xs, &r, &mut Rng::new(4)),
            Decision::Converged(_)
        ));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let xs: Vec<f64> = (0..8).map(|i| 100.0 + (i % 3) as f64).collect();
        let a = evaluate(&xs, &rule(), &mut Rng::new(7));
        let b = evaluate(&xs, &rule(), &mut Rng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(rule().validate().is_ok());
        assert!(StoppingRule::new(0, 10, 0.02, 0.95).validate().is_err());
        assert!(StoppingRule::new(5, 4, 0.02, 0.95).validate().is_err());
        assert!(StoppingRule::new(5, 10, 0.0, 0.95).validate().is_err());
        assert!(StoppingRule::new(5, 10, 1.5, 0.95).validate().is_err());
        assert!(StoppingRule::new(5, 10, 0.02, 0.3).validate().is_err());
        assert!(StoppingRule::new(5, 10, 0.02, 1.0).validate().is_err());
        let mut r = rule();
        r.resamples = 0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn decision_accessors() {
        assert_eq!(Decision::Continue.interval(), None);
        assert!(!Decision::Continue.is_stop());
        let ci = Interval {
            lo: 1.0,
            point: 2.0,
            hi: 3.0,
        };
        assert_eq!(Decision::Converged(ci).interval(), Some(ci));
        assert!(Decision::Exhausted(ci).is_stop());
    }
}
