//! Bootstrap resampling for distribution-free confidence intervals.
//!
//! Throughput samples in the transition region (Figure 1) are wildly
//! non-normal — the paper measures 35 % relative standard deviation —
//! so normal-theory intervals mislead exactly where rigor matters most.
//! The percentile bootstrap makes no distributional assumption.

use rb_simcore::rng::Rng;

/// A two-sided confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Point estimate (statistic of the original sample).
    pub point: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Half the width — the `±` figure quoted next to a mean.
    pub fn half_width(&self) -> f64 {
        self.width() / 2.0
    }

    /// Width relative to the point estimate's magnitude — the quantity a
    /// sequential stopping rule compares against its target ("stop once
    /// the CI is narrower than 2 % of the mean"). Infinite for a zero
    /// point estimate with a non-degenerate interval.
    pub fn rel_width(&self) -> f64 {
        let denom = self.point.abs();
        if denom < f64::EPSILON {
            if self.width().abs() < f64::EPSILON {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.width() / denom
        }
    }

    /// Returns true if the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// Draws `resamples` bootstrap replicates of `xs` (sampling with
/// replacement, deterministic under `rng`), evaluates `stat` on each, and
/// returns the `[alpha/2, 1 - alpha/2]` percentile interval. Returns
/// `None` for an empty sample.
///
/// # Examples
///
/// ```
/// use rb_simcore::rng::Rng;
/// use rb_stats::bootstrap::bootstrap_ci;
///
/// let xs: Vec<f64> = (0..50).map(|i| 100.0 + (i % 7) as f64).collect();
/// let mut rng = Rng::new(42);
/// let ci = bootstrap_ci(&xs, 1000, 0.05, &mut rng, |s| {
///     s.iter().sum::<f64>() / s.len() as f64
/// })
/// .unwrap();
/// assert!(ci.contains(ci.point));
/// assert!(ci.width() < 3.0);
/// ```
pub fn bootstrap_ci<F>(
    xs: &[f64],
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
    stat: F,
) -> Option<Interval>
where
    F: Fn(&[f64]) -> f64,
{
    if xs.is_empty() {
        return None;
    }
    let point = stat(xs);
    let mut replicates = Vec::with_capacity(resamples);
    let mut scratch = vec![0.0; xs.len()];
    for _ in 0..resamples.max(1) {
        for slot in scratch.iter_mut() {
            *slot = xs[rng.below(xs.len() as u64) as usize];
        }
        replicates.push(stat(&scratch));
    }
    replicates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = alpha.clamp(1e-6, 0.5);
    let lo = crate::summary::percentile_sorted(&replicates, alpha / 2.0);
    let hi = crate::summary::percentile_sorted(&replicates, 1.0 - alpha / 2.0);
    Some(Interval { lo, point, hi })
}

/// Bootstrap CI for the mean — the most common use.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> Option<Interval> {
    bootstrap_ci(xs, resamples, alpha, rng, |s| {
        s.iter().sum::<f64>() / s.len() as f64
    })
}

/// Bootstrap CI for the relative standard deviation (percent).
///
/// This is the statistic behind Figure 1's error bars; bootstrapping it
/// answers "how sure are we that the benchmark is fragile here?".
pub fn bootstrap_rsd_ci(
    xs: &[f64],
    resamples: usize,
    alpha: f64,
    rng: &mut Rng,
) -> Option<Interval> {
    bootstrap_ci(xs, resamples, alpha, rng, |s| {
        crate::moments::Moments::from_slice(s).rsd_percent()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        let mut rng = Rng::new(1);
        assert!(bootstrap_mean_ci(&[], 100, 0.05, &mut rng).is_none());
    }

    #[test]
    fn interval_brackets_point() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 1.37) % 50.0).collect();
        let mut rng = Rng::new(2);
        let ci = bootstrap_mean_ci(&xs, 2000, 0.05, &mut rng).unwrap();
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let a = bootstrap_mean_ci(&xs, 500, 0.05, &mut Rng::new(7)).unwrap();
        let b = bootstrap_mean_ci(&xs, 500, 0.05, &mut Rng::new(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wider_alpha_gives_narrower_interval() {
        let xs: Vec<f64> = (0..60).map(|i| ((i * 31) % 17) as f64).collect();
        let ci99 = bootstrap_mean_ci(&xs, 3000, 0.01, &mut Rng::new(3)).unwrap();
        let ci80 = bootstrap_mean_ci(&xs, 3000, 0.20, &mut Rng::new(3)).unwrap();
        assert!(ci80.width() <= ci99.width());
    }

    #[test]
    fn covers_true_mean_usually() {
        // Draw many samples from a known population; the 95 % interval
        // should cover the true mean most of the time.
        let mut rng = Rng::new(11);
        let mut covered = 0;
        let trials = 60;
        for _ in 0..trials {
            let xs: Vec<f64> = (0..40).map(|_| 10.0 + rng.normal()).collect();
            let ci = bootstrap_mean_ci(&xs, 400, 0.05, &mut rng).unwrap();
            if ci.contains(10.0) {
                covered += 1;
            }
        }
        assert!(
            covered >= trials * 8 / 10,
            "covered only {covered}/{trials}"
        );
    }

    #[test]
    fn rsd_ci_sane_for_constant_data() {
        let xs = vec![5.0; 25];
        let ci = bootstrap_rsd_ci(&xs, 200, 0.05, &mut Rng::new(4)).unwrap();
        assert_eq!(ci.point, 0.0);
        assert!(ci.hi < 1e-9);
    }

    #[test]
    fn single_observation_degenerates_gracefully() {
        let ci = bootstrap_mean_ci(&[3.0], 100, 0.05, &mut Rng::new(5)).unwrap();
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
    }

    #[test]
    fn relative_and_half_widths() {
        let ci = Interval {
            lo: 98.0,
            point: 100.0,
            hi: 103.0,
        };
        assert!((ci.half_width() - 2.5).abs() < 1e-12);
        assert!((ci.rel_width() - 0.05).abs() < 1e-12);
        // Degenerate zero-point intervals stay well-defined.
        let flat = Interval {
            lo: 0.0,
            point: 0.0,
            hi: 0.0,
        };
        assert_eq!(flat.rel_width(), 0.0);
        let wide = Interval {
            lo: -1.0,
            point: 0.0,
            hi: 1.0,
        };
        assert!(wide.rel_width().is_infinite());
    }
}
