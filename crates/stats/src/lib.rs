//! # rb-stats — statistics for rigorous benchmark reporting
//!
//! The statistical machinery the paper says file-system benchmarking
//! lacks: OSprof-style log2 latency histograms, streaming moments and
//! relative standard deviation, distribution-free bootstrap intervals,
//! sequential (convergence-driven) stopping rules, peak/modality
//! analysis, cliff and changepoint detection, windowed throughput time
//! series, and Welch's t-test for defensible two-system comparisons.
//!
//! Everything here is deterministic: randomized procedures (the
//! bootstrap) take an explicit [`rb_simcore::rng::Rng`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod changepoint;
pub mod compare;
pub mod histogram;
pub mod moments;
pub mod peaks;
pub mod sequential;
pub mod summary;
pub mod timeseries;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::bootstrap::{bootstrap_ci, bootstrap_mean_ci, bootstrap_rsd_ci, Interval};
    pub use crate::changepoint::{
        binary_segmentation, steady_state_start, steepest_drop, transition_window, Cliff,
    };
    pub use crate::compare::{welch_t, WelchT};
    pub use crate::histogram::{bucket_label, bucket_midpoint, Log2Histogram, BUCKETS};
    pub use crate::moments::Moments;
    pub use crate::peaks::{bimodal_balance, classify_modality, find_peaks, Modality, Peak};
    pub use crate::sequential::{evaluate, Decision, StoppingRule};
    pub use crate::summary::{
        percentile, percentile_sorted, try_percentile, try_percentile_sorted, EmptySample, Summary,
    };
    pub use crate::timeseries::{tail_mean_ops_per_sec, Window, WindowedSeries};
}
