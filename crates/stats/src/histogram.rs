//! Log2-bucket latency histograms (OSprof style).
//!
//! The paper's Figure 3 and Figure 4 use the histogram convention of
//! Joukov et al. (OSDI '06): bucket `k` counts operations whose latency
//! falls in `[2^k, 2^(k+1))` nanoseconds. The whole interesting range of
//! storage latencies — 16 ns cache hits to 268 ms worst-case seeks — fits
//! in buckets 4..28, and a peak's bucket index reads directly as a latency
//! scale. Section 3.2's argument is that these histograms expose bimodal
//! behaviour that means and standard deviations hide.

use rb_simcore::time::Nanos;

/// Number of log2 buckets; covers every representable `u64` nanosecond
/// latency (bucket 63 is `[2^63, 2^64)`).
pub const BUCKETS: usize = 64;

/// A latency histogram with power-of-two bucket boundaries.
///
/// # Examples
///
/// ```
/// use rb_stats::histogram::Log2Histogram;
/// use rb_simcore::time::Nanos;
///
/// let mut h = Log2Histogram::new();
/// h.record(Nanos::from_nanos(4096));  // an in-memory read
/// h.record(Nanos::from_millis(8));    // a disk read
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.count(12), 1);
/// assert_eq!(h.count(22), 1); // 8 ms = 8_000_000 ns, bucket 22
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Nanos) {
        self.counts[latency.log2_bucket() as usize] += 1;
        self.total += 1;
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, latency: Nanos, n: u64) {
        self.counts[latency.log2_bucket() as usize] += n;
        self.total += n;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns true if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Count in bucket `k` (latencies in `[2^k, 2^(k+1))` ns).
    ///
    /// Out-of-range bucket indices return 0.
    pub fn count(&self, k: usize) -> u64 {
        self.counts.get(k).copied().unwrap_or(0)
    }

    /// Fraction of observations in bucket `k`, in `[0, 1]`.
    pub fn fraction(&self, k: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(k) as f64 / self.total as f64
        }
    }

    /// All bucket fractions as percentages, the paper's Y axis.
    pub fn percentages(&self) -> Vec<f64> {
        (0..BUCKETS).map(|k| self.fraction(k) * 100.0).collect()
    }

    /// Index of the first non-empty bucket, if any.
    pub fn min_bucket(&self) -> Option<usize> {
        self.counts.iter().position(|&c| c > 0)
    }

    /// Index of the last non-empty bucket, if any.
    pub fn max_bucket(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Index of the fullest bucket (the primary mode), if any.
    pub fn mode_bucket(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let mut best = 0;
        for k in 1..BUCKETS {
            if self.counts[k] > self.counts[best] {
                best = k;
            }
        }
        Some(best)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for k in 0..BUCKETS {
            self.counts[k] += other.counts[k];
        }
        self.total += other.total;
    }

    /// Approximate quantile `q` in `[0, 1]`, returned as the geometric
    /// midpoint latency of the bucket containing the quantile.
    ///
    /// Returns `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<Nanos> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for k in 0..BUCKETS {
            acc += self.counts[k];
            if acc >= target {
                return Some(bucket_midpoint(k));
            }
        }
        Some(bucket_midpoint(BUCKETS - 1))
    }

    /// Mean latency estimated from bucket midpoints.
    ///
    /// Returns `None` on an empty histogram. The estimate is within a
    /// factor of sqrt(2) of the true mean by construction, which is
    /// adequate for the order-of-magnitude reasoning the paper calls for.
    pub fn approx_mean(&self) -> Option<Nanos> {
        if self.total == 0 {
            return None;
        }
        let mut acc = 0.0;
        for k in 0..BUCKETS {
            acc += self.counts[k] as f64 * bucket_midpoint(k).as_nanos() as f64;
        }
        Some(Nanos::from_nanos((acc / self.total as f64) as u64))
    }

    /// The span, in orders of magnitude (base 10), between the smallest
    /// and largest observed latency buckets.
    ///
    /// Section 3.2 observes working-set size swings latency across more
    /// than 3 orders of magnitude; this is the statistic that checks it.
    pub fn span_orders_of_magnitude(&self) -> f64 {
        match (self.min_bucket(), self.max_bucket()) {
            (Some(lo), Some(hi)) => (hi - lo) as f64 * 2f64.log10(),
            _ => 0.0,
        }
    }

    /// Total-variation distance to another histogram, in `[0, 1]`:
    /// half the L1 distance between the two bucket distributions.
    ///
    /// 0 means identical profiles, 1 means disjoint. This is the OSprof
    /// (paper reference \[6\]) notion of comparing latency *profiles*
    /// rather than means: two systems with equal averages but different
    /// peak structure are far apart here.
    pub fn total_variation_distance(&self, other: &Log2Histogram) -> f64 {
        if self.total == 0 || other.total == 0 {
            return if self.total == other.total { 0.0 } else { 1.0 };
        }
        let mut l1 = 0.0;
        for k in 0..BUCKETS {
            l1 += (self.fraction(k) - other.fraction(k)).abs();
        }
        l1 / 2.0
    }

    /// Earth-mover's distance between the two bucket distributions,
    /// measured in buckets (i.e. factors of two of latency).
    ///
    /// Unlike [`Log2Histogram::total_variation_distance`], this respects
    /// adjacency: mass shifted by one bucket costs 1, by ten buckets
    /// costs 10 — so "everything got 2x slower" reads as distance ~1.
    pub fn earth_movers_distance(&self, other: &Log2Histogram) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        // 1-D EMD: cumulative difference walk.
        let mut carried = 0.0;
        let mut emd = 0.0;
        for k in 0..BUCKETS {
            carried += self.fraction(k) - other.fraction(k);
            emd += carried.abs();
        }
        emd
    }

    /// Renders the histogram as ASCII art over buckets `[lo, hi)`,
    /// one row per bucket, matching the paper's Figure 3 orientation.
    pub fn render_ascii(&self, lo: usize, hi: usize, width: usize) -> String {
        let mut out = String::new();
        let peak = (lo..hi.min(BUCKETS))
            .map(|k| self.fraction(k))
            .fold(0.0f64, f64::max)
            .max(1e-12);
        for k in lo..hi.min(BUCKETS) {
            let frac = self.fraction(k);
            let bar = ((frac / peak) * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>2} {:>9} |{:<width$}| {:5.1}%\n",
                k,
                bucket_label(k),
                "#".repeat(bar),
                frac * 100.0,
                width = width
            ));
        }
        out
    }
}

/// Geometric midpoint latency of bucket `k`: `2^k * sqrt(2)` ns.
pub fn bucket_midpoint(k: usize) -> Nanos {
    let lo = 1u64 << k.min(62);
    Nanos::from_nanos((lo as f64 * std::f64::consts::SQRT_2) as u64)
}

/// Human-readable label for bucket `k`'s lower bound (e.g. "4us", "16ms").
pub fn bucket_label(k: usize) -> String {
    format!("{}", Nanos::from_nanos(1u64 << k.min(63)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_places_in_right_bucket() {
        let mut h = Log2Histogram::new();
        h.record(Nanos::from_nanos(1)); // bucket 0
        h.record(Nanos::from_nanos(2)); // bucket 1
        h.record(Nanos::from_nanos(1023)); // bucket 9
        h.record(Nanos::from_nanos(1024)); // bucket 10
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(10), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Log2Histogram::new();
        for i in 0..1000u64 {
            h.record(Nanos::from_nanos(i * 37 + 1));
        }
        let sum: f64 = (0..BUCKETS).map(|k| h.fraction(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mode_and_extremes() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.mode_bucket(), None);
        h.record_n(Nanos::from_nanos(4096), 80); // bucket 12
        h.record_n(Nanos::from_millis(8), 20); // bucket 22
        assert_eq!(h.mode_bucket(), Some(12));
        assert_eq!(h.min_bucket(), Some(12));
        assert_eq!(h.max_bucket(), Some(22));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record_n(Nanos::from_nanos(100), 5);
        b.record_n(Nanos::from_nanos(100), 7);
        b.record_n(Nanos::from_millis(1), 3);
        a.merge(&b);
        assert_eq!(a.total(), 15);
        assert_eq!(a.count(6), 12); // 100 ns is bucket 6
    }

    #[test]
    fn quantile_walks_cdf() {
        let mut h = Log2Histogram::new();
        h.record_n(Nanos::from_nanos(16), 50); // bucket 4
        h.record_n(Nanos::from_millis(16), 50); // bucket 23
        let p25 = h.quantile(0.25).unwrap();
        let p75 = h.quantile(0.75).unwrap();
        assert_eq!(p25.log2_bucket(), 4);
        assert_eq!(p75.log2_bucket(), 23);
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).is_some());
        assert_eq!(Log2Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn approx_mean_is_order_correct() {
        let mut h = Log2Histogram::new();
        h.record_n(Nanos::from_nanos(4096), 1000);
        let m = h.approx_mean().unwrap().as_nanos() as f64;
        assert!((m / 4096.0) > 0.9 && (m / 4096.0) < 1.5, "mean {m}");
    }

    #[test]
    fn span_matches_paper_claim() {
        // In-memory peak at ~4 us, disk peak at ~16 ms: > 3 orders.
        let mut h = Log2Histogram::new();
        h.record_n(Nanos::from_nanos(4096), 10);
        h.record_n(Nanos::from_millis(16), 10);
        assert!(h.span_orders_of_magnitude() >= 3.0);
    }

    #[test]
    fn ascii_render_has_rows() {
        let mut h = Log2Histogram::new();
        h.record_n(Nanos::from_nanos(4096), 10);
        let art = h.render_ascii(10, 14, 40);
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains('#'));
    }

    #[test]
    fn bucket_labels_are_readable() {
        assert_eq!(bucket_label(4), "16ns");
        assert_eq!(bucket_label(12), "4.096us");
        assert_eq!(bucket_label(24), "16.777ms");
    }

    #[test]
    fn tv_distance_properties() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record_n(Nanos::from_nanos(4096), 100);
        b.record_n(Nanos::from_nanos(4096), 50);
        // Same distribution, different counts: identical profiles.
        assert_eq!(a.total_variation_distance(&b), 0.0);
        // Disjoint profiles: distance 1.
        let mut c = Log2Histogram::new();
        c.record_n(Nanos::from_millis(8), 10);
        assert!((a.total_variation_distance(&c) - 1.0).abs() < 1e-12);
        // Symmetry.
        assert_eq!(
            a.total_variation_distance(&c),
            c.total_variation_distance(&a)
        );
        // Half-moved mass: distance 0.5.
        let mut d = Log2Histogram::new();
        d.record_n(Nanos::from_nanos(4096), 50);
        d.record_n(Nanos::from_millis(8), 50);
        assert!((a.total_variation_distance(&d) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn emd_respects_adjacency() {
        let mut base = Log2Histogram::new();
        base.record_n(Nanos::from_nanos(4096), 100); // bucket 12
        let mut near = Log2Histogram::new();
        near.record_n(Nanos::from_nanos(8192), 100); // bucket 13
        let mut far = Log2Histogram::new();
        far.record_n(Nanos::from_millis(8), 100); // bucket 22
        let d_near = base.earth_movers_distance(&near);
        let d_far = base.earth_movers_distance(&far);
        assert!(
            (d_near - 1.0).abs() < 1e-12,
            "adjacent shift should be 1: {d_near}"
        );
        assert!(
            (d_far - 10.0).abs() < 1e-12,
            "ten-bucket shift should be 10: {d_far}"
        );
        // TV distance cannot tell these apart; EMD can.
        assert_eq!(
            base.total_variation_distance(&near),
            base.total_variation_distance(&far)
        );
    }

    #[test]
    fn record_n_zero_is_noop_for_counts() {
        let mut h = Log2Histogram::new();
        h.record_n(Nanos::from_nanos(5), 0);
        assert_eq!(h.total(), 0);
        assert!(h.is_empty());
    }
}
