//! Throughput time series: windowed operation counting over virtual time.
//!
//! Figure 2 plots throughput every 10 seconds over a 20-minute run;
//! Figure 4 collects a latency histogram per window. [`WindowedSeries`]
//! is the accumulator behind both: operations are recorded with their
//! completion instant, and the series buckets them into fixed windows.

use crate::histogram::Log2Histogram;
use rb_simcore::time::Nanos;

/// One completed window of a throughput series.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Window start instant.
    pub start: Nanos,
    /// Operations completed within the window.
    pub ops: u64,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Latency histogram of the window's operations.
    pub histogram: Log2Histogram,
}

/// Accumulates per-operation completions into fixed-width windows.
///
/// # Examples
///
/// ```
/// use rb_stats::timeseries::WindowedSeries;
/// use rb_simcore::time::Nanos;
///
/// let mut s = WindowedSeries::new(Nanos::from_secs(10));
/// s.record(Nanos::from_secs(1), Nanos::from_micros(4));
/// s.record(Nanos::from_secs(12), Nanos::from_millis(8));
/// let windows = s.finish();
/// assert_eq!(windows.len(), 2);
/// assert_eq!(windows[0].ops, 1);
/// assert!((windows[0].ops_per_sec - 0.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    width: Nanos,
    current_index: u64,
    current_ops: u64,
    current_hist: Log2Histogram,
    done: Vec<Window>,
}

impl WindowedSeries {
    /// Creates a series with the given window width.
    ///
    /// A zero width is coerced to 1 ns to keep the series well-defined.
    pub fn new(width: Nanos) -> Self {
        let width = if width.is_zero() {
            Nanos::from_nanos(1)
        } else {
            width
        };
        WindowedSeries {
            width,
            current_index: 0,
            current_ops: 0,
            current_hist: Log2Histogram::new(),
            done: Vec::new(),
        }
    }

    /// Window width.
    pub fn width(&self) -> Nanos {
        self.width
    }

    /// Records an operation that completed at `when` with `latency`.
    ///
    /// Completions must be recorded in non-decreasing time order (the
    /// simulators guarantee this); an out-of-order completion is counted
    /// in the current window rather than resurrecting a closed one.
    pub fn record(&mut self, when: Nanos, latency: Nanos) {
        let idx = when.as_nanos() / self.width.as_nanos();
        while idx > self.current_index {
            self.flush_current();
        }
        self.current_ops += 1;
        self.current_hist.record(latency);
    }

    fn flush_current(&mut self) {
        let start = Nanos::from_nanos(self.current_index * self.width.as_nanos());
        let secs = self.width.as_secs_f64();
        let hist = std::mem::take(&mut self.current_hist);
        self.done.push(Window {
            start,
            ops: self.current_ops,
            ops_per_sec: self.current_ops as f64 / secs,
            histogram: hist,
        });
        self.current_ops = 0;
        self.current_index += 1;
    }

    /// Number of completed (flushed) windows so far.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// Finishes the series, flushing the in-progress window if non-empty.
    pub fn finish(mut self) -> Vec<Window> {
        if self.current_ops > 0 {
            self.flush_current();
        }
        self.done
    }

    /// Finishes and returns only `(seconds, ops_per_sec)` pairs — the
    /// Figure 2 data shape.
    pub fn finish_throughput(self) -> Vec<(f64, f64)> {
        self.finish()
            .into_iter()
            .map(|w| (w.start.as_secs_f64(), w.ops_per_sec))
            .collect()
    }
}

/// One timeline sample of a set of named gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugePoint {
    /// Sample instant (virtual time).
    pub at: Nanos,
    /// One value per gauge, in [`GaugeSeries::names`] order.
    pub values: Vec<f64>,
}

/// Windowed timeline of named gauge values over virtual time.
///
/// Unlike [`WindowedSeries`], which *counts* events per window, a gauge
/// series *samples* instantaneous values (hit ratio, device busy
/// fraction, queue depth) at most once per window. Callers poll
/// [`GaugeSeries::due`] on their hot path — a single comparison — and
/// only compute the gauge values when a window boundary has passed, so
/// the timeline costs nothing between samples.
///
/// # Examples
///
/// ```
/// use rb_stats::timeseries::GaugeSeries;
/// use rb_simcore::time::Nanos;
///
/// let mut g = GaugeSeries::new(Nanos::from_secs(1), &["hit_ratio"]);
/// assert!(g.due(Nanos::from_secs(1)));
/// g.sample(Nanos::from_secs(1), &[0.75]);
/// assert!(!g.due(Nanos::from_millis(1500)));
/// assert_eq!(g.points().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSeries {
    width: Nanos,
    next: Nanos,
    names: Vec<&'static str>,
    points: Vec<GaugePoint>,
}

impl GaugeSeries {
    /// Creates a gauge timeline sampling once per `width` window.
    ///
    /// A zero width is coerced to 1 ns to keep the series well-defined.
    pub fn new(width: Nanos, names: &[&'static str]) -> Self {
        let width = if width.is_zero() {
            Nanos::from_nanos(1)
        } else {
            width
        };
        GaugeSeries {
            width,
            next: width,
            names: names.to_vec(),
            points: Vec::new(),
        }
    }

    /// Gauge names, in the order `sample` expects values.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Returns true when the next window boundary has been reached and
    /// a sample should be taken.
    #[inline]
    pub fn due(&self, at: Nanos) -> bool {
        at >= self.next
    }

    /// Records one sample at `at`; advances the schedule past `at` so
    /// at most one sample lands per window even if completions cluster.
    ///
    /// Panics if `values` does not match the gauge count.
    pub fn sample(&mut self, at: Nanos, values: &[f64]) {
        assert_eq!(values.len(), self.names.len(), "gauge arity mismatch");
        self.points.push(GaugePoint {
            at,
            values: values.to_vec(),
        });
        while self.next <= at {
            self.next += self.width;
        }
    }

    /// The recorded timeline.
    pub fn points(&self) -> &[GaugePoint] {
        &self.points
    }
}

/// Mean throughput over the final `tail` windows of a series — the
/// "steady-state, last minute only" reporting style of Section 3.1,
/// exposed as an explicit, named choice.
pub fn tail_mean_ops_per_sec(windows: &[Window], tail: usize) -> Option<f64> {
    if windows.is_empty() || tail == 0 {
        return None;
    }
    let take = tail.min(windows.len());
    let slice = &windows[windows.len() - take..];
    Some(slice.iter().map(|w| w.ops_per_sec).sum::<f64>() / take as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_time() {
        let mut s = WindowedSeries::new(Nanos::from_secs(10));
        for sec in 0..35 {
            s.record(Nanos::from_secs(sec), Nanos::from_micros(5));
        }
        let w = s.finish();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].ops, 10);
        assert_eq!(w[1].ops, 10);
        assert_eq!(w[2].ops, 10);
        assert_eq!(w[3].ops, 5);
        assert_eq!(w[1].start, Nanos::from_secs(10));
    }

    #[test]
    fn empty_gap_windows_are_emitted() {
        let mut s = WindowedSeries::new(Nanos::from_secs(1));
        s.record(Nanos::from_secs(0), Nanos::from_micros(1));
        s.record(Nanos::from_secs(5), Nanos::from_micros(1));
        let w = s.finish();
        assert_eq!(w.len(), 6);
        assert_eq!(w[3].ops, 0);
        assert_eq!(w[3].ops_per_sec, 0.0);
    }

    #[test]
    fn ops_per_sec_math() {
        let mut s = WindowedSeries::new(Nanos::from_millis(500));
        for i in 0..100 {
            s.record(Nanos::from_millis(i * 4), Nanos::from_micros(1));
        }
        let w = s.finish();
        // All 100 ops land in the first 500 ms window: 100 / 0.5 s = 200/s.
        assert_eq!(w.len(), 1);
        assert!((w[0].ops_per_sec - 200.0).abs() < 1e-9);
    }

    #[test]
    fn histograms_attach_to_windows() {
        let mut s = WindowedSeries::new(Nanos::from_secs(10));
        // Disk-bound first window, memory-bound second: the Figure 4 shape.
        for i in 0..10 {
            s.record(Nanos::from_secs(i), Nanos::from_millis(8));
        }
        for i in 10..20 {
            s.record(Nanos::from_secs(i), Nanos::from_nanos(2048));
        }
        let w = s.finish();
        assert_eq!(w[0].histogram.mode_bucket(), Some(22));
        assert_eq!(w[1].histogram.mode_bucket(), Some(11));
    }

    #[test]
    fn finish_throughput_shape() {
        let mut s = WindowedSeries::new(Nanos::from_secs(10));
        s.record(Nanos::from_secs(3), Nanos::from_micros(1));
        s.record(Nanos::from_secs(13), Nanos::from_micros(1));
        let pts = s.finish_throughput();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[1].0, 10.0);
    }

    #[test]
    fn tail_mean_last_minute() {
        // 20 windows; last 6 (the "last minute" of 10 s windows) at 100/s.
        let mut windows = Vec::new();
        for i in 0..20 {
            let ops = if i < 14 { 10 } else { 1000 };
            windows.push(Window {
                start: Nanos::from_secs(i * 10),
                ops,
                ops_per_sec: ops as f64 / 10.0,
                histogram: Log2Histogram::new(),
            });
        }
        let m = tail_mean_ops_per_sec(&windows, 6).unwrap();
        assert!((m - 100.0).abs() < 1e-9);
        assert!(tail_mean_ops_per_sec(&[], 6).is_none());
        assert!(tail_mean_ops_per_sec(&windows, 0).is_none());
    }

    #[test]
    fn zero_width_is_coerced() {
        let s = WindowedSeries::new(Nanos::ZERO);
        assert_eq!(s.width(), Nanos::from_nanos(1));
    }

    #[test]
    fn gauge_series_samples_once_per_window() {
        let mut g = GaugeSeries::new(Nanos::from_secs(1), &["a", "b"]);
        assert!(!g.due(Nanos::from_millis(999)));
        assert!(g.due(Nanos::from_secs(1)));
        g.sample(Nanos::from_secs(1), &[0.5, 2.0]);
        // Same window: not due again.
        assert!(!g.due(Nanos::from_millis(1900)));
        // A late sample (clustered completions) skips intervening windows.
        assert!(g.due(Nanos::from_secs(5)));
        g.sample(Nanos::from_millis(5500), &[0.6, 3.0]);
        assert!(!g.due(Nanos::from_millis(5900)));
        assert!(g.due(Nanos::from_secs(6)));
        let pts = g.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].values, vec![0.5, 2.0]);
        assert_eq!(pts[1].at, Nanos::from_millis(5500));
        assert_eq!(g.names(), &["a", "b"]);
    }
}
