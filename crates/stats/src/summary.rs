//! Sample summaries: percentiles and multi-statistic reports.
//!
//! The paper's closing demand is to "report a range of values" rather than
//! a single number. [`Summary`] is the harness's standard answer: mean,
//! spread, extremes and a percentile ladder for any sample of repeated
//! measurements.

use crate::moments::Moments;

/// The error returned by the checked percentile forms on an empty
/// sample: there is no value to report, and silently answering `0.0`
/// (or `NaN`) poisons downstream aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptySample;

impl std::fmt::Display for EmptySample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("percentile of an empty sample")
    }
}

impl std::error::Error for EmptySample {}

/// Linear-interpolated percentile of a sample.
///
/// Uses the common "linear between closest ranks" definition (R-7, the
/// default of R and NumPy). The input need not be sorted. Returns `None`
/// on an empty sample; `q` is clamped to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rb_stats::summary::percentile;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 0.5), Some(2.5));
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(percentile(&xs, 1.0), Some(4.0));
/// ```
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(percentile_sorted(&sorted, q))
}

/// Percentile of an already sorted sample (ascending).
///
/// # Panics
///
/// Does not panic; an empty slice returns 0.0 (callers should prefer
/// [`percentile`] for the `Option` form).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let q = q.clamp(0.0, 1.0);
            let rank = q * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Checked percentile: like [`percentile`] but an empty sample is an
/// explicit [`EmptySample`] error instead of a silent sentinel, so it
/// composes with `?` in reporting pipelines. A single-element sample
/// returns that element at every `q` — `p999` of one observation is
/// that observation.
///
/// # Examples
///
/// ```
/// use rb_stats::summary::{try_percentile, EmptySample};
///
/// assert_eq!(try_percentile(&[7.25], 0.999), Ok(7.25));
/// assert_eq!(try_percentile(&[], 0.5), Err(EmptySample));
/// ```
pub fn try_percentile(xs: &[f64], q: f64) -> Result<f64, EmptySample> {
    percentile(xs, q).ok_or(EmptySample)
}

/// Checked percentile of an already sorted sample (ascending): the
/// `Result` form of [`percentile_sorted`].
pub fn try_percentile_sorted(sorted: &[f64], q: f64) -> Result<f64, EmptySample> {
    if sorted.is_empty() {
        Err(EmptySample)
    } else {
        Ok(percentile_sorted(sorted, q))
    }
}

/// A complete descriptive summary of one sample.
///
/// Produced by every rocketbench experiment for every reported metric;
/// renders as one row of a multi-run results table.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Relative standard deviation, percent of mean.
    pub rsd_percent: f64,
    /// 95 % confidence half-width of the mean.
    pub ci95: f64,
    /// Minimum observation.
    pub min: f64,
    /// Median (p50).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns `None` on an empty sample.
    pub fn from_sample(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let m = Moments::from_slice(xs);
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(Summary {
            n: m.count(),
            mean: m.mean(),
            sd: m.sample_sd(),
            rsd_percent: m.rsd_percent(),
            ci95: m.ci95_half_width(),
            min: m.min(),
            median: percentile_sorted(&sorted, 0.5),
            p90: percentile_sorted(&sorted, 0.9),
            p99: percentile_sorted(&sorted, 0.99),
            max: m.max(),
        })
    }

    /// Ratio of max to min observation — a quick fragility indicator.
    ///
    /// Section 3.1 shows the same nominal configuration spanning "orders
    /// of magnitude"; a spread ≫ 1 flags exactly that.
    pub fn spread(&self) -> f64 {
        if self.min.abs() < f64::EPSILON {
            f64::INFINITY
        } else {
            self.max / self.min
        }
    }

    /// One-line rendering: `mean ± sd (rsd%) [min..max]`.
    pub fn render(&self) -> String {
        format!(
            "{:.1} ± {:.1} ({:.1}%) [{:.1}..{:.1}] n={}",
            self.mean, self.sd, self.rsd_percent, self.min, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_single() {
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 1.0), Some(7.0));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.5), Some(30.0));
        assert_eq!(percentile(&xs, 0.25), Some(20.0));
        // Between ranks: 0.1 * 4 = rank 0.4 -> 10 + 0.4*10 = 14.
        assert!((percentile(&xs, 0.1).unwrap() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [50.0, 10.0, 40.0, 20.0, 30.0];
        assert_eq!(percentile(&xs, 0.5), Some(30.0));
    }

    #[test]
    fn try_percentile_empty_is_an_error() {
        assert_eq!(try_percentile(&[], 0.5), Err(EmptySample));
        assert_eq!(try_percentile_sorted(&[], 0.99), Err(EmptySample));
        assert_eq!(EmptySample.to_string(), "percentile of an empty sample");
    }

    #[test]
    fn single_sample_p999_is_that_sample() {
        assert_eq!(try_percentile(&[7.25], 0.999), Ok(7.25));
        assert_eq!(try_percentile_sorted(&[7.25], 0.999), Ok(7.25));
        assert_eq!(percentile(&[7.25], 0.999), Some(7.25));
    }

    #[test]
    fn percentile_clamps_q() {
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, -3.0), Some(1.0));
        assert_eq!(percentile(&xs, 9.0), Some(2.0));
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_sample(&xs).unwrap();
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!(s.p90 > s.median && s.p99 > s.p90 && s.max >= s.p99);
        assert!(s.spread() == 100.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::from_sample(&[]).is_none());
    }

    #[test]
    fn render_contains_key_numbers() {
        let s = Summary::from_sample(&[9.0, 10.0, 11.0]).unwrap();
        let line = s.render();
        assert!(line.contains("10.0"));
        assert!(line.contains("n=3"));
    }

    #[test]
    fn spread_with_zero_min() {
        let s = Summary::from_sample(&[0.0, 5.0]).unwrap();
        assert!(s.spread().is_infinite());
    }
}
