//! Flash SSD model: channel-parallel page reads, programs and amortized
//! garbage collection.
//!
//! The paper predicts that "more modern file systems rely on multiple
//! cache levels (using Flash memory or network)", producing latency
//! curves with *multiple distinctive steps*. The SSD model supplies the
//! middle step (~100 µs) between DRAM (~µs) and disk (~ms) so the harness
//! can reproduce multi-tier behaviour.

use crate::device::{BlockDevice, DeviceStats, IoKind, IoRequest};
use rb_simcore::time::Nanos;
use rb_simcore::units::Bytes;

/// Configuration of the SSD model.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Device capacity in blocks (one block = one flash page here).
    pub capacity_blocks: u64,
    /// Block (flash page) size.
    pub block_size: Bytes,
    /// Flash page read latency.
    pub read_page: Nanos,
    /// Flash page program latency.
    pub program_page: Nanos,
    /// Flash block erase latency.
    pub erase_block: Nanos,
    /// Pages per flash erase block.
    pub pages_per_erase_block: u64,
    /// Independent channels that can transfer in parallel.
    pub channels: u64,
    /// Fixed controller overhead per request.
    pub controller_overhead: Nanos,
    /// Write amplification factor (extra GC work per user write), ≥ 1.
    pub write_amplification: f64,
}

impl SsdConfig {
    /// A SATA-era consumer SSD: 60 µs reads, 250 µs programs, 8 channels.
    pub fn consumer_sata() -> Self {
        SsdConfig {
            capacity_blocks: Bytes::gib(64).as_u64() / Bytes::kib(4).as_u64(),
            block_size: Bytes::kib(4),
            read_page: Nanos::from_micros(60),
            program_page: Nanos::from_micros(250),
            erase_block: Nanos::from_millis(2),
            pages_per_erase_block: 64,
            channels: 8,
            controller_overhead: Nanos::from_micros(20),
            write_amplification: 1.5,
        }
    }
}

/// A simulated flash SSD.
///
/// # Examples
///
/// ```
/// use rb_simdisk::device::{BlockDevice, IoRequest};
/// use rb_simdisk::ssd::{Ssd, SsdConfig};
/// use rb_simcore::time::Nanos;
///
/// let mut ssd = Ssd::new(SsdConfig::consumer_sata());
/// let lat = ssd.service(&IoRequest::read(12345, 2), Nanos::ZERO);
/// // Flash reads land in the ~100 us regime: slower than DRAM,
/// // far faster than a disk seek.
/// assert!(lat.as_micros() >= 50 && lat.as_micros() < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Ssd {
    config: SsdConfig,
    pages_written: u64,
    gc_debt: f64,
    stats: DeviceStats,
}

impl Ssd {
    /// Creates an SSD in the fresh (fully trimmed) state.
    pub fn new(config: SsdConfig) -> Self {
        Ssd {
            config,
            pages_written: 0,
            gc_debt: 0.0,
            stats: DeviceStats::default(),
        }
    }

    /// The configuration this SSD was built with.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Total pages programmed so far (wear proxy).
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// Latency for `pages` flash operations of unit cost `per_page`,
    /// striped across channels.
    fn striped(&self, pages: u64, per_page: Nanos) -> Nanos {
        let waves = pages.div_ceil(self.config.channels.max(1));
        per_page * waves
    }
}

impl BlockDevice for Ssd {
    fn service(&mut self, req: &IoRequest, _now: Nanos) -> Nanos {
        let mut latency = self.config.controller_overhead;
        match req.kind {
            IoKind::Read => {
                latency += self.striped(req.count, self.config.read_page);
            }
            IoKind::Write => {
                latency += self.striped(req.count, self.config.program_page);
                self.pages_written += req.count;
                // Accumulate amortized GC: (WA - 1) extra page programs per
                // user page, plus an erase every pages_per_erase_block user
                // pages. Charged to the requests that cross the threshold,
                // modelling the bursty stalls real drives exhibit.
                self.gc_debt += (self.config.write_amplification - 1.0).max(0.0) * req.count as f64;
                while self.gc_debt >= self.config.pages_per_erase_block as f64 {
                    self.gc_debt -= self.config.pages_per_erase_block as f64;
                    latency += self.config.erase_block;
                    latency +=
                        self.striped(self.config.pages_per_erase_block, self.config.program_page);
                }
            }
        }
        self.stats.record(req, latency);
        latency
    }

    fn capacity_blocks(&self) -> u64 {
        self.config.capacity_blocks
    }

    fn block_size(&self) -> Bytes {
        self.config.block_size
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn model_name(&self) -> &str {
        "ssd-sata"
    }
}

/// A DRAM-backed block device: constant microsecond-scale access.
///
/// Useful both as the fastest tier in multi-level experiments and as the
/// control device that isolates file-system CPU costs from media costs.
#[derive(Debug, Clone)]
pub struct RamDisk {
    capacity_blocks: u64,
    block_size: Bytes,
    per_block: Nanos,
    overhead: Nanos,
    stats: DeviceStats,
}

impl RamDisk {
    /// Creates a RAM disk.
    ///
    /// `per_block` is the copy cost per block (e.g. ~2 µs per 4 KiB at
    /// ~2 GiB/s); `overhead` is the fixed per-request cost.
    pub fn new(capacity_blocks: u64, block_size: Bytes, per_block: Nanos, overhead: Nanos) -> Self {
        RamDisk {
            capacity_blocks,
            block_size,
            per_block,
            overhead,
            stats: DeviceStats::default(),
        }
    }

    /// A 1 GiB RAM disk with DRAM-ish timing.
    pub fn default_1gib() -> Self {
        RamDisk::new(
            Bytes::gib(1).as_u64() / Bytes::kib(4).as_u64(),
            Bytes::kib(4),
            Nanos::from_micros(2),
            Nanos::from_nanos(500),
        )
    }
}

impl BlockDevice for RamDisk {
    fn service(&mut self, req: &IoRequest, _now: Nanos) -> Nanos {
        let latency = self.overhead + self.per_block * req.count;
        self.stats.record(req, latency);
        latency
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn block_size(&self) -> Bytes {
        self.block_size
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn model_name(&self) -> &str {
        "ramdisk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_scale_with_channel_waves() {
        let mut ssd = Ssd::new(SsdConfig::consumer_sata());
        let one = ssd.service(&IoRequest::read(0, 1), Nanos::ZERO);
        let eight = ssd.service(&IoRequest::read(0, 8), Nanos::ZERO);
        let nine = ssd.service(&IoRequest::read(0, 9), Nanos::ZERO);
        // 8 pages fill one wave on 8 channels: same latency as 1 page.
        assert_eq!(one, eight);
        // The 9th page starts a second wave.
        assert!(nine > eight);
    }

    #[test]
    fn writes_slower_than_reads() {
        let mut ssd = Ssd::new(SsdConfig::consumer_sata());
        let r = ssd.service(&IoRequest::read(0, 4), Nanos::ZERO);
        let w = ssd.service(&IoRequest::write(0, 4), Nanos::ZERO);
        assert!(w > r);
    }

    #[test]
    fn gc_charges_periodic_stalls() {
        let mut ssd = Ssd::new(SsdConfig::consumer_sata());
        let mut latencies = Vec::new();
        for i in 0..300 {
            latencies.push(ssd.service(&IoRequest::write(i, 1), Nanos::ZERO));
        }
        let max = latencies.iter().max().unwrap();
        let min = latencies.iter().min().unwrap();
        // Some writes absorb an erase stall; most do not.
        assert!(max.as_nanos() > min.as_nanos() * 3, "max {max} min {min}");
        let stalls = latencies.iter().filter(|l| **l > *min * 3).count();
        assert!((1..60).contains(&stalls), "stalls {stalls}");
    }

    #[test]
    fn sits_between_ram_and_disk() {
        let mut ssd = Ssd::new(SsdConfig::consumer_sata());
        let mut ram = RamDisk::default_1gib();
        let req = IoRequest::read(1000, 2);
        let ssd_lat = ssd.service(&req, Nanos::ZERO);
        let ram_lat = ram.service(&req, Nanos::ZERO);
        assert!(ram_lat < ssd_lat);
        assert!(ssd_lat < Nanos::from_millis(2));
    }

    #[test]
    fn ramdisk_is_constant_time() {
        let mut ram = RamDisk::default_1gib();
        let a = ram.service(&IoRequest::read(0, 2), Nanos::ZERO);
        let b = ram.service(&IoRequest::read(ram.capacity_blocks() - 2, 2), Nanos::ZERO);
        assert_eq!(a, b);
    }

    #[test]
    fn wear_counter_advances() {
        let mut ssd = Ssd::new(SsdConfig::consumer_sata());
        ssd.service(&IoRequest::write(0, 16), Nanos::ZERO);
        assert_eq!(ssd.pages_written(), 16);
        ssd.service(&IoRequest::read(0, 16), Nanos::ZERO);
        assert_eq!(ssd.pages_written(), 16);
    }
}
