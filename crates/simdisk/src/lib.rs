//! # rb-simdisk — simulated block devices
//!
//! Deterministic models of the storage media under a file system: a
//! mechanical HDD (seek curve, rotational position, zoned bit recording,
//! track buffer, write cache) calibrated to the paper's Maxtor 7L250S0
//! testbed drive, a channel-parallel flash SSD, a DRAM disk, and the
//! classic single-queue I/O schedulers.
//!
//! The paper's case study needs exactly one property from this layer: a
//! *huge, variable* gap between media access (~8–16 ms) and memory access
//! (~4 µs). Everything else — the cliff, the fragile transition region,
//! the bimodal histograms — follows from that gap plus cache dynamics.
//!
//! ## Example
//!
//! ```
//! use rb_simdisk::prelude::*;
//! use rb_simcore::time::Nanos;
//!
//! let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
//! let lat = disk.service(&IoRequest::read(1_000_000, 2), Nanos::ZERO);
//! assert!(lat.as_millis() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod geometry;
pub mod hdd;
pub mod sched;
pub mod ssd;
pub mod tiered;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::device::{BlockDevice, DeviceStats, IoKind, IoRequest};
    pub use crate::geometry::{Chs, Geometry, Zone};
    pub use crate::hdd::{Hdd, HddConfig};
    pub use crate::sched::{Completion, IoQueue, Pending, SchedPolicy};
    pub use crate::ssd::{RamDisk, Ssd, SsdConfig};
    pub use crate::tiered::{TierConfig, TieredDevice};
}
