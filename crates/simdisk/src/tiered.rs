//! Tiered device: a flash read cache in front of a mechanical disk.
//!
//! The paper predicts: "More modern file systems rely on multiple cache
//! levels (using Flash memory or network). In this case the performance
//! curve will have multiple distinctive steps." This device realizes
//! that scenario — DRAM (the page cache above), flash (this tier), disk
//! — so the harness can demonstrate tri-modal latency histograms and
//! multi-step working-set curves.

use crate::device::{BlockDevice, DeviceStats, IoKind, IoRequest};
use rb_simcore::fnv::FnvHashMap;
use rb_simcore::time::Nanos;
use rb_simcore::units::{BlockNo, Bytes};
use std::collections::BTreeMap;

/// Configuration for the flash tier.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Flash-tier capacity in blocks.
    pub cache_blocks: u64,
    /// Whether a miss promotes the blocks into the flash tier
    /// (read-allocate), paying the flash program cost lazily.
    pub promote_on_read: bool,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            cache_blocks: Bytes::gib(1).as_u64() / Bytes::kib(4).as_u64(),
            promote_on_read: true,
        }
    }
}

/// A two-tier block device: `fast` (e.g. SSD) caching `slow` (e.g. HDD).
///
/// Block residency in the fast tier is tracked exactly with LRU
/// replacement. Reads hitting the tier are serviced by the fast device;
/// misses go to the slow device and (optionally) promote. Writes go to
/// both the slow device path and invalidate/refresh the tier
/// (write-through).
///
/// # Examples
///
/// ```
/// use rb_simdisk::prelude::*;
/// use rb_simdisk::tiered::{TierConfig, TieredDevice};
/// use rb_simcore::time::Nanos;
///
/// let mut dev = TieredDevice::new(
///     Box::new(Ssd::new(SsdConfig::consumer_sata())),
///     Box::new(Hdd::new(HddConfig::maxtor_7l250s0_like())),
///     TierConfig::default(),
/// );
/// let cold = dev.service(&IoRequest::read(123_456, 2), Nanos::ZERO);
/// let warm = dev.service(&IoRequest::read(123_456, 2), cold);
/// assert!(warm < cold, "flash hit must beat the disk");
/// ```
pub struct TieredDevice {
    fast: Box<dyn BlockDevice>,
    slow: Box<dyn BlockDevice>,
    config: TierConfig,
    /// LRU residency: block -> stamp, plus the stamp index.
    stamp_of: FnvHashMap<BlockNo, u64>,
    by_stamp: BTreeMap<u64, BlockNo>,
    next_stamp: u64,
    stats: DeviceStats,
    /// Tier-level accounting.
    tier_hits: u64,
    tier_misses: u64,
}

impl TieredDevice {
    /// Builds a tiered device.
    pub fn new(fast: Box<dyn BlockDevice>, slow: Box<dyn BlockDevice>, config: TierConfig) -> Self {
        TieredDevice {
            fast,
            slow,
            config,
            stamp_of: FnvHashMap::default(),
            by_stamp: BTreeMap::new(),
            next_stamp: 0,
            stats: DeviceStats::default(),
            tier_hits: 0,
            tier_misses: 0,
        }
    }

    /// Fraction of block accesses served by the fast tier.
    pub fn tier_hit_ratio(&self) -> f64 {
        let total = self.tier_hits + self.tier_misses;
        if total == 0 {
            0.0
        } else {
            self.tier_hits as f64 / total as f64
        }
    }

    /// Blocks currently resident in the fast tier.
    pub fn tier_resident(&self) -> u64 {
        self.stamp_of.len() as u64
    }

    fn touch(&mut self, block: BlockNo) {
        if let Some(old) = self.stamp_of.get(&block).copied() {
            self.by_stamp.remove(&old);
        }
        let s = self.next_stamp;
        self.next_stamp += 1;
        self.stamp_of.insert(block, s);
        self.by_stamp.insert(s, block);
        while self.stamp_of.len() as u64 > self.config.cache_blocks {
            let (&stamp, &victim) = self.by_stamp.iter().next().expect("non-empty");
            self.by_stamp.remove(&stamp);
            self.stamp_of.remove(&victim);
        }
    }

    fn resident(&self, block: BlockNo) -> bool {
        self.stamp_of.contains_key(&block)
    }
}

impl BlockDevice for TieredDevice {
    fn service(&mut self, req: &IoRequest, now: Nanos) -> Nanos {
        let mut latency = Nanos::ZERO;
        match req.kind {
            IoKind::Read => {
                // Split the request into tier-resident and missing spans.
                let mut b = req.block;
                let end = req.end();
                while b < end {
                    let hit = self.resident(b);
                    let mut run = 1;
                    while b + run < end && self.resident(b + run) == hit {
                        run += 1;
                    }
                    let part = IoRequest::read(b, run);
                    if hit {
                        self.tier_hits += run;
                        latency += self.fast.service(&part, now + latency);
                        for blk in b..b + run {
                            self.touch(blk);
                        }
                    } else {
                        self.tier_misses += run;
                        latency += self.slow.service(&part, now + latency);
                        if self.config.promote_on_read {
                            // Promotion happens in the background on real
                            // systems; charge only residency here.
                            for blk in b..b + run {
                                self.touch(blk);
                            }
                        }
                    }
                    b += run;
                }
            }
            IoKind::Write => {
                // Write-through: slow tier is authoritative; refresh the
                // fast copy for resident blocks.
                latency += self.slow.service(req, now);
                let resident_blocks: Vec<BlockNo> = (req.block..req.end())
                    .filter(|&b| self.resident(b))
                    .collect();
                if !resident_blocks.is_empty() {
                    latency += self.fast.service(
                        &IoRequest::write(req.block, resident_blocks.len() as u64),
                        now + latency,
                    );
                    for b in resident_blocks {
                        self.touch(b);
                    }
                }
            }
        }
        self.stats.record(req, latency);
        latency
    }

    fn capacity_blocks(&self) -> u64 {
        self.slow.capacity_blocks()
    }

    fn block_size(&self) -> Bytes {
        self.slow.block_size()
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn model_name(&self) -> &str {
        "tiered-flash-hdd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdd::{Hdd, HddConfig};
    use crate::ssd::{Ssd, SsdConfig};

    fn dev(cache_blocks: u64) -> TieredDevice {
        TieredDevice::new(
            Box::new(Ssd::new(SsdConfig::consumer_sata())),
            Box::new(Hdd::new(HddConfig::maxtor_7l250s0_like())),
            TierConfig {
                cache_blocks,
                promote_on_read: true,
            },
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut d = dev(1024);
        let cold = d.service(&IoRequest::read(500_000, 2), Nanos::ZERO);
        let warm = d.service(&IoRequest::read(500_000, 2), cold);
        assert!(cold.as_millis() >= 1, "cold read should hit the disk");
        assert!(
            warm.as_micros() < 1_000,
            "warm read should hit flash: {warm}"
        );
        assert_eq!(d.tier_resident(), 2);
        assert!(d.tier_hit_ratio() > 0.4);
    }

    #[test]
    fn tier_capacity_respected() {
        let mut d = dev(16);
        for i in 0..100 {
            d.service(&IoRequest::read(i * 10, 2), Nanos::ZERO);
        }
        assert!(d.tier_resident() <= 16);
    }

    #[test]
    fn lru_keeps_recent_blocks() {
        let mut d = dev(4);
        d.service(&IoRequest::read(0, 2), Nanos::ZERO); // blocks 0,1
        d.service(&IoRequest::read(10, 2), Nanos::ZERO); // blocks 10,11
                                                         // Touch 0,1 again so 10,11 are the LRU victims.
        d.service(&IoRequest::read(0, 2), Nanos::ZERO);
        d.service(&IoRequest::read(20, 2), Nanos::ZERO); // evicts 10,11
        let hit = d.service(&IoRequest::read(0, 2), Nanos::ZERO);
        let miss = d.service(&IoRequest::read(10, 2), Nanos::ZERO);
        assert!(hit < miss, "hit {hit} vs miss {miss}");
    }

    #[test]
    fn three_latency_tiers_visible() {
        // DRAM would sit above; here we check flash and disk separate.
        let mut d = dev(65_536);
        let mut rng = rb_simcore::rng::Rng::new(1);
        let mut hist = rb_stats::histogram::Log2Histogram::new();
        let mut now = Nanos::ZERO;
        // Warm a hot region into the flash tier.
        for b in (0..1_000u64).step_by(2) {
            now += d.service(&IoRequest::read(b, 2), now);
        }
        // Measure: half hot (flash), half cold (disk).
        for _ in 0..300 {
            let hot = rng.chance(0.5);
            let block = if hot {
                rng.below(499) * 2
            } else {
                1_000_000 + rng.below(10_000_000)
            };
            let lat = d.service(&IoRequest::read(block, 2), now);
            now += lat;
            hist.record(lat);
        }
        // Flash peak (~100 us) and disk peak (~4-16 ms) both present.
        let flash_mass: f64 = (14..20).map(|k| hist.fraction(k)).sum();
        let disk_mass: f64 = (20..27).map(|k| hist.fraction(k)).sum();
        assert!(flash_mass > 0.3, "flash peak missing: {flash_mass}");
        assert!(disk_mass > 0.3, "disk peak missing: {disk_mass}");
    }

    #[test]
    fn writes_are_write_through() {
        let mut d = dev(1024);
        d.service(&IoRequest::read(100, 4), Nanos::ZERO); // promote
        let w = d.service(&IoRequest::write(100, 4), Nanos::ZERO);
        // Write-through with cache update costs at least the slow path.
        assert!(w.as_micros() >= 100);
        // Blocks stay resident and fresh.
        let hit = d.service(&IoRequest::read(100, 4), Nanos::ZERO);
        assert!(hit.as_micros() < 1_000);
    }

    #[test]
    fn no_promote_mode_stays_cold() {
        let mut d = TieredDevice::new(
            Box::new(Ssd::new(SsdConfig::consumer_sata())),
            Box::new(Hdd::new(HddConfig::maxtor_7l250s0_like())),
            TierConfig {
                cache_blocks: 1024,
                promote_on_read: false,
            },
        );
        let a = d.service(&IoRequest::read(500, 2), Nanos::ZERO);
        // The HDD's own track buffer may serve the re-read quickly, but
        // the flash tier must stay empty and unconsulted.
        let _ = d.service(&IoRequest::read(500, 2), a);
        assert_eq!(d.tier_resident(), 0);
        assert_eq!(d.tier_hit_ratio(), 0.0);
    }
}
