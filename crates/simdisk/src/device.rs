//! The block-device abstraction every disk model implements.
//!
//! Devices are *latency oracles with state*: a request is presented
//! together with the current virtual instant, and the device returns how
//! long servicing it takes, updating its internal mechanical/electronic
//! state (head position, buffer contents) as a side effect. The caller —
//! page cache, file system or harness — owns the clock and advances it.

use rb_simcore::error::SimResult;
use rb_simcore::time::Nanos;
use rb_simcore::units::{BlockNo, Bytes};
use rb_stats::histogram::Log2Histogram;

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Read blocks from the device.
    Read,
    /// Write blocks to the device.
    Write,
}

/// A contiguous block-level I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Read or write.
    pub kind: IoKind,
    /// First device block.
    pub block: BlockNo,
    /// Number of contiguous blocks.
    pub count: u64,
}

impl IoRequest {
    /// Convenience constructor for a read.
    pub fn read(block: BlockNo, count: u64) -> Self {
        IoRequest {
            kind: IoKind::Read,
            block,
            count,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(block: BlockNo, count: u64) -> Self {
        IoRequest {
            kind: IoKind::Write,
            block,
            count,
        }
    }

    /// Exclusive end block of the request.
    pub fn end(&self) -> BlockNo {
        self.block + self.count
    }
}

/// Cumulative per-device accounting.
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Blocks transferred by reads.
    pub blocks_read: u64,
    /// Blocks transferred by writes.
    pub blocks_written: u64,
    /// Total time the device spent servicing requests.
    pub busy: Nanos,
    /// Requests that required a head seek (non-zero cylinder move).
    pub seeks: u64,
    /// Cylinders traversed, summed over all seeking requests.
    pub seek_distance: u64,
    /// Latency histogram over all requests.
    pub latency: Log2Histogram,
}

impl DeviceStats {
    /// Records one serviced request.
    pub fn record(&mut self, req: &IoRequest, latency: Nanos) {
        match req.kind {
            IoKind::Read => {
                self.reads += 1;
                self.blocks_read += req.count;
            }
            IoKind::Write => {
                self.writes += 1;
                self.blocks_written += req.count;
            }
        }
        self.busy += latency;
        self.latency.record(latency);
    }

    /// Total requests serviced.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean service latency, if any requests completed.
    pub fn mean_latency(&self) -> Option<Nanos> {
        if self.requests() == 0 {
            None
        } else {
            Some(self.busy / self.requests())
        }
    }
}

/// A simulated block device.
///
/// Implementations must be deterministic: the same request sequence with
/// the same timestamps and seeds yields the same latencies.
pub trait BlockDevice {
    /// Services `req`, which is presented at virtual instant `now`.
    ///
    /// Returns the request's service latency. Implementations update
    /// internal state (head position, caches, statistics) as if the
    /// request completed at `now + latency`.
    fn service(&mut self, req: &IoRequest, now: Nanos) -> Nanos;

    /// Fallible variant of [`BlockDevice::service`].
    ///
    /// Plain devices never fail, so the default simply wraps
    /// [`BlockDevice::service`]; fault-injecting wrappers override this
    /// to surface `SimError::Io` and latency degradation while leaving
    /// every healthy call path byte-identical.
    fn service_checked(&mut self, req: &IoRequest, now: Nanos) -> SimResult<Nanos> {
        Ok(self.service(req, now))
    }

    /// Device capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Device block size.
    fn block_size(&self) -> Bytes;

    /// Read-only view of cumulative statistics.
    fn stats(&self) -> &DeviceStats;

    /// A short human-readable model name, e.g. `"hdd-7200"`.
    fn model_name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors() {
        let r = IoRequest::read(10, 4);
        assert_eq!(r.kind, IoKind::Read);
        assert_eq!(r.end(), 14);
        let w = IoRequest::write(0, 1);
        assert_eq!(w.kind, IoKind::Write);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = DeviceStats::default();
        assert_eq!(s.mean_latency(), None);
        s.record(&IoRequest::read(0, 8), Nanos::from_millis(8));
        s.record(&IoRequest::write(8, 2), Nanos::from_millis(2));
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.blocks_read, 8);
        assert_eq!(s.blocks_written, 2);
        assert_eq!(s.requests(), 2);
        assert_eq!(s.mean_latency(), Some(Nanos::from_millis(5)));
        assert_eq!(s.latency.total(), 2);
    }
}
