//! Disk geometry: cylinders, surfaces and zoned bit recording.
//!
//! Modern drives pack more sectors onto outer tracks (zoned bit
//! recording), so sequential transfer rate falls from the outside of the
//! platter inward — a first-order effect any *on-disk layout* benchmark
//! (the paper's second dimension) must model: where a file system places
//! blocks changes both seek distance and transfer speed.

use rb_simcore::units::{BlockNo, Bytes};

/// One recording zone: a run of cylinders sharing a sectors-per-track
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone {
    /// First cylinder of the zone.
    pub start_cylinder: u64,
    /// Sectors on each track within the zone.
    pub sectors_per_track: u64,
}

/// Physical location of a block: cylinder, head (surface) and sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chs {
    /// Cylinder (radial position).
    pub cylinder: u64,
    /// Head / surface index.
    pub head: u64,
    /// Sector within the track.
    pub sector: u64,
    /// Sectors per track at this cylinder (zone-dependent).
    pub sectors_per_track: u64,
}

/// Zoned disk geometry mapping linear block addresses to physical
/// positions.
///
/// Blocks are laid out cylinder-major: all sectors of cylinder 0 (across
/// all heads), then cylinder 1, and so on — matching how real drives
/// number LBAs so that sequential LBA access is sequential on the media.
///
/// # Examples
///
/// ```
/// use rb_simdisk::geometry::Geometry;
///
/// let g = Geometry::maxtor_7l250s0_like();
/// let last = g.capacity_blocks() - 1;
/// let chs = g.locate(last);
/// assert_eq!(chs.cylinder, g.cylinders() - 1);
/// // Outer tracks hold more sectors than inner ones.
/// assert!(g.locate(0).sectors_per_track > chs.sectors_per_track);
/// ```
#[derive(Debug, Clone)]
pub struct Geometry {
    heads: u64,
    block_size: Bytes,
    zones: Vec<Zone>,
    cylinders: u64,
    /// Cumulative block index at the start of each zone.
    zone_block_start: Vec<u64>,
    capacity_blocks: u64,
}

impl Geometry {
    /// Builds a geometry from explicit zones.
    ///
    /// `zones` must be non-empty with strictly increasing
    /// `start_cylinder`, beginning at 0. `cylinders` is the total
    /// cylinder count. Invalid input falls back to a single-zone geometry
    /// to keep construction infallible for configuration code; validation
    /// helpers live in the file-system layer where user input arrives.
    pub fn new(heads: u64, cylinders: u64, block_size: Bytes, zones: Vec<Zone>) -> Self {
        let heads = heads.max(1);
        let cylinders = cylinders.max(1);
        let zones = if zones.is_empty()
            || zones[0].start_cylinder != 0
            || zones
                .windows(2)
                .any(|w| w[1].start_cylinder <= w[0].start_cylinder)
            || zones
                .iter()
                .any(|z| z.sectors_per_track == 0 || z.start_cylinder >= cylinders)
        {
            vec![Zone {
                start_cylinder: 0,
                sectors_per_track: 800,
            }]
        } else {
            zones
        };
        let mut zone_block_start = Vec::with_capacity(zones.len());
        let mut acc = 0u64;
        for (i, z) in zones.iter().enumerate() {
            zone_block_start.push(acc);
            let end_cyl = zones.get(i + 1).map_or(cylinders, |n| n.start_cylinder);
            acc += (end_cyl - z.start_cylinder) * heads * z.sectors_per_track;
        }
        Geometry {
            heads,
            block_size,
            zones,
            cylinders,
            zone_block_start,
            capacity_blocks: acc,
        }
    }

    /// A geometry calibrated to the paper's testbed drive class
    /// (Maxtor 7L250S0: 250 GB, 7200 RPM, 3.5"), with 4 KiB blocks.
    ///
    /// 16 zones from 200 down to 110 4-KiB blocks per track across 60 k
    /// cylinders and 6 surfaces give ~230 GB and a ~1.8:1 outer/inner
    /// transfer-rate ratio.
    pub fn maxtor_7l250s0_like() -> Self {
        let cylinders = 60_000;
        let zones: Vec<Zone> = (0..16)
            .map(|i| Zone {
                start_cylinder: i * (cylinders / 16),
                sectors_per_track: 200 - i * 6,
            })
            .collect();
        Geometry::new(6, cylinders, Bytes::kib(4), zones)
    }

    /// A tiny geometry for tests: 2 heads, 100 cylinders, 2 zones.
    pub fn tiny_for_tests() -> Self {
        Geometry::new(
            2,
            100,
            Bytes::kib(4),
            vec![
                Zone {
                    start_cylinder: 0,
                    sectors_per_track: 20,
                },
                Zone {
                    start_cylinder: 50,
                    sectors_per_track: 10,
                },
            ],
        )
    }

    /// Total capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> Bytes {
        self.block_size * self.capacity_blocks
    }

    /// Device block size.
    pub fn block_size(&self) -> Bytes {
        self.block_size
    }

    /// Number of cylinders.
    pub fn cylinders(&self) -> u64 {
        self.cylinders
    }

    /// Number of heads (surfaces).
    pub fn heads(&self) -> u64 {
        self.heads
    }

    /// The zone table.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Maps a block address to its physical position.
    ///
    /// Addresses past the end clamp to the final block, so geometry code
    /// never panics on a stray address; bounds are enforced at the device
    /// layer where an error can be reported.
    pub fn locate(&self, block: BlockNo) -> Chs {
        let block = block.min(self.capacity_blocks.saturating_sub(1));
        // Find the zone via the cumulative starts.
        let zi = match self.zone_block_start.binary_search(&block) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let z = self.zones[zi];
        let rel = block - self.zone_block_start[zi];
        let blocks_per_cyl = self.heads * z.sectors_per_track;
        let cylinder = z.start_cylinder + rel / blocks_per_cyl;
        let within = rel % blocks_per_cyl;
        Chs {
            cylinder,
            head: within / z.sectors_per_track,
            sector: within % z.sectors_per_track,
            sectors_per_track: z.sectors_per_track,
        }
    }

    /// Sectors per track at the given cylinder.
    pub fn sectors_at_cylinder(&self, cylinder: u64) -> u64 {
        let cylinder = cylinder.min(self.cylinders - 1);
        let zi = self
            .zones
            .iter()
            .rposition(|z| z.start_cylinder <= cylinder)
            .unwrap_or(0);
        self.zones[zi].sectors_per_track
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_geometry_capacity() {
        let g = Geometry::tiny_for_tests();
        // 50 cyl * 2 heads * 20 + 50 cyl * 2 heads * 10 = 2000 + 1000.
        assert_eq!(g.capacity_blocks(), 3000);
        assert_eq!(g.capacity_bytes(), Bytes::kib(4) * 3000);
    }

    #[test]
    fn locate_walks_cylinder_major() {
        let g = Geometry::tiny_for_tests();
        let c0 = g.locate(0);
        assert_eq!((c0.cylinder, c0.head, c0.sector), (0, 0, 0));
        // Block 20 is the first sector of head 1, cylinder 0.
        let c = g.locate(20);
        assert_eq!((c.cylinder, c.head, c.sector), (0, 1, 0));
        // Block 40 starts cylinder 1.
        let c = g.locate(40);
        assert_eq!((c.cylinder, c.head, c.sector), (1, 0, 0));
    }

    #[test]
    fn locate_crosses_zone_boundary() {
        let g = Geometry::tiny_for_tests();
        // Zone 0 spans blocks [0, 2000); zone 1 starts at cylinder 50.
        let c = g.locate(2000);
        assert_eq!(c.cylinder, 50);
        assert_eq!(c.sectors_per_track, 10);
        let before = g.locate(1999);
        assert_eq!(before.cylinder, 49);
        assert_eq!(before.sectors_per_track, 20);
    }

    #[test]
    fn locate_clamps_out_of_range() {
        let g = Geometry::tiny_for_tests();
        let last = g.locate(g.capacity_blocks() - 1);
        let clamped = g.locate(u64::MAX);
        assert_eq!(last, clamped);
    }

    #[test]
    fn sectors_at_cylinder_matches_zone_table() {
        let g = Geometry::tiny_for_tests();
        assert_eq!(g.sectors_at_cylinder(0), 20);
        assert_eq!(g.sectors_at_cylinder(49), 20);
        assert_eq!(g.sectors_at_cylinder(50), 10);
        assert_eq!(g.sectors_at_cylinder(10_000), 10);
    }

    #[test]
    fn maxtor_like_capacity_in_range() {
        let g = Geometry::maxtor_7l250s0_like();
        let gb = g.capacity_bytes().as_u64() as f64 / 1e9;
        assert!((200.0..300.0).contains(&gb), "capacity {gb} GB");
        // Outer zone meaningfully denser than inner.
        let outer = g.locate(0).sectors_per_track;
        let inner = g.locate(g.capacity_blocks() - 1).sectors_per_track;
        assert!(outer as f64 / inner as f64 > 1.7);
    }

    #[test]
    fn invalid_zones_fall_back() {
        let g = Geometry::new(2, 10, Bytes::kib(4), vec![]);
        assert!(g.capacity_blocks() > 0);
        let g2 = Geometry::new(
            2,
            10,
            Bytes::kib(4),
            vec![Zone {
                start_cylinder: 5,
                sectors_per_track: 4,
            }],
        );
        assert_eq!(g2.zones().len(), 1);
        assert_eq!(g2.zones()[0].start_cylinder, 0);
    }

    #[test]
    fn every_block_locates_in_bounds() {
        let g = Geometry::tiny_for_tests();
        for b in 0..g.capacity_blocks() {
            let c = g.locate(b);
            assert!(c.cylinder < g.cylinders());
            assert!(c.head < g.heads());
            assert!(c.sector < c.sectors_per_track);
        }
    }
}
