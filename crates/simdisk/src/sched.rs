//! I/O schedulers: request ordering policies above a block device.
//!
//! Which requests the disk sees *in what order* changes measured
//! performance as much as the disk itself — one of the hidden layers the
//! paper blames for incomparable results. The queue models the classic
//! Linux single-queue schedulers (NOOP, SCAN/elevator, C-SCAN, DEADLINE)
//! so experiments can hold the device constant and vary only ordering.

use crate::device::{BlockDevice, IoRequest};
use rb_simcore::time::Nanos;
use rb_simcore::units::BlockNo;

/// Scheduling policy for a request queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First-come first-served.
    Noop,
    /// Elevator: service in block order, reversing direction at the ends.
    Scan,
    /// Circular SCAN: service ascending, wrap to the lowest block.
    CScan,
    /// SCAN with an aging bound: any request older than the expiry is
    /// serviced first regardless of position.
    Deadline {
        /// Maximum time a request may wait before it jumps the queue.
        expire: Nanos,
    },
}

/// A pending request with its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    /// The request.
    pub req: IoRequest,
    /// Arrival instant.
    pub arrived: Nanos,
}

/// A completed request with its completion time and service latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The request that completed.
    pub req: IoRequest,
    /// Instant the device finished it.
    pub finished: Nanos,
    /// Service latency (excludes queueing).
    pub service: Nanos,
    /// Total latency including queueing delay.
    pub total: Nanos,
}

/// A request queue applying a [`SchedPolicy`] over a [`BlockDevice`].
///
/// # Examples
///
/// ```
/// use rb_simdisk::device::IoRequest;
/// use rb_simdisk::hdd::{Hdd, HddConfig};
/// use rb_simdisk::sched::{IoQueue, SchedPolicy};
/// use rb_simcore::time::Nanos;
///
/// let mut q = IoQueue::new(SchedPolicy::Scan);
/// let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
/// q.push(IoRequest::read(90_000, 2), Nanos::ZERO);
/// q.push(IoRequest::read(10, 2), Nanos::ZERO);
/// q.push(IoRequest::read(50_000, 2), Nanos::ZERO);
/// let done = q.drain(&mut disk, Nanos::ZERO);
/// // SCAN from cylinder 0 services in ascending block order.
/// let order: Vec<u64> = done.iter().map(|c| c.req.block).collect();
/// assert_eq!(order, vec![10, 50_000, 90_000]);
/// ```
#[derive(Debug, Clone)]
pub struct IoQueue {
    policy: SchedPolicy,
    pending: Vec<Pending>,
    head: BlockNo,
    ascending: bool,
}

impl IoQueue {
    /// Creates an empty queue with the given policy.
    pub fn new(policy: SchedPolicy) -> Self {
        IoQueue {
            policy,
            pending: Vec::new(),
            head: 0,
            ascending: true,
        }
    }

    /// The queue's policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns true if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Enqueues a request arriving at `now`.
    pub fn push(&mut self, req: IoRequest, now: Nanos) {
        self.pending.push(Pending { req, arrived: now });
    }

    /// Index of the next request to dispatch at time `now`.
    fn pick(&mut self, now: Nanos) -> usize {
        match self.policy {
            SchedPolicy::Noop => {
                // Earliest arrival; ties by queue position (stable).
                let mut best = 0;
                for (i, p) in self.pending.iter().enumerate() {
                    if p.arrived < self.pending[best].arrived {
                        best = i;
                    }
                }
                best
            }
            SchedPolicy::Scan => self.pick_scan(),
            SchedPolicy::CScan => {
                // Smallest block >= head, else wrap to smallest overall.
                let up = self
                    .pending
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.req.block >= self.head)
                    .min_by_key(|(_, p)| p.req.block);
                match up {
                    Some((i, _)) => i,
                    None => self
                        .pending
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, p)| p.req.block)
                        .map(|(i, _)| i)
                        .unwrap_or(0),
                }
            }
            SchedPolicy::Deadline { expire } => {
                // Expired request with the earliest arrival wins.
                let expired = self
                    .pending
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| now.saturating_sub(p.arrived) >= expire)
                    .min_by_key(|(_, p)| p.arrived);
                match expired {
                    Some((i, _)) => i,
                    None => self.pick_scan(),
                }
            }
        }
    }

    fn pick_scan(&mut self) -> usize {
        let in_direction = |p: &Pending, asc: bool, head: BlockNo| {
            if asc {
                p.req.block >= head
            } else {
                p.req.block <= head
            }
        };
        // Nearest request in the travel direction; reverse if none.
        for _ in 0..2 {
            let best = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| in_direction(p, self.ascending, self.head))
                .min_by_key(|(_, p)| p.req.block.abs_diff(self.head));
            if let Some((i, _)) = best {
                return i;
            }
            self.ascending = !self.ascending;
        }
        0
    }

    /// Dispatches one request to `device` at time `now`, if any.
    ///
    /// Returns the completion, or `None` if the queue is empty.
    pub fn dispatch_one(&mut self, device: &mut dyn BlockDevice, now: Nanos) -> Option<Completion> {
        if self.pending.is_empty() {
            return None;
        }
        let i = self.pick(now);
        let p = self.pending.swap_remove(i);
        let service = device.service(&p.req, now);
        let finished = now + service;
        self.head = p.req.end();
        Some(Completion {
            req: p.req,
            finished,
            service,
            total: finished - p.arrived,
        })
    }

    /// Services every queued request back-to-back starting at `now`,
    /// returning completions in dispatch order.
    pub fn drain(&mut self, device: &mut dyn BlockDevice, mut now: Nanos) -> Vec<Completion> {
        let mut out = Vec::with_capacity(self.pending.len());
        while let Some(c) = self.dispatch_one(device, now) {
            now = c.finished;
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdd::{Hdd, HddConfig};
    use crate::ssd::RamDisk;

    fn reqs(blocks: &[u64]) -> Vec<IoRequest> {
        blocks.iter().map(|&b| IoRequest::read(b, 2)).collect()
    }

    fn drain_order(policy: SchedPolicy, blocks: &[u64]) -> Vec<u64> {
        let mut q = IoQueue::new(policy);
        for (i, r) in reqs(blocks).into_iter().enumerate() {
            q.push(r, Nanos::from_micros(i as u64));
        }
        let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
        q.drain(&mut disk, Nanos::from_millis(1))
            .into_iter()
            .map(|c| c.req.block)
            .collect()
    }

    #[test]
    fn noop_is_fifo() {
        assert_eq!(
            drain_order(SchedPolicy::Noop, &[500_000, 10, 90_000]),
            vec![500_000, 10, 90_000]
        );
    }

    #[test]
    fn scan_sorts_ascending_from_zero() {
        assert_eq!(
            drain_order(SchedPolicy::Scan, &[500_000, 10, 90_000]),
            vec![10, 90_000, 500_000]
        );
    }

    #[test]
    fn scan_reverses_at_end() {
        // Start head at 0; all ascending, then a late small block would be
        // picked on the way back. Here we check two-phase pick within one
        // drain: after reaching 500k, direction flips for the lower block.
        let mut q = IoQueue::new(SchedPolicy::Scan);
        q.push(IoRequest::read(100, 2), Nanos::ZERO);
        q.push(IoRequest::read(500_000, 2), Nanos::ZERO);
        let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
        let c1 = q.dispatch_one(&mut disk, Nanos::ZERO).unwrap();
        assert_eq!(c1.req.block, 100);
        // Now enqueue a block below the head: only reachable by reversing.
        q.push(IoRequest::read(50, 2), c1.finished);
        let c2 = q.dispatch_one(&mut disk, c1.finished).unwrap();
        // Ascending direction still holds: 500_000 comes first.
        assert_eq!(c2.req.block, 500_000);
        let c3 = q.dispatch_one(&mut disk, c2.finished).unwrap();
        assert_eq!(c3.req.block, 50);
    }

    #[test]
    fn cscan_wraps_to_lowest() {
        let mut q = IoQueue::new(SchedPolicy::CScan);
        let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
        q.push(IoRequest::read(400_000, 2), Nanos::ZERO);
        let c = q.dispatch_one(&mut disk, Nanos::ZERO).unwrap();
        assert_eq!(c.req.block, 400_000);
        // Head now past 400k; queue two below it.
        q.push(IoRequest::read(10, 2), c.finished);
        q.push(IoRequest::read(300_000, 2), c.finished);
        let next = q.dispatch_one(&mut disk, c.finished).unwrap();
        // C-SCAN wraps to the smallest block, not the nearest.
        assert_eq!(next.req.block, 10);
    }

    #[test]
    fn deadline_promotes_starved_request() {
        let expire = Nanos::from_millis(100);
        let mut q = IoQueue::new(SchedPolicy::Deadline { expire });
        let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
        // Old request far away, fresh request nearby.
        q.push(IoRequest::read(900_000, 2), Nanos::ZERO);
        q.push(IoRequest::read(10, 2), Nanos::from_millis(150));
        // At t=200ms the 900k request is 200ms old (expired): it goes first
        // even though 10 is closer to the head.
        let c = q.dispatch_one(&mut disk, Nanos::from_millis(200)).unwrap();
        assert_eq!(c.req.block, 900_000);
    }

    #[test]
    fn deadline_behaves_like_scan_when_fresh() {
        let expire = Nanos::from_secs(10);
        let mut q = IoQueue::new(SchedPolicy::Deadline { expire });
        let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
        q.push(IoRequest::read(900_000, 2), Nanos::ZERO);
        q.push(IoRequest::read(10, 2), Nanos::ZERO);
        let c = q.dispatch_one(&mut disk, Nanos::from_millis(1)).unwrap();
        assert_eq!(c.req.block, 10);
    }

    #[test]
    fn scan_beats_noop_on_scattered_batch() {
        // The whole point of an elevator: less total seeking. Alternate
        // between the two ends of the disk so FIFO order is pathological.
        let cap = Hdd::new(HddConfig::maxtor_7l250s0_like()).capacity_blocks();
        let blocks: Vec<u64> = (0..40u64)
            .map(|i| {
                let stride = cap / 50;
                if i % 2 == 0 {
                    i * stride
                } else {
                    cap - 2 - i * stride
                }
            })
            .collect();
        let total = |policy| {
            let mut q = IoQueue::new(policy);
            for &b in &blocks {
                q.push(IoRequest::read(b, 2), Nanos::ZERO);
            }
            let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
            q.drain(&mut disk, Nanos::ZERO).last().unwrap().finished
        };
        let noop = total(SchedPolicy::Noop);
        let scan = total(SchedPolicy::Scan);
        // Rotation (~4.2 ms average) is unavoidable under any ordering, so
        // the elevator's seek savings cap out around 1.5-2x here.
        assert!(
            scan.as_nanos() * 3 < noop.as_nanos() * 2,
            "scan {scan} not clearly faster than noop {noop}"
        );
    }

    #[test]
    fn queueing_delay_counted_in_total() {
        let mut q = IoQueue::new(SchedPolicy::Noop);
        let mut ram = RamDisk::default_1gib();
        q.push(IoRequest::read(0, 1), Nanos::ZERO);
        q.push(IoRequest::read(1, 1), Nanos::ZERO);
        let done = q.drain(&mut ram, Nanos::ZERO);
        assert_eq!(done.len(), 2);
        // Second request waited for the first.
        assert!(done[1].total > done[1].service);
        assert_eq!(done[0].total, done[0].service);
    }

    #[test]
    fn empty_queue_dispatches_none() {
        let mut q = IoQueue::new(SchedPolicy::Scan);
        let mut ram = RamDisk::default_1gib();
        assert!(q.dispatch_one(&mut ram, Nanos::ZERO).is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
