//! Mechanical hard-disk model: seek curve, rotation, zoned transfer and
//! track buffer.
//!
//! Calibrated to the paper's testbed drive class (Maxtor 7L250S0,
//! 7200 RPM SATA): random 8 KiB reads cost ~8–16 ms (seek + half a
//! rotation), sequential reads stream from the track buffer at interface
//! speed, and outer-zone transfers outpace inner-zone ones. The *spread*
//! of these latencies — three orders of magnitude above memory — is what
//! produces every phenomenon in the paper's case study.

use crate::device::{BlockDevice, DeviceStats, IoKind, IoRequest};
use crate::geometry::Geometry;
use rb_simcore::rng::Rng;
use rb_simcore::time::Nanos;
use rb_simcore::units::{BlockNo, Bytes};

/// Configuration of the HDD model.
#[derive(Debug, Clone)]
pub struct HddConfig {
    /// Platter and zone layout.
    pub geometry: Geometry,
    /// Spindle speed in revolutions per minute.
    pub rpm: u64,
    /// Single-cylinder seek time.
    pub min_seek: Nanos,
    /// Full-stroke seek time.
    pub max_seek: Nanos,
    /// Head-switch / track-switch settle time.
    pub head_switch: Nanos,
    /// Fixed per-request controller and interface overhead.
    pub controller_overhead: Nanos,
    /// Host interface throughput (track-buffer hits stream at this rate).
    pub interface_rate: Bytes,
    /// Whether the drive reads ahead the remainder of the track into its
    /// buffer after a media read.
    pub track_buffer: bool,
    /// Whether writes are acknowledged from the write cache (fast) rather
    /// than after media placement.
    pub write_cache: bool,
    /// Log-normal sigma applied to seek times (mechanical variability).
    /// Zero disables jitter entirely.
    pub seek_jitter_sigma: f64,
    /// Run-to-run mechanical variability: each drive instance draws a
    /// constant speed factor with this log-normal sigma, scaling every
    /// mechanical (non-cached) access. Models thermal state, ambient
    /// vibration and placement differences between nominally identical
    /// runs — the reason the paper's disk-bound RSD is ~5x its
    /// memory-bound RSD.
    pub run_variability: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl HddConfig {
    /// The paper-calibrated drive: Maxtor 7L250S0-like, 7200 RPM.
    pub fn maxtor_7l250s0_like() -> Self {
        HddConfig {
            geometry: Geometry::maxtor_7l250s0_like(),
            rpm: 7200,
            min_seek: Nanos::from_micros(800),
            max_seek: Nanos::from_micros(17_800),
            head_switch: Nanos::from_micros(800),
            controller_overhead: Nanos::from_micros(200),
            interface_rate: Bytes::mib(150),
            track_buffer: true,
            write_cache: true,
            seek_jitter_sigma: 0.06,
            run_variability: 0.02,
            seed: 0x4D61_7874_6F72, // "Maxtor"
        }
    }

    /// A small, fast-to-simulate disk for unit tests.
    pub fn tiny_for_tests() -> Self {
        HddConfig {
            geometry: Geometry::tiny_for_tests(),
            rpm: 7200,
            min_seek: Nanos::from_micros(500),
            max_seek: Nanos::from_micros(10_000),
            head_switch: Nanos::from_micros(400),
            controller_overhead: Nanos::from_micros(100),
            interface_rate: Bytes::mib(150),
            track_buffer: true,
            write_cache: true,
            seek_jitter_sigma: 0.0,
            run_variability: 0.0,
            seed: 7,
        }
    }
}

/// The range of blocks currently held in the drive's track buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BufferedRange {
    start: BlockNo,
    end: BlockNo,
}

/// A simulated mechanical disk.
///
/// # Examples
///
/// ```
/// use rb_simdisk::device::{BlockDevice, IoRequest};
/// use rb_simdisk::hdd::{Hdd, HddConfig};
/// use rb_simcore::time::Nanos;
///
/// let mut disk = Hdd::new(HddConfig::maxtor_7l250s0_like());
/// let far = disk.capacity_blocks() / 2;
/// let lat = disk.service(&IoRequest::read(far, 2), Nanos::ZERO);
/// // A random 8 KiB read costs milliseconds, not microseconds.
/// assert!(lat.as_millis() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Hdd {
    config: HddConfig,
    rotation: Nanos,
    current_cylinder: u64,
    buffer: Option<BufferedRange>,
    rng: Rng,
    /// This instance's mechanical speed factor (1.0 = nominal).
    speed: f64,
    stats: DeviceStats,
}

impl Hdd {
    /// Creates a disk with heads parked at cylinder 0 and an empty buffer.
    pub fn new(config: HddConfig) -> Self {
        let rotation = Nanos::from_nanos(60_000_000_000 / config.rpm.max(1));
        let mut unit = Rng::new(config.seed).fork("hdd-unit-speed");
        let speed = if config.run_variability > 0.0 {
            unit.lognormal(1.0, config.run_variability).clamp(0.9, 1.12)
        } else {
            1.0
        };
        let rng = Rng::new(config.seed).fork("hdd-seek-jitter");
        Hdd {
            config,
            rotation,
            current_cylinder: 0,
            buffer: None,
            rng,
            speed,
            stats: DeviceStats::default(),
        }
    }

    /// The configuration this disk was built with.
    pub fn config(&self) -> &HddConfig {
        &self.config
    }

    /// One full platter revolution.
    pub fn rotation_time(&self) -> Nanos {
        self.rotation
    }

    /// Seek time for a cylinder distance, before jitter.
    ///
    /// Uses the standard square-root acceleration model: settle-dominated
    /// short seeks grow as sqrt(distance), saturating at the full-stroke
    /// time. Distance 0 is free.
    pub fn seek_time(&self, distance: u64) -> Nanos {
        if distance == 0 {
            return Nanos::ZERO;
        }
        let c = self.config.geometry.cylinders().saturating_sub(1).max(1);
        let frac = (distance as f64 / c as f64).min(1.0).sqrt();
        let min = self.config.min_seek.as_nanos() as f64;
        let max = self.config.max_seek.as_nanos() as f64;
        Nanos::from_nanos((min + (max - min) * frac) as u64)
    }

    /// Rotational angle of the platter at instant `t`, in `[0, 1)`.
    fn angle_at(&self, t: Nanos) -> f64 {
        (t.as_nanos() % self.rotation.as_nanos()) as f64 / self.rotation.as_nanos() as f64
    }

    /// Time spent transferring `count` blocks from media starting at
    /// `block`, including track and cylinder switches.
    fn media_transfer(&self, block: BlockNo, count: u64) -> Nanos {
        let mut t = Nanos::ZERO;
        let mut pos = block;
        let mut left = count;
        while left > 0 {
            let chs = self.config.geometry.locate(pos);
            let this_track = (chs.sectors_per_track - chs.sector).min(left);
            // One sector passes under the head every rotation/spt.
            t += self.rotation * this_track / chs.sectors_per_track;
            pos += this_track;
            left -= this_track;
            if left > 0 {
                t += self.config.head_switch;
            }
        }
        t
    }

    /// Interface-speed transfer (buffer hit or cached write).
    fn interface_transfer(&self, count: u64) -> Nanos {
        let bytes = self.config.geometry.block_size().as_u64() * count;
        let rate = self.config.interface_rate.as_u64().max(1);
        Nanos::from_secs_f64(bytes as f64 / rate as f64)
    }

    fn buffer_holds(&self, req: &IoRequest) -> bool {
        matches!(self.buffer, Some(b) if req.block >= b.start && req.end() <= b.end)
    }

    /// After a media read ending at `end_block`, the drive keeps reading
    /// the rest of the track into its buffer.
    fn refill_buffer(&mut self, start: BlockNo, end_block: BlockNo) {
        if !self.config.track_buffer {
            return;
        }
        let chs = self
            .config
            .geometry
            .locate(end_block.saturating_sub(1).max(start));
        let to_track_end = chs.sectors_per_track - chs.sector - 1;
        self.buffer = Some(BufferedRange {
            start,
            end: end_block + to_track_end,
        });
    }
}

impl BlockDevice for Hdd {
    fn service(&mut self, req: &IoRequest, now: Nanos) -> Nanos {
        let mut latency = self.config.controller_overhead;

        let fast_path = match req.kind {
            IoKind::Read => self.buffer_holds(req),
            IoKind::Write => self.config.write_cache,
        };

        if fast_path {
            latency += self.interface_transfer(req.count);
        } else {
            let chs = self.config.geometry.locate(req.block);
            // Seek.
            let distance = self.current_cylinder.abs_diff(chs.cylinder);
            if distance != 0 {
                self.stats.seeks += 1;
                self.stats.seek_distance += distance;
            }
            let mut seek = self.seek_time(distance);
            if self.config.seek_jitter_sigma > 0.0 && !seek.is_zero() {
                let factor = self
                    .rng
                    .lognormal(1.0, self.config.seek_jitter_sigma)
                    .clamp(0.5, 2.0);
                seek = seek.mul_f64(factor);
            }
            if distance == 0 && !seek.is_zero() {
                // Same cylinder: no arm movement, settle only.
            }
            latency += seek;
            // Head switch onto a different surface.
            latency += if distance == 0 {
                Nanos::ZERO
            } else {
                self.config.head_switch
            };
            // Rotational delay to the target sector.
            let arrive = now + latency;
            let target_angle = chs.sector as f64 / chs.sectors_per_track as f64;
            let head_angle = self.angle_at(arrive);
            let mut wait = target_angle - head_angle;
            if wait < 0.0 {
                wait += 1.0;
            }
            latency += self.rotation.mul_f64(wait);
            // Media transfer.
            latency += self.media_transfer(req.block, req.count);
            // Mechanical path scales with this unit's speed factor.
            latency = self.config.controller_overhead
                + (latency - self.config.controller_overhead).mul_f64(self.speed);
            // Mechanical state update.
            let end_chs = self.config.geometry.locate(req.end().saturating_sub(1));
            self.current_cylinder = end_chs.cylinder;
            if req.kind == IoKind::Read {
                self.refill_buffer(req.block, req.end());
            } else {
                // A media write invalidates any overlapping buffered range.
                self.buffer = None;
            }
        }

        self.stats.record(req, latency);
        latency
    }

    fn capacity_blocks(&self) -> u64 {
        self.config.geometry.capacity_blocks()
    }

    fn block_size(&self) -> Bytes {
        self.config.geometry.block_size()
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn model_name(&self) -> &str {
        "hdd-7200"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Hdd {
        Hdd::new(HddConfig::maxtor_7l250s0_like())
    }

    #[test]
    fn seek_time_monotone_in_distance() {
        let d = disk();
        let mut last = Nanos::ZERO;
        for dist in [0u64, 1, 10, 100, 1_000, 10_000, 50_000] {
            let t = d.seek_time(dist);
            assert!(t >= last, "seek({dist}) = {t} < previous {last}");
            last = t;
        }
        assert_eq!(d.seek_time(0), Nanos::ZERO);
        assert!(d.seek_time(1) >= d.config().min_seek);
        assert!(d.seek_time(u64::MAX / 2) <= d.config().max_seek + Nanos::from_micros(1));
    }

    #[test]
    fn random_read_costs_milliseconds() {
        let mut d = disk();
        let cap = d.capacity_blocks();
        let mut rng = Rng::new(1);
        let mut now = Nanos::ZERO;
        let mut total = Nanos::ZERO;
        let n = 200;
        for _ in 0..n {
            let b = rng.below(cap - 2);
            let lat = d.service(&IoRequest::read(b, 2), now);
            now += lat;
            total += lat;
        }
        let mean_ms = (total / n).as_secs_f64() * 1e3;
        assert!(
            (5.0..20.0).contains(&mean_ms),
            "mean random read {mean_ms} ms out of Maxtor-class range"
        );
    }

    #[test]
    fn sequential_reads_hit_track_buffer() {
        let mut d = disk();
        let mut now = Nanos::ZERO;
        // Move the arm far away so the priming read includes a real seek.
        now += d.service(&IoRequest::read(d.capacity_blocks() / 2, 2), now);
        // Prime: first read at the target is a media access.
        let first = d.service(&IoRequest::read(1000, 2), now);
        now += first;
        // Following blocks stream from the buffer.
        let mut buffered = Vec::new();
        for i in 1..20 {
            let lat = d.service(&IoRequest::read(1000 + i * 2, 2), now);
            now += lat;
            buffered.push(lat);
        }
        let max_buffered = buffered.iter().copied().max().unwrap();
        assert!(
            max_buffered.as_nanos() * 10 < first.as_nanos(),
            "buffer hit {max_buffered} not ≫ faster than media read {first}"
        );
    }

    #[test]
    fn outer_zone_transfers_faster() {
        let d = disk();
        let cap = d.capacity_blocks();
        // Large transfers dominated by media rate, not seek.
        let outer = d.media_transfer(0, 4096);
        let inner = d.media_transfer(cap - 5000, 4096);
        assert!(
            inner.as_nanos() as f64 / outer.as_nanos() as f64 > 1.5,
            "inner {inner} not slower than outer {outer}"
        );
    }

    #[test]
    fn cached_writes_are_fast_uncached_slow() {
        let mut fast = disk();
        let mut cfg = HddConfig::maxtor_7l250s0_like();
        cfg.write_cache = false;
        let mut slow = Hdd::new(cfg);
        let w = IoRequest::write(123_456, 8);
        let lf = fast.service(&w, Nanos::ZERO);
        let ls = slow.service(&w, Nanos::ZERO);
        assert!(lf.as_micros() < 1000, "cached write {lf}");
        assert!(ls.as_millis() >= 1, "uncached write {ls}");
    }

    #[test]
    fn write_invalidates_buffer() {
        let mut cfg = HddConfig::maxtor_7l250s0_like();
        cfg.write_cache = false;
        let mut d = Hdd::new(cfg);
        let mut now = Nanos::ZERO;
        now += d.service(&IoRequest::read(5000, 2), now);
        // Buffered re-read is fast.
        let hit = d.service(&IoRequest::read(5002, 2), now);
        assert!(hit.as_micros() < 1000);
        now += hit;
        now += d.service(&IoRequest::write(5002, 2), now);
        let after = d.service(&IoRequest::read(5004, 2), now);
        assert!(after.as_millis() >= 1, "buffer should be invalid: {after}");
    }

    #[test]
    fn determinism_same_seed_same_latencies() {
        let run = || {
            let mut d = disk();
            let mut rng = Rng::new(42);
            let mut now = Nanos::ZERO;
            let mut out = Vec::new();
            for _ in 0..50 {
                let b = rng.below(d.capacity_blocks() - 2);
                let lat = d.service(&IoRequest::read(b, 2), now);
                now += lat;
                out.push(lat);
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rotation_time_from_rpm() {
        let d = disk();
        // 7200 RPM = 8.333 ms per revolution.
        assert_eq!(d.rotation_time().as_micros(), 8_333);
    }

    #[test]
    fn stats_track_requests() {
        let mut d = disk();
        d.service(&IoRequest::read(0, 4), Nanos::ZERO);
        d.service(&IoRequest::write(100, 4), Nanos::ZERO);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().blocks_read, 4);
        assert!(d.stats().busy > Nanos::ZERO);
    }
}
